#!/usr/bin/env bash
# Tier-1 verification, fully offline: release build, the whole test
# suite, and formatting. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --offline

echo "== cargo test =="
cargo test -q --offline

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "ci: all green"
