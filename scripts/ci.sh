#!/usr/bin/env bash
# Tier-1 verification, fully offline: release build, the whole test
# suite, and formatting. Run from anywhere inside the repo.
#
# Stages:
#   scripts/ci.sh           # tier-1: build + tests + fmt (the default)
#   scripts/ci.sh chaos     # tier-2: seeded fault-injection suites only
#   scripts/ci.sh recovery  # tier-2: crash-point WAL recovery suites only
#   scripts/ci.sh parity    # tier-2: planner-parity grid (plan layer vs
#                           # forced engines, every backend + result cache)
#   scripts/ci.sh replication # tier-2: WAL-shipping follower suites
#                           # (loopback parity, crash points, faulted apply)
#   scripts/ci.sh obs       # tier-2: METRICS/STATS exactness suite plus
#                           # the obs_overhead gate (default sampling
#                           # must cost <= 2% on the hot query path)
#   scripts/ci.sh failover  # tier-2: epoch-fenced promotion at every
#                           # frame boundary, FailoverClient through the
#                           # seeded ChaosProxy (fixed seed matrix
#                           # 0xC0FFEE1..3), graceful-shutdown drain
#
# The chaos stage replays the fixed seed ranges baked into tests/chaos.rs
# and crates/serve/tests/chaos_loopback.rs. Every violation panics with
# the offending seed in the message (e.g. "seed 217: mtindex returned a
# WRONG ANSWER under faults"), which this stage echoes so the failure can
# be replayed deterministically.
set -euo pipefail
cd "$(dirname "$0")/.."

stage="${1:-all}"

run_chaos() {
    echo "== chaos: seeded fault schedules (core engines) =="
    local log
    log="$(mktemp)"
    trap 'rm -f "$log"' RETURN
    if ! cargo test --offline -p simquery --test chaos -- --nocapture 2>&1 | tee "$log"; then
        echo
        echo "chaos: FAILED — offending seed(s):"
        grep -o "seed [0-9]*[^\"]*" "$log" | sort -u | sed 's/^/  /' || true
        echo "replay: cargo test -p simquery --test chaos -- --nocapture"
        return 1
    fi
    echo "== chaos: faulted simserved loopback =="
    if ! cargo test --offline -p simserve --test chaos_loopback -- --nocapture 2>&1 | tee "$log"; then
        echo
        echo "chaos: FAILED — see output above"
        echo "replay: cargo test -p simserve --test chaos_loopback -- --nocapture"
        return 1
    fi
    echo "ci: chaos green"
}

run_recovery() {
    echo "== recovery: crash-point WAL suite (every byte offset) =="
    local log
    log="$(mktemp)"
    trap 'rm -f "$log"' RETURN
    if ! cargo test --offline -p simshard --test recovery -- --nocapture 2>&1 | tee "$log"; then
        echo
        echo "recovery: FAILED — offending case(s):"
        grep -oE "(seed [0-9]+|cut [0-9]+|shard [0-9]+)[^\"]*" "$log" | sort -u | sed 's/^/  /' || true
        echo "replay: cargo test -p simshard --test recovery -- --nocapture"
        return 1
    fi
    echo "== recovery: durable simserved restart loopback =="
    if ! cargo test --offline -p simserve --test recovery_loopback -- --nocapture 2>&1 | tee "$log"; then
        echo
        echo "recovery: FAILED — see output above"
        echo "replay: cargo test -p simserve --test recovery_loopback -- --nocapture"
        return 1
    fi
    echo "ci: recovery green"
}

run_parity() {
    echo "== parity: planner-chosen vs forced engines, 1/2/4/8 shards =="
    local log
    log="$(mktemp)"
    trap 'rm -f "$log"' RETURN
    if ! cargo test --offline -p simshard --test plan_parity -- --nocapture 2>&1 | tee "$log"; then
        echo
        echo "parity: FAILED — see divergence messages above"
        echo "replay: cargo test -p simshard --test plan_parity -- --nocapture"
        return 1
    fi
    echo "== parity: sharded-vs-single engine suite =="
    if ! cargo test --offline -p simshard --test parity -- --nocapture 2>&1 | tee "$log"; then
        echo
        echo "parity: FAILED — see output above"
        echo "replay: cargo test -p simshard --test parity -- --nocapture"
        return 1
    fi
    echo "== parity: EXPLAIN + epoch-keyed result cache over the wire =="
    if ! cargo test --offline -p simserve --test loopback -- --nocapture 2>&1 | tee "$log"; then
        echo
        echo "parity: FAILED — see output above"
        echo "replay: cargo test -p simserve --test loopback -- --nocapture"
        return 1
    fi
    echo "ci: parity green"
}

run_replication() {
    echo "== replication: loopback convergence + read-only follower =="
    local log
    log="$(mktemp)"
    trap 'rm -f "$log"' RETURN
    if ! cargo test --offline -p simserve --test replication_loopback -- --nocapture 2>&1 | tee "$log"; then
        echo
        echo "replication: FAILED — see output above"
        echo "replay: cargo test -p simserve --test replication_loopback -- --nocapture"
        return 1
    fi
    echo "== replication: crash at every frame boundary, both roles =="
    if ! cargo test --offline -p simserve --test replication_crash -- --nocapture 2>&1 | tee "$log"; then
        echo
        echo "replication: FAILED — see output above"
        echo "replay: cargo test -p simserve --test replication_crash -- --nocapture"
        return 1
    fi
    echo "== replication: faulted follower devices during apply =="
    if ! cargo test --offline -p simserve --test replication_chaos -- --nocapture 2>&1 | tee "$log"; then
        echo
        echo "replication: FAILED — see output above"
        echo "replay: cargo test -p simserve --test replication_chaos -- --nocapture"
        return 1
    fi
    echo "ci: replication green"
}

run_obs() {
    echo "== obs: metrics/stats parity, slow-query log, trace ring =="
    local log
    log="$(mktemp)"
    trap 'rm -f "$log"' RETURN
    if ! cargo test --offline -p simobs 2>&1 | tee "$log"; then
        echo
        echo "obs: FAILED — see output above"
        echo "replay: cargo test -p simobs"
        return 1
    fi
    if ! cargo test --offline -p simserve --test metrics_parity -- --nocapture 2>&1 | tee "$log"; then
        echo
        echo "obs: FAILED — see output above"
        echo "replay: cargo test -p simserve --test metrics_parity -- --nocapture"
        return 1
    fi
    echo "== obs: overhead gate (default sampling <= 2% vs off) =="
    if ! REPRO_FAST=1 cargo run --offline --release -p bench --bin obs_overhead 2>&1 | tee "$log"; then
        echo
        echo "obs: benchmark FAILED — see output above"
        return 1
    fi
    local pct
    pct="$(grep -o '"default_overhead_pct_vs_off": [0-9.-]*' results/obs_overhead.json | awk '{print $2}')"
    if awk -v p="$pct" 'BEGIN { exit !(p <= 2.0) }'; then
        echo "obs: default-sampling overhead ${pct}% within the 2% budget"
    else
        echo "obs: FAILED — default-sampling overhead ${pct}% exceeds 2%"
        return 1
    fi
    echo "ci: obs green"
}

run_failover() {
    echo "== failover: promotion at every frame boundary + fencing =="
    local log
    log="$(mktemp)"
    trap 'rm -f "$log"' RETURN
    if ! cargo test --offline -p simserve --test failover_promotion -- --nocapture 2>&1 | tee "$log"; then
        echo
        echo "failover: FAILED — see output above"
        echo "replay: cargo test -p simserve --test failover_promotion -- --nocapture"
        return 1
    fi
    echo "== failover: FailoverClient through ChaosProxy (seeds 0xC0FFEE1..3) =="
    if ! cargo test --offline -p simserve --test failover_chaos -- --nocapture 2>&1 | tee "$log"; then
        echo
        echo "failover: FAILED — offending seed(s):"
        grep -o "seed [0-9a-fx]*[^\"]*" "$log" | sort -u | sed 's/^/  /' || true
        echo "replay: cargo test -p simserve --test failover_chaos -- --nocapture"
        return 1
    fi
    echo "== failover: graceful-shutdown drain =="
    if ! cargo test --offline -p simserve --test shutdown_drain -- --nocapture 2>&1 | tee "$log"; then
        echo
        echo "failover: FAILED — see output above"
        echo "replay: cargo test -p simserve --test shutdown_drain -- --nocapture"
        return 1
    fi
    echo "ci: failover green"
}

case "$stage" in
chaos)
    run_chaos
    ;;
parity)
    run_parity
    ;;
recovery)
    run_recovery
    ;;
replication)
    run_replication
    ;;
obs)
    run_obs
    ;;
failover)
    run_failover
    ;;
all)
    echo "== cargo build --release =="
    cargo build --release --offline

    echo "== cargo test =="
    cargo test -q --offline

    echo "== cargo clippy =="
    cargo clippy --offline --all-targets -- -D warnings

    echo "== cargo fmt --check =="
    cargo fmt --all --check

    echo "ci: all green"
    ;;
*)
    echo "usage: scripts/ci.sh [chaos|recovery|parity|replication|obs|failover]" >&2
    exit 2
    ;;
esac
