//! The Example 1.1 scenario: two index series that look nothing alike until
//! they are normalized and smoothed — find, for every pair, the *shortest*
//! moving average that makes them similar.
//!
//! The paper's COMPV/NYV pair becomes similar under a 9-day moving average
//! and COMPV/DECL under a 19-day one; with synthetic market data the exact
//! windows differ, but the phenomenon (smoothing reveals the shared trend)
//! is the same.
//!
//! ```sh
//! cargo run --release --example stock_screener
//! ```

use simquery::engine::mtindex;
use simquery::prelude::*;
use tseries::{euclidean, moving_average_circular, Market, MarketConfig};

fn main() {
    // A market with strong sector structure: closes share sector trends
    // under the daily noise, like the NYSE volume/decline indices.
    let cfg = MarketConfig {
        stocks: 300,
        days: 128,
        sectors: 6,
        sector_weight: 0.92,
        spike_prob: 0.0,
        // Volume-like daily jitter: this is what the moving average removes
        // (COMPV/NYV in the paper are *volume* indices).
        daily_noise: 0.08,
        ..MarketConfig::default()
    };
    let market = Market::new(cfg, 20260706);
    let corpus = Corpus::from_parts(market.names(), market.closes());

    // --- Part 1: the Example 1.1 effect on one pair ---------------------
    let a = &corpus.series()[0];
    let b = &corpus.series()[6]; // same sector (6 sectors, stride 6)
    println!(
        "raw Euclidean distance          D(a, b)   = {:10.1}",
        euclidean(a, b)
    );
    let na = a.normal_form().unwrap().series;
    let nb = b.normal_form().unwrap().series;
    println!(
        "normalized                      D(â, b̂)   = {:10.3}",
        euclidean(&na, &nb)
    );
    let threshold = 3.0;
    let shortest = (1..=40).find(|&m| {
        euclidean(
            &moving_average_circular(&na, m),
            &moving_average_circular(&nb, m),
        ) < threshold
    });
    match shortest {
        Some(m) => {
            let d = euclidean(
                &moving_average_circular(&na, m),
                &moving_average_circular(&nb, m),
            );
            println!("shortest MA with D < {threshold}: {m}-day (D = {d:.3})");
        }
        None => println!("no moving average up to 40 days brings D below {threshold}"),
    }

    // --- Part 2: screen the whole market with one MT-index query --------
    let index = SeqIndex::build(&corpus, IndexConfig::default()).expect("non-empty corpus");
    let family = Family::moving_averages(1..=40, 128);
    let spec = RangeSpec::euclidean(threshold);

    println!(
        "\nscreening {} stocks against stock 0 (MA windows 1..=40):",
        corpus.len()
    );
    index.reset_counters().expect("reset counters");
    let result = mtindex::range_query(&index, a, &family, &spec).expect("valid query");

    // For each matching stock report its *shortest* qualifying window —
    // "we are usually interested in the shortest moving average" (§1).
    let mut shortest_per_stock: Vec<(usize, usize, f64)> = Vec::new();
    for seq in result.matched_sequences() {
        if seq == 0 {
            continue; // itself
        }
        let m = result
            .matches
            .iter()
            .filter(|m| m.seq == seq)
            .min_by_key(|m| m.transform)
            .expect("matched sequences have matches");
        shortest_per_stock.push((seq, m.transform + 1, m.dist));
    }
    shortest_per_stock.sort_by_key(|(_, window, _)| *window);
    for (seq, window, dist) in shortest_per_stock.iter().take(12) {
        println!(
            "  {:8} similar from {window:2}-day MA on (D = {dist:.3})",
            corpus.names()[*seq]
        );
    }
    println!(
        "\n{} similar stocks found, costing {}",
        shortest_per_stock.len(),
        result.metrics
    );
}
