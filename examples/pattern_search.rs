//! Subsequence pattern search: "where, in years of daily data, does this
//! month-long pattern occur — possibly smoothed?" Uses the FRM-style
//! sliding-window index ([`simquery::subseq`]) with the MT transformation
//! machinery applied to sub-trail MBRs.
//!
//! ```sh
//! cargo run --release --example pattern_search
//! ```

use simquery::prelude::*;
use simquery::subseq::sorted_subseq;
use tseries::random_walk;
use tseries::rng::SeededRng;

fn main() {
    let window = 32;

    // 40 "years" of daily data (length 750 each), random-walk shaped.
    let mut rng = SeededRng::seed_from_u64(2026);
    let mut seqs: Vec<TimeSeries> = (0..40).map(|_| random_walk(&mut rng, 750, 5.0)).collect();

    // Plant a known pattern (a double-dip) into three of them at known
    // offsets, with different scales and offsets — the normal form erases
    // those differences.
    let dip: Vec<f64> = (0..window)
        .map(|t| {
            let x = t as f64 / window as f64 * 2.0 * std::f64::consts::PI;
            -(x.sin().abs()) * 10.0
        })
        .collect();
    for (seq, offset, scale, shift) in [
        (3usize, 100usize, 1.0, 0.0),
        (17, 420, 4.0, 250.0),
        (29, 615, 0.5, -80.0),
    ] {
        let mut values = seqs[seq].clone().into_values();
        for (k, d) in dip.iter().enumerate() {
            values[offset + k] = d * scale + shift;
        }
        seqs[seq] = TimeSeries::new(values);
    }

    let index = SubseqIndex::build(seqs, window, 8).expect("indexable corpus");
    println!(
        "indexed {} sub-trail MBRs over 40 sequences × 750 days (window {window})",
        index.trail_count()
    );

    // Query: the clean dip pattern, allowing light smoothing.
    let pattern = TimeSeries::new(dip);
    let family = Family::moving_averages(1..=3, window);
    let spec = RangeSpec::correlation(0.9).with_policy(FilterPolicy::Adaptive);

    let (matches, metrics) = index.query(&pattern, &family, &spec).expect("valid query");
    let (scan, scan_metrics) = index
        .query_scan(&pattern, &family, &spec)
        .expect("valid query");
    assert_eq!(
        sorted_subseq(&matches),
        sorted_subseq(&scan),
        "index ≡ scan"
    );

    let mut hits: Vec<(usize, usize, f64)> = Vec::new();
    for m in &matches {
        match hits
            .iter_mut()
            .find(|(s, o, _)| *s == m.seq && m.offset.abs_diff(*o) <= 2)
        {
            Some(h) => h.2 = h.2.min(m.dist),
            None => hits.push((m.seq, m.offset, m.dist)),
        }
    }
    hits.sort_by(|a, b| a.2.total_cmp(&b.2));
    println!("\npattern occurrences (deduplicated by locality):");
    for (seq, offset, dist) in &hits {
        println!("  sequence {seq:2} @ day {offset:3}  D = {dist:.3}");
    }
    println!(
        "\nindex verified {} windows vs scan's {} ({}× fewer); {}",
        metrics.comparisons,
        scan_metrics.comparisons,
        scan_metrics.comparisons / metrics.comparisons.max(1),
        metrics
    );
    for planted in [(3usize, 100usize), (17, 420), (29, 615)] {
        assert!(
            hits.iter().any(|(s, o, _)| (*s, *o) == planted),
            "planted pattern at {planted:?} must be found"
        );
    }
}
