//! Nearest-neighbour queries under multiple transformations (§4.1's NN
//! sketch): "which stocks are closest to this one, allowing any smoothing
//! window?" — best-first R*-tree descent with a transformed MINDIST bound
//! and deferred exact refinement.
//!
//! ```sh
//! cargo run --release --example nearest_neighbors
//! ```

use simquery::engine::knn;
use simquery::prelude::*;

fn main() {
    let n = 128;
    let corpus = Corpus::generate(CorpusKind::StockCloses, 800, n, 11);
    let index = SeqIndex::build(&corpus, IndexConfig::default()).expect("non-empty corpus");

    // Distance: min over smoothing windows 2..=20 of D(mv(x̂), mv(q̂)).
    let family = Family::moving_averages(2..=20, n);
    let query = corpus.series()[123].clone();

    index.reset_counters().expect("reset counters");
    let (neighbors, metrics) = knn::knn(&index, &query, &family, 8).expect("valid query");

    println!(
        "8 nearest stocks to {} (best smoothing window each):",
        corpus.names()[123]
    );
    for m in &neighbors {
        println!(
            "  {}  D = {:8.4}  via {}",
            corpus.names()[m.seq],
            m.dist,
            family.transforms()[m.transform].label()
        );
    }
    println!(
        "\nonly {} of {} sequences were fetched and scored exactly ({} comparisons); {}",
        metrics.candidates,
        corpus.len(),
        metrics.comparisons,
        metrics
    );
    assert_eq!(
        neighbors[0].seq, 123,
        "a sequence's nearest neighbour is itself"
    );
}
