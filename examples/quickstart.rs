//! Quickstart: index a corpus, run Query 1 with all three algorithms,
//! compare their answers and costs.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use simquery::engine::{mtindex, seqscan, stindex};
use simquery::prelude::*;

fn main() {
    // 1. Data: 2000 synthetic random walks of length 128, exactly the
    //    paper's synthetic workload (x_t = x_{t−1} + U[−500, 500]).
    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 2000, 128, 7);

    // 2. Index: normal form → DFT → 6-d feature point in an R*-tree,
    //    full records in a paged relation.
    let index = SeqIndex::build(&corpus, IndexConfig::default()).expect("non-empty corpus");
    println!(
        "indexed {} sequences of length {} (R*-tree height {})",
        index.len(),
        index.seq_len(),
        index.height()
    );

    // 3. Query 1: "find every sequence s and moving average m ∈ 10..=25
    //    with D(mv_m(s), mv_m(q)) < ε", ε from correlation 0.96 via Eq. 9.
    let family = Family::moving_averages(10..=25, 128);
    let spec = RangeSpec::correlation(0.96);
    let query = corpus.series()[42].clone();

    for (name, run) in [
        (
            "sequential-scan",
            seqscan::range_query as fn(_, _, _, _) -> _,
        ),
        ("ST-index", stindex::range_query),
        ("MT-index", mtindex::range_query),
    ] {
        index.reset_counters().expect("reset counters"); // measure the query cold, like the paper
        let result = run(&index, &query, &family, &spec).expect("valid query");
        println!(
            "{name:16} {:3} matches over {:2} sequences | {}",
            result.matches.len(),
            result.matched_sequences().len(),
            result.metrics
        );
    }

    // 4. The matches themselves (from MT-index).
    let result = mtindex::range_query(&index, &query, &family, &spec).expect("valid query");
    let mut best: Vec<_> = result.matches.clone();
    best.sort_by(|a, b| a.dist.total_cmp(&b.dist));
    println!("\nclosest (sequence, transformation) pairs:");
    for m in best.iter().take(8) {
        println!(
            "  seq {:4} under {:6}  D = {:.3}",
            m.seq,
            family.transforms()[m.transform].label(),
            m.dist
        );
    }
}
