//! Query 2 as a portfolio tool: find pairs of stocks that move together
//! (candidates for pairs trading) and pairs that move *oppositely* (hedges
//! — "approximately the opposite way, for hedging", §1) in one spatial
//! self-join, by adding the inversion to the transformation set.
//!
//! ```sh
//! cargo run --release --example hedging_join
//! ```

use simquery::engine::join;
use simquery::prelude::*;
use simquery::transform::Transform;
use tseries::{Market, MarketConfig};

fn main() {
    let n = 128;
    let cfg = MarketConfig {
        stocks: 250,
        days: n,
        sectors: 5,
        sector_weight: 0.85,
        spike_prob: 0.0,
        ..MarketConfig::default()
    };
    let market = Market::new(cfg, 4242);
    let corpus = Corpus::from_parts(market.names(), market.closes());
    let index = SeqIndex::build(&corpus, IndexConfig::default()).expect("non-empty corpus");

    // Smoothing windows 5..=12. Co-movement: D(mv(x), mv(y)) small.
    // Hedging needs ASYMMETRY — D(invert(mv(x)), mv(y)) small — so the
    // hedge query is a *paired-family* join: left = invert∘mv, right = mv.
    // (Inverting both sides would be an isometry and find nothing new.)
    let base = Family::moving_averages(5..=12, n);
    let inv = Transform::inversion(n);
    let inverted = Family::new(
        "inv∘mv",
        base.transforms().iter().map(|t| inv.compose(t)).collect(),
    );

    let spec = RangeSpec::correlation(0.95);
    index.reset_counters().expect("reset counters");
    let co = join::mt_join(&index, &base, &spec).expect("valid join");
    let hedge = join::mt_join_paired(&index, &inverted, &base, &spec).expect("valid join");

    let dedupe = |matches: &[simquery::report::JoinMatch]| {
        let mut pairs: Vec<(usize, usize, f64)> = Vec::new();
        for m in matches {
            let (a, b) = (m.seq_a.min(m.seq_b), m.seq_a.max(m.seq_b));
            match pairs.iter_mut().find(|(x, y, _)| *x == a && *y == b) {
                Some(entry) => entry.2 = entry.2.min(m.dist),
                None => pairs.push((a, b, m.dist)),
            }
        }
        pairs.sort_by(|x, y| x.2.total_cmp(&y.2));
        pairs
    };
    let together = dedupe(&co.matches);
    let hedges = dedupe(&hedge.matches);

    println!("co-movement join cost: {}", co.metrics);
    println!("hedge join cost:       {}", hedge.metrics);
    println!("\ntop co-moving pairs (pairs-trading candidates):");
    for (a, b, d) in together.iter().take(8) {
        println!(
            "  {} ~ {}   D = {d:.3}",
            corpus.names()[*a],
            corpus.names()[*b]
        );
    }
    println!("\ntop opposite-moving pairs (hedging candidates):");
    for (a, b, d) in hedges.iter().take(8) {
        println!(
            "  {} ⇄ {}   D = {d:.3}",
            corpus.names()[*a],
            corpus.names()[*b]
        );
    }
    println!(
        "\n{} co-moving pairs, {} hedge pairs among {} stocks",
        together.len(),
        hedges.len(),
        corpus.len()
    );
}
