//! The paper's third motivating domain (§1): "years when the temperature
//! patterns in two regions of the world were similar". Yearly temperature
//! curves from different regions match once phase (hemisphere season lag)
//! and scale (continental vs maritime amplitude) are transformed away —
//! circular shifts for the lag, the normal form for the amplitude.
//!
//! ```sh
//! cargo run --release --example weather_seasons
//! ```

use simquery::engine::mtindex;
use simquery::prelude::*;
use tseries::rng::SeededRng;

const DAYS: usize = 128; // ~weekly samples over 2.5 years, say; one "year" per row

fn main() {
    let mut rng = SeededRng::seed_from_u64(77);

    // 25 "stations": seasonal sine + station-specific amplitude, mean,
    // phase lag (hemisphere/longitude) and weather noise.
    let mut names = Vec::new();
    let mut series = Vec::new();
    let mut lags = Vec::new();
    for i in 0..25 {
        let amplitude = rng.random_range(4.0..18.0); // maritime … continental
        let mean = rng.random_range(-5.0..22.0);
        let lag: usize = if i % 2 == 0 {
            0
        } else {
            rng.random_range(1..=10)
        };
        let noise = rng.random_range(0.5..2.0);
        let values: Vec<f64> = (0..DAYS)
            .map(|t| {
                let phase =
                    2.0 * std::f64::consts::PI * ((t + DAYS - lag) % DAYS) as f64 / DAYS as f64;
                mean + amplitude * phase.sin() + rng.random_range(-noise..noise)
            })
            .collect();
        names.push(format!("station{i:02} (lag {lag})"));
        series.push(TimeSeries::new(values));
        lags.push(lag);
    }
    let corpus = Corpus::from_parts(names.clone(), series);
    let index = SeqIndex::build(&corpus, IndexConfig::default()).expect("non-empty corpus");

    // Query: a station with a *late* season (find one with lag ≥ 6).
    // Which stations share its pattern, allowing any seasonal lag up to 12
    // samples? DataOnly mode: the shift applies to the candidate's side,
    // delaying it onto the query — so a lag-0 station should be recovered
    // at shift = (query's lag − 0).
    let query_station = lags
        .iter()
        .position(|l| *l >= 6)
        .expect("some lagged station");
    let query_lag = lags[query_station];
    let family = Family::circular_shifts(0..=12, DAYS);
    let spec = RangeSpec::correlation(0.9)
        .with_policy(FilterPolicy::Adaptive)
        .with_mode(QueryMode::DataOnly);
    index.reset_counters().expect("reset counters");
    let result = mtindex::range_query(&index, &corpus.series()[query_station], &family, &spec)
        .expect("valid query");

    println!(
        "stations whose seasonal pattern matches {} under some lag:",
        names[query_station]
    );
    let mut best: Vec<(usize, usize, f64)> = Vec::new();
    for m in &result.matches {
        match best.iter_mut().find(|(s, _, _)| *s == m.seq) {
            Some(b) if m.dist < b.2 => {
                b.1 = m.transform;
                b.2 = m.dist;
            }
            Some(_) => {}
            None => best.push((m.seq, m.transform, m.dist)),
        }
    }
    best.sort_by(|a, b| a.2.total_cmp(&b.2));
    let mut recovered = 0;
    for (seq, shift, dist) in &best {
        // Shifting the candidate right by s delays its season by s; it
        // aligns with the query when planted_lag + s = query_lag.
        let planted = lags[*seq];
        let expect = query_lag.saturating_sub(planted);
        let ok = shift.abs_diff(expect) <= 1; // ±1 sample tolerance (noise)
        if ok {
            recovered += 1;
        }
        println!(
            "  {:22} via shift{shift:2}  D = {dist:6.3}  (planted lag {planted}, expect shift {expect}{})",
            names[*seq],
            if ok { ", recovered ✓" } else { "" }
        );
    }
    println!(
        "\n{} of {} matched stations had their lag recovered exactly; cost: {}",
        recovered,
        best.len(),
        result.metrics
    );
    assert!(
        best.len() >= 5,
        "seasonal stations should match across lags"
    );
}
