//! The Example 1.2 scenario: two stocks whose *momenta* (day-over-day
//! changes) carry the same news spike a couple of days apart. Raw momenta
//! are far apart; composing a time shift with the momentum transformation
//! (Eq. 10) aligns the spikes and collapses the distance.
//!
//! ```sh
//! cargo run --release --example momentum_shift
//! ```

use simquery::engine::mtindex;
use simquery::feature::SeqFeatures;
use simquery::prelude::*;
use simquery::query::QueryMode;
use simquery::transform::Transform;
use tseries::{euclidean, momentum, shift_right, spiky_pair};

fn main() {
    let n = 128;
    // PCG-like and PCL-like series: same shape, spikes two days apart.
    let (pcg, pcl) = spiky_pair(n, 60, 2);

    // --- Time-domain story, exactly as the paper tells it ---------------
    let m_pcg = momentum(&pcg, 1);
    let m_pcl = momentum(&pcl, 1);
    println!(
        "D(momentum(PCG), momentum(PCL))            = {:7.3}",
        euclidean(&m_pcg, &m_pcl)
    );
    let shifted = shift_right(&m_pcg, 2);
    println!(
        "after shifting PCG's momentum 2 days right = {:7.3}",
        euclidean(&shifted, &m_pcl)
    );

    // --- The same story as composed transformations (Eq. 10) ------------
    // NOTE the asymmetry: the shift applies to PCG's side only (shifting
    // BOTH sides is a rotation of both spectra — an isometry that changes
    // nothing). `distance_data_only` is exactly that one-sided comparison.
    let fx = SeqFeatures::extract(&pcg).expect("non-degenerate");
    let fy = SeqFeatures::extract(&pcl).expect("non-degenerate");
    let mom = Transform::momentum(1, n);
    // The comparison target: the momentum of PCL's normal form, as a
    // prepared query spectrum (index point recomputed to match).
    let fy_mom = SeqFeatures::from_spectrum(mom.apply_spectrum(&fy.spectrum), fy.mean, fy.std);
    println!("\nfrequency domain, on normal forms (shift on PCG's side only):");
    for s in 0..=4 {
        let composed = Transform::circular_shift(s, n).compose(&mom);
        let d = composed.distance_data_only(&fx, &fy_mom);
        println!("D({:14}(x̂), mom(ŷ)) = {d:7.3}", composed.label());
    }

    // --- Query: which corpus sequences match PCG under some shifted
    //     momentum? (the composed family of §3.3) ------------------------
    let mut series = vec![pcg.clone(), pcl.clone()];
    let mut names = vec!["PCG".to_string(), "PCL".to_string()];
    let market = tseries::Market::new(
        tseries::MarketConfig {
            stocks: 200,
            days: n,
            ..Default::default()
        },
        99,
    );
    names.extend(market.names());
    series.extend(market.closes());
    let corpus = Corpus::from_parts(names, series);

    let index = SeqIndex::build(&corpus, IndexConfig::default()).expect("non-empty corpus");
    // "an s-day shift followed by the momentum", s = 0..=10 — one composed
    // family processed by a single MT-index scan (§3.3's promise).
    let shifts = Family::circular_shifts(0..=10, n);
    let momenta = Family::momenta(1..=1, n);
    let family = shifts.compose(&momenta);
    println!(
        "\ncomposed family `{}` has {} members",
        family.name(),
        family.len()
    );

    // DataOnly mode with a prepared target: each candidate x is tested as
    // D(shift_s(mom(x̂)), mom(p̂cl)) — alignment semantics.
    let spec = RangeSpec::euclidean(6.0).with_mode(QueryMode::DataOnly);
    let mbrs = vec![simquery::tmbr::TransformMbr::of_family(&family)];
    index.reset_counters().expect("reset counters");
    let (result, _) = mtindex::range_query_features(&index, &fy_mom, &family, &spec, &mbrs, None)
        .expect("valid query");
    println!(
        "sequences whose shifted momentum matches PCL's momentum: {:?}",
        result
            .matched_sequences()
            .iter()
            .map(|&s| corpus.names()[s].as_str())
            .collect::<Vec<_>>()
    );
    for m in &result.matches {
        if m.seq <= 1 {
            println!(
                "  {} matches under {} (D = {:.3})",
                corpus.names()[m.seq],
                family.transforms()[m.transform].label(),
                m.dist
            );
        }
    }
    println!("cost: {}", result.metrics);
}
