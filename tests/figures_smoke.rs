//! Small-scale versions of every figure's experiment (full-scale
//! regeneration lives in the bench crate), checked two ways:
//!
//! 1. *Shape* assertions — the qualitative claims the paper makes
//!    (MT below ST below scan, MT flat in |T|, …) stay true.
//! 2. *Golden* assertions — each experiment renders a deterministic
//!    summary that must match the committed file under `tests/golden/`.
//!    Every seed, corpus and engine in these tests is deterministic, so
//!    any drift in the numbers is a behaviour change, not noise.
//!
//! To bless new numbers after an intentional change:
//!
//! ```text
//! SIMSEQ_REGEN_GOLDEN=1 cargo test --test figures_smoke
//! git diff tests/golden/   # review what moved, then commit
//! ```

use simquery::cost::CostModel;
use simquery::engine::{join, mtindex, seqscan, stindex};
use simquery::partition::PartitionStrategy;
use simquery::prelude::*;
use simquery::tmbr::TransformMbr;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/core (the tests are registered there);
    // the golden files live beside the tests at the repo root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(format!("{name}.txt"))
}

/// Compares `actual` against the committed golden summary, or rewrites the
/// file when `SIMSEQ_REGEN_GOLDEN` is set.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("SIMSEQ_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {path:?} ({e}); run with SIMSEQ_REGEN_GOLDEN=1 to create it")
    });
    assert_eq!(
        actual, want,
        "{name}: summary diverged from the committed golden file; if the \
         change is intentional, regenerate with SIMSEQ_REGEN_GOLDEN=1 and \
         commit the diff"
    );
}

/// Fig. 5's claim at one corpus size: MT beats ST beats scan on work done.
#[test]
fn fig5_shape_mt_below_st_below_scan() {
    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 1000, 128, 1);
    let index = SeqIndex::build(&corpus, IndexConfig::default()).unwrap();
    let family = Family::moving_averages(10..=25, 128);
    let spec = RangeSpec::correlation(0.96);
    let q = &corpus.series()[500];

    let scan = seqscan::range_query(&index, q, &family, &spec).unwrap();
    let st = stindex::range_query(&index, q, &family, &spec).unwrap();
    let mt = mtindex::range_query(&index, q, &family, &spec).unwrap();

    // Comparisons: scan does |S|·|T|; the index engines do fewer (in the
    // paper's Fig. 5 ST is only modestly below scan; MT is far below).
    assert_eq!(scan.metrics.comparisons, 1000 * 16);
    assert!(st.metrics.comparisons < scan.metrics.comparisons);
    assert!(mt.metrics.comparisons < scan.metrics.comparisons);
    // Node accesses: MT traverses once, ST sixteen times.
    assert!(mt.metrics.node_accesses < st.metrics.node_accesses / 4);

    assert_golden(
        "fig5",
        &format!(
            "fig5 synthetic_walks n=1000 len=128 ma=10..25 rho=0.96\n\
             scan comparisons={} matches={}\n\
             st   comparisons={} node_accesses={} matches={}\n\
             mt   comparisons={} node_accesses={} matches={}\n",
            scan.metrics.comparisons,
            scan.matches.len(),
            st.metrics.comparisons,
            st.metrics.node_accesses,
            st.matches.len(),
            mt.metrics.comparisons,
            mt.metrics.node_accesses,
            mt.matches.len(),
        ),
    );
}

/// Fig. 6's claim: as |T| grows, MT's node accesses stay nearly flat while
/// ST's grow linearly.
#[test]
fn fig6_shape_mt_flat_in_family_size() {
    let corpus = Corpus::generate(CorpusKind::StockCloses, 300, 128, 2);
    let index = SeqIndex::build(&corpus, IndexConfig::default()).unwrap();
    let spec = RangeSpec::correlation(0.96);
    let q = &corpus.series()[100];

    let small = Family::moving_averages(5..=9, 128); // 5 transforms
    let large = Family::moving_averages(5..=34, 128); // 30 transforms

    let st_small = stindex::range_query(&index, q, &small, &spec).unwrap();
    let st_large = stindex::range_query(&index, q, &large, &spec).unwrap();
    let mt_small = mtindex::range_query(&index, q, &small, &spec).unwrap();
    let mt_large = mtindex::range_query(&index, q, &large, &spec).unwrap();

    // ST grows ~6×; MT grows far slower than |T|.
    assert!(st_large.metrics.node_accesses >= 4 * st_small.metrics.node_accesses);
    assert!(mt_large.metrics.node_accesses <= 3 * mt_small.metrics.node_accesses);
    assert!(mt_large.metrics.node_accesses < st_large.metrics.node_accesses / 3);

    assert_golden(
        "fig6",
        &format!(
            "fig6 stock_closes n=300 len=128 rho=0.96\n\
             st |T|=5  node_accesses={}\n\
             st |T|=30 node_accesses={}\n\
             mt |T|=5  node_accesses={}\n\
             mt |T|=30 node_accesses={}\n",
            st_small.metrics.node_accesses,
            st_large.metrics.node_accesses,
            mt_small.metrics.node_accesses,
            mt_large.metrics.node_accesses,
        ),
    );
}

/// Fig. 7's claim on the join: MT under ST under scan (comparisons), with
/// MT's advantage shrinking as |T| grows.
#[test]
fn fig7_shape_join_ordering() {
    let corpus = Corpus::generate(CorpusKind::StockCloses, 120, 128, 3);
    let index = SeqIndex::build(&corpus, IndexConfig::default()).unwrap();
    let family = Family::moving_averages(5..=16, 128);
    let spec = RangeSpec::correlation(0.96);

    let scan = join::scan_join(&index, &family, &spec).unwrap();
    let st = join::st_join(&index, &family, &spec).unwrap();
    let mt = join::mt_join(&index, &family, &spec).unwrap();

    assert!(st.metrics.comparisons < scan.metrics.comparisons);
    assert!(mt.metrics.node_accesses < st.metrics.node_accesses);
    // All agree on the answer (they must — same predicate).
    assert_eq!(st.sorted_triples(), mt.sorted_triples());

    assert_golden(
        "fig7",
        &format!(
            "fig7 stock_closes n=120 len=128 ma=5..16 rho=0.96\n\
             scan comparisons={} pairs={}\n\
             st   comparisons={} node_accesses={} pairs={}\n\
             mt   comparisons={} node_accesses={} pairs={}\n",
            scan.metrics.comparisons,
            scan.matches.len(),
            st.metrics.comparisons,
            st.metrics.node_accesses,
            st.matches.len(),
            mt.metrics.comparisons,
            mt.metrics.node_accesses,
            mt.matches.len(),
        ),
    );
}

/// Fig. 8's claims: disk accesses grow with the number of rectangles,
/// while one-rectangle is not necessarily the best *cost*; the Eq. 20 cost
/// function evaluated from measured counters is minimised away from the
/// extremes for some workload.
#[test]
fn fig8_shape_accesses_monotone_cost_u_shaped() {
    let corpus = Corpus::generate(CorpusKind::StockCloses, 400, 128, 4);
    let index = SeqIndex::build(&corpus, IndexConfig::default()).unwrap();
    let family = Family::moving_averages(6..=29, 128); // 24 transforms
    let spec = RangeSpec::correlation(0.96);
    let q = &corpus.series()[200];
    let model = CostModel::default();

    let mut accesses = Vec::new();
    let mut costs = Vec::new();
    let mut summary = String::from("fig8 stock_closes n=400 len=128 ma=6..29 rho=0.96\n");
    for per_mbr in [24usize, 12, 8, 6, 4, 2, 1] {
        let (res, trav) = mtindex::range_query_partitioned(
            &index,
            q,
            &family,
            &spec,
            &PartitionStrategy::EqualWidth { per_mbr },
        )
        .unwrap();
        let cost = model.cost(&trav, index.leaf_capacity());
        summary.push_str(&format!(
            "per_mbr={per_mbr:<2} node_accesses={} cost={cost:.4}\n",
            res.metrics.node_accesses
        ));
        accesses.push(res.metrics.node_accesses);
        costs.push(cost);
    }
    // More rectangles (smaller per_mbr) ⇒ at least as many node accesses,
    // modulo small non-monotonic wiggles; compare the extremes.
    assert!(accesses.first().unwrap() < accesses.last().unwrap());
    // The cost function is not minimised at the all-in-one end for this
    // workload OR is at least finite and varies: assert it distinguishes
    // configurations.
    let min = costs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = costs.iter().cloned().fold(0.0, f64::max);
    assert!(min > 0.0 && max > min);

    assert_golden("fig8", &summary);
}

/// Fig. 9's claim: packing the two clusters (±MA) into one rectangle blows
/// up the covered region; cluster-aware partitioning keeps both rectangles
/// tight.
#[test]
fn fig9_shape_two_clusters_hurt_one_rectangle() {
    let family = Family::moving_averages(6..=29, 128).with_inverted();
    let one = TransformMbr::of_family(&family);
    let clustered = simquery::partition::partition(&family, &PartitionStrategy::KMeans { k: 2 });
    assert_eq!(clustered.len(), 2);
    let worst_cluster = clustered
        .iter()
        .map(TransformMbr::extent)
        .fold(0.0, f64::max);
    assert!(
        one.extent() > 1.5 * worst_cluster,
        "one-rectangle extent {} should dwarf clustered extent {worst_cluster}",
        one.extent()
    );

    // And on a real query the straddling rectangle retrieves more
    // candidates than the two tight ones. (Safe policy: the ±ε/√2 angle
    // heuristic of the Paper policy can lose matches precisely when tight
    // rectangles meet low-magnitude coefficients — this workload exhibits
    // it, which is why the heuristic is not this library's guaranteed
    // mode.)
    let corpus = Corpus::generate(CorpusKind::StockCloses, 300, 128, 5);
    let index = SeqIndex::build(&corpus, IndexConfig::default()).unwrap();
    let spec = RangeSpec::correlation(0.96).with_policy(simquery::query::FilterPolicy::Safe);
    let q = &corpus.series()[50];
    let (res_one, trav_one) =
        mtindex::range_query_partitioned(&index, q, &family, &spec, &PartitionStrategy::Single)
            .unwrap();
    let (res_two, trav_two) = mtindex::range_query_partitioned(
        &index,
        q,
        &family,
        &spec,
        &PartitionStrategy::KMeans { k: 2 },
    )
    .unwrap();
    // Each tight rectangle's candidate set is a subset of the straddling
    // rectangle's (tighter filter on both sides of the intersection test).
    let worst_tight = trav_two.iter().map(|t| t.candidates).max().unwrap();
    assert!(
        trav_one[0].candidates >= worst_tight,
        "straddling MBR must not filter better: {} vs {worst_tight}",
        trav_one[0].candidates
    );
    assert_eq!(res_one.sorted_pairs(), res_two.sorted_pairs());

    assert_golden(
        "fig9",
        &format!(
            "fig9 stock_closes n=300 len=128 ma=±6..29 rho=0.96 policy=safe\n\
             one_rect extent={:.6} candidates={} matches={}\n\
             kmeans2  worst_extent={:.6} worst_candidates={} matches={}\n",
            one.extent(),
            trav_one[0].candidates,
            res_one.matches.len(),
            worst_cluster,
            worst_tight,
            res_two.matches.len(),
        ),
    );
}

/// Fig. 3's numbers: the mv(1..40) family's mult/add decomposition at the
/// second DFT coefficient matches the figure's envelope.
#[test]
fn fig3_mbr_envelope() {
    let family = Family::moving_averages(1..=40, 128);
    let mbr = TransformMbr::of_family(&family);
    // Figure 3 shows |F₂| multipliers within ~[0.8, 1] and angles within
    // ~[−1, 0] for the second coefficient (our dims 2 and 3).
    assert!(mbr.mult_lo[2] > 0.5 && mbr.mult_hi[2] <= 1.0 + 1e-12);
    assert!(mbr.add_lo[3] > -1.2 && mbr.add_hi[3] <= 1e-12);

    assert_golden(
        "fig3",
        &format!(
            "fig3 mv(1..40) len=128 second coefficient envelope\n\
             mult dim2 lo={:.6} hi={:.6}\n\
             add  dim3 lo={:.6} hi={:.6}\n",
            mbr.mult_lo[2], mbr.mult_hi[2], mbr.add_lo[3], mbr.add_hi[3],
        ),
    );
}
