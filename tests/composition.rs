//! §3.3 end-to-end: queries over *sequences* of transformations rewrite to
//! queries over composed sets (Eq. 10–11) and run through the same MT
//! machinery, with identical answers to the two-step evaluation.

use simquery::engine::{mtindex, seqscan};
use simquery::feature::SeqFeatures;
use simquery::prelude::*;
use simquery::query::FilterPolicy;
use simquery::transform::Transform;

#[test]
fn composed_family_size_is_the_product() {
    // "s-day shift for s = 0..10 followed by m-day moving average for
    //  m = 1..40" — the paper's own example of Eq. 11.
    let shifts = Family::circular_shifts(0..=10, 128);
    let mas = Family::moving_averages(1..=40, 128);
    let composed = mas.compose(&shifts);
    assert_eq!(composed.len(), 11 * 40);
}

#[test]
fn composed_query_equals_two_step_evaluation() {
    let n = 128;
    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 120, n, 77);
    let index = SeqIndex::build(&corpus, IndexConfig::default()).unwrap();
    let q = &corpus.series()[3];

    let shifts = Family::circular_shifts(0..=3, n);
    let mas = Family::moving_averages(8..=12, n);
    let composed = mas.compose(&shifts);
    let spec = RangeSpec::correlation(0.96).with_policy(FilterPolicy::Safe);

    // One MT query over the composed 20-member family…
    let got = mtindex::range_query(&index, q, &composed, &spec).unwrap();

    // …versus brute force: apply t₁ then t₂ explicitly per pair.
    let eps = spec.epsilon(n);
    let qf = SeqFeatures::extract(q).unwrap();
    let mut want: Vec<(usize, usize)> = Vec::new();
    for (seq, ts) in corpus.series().iter().enumerate() {
        let Some(xf) = SeqFeatures::extract(ts) else {
            continue;
        };
        let mut k = 0;
        for t2 in mas.transforms() {
            for t1 in shifts.transforms() {
                let tx = t2.apply_spectrum(&t1.apply_spectrum(&xf.spectrum));
                let tq = t2.apply_spectrum(&t1.apply_spectrum(&qf.spectrum));
                let d: f64 = tx
                    .iter()
                    .zip(&tq)
                    .map(|(a, b)| (*a - *b).norm_sqr())
                    .sum::<f64>()
                    .sqrt();
                if d < eps {
                    want.push((seq, k));
                }
                k += 1;
            }
        }
    }
    want.sort_unstable();
    assert_eq!(got.sorted_pairs(), want);
    assert!(!want.is_empty(), "expected at least the self-match");
}

#[test]
fn composition_is_associative_on_spectra() {
    let n = 64;
    let a = Transform::moving_average(5, n);
    let b = Transform::circular_shift(2, n);
    let c = Transform::scaling(2.0, n);
    let left = a.compose(&b).compose(&c); // (a∘b)∘c
    let right = a.compose(&b.compose(&c)); // a∘(b∘c)
    let ts: TimeSeries = (0..n)
        .map(|t| (t as f64 * 0.4).sin() * 2.0 + 0.1 * t as f64)
        .collect();
    let f = SeqFeatures::extract(&ts).unwrap();
    let l = left.apply_spectrum(&f.spectrum);
    let r = right.apply_spectrum(&f.spectrum);
    for (x, y) in l.iter().zip(&r) {
        assert!((*x - *y).abs() < 1e-9);
    }
}

#[test]
fn identity_is_composition_neutral() {
    let n = 64;
    let id = Transform::identity(n);
    let t = Transform::moving_average(7, n);
    let ts: TimeSeries = (0..n).map(|t| ((t * t) % 23) as f64).collect();
    let f = SeqFeatures::extract(&ts).unwrap();
    for composed in [t.compose(&id), id.compose(&t)] {
        let a = composed.apply_spectrum(&f.spectrum);
        let b = t.apply_spectrum(&f.spectrum);
        for (x, y) in a.iter().zip(&b) {
            assert!((*x - *y).abs() < 1e-9);
        }
    }
}

#[test]
fn rewriting_beats_running_the_steps_separately() {
    // The practical payoff of §3.3: a composed family needs ONE index
    // traversal under MT, while evaluating the outer family per inner
    // member costs |T₁| traversals.
    let n = 128;
    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 400, n, 88);
    let index = SeqIndex::build(&corpus, IndexConfig::default()).unwrap();
    let q = &corpus.series()[0];
    let shifts = Family::circular_shifts(0..=5, n);
    let mas = Family::moving_averages(8..=15, n);
    let composed = mas.compose(&shifts);
    let spec = RangeSpec::correlation(0.96);

    index.reset_counters().unwrap();
    let one = mtindex::range_query(&index, q, &composed, &spec).unwrap();

    // Two-step: for each shift, an MT query over the MA family applied to
    // the shifted query — |T₁| index traversals.
    let mut two_step_nodes = 0;
    for _t1 in shifts.transforms() {
        let r = mtindex::range_query(&index, q, &mas, &spec).unwrap();
        two_step_nodes += r.metrics.node_accesses;
    }
    assert!(
        one.metrics.node_accesses < two_step_nodes,
        "composed: {} vs stepwise: {two_step_nodes}",
        one.metrics.node_accesses
    );

    // Cross-check the composed answer against a sequential scan.
    let safe = RangeSpec::correlation(0.96).with_policy(FilterPolicy::Safe);
    let scan = seqscan::range_query(&index, q, &composed, &safe).unwrap();
    let mt_safe = mtindex::range_query(&index, q, &composed, &safe).unwrap();
    assert_eq!(scan.sorted_pairs(), mt_safe.sorted_pairs());
}
