//! Randomized end-to-end stress: a live index under interleaved inserts,
//! deletes, persistence round-trips and queries, continuously checked
//! against a shadow corpus queried by brute force.

use simquery::engine::{mtindex, seqscan};
use simquery::feature::SeqFeatures;
use simquery::prelude::*;
use tseries::random_walk;
use tseries::rng::SeededRng;

const N: usize = 64;

/// Brute-force ground truth over the shadow corpus (live rows only).
fn brute(
    shadow: &[(usize, TimeSeries)],
    q: &TimeSeries,
    family: &Family,
    eps: f64,
) -> Vec<(usize, usize)> {
    let qf = SeqFeatures::extract(q).expect("query non-degenerate");
    let mut out = Vec::new();
    for (ordinal, ts) in shadow {
        let Some(xf) = SeqFeatures::extract(ts) else {
            continue;
        };
        for (ti, t) in family.transforms().iter().enumerate() {
            if t.transformed_distance(&xf, &qf) < eps {
                out.push((*ordinal, ti));
            }
        }
    }
    out.sort_unstable();
    out
}

#[test]
fn randomized_lifecycle_keeps_engines_truthful() {
    let mut rng = SeededRng::seed_from_u64(0xC0FFEE);
    let initial = Corpus::generate(CorpusKind::SyntheticWalks, 60, N, 99);
    let mut index = SeqIndex::build(&initial, IndexConfig::default()).expect("non-empty");
    // Shadow: (ordinal, series) for every LIVE row.
    let mut shadow: Vec<(usize, TimeSeries)> =
        initial.series().iter().cloned().enumerate().collect();

    let family = Family::moving_averages(2..=7, N);
    let spec = RangeSpec::correlation(0.92).with_policy(FilterPolicy::Safe);
    let eps = spec.epsilon(N);

    let persist_dir = std::env::temp_dir().join("simseq_stress_persist");
    let mut checked_queries = 0;

    for step in 0..120 {
        match rng.random_range(0..10) {
            // 40 %: insert a fresh series.
            0..=3 => {
                let ts = random_walk(&mut rng, N, 200.0);
                let ordinal = index.insert_series(&ts).expect("length matches");
                shadow.push((ordinal, ts));
            }
            // 20 %: delete a random live series.
            4..=5 => {
                if !shadow.is_empty() {
                    let pick = rng.random_range(0..shadow.len());
                    let (ordinal, _) = shadow.swap_remove(pick);
                    assert!(
                        index.delete_series(ordinal).unwrap(),
                        "step {step}: delete {ordinal}"
                    );
                }
            }
            // 10 %: persistence round-trip.
            6 => {
                std::fs::create_dir_all(&persist_dir).unwrap();
                index.save(&persist_dir).expect("save");
                // Release the directory's advisory LOCK before reopening
                // (a reassignment would evaluate `open` first and
                // self-conflict).
                drop(index);
                index = SeqIndex::open(&persist_dir, 64).expect("open");
                index.validate().unwrap();
            }
            // 30 %: query and cross-check all engines vs brute force.
            _ => {
                if shadow.is_empty() {
                    continue;
                }
                let q = shadow[rng.random_range(0..shadow.len())].1.clone();
                let mt = mtindex::range_query(&index, &q, &family, &spec).expect("mt");
                let scan = seqscan::range_query(&index, &q, &family, &spec).expect("scan");
                let want = brute(&shadow, &q, &family, eps);
                assert_eq!(mt.sorted_pairs(), want, "step {step}: MT diverged");
                assert_eq!(scan.sorted_pairs(), want, "step {step}: scan diverged");
                checked_queries += 1;
            }
        }
    }
    index.validate().unwrap();
    assert!(
        checked_queries >= 10,
        "workload should have exercised queries"
    );
    std::fs::remove_dir_all(&persist_dir).ok();
}
