//! Seeded chaos suite: deterministic fault schedules injected under every
//! query engine, asserting the graceful-degradation contract end to end.
//!
//! The invariant, checked for hundreds of generated schedules:
//!
//! > Under an armed fault plan, every query either returns **exactly** the
//! > fault-free result or a clean typed error (`QueryError::Io`) — never a
//! > wrong answer, never a panic. Once the plan is disarmed, the same
//! > queries return the fault-free result again.
//!
//! Everything is seeded: a failing seed is printed in the panic message
//! and replays bit-for-bit (`FaultPlan::generate(seed, ..)` plus the
//! workload RNG derive from it alone). Mutation storms additionally check
//! the R*-tree's structural invariants after faulted insert/delete
//! workloads, honouring the tree's poisoned flag for mid-operation
//! failures.
//!
//! Note on `disarm()` vs `heal()`: the harness only ever disarms. Healing
//! clears torn-page marks, which *unmasks the stale pre-tear contents as
//! valid data* — exactly the silent corruption the chaos invariant exists
//! to rule out. Recovery checks therefore run against a disarmed device
//! whose tears (if any) still surface as typed `Corrupt` errors.

use pagestore::{Disk, FaultPlan, FaultyDisk, PageDevice, PlanParams};
use simquery::engine::{join, knn, mtindex, seqscan, stindex};
use simquery::feature::SeqFeatures;
use simquery::prelude::*;
use simquery::report::QueryError;
use std::sync::Arc;
use tseries::random_walk;
use tseries::rng::SeededRng;

const SEQ_LEN: usize = 64;

/// An index built on fault-injecting devices, with the device handles the
/// harness needs to arm and disarm plans.
struct FaultedIndex {
    index: SeqIndex,
    tree: Arc<FaultyDisk>,
    heap: Arc<FaultyDisk>,
}

impl FaultedIndex {
    /// Builds fault-free (devices unarmed); `heap_pool_pages` is kept small
    /// so queries keep reaching the device instead of living in the cache.
    fn build(corpus: &Corpus, heap_pool_pages: usize) -> Self {
        let tree = Arc::new(FaultyDisk::new(Arc::new(Disk::new())));
        let heap = Arc::new(FaultyDisk::new(Arc::new(Disk::new())));
        let config = IndexConfig {
            heap_pool_pages,
            ..IndexConfig::default()
        };
        let index = SeqIndex::build_on(
            corpus,
            config,
            Arc::clone(&tree) as Arc<dyn PageDevice>,
            Arc::clone(&heap) as Arc<dyn PageDevice>,
        )
        .expect("unarmed faulty devices are healthy")
        .expect("corpus is non-empty");
        Self { index, tree, heap }
    }

    fn arm(&self, seed: u64, params: &PlanParams) {
        // Independent schedules per device, both derived from the seed.
        self.tree.arm(FaultPlan::generate(seed, params));
        self.heap
            .arm(FaultPlan::generate(seed ^ 0x9E37_79B9_7F4A_7C15, params));
    }

    fn disarm(&self) {
        self.tree.disarm();
        self.heap.disarm();
    }

    fn injected_total(&self) -> u64 {
        self.tree.injected_total() + self.heap.injected_total()
    }
}

/// kNN results as comparable tuples (`dist` bit-exact: the engine is
/// deterministic, so a successful faulted run must reproduce it).
fn knn_key(matches: &[Match]) -> Vec<(usize, usize, u64)> {
    matches
        .iter()
        .map(|m| (m.seq, m.transform, m.dist.to_bits()))
        .collect()
}

/// Asserts the chaos invariant on one range-query outcome.
fn check_range(
    seed: u64,
    what: &str,
    got: Result<QueryResult, QueryError>,
    want: &[(usize, usize)],
    oks: &mut u64,
    errs: &mut u64,
) {
    match got {
        Ok(r) => {
            assert_eq!(
                r.sorted_pairs(),
                want,
                "seed {seed}: {what} returned a WRONG ANSWER under faults"
            );
            *oks += 1;
        }
        Err(QueryError::Io(_)) => *errs += 1,
        Err(e) => panic!("seed {seed}: {what} returned a non-IO error under faults: {e}"),
    }
}

/// 300 generated schedules against every read path: the MT-index, the
/// ST-index, sequential and parallel scans, kNN, and the MT self-join.
#[test]
fn seeded_fault_schedules_never_corrupt_query_results() {
    const SEEDS: u64 = 300;

    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 96, SEQ_LEN, 0xFA17);
    // Four pool frames (one per scan worker plus slack, fewer than the
    // heap's pages): fetches keep reaching the device instead of the cache.
    let fi = FaultedIndex::build(&corpus, 4);
    let family = Family::moving_averages(3..=8, SEQ_LEN);
    let spec = RangeSpec::correlation(0.92).with_policy(FilterPolicy::Safe);
    let query_ords = [0usize, 17, 41];

    // Fault-free baselines, computed on the same (disarmed) index.
    let mut base_pairs = Vec::new();
    let mut base_knn = Vec::new();
    for &ord in &query_ords {
        let q = fi.index.fetch_series(ord).unwrap();
        base_pairs.push(
            mtindex::range_query(&fi.index, &q, &family, &spec)
                .unwrap()
                .sorted_pairs(),
        );
        let (nn, _) = knn::knn(&fi.index, &q, &family, 5).unwrap();
        base_knn.push(knn_key(&nn));
    }
    let base_join = join::mt_join(&fi.index, &family, &spec)
        .unwrap()
        .sorted_triples();

    let params = PlanParams {
        horizon: 400,
        max_page: 64,
        faults: 6,
    };
    let (mut oks, mut errs) = (0u64, 0u64);

    for seed in 0..SEEDS {
        fi.arm(seed, &params);

        for (qi, &ord) in query_ords.iter().enumerate() {
            // The query series itself comes off the (possibly faulty) heap.
            let q = match fi.index.fetch_series(ord) {
                Ok(q) => q,
                Err(_) => {
                    errs += 1;
                    continue;
                }
            };
            let want = &base_pairs[qi];
            check_range(
                seed,
                "mtindex",
                mtindex::range_query(&fi.index, &q, &family, &spec),
                want,
                &mut oks,
                &mut errs,
            );
            check_range(
                seed,
                "stindex",
                stindex::range_query(&fi.index, &q, &family, &spec),
                want,
                &mut oks,
                &mut errs,
            );
            check_range(
                seed,
                "seqscan",
                seqscan::range_query(&fi.index, &q, &family, &spec),
                want,
                &mut oks,
                &mut errs,
            );
            check_range(
                seed,
                "seqscan(parallel)",
                seqscan::range_query_parallel(&fi.index, &q, &family, &spec, 3),
                want,
                &mut oks,
                &mut errs,
            );
            match knn::knn(&fi.index, &q, &family, 5) {
                Ok((nn, _)) => {
                    assert_eq!(
                        knn_key(&nn),
                        base_knn[qi],
                        "seed {seed}: knn returned a WRONG ANSWER under faults"
                    );
                    oks += 1;
                }
                Err(QueryError::Io(_)) => errs += 1,
                Err(e) => panic!("seed {seed}: knn returned a non-IO error: {e}"),
            }
        }
        match join::mt_join(&fi.index, &family, &spec) {
            Ok(r) => {
                assert_eq!(
                    r.sorted_triples(),
                    base_join,
                    "seed {seed}: mt_join returned a WRONG ANSWER under faults"
                );
                oks += 1;
            }
            Err(QueryError::Io(_)) => errs += 1,
            Err(e) => panic!("seed {seed}: mt_join returned a non-IO error: {e}"),
        }

        // Recovery: with the plan disarmed the device is healthy again (the
        // read-only workload wrote nothing, so no pages can be torn) and
        // every engine must reproduce the baseline exactly.
        fi.disarm();
        assert!(
            fi.tree.torn_pages().is_empty() && fi.heap.torn_pages().is_empty(),
            "seed {seed}: a read-only workload tore pages"
        );
        for (qi, &ord) in query_ords.iter().enumerate() {
            let q = fi.index.fetch_series(ord).unwrap();
            let got = mtindex::range_query(&fi.index, &q, &family, &spec)
                .unwrap()
                .sorted_pairs();
            assert_eq!(got, base_pairs[qi], "seed {seed}: no recovery after disarm");
        }
    }

    // Guard against a vacuous pass: the schedules must actually have fired,
    // and both sides of the either/or must occur across the campaign.
    assert!(
        fi.injected_total() > 500,
        "only {} faults fired across {SEEDS} schedules",
        fi.injected_total()
    );
    assert!(errs > 50, "only {errs} queries failed — plans too gentle");
    assert!(oks > 500, "only {oks} queries succeeded — plans too harsh");
}

/// Transient faults within the buffer pool's retry budget are absorbed
/// completely: the query succeeds with the exact fault-free answer.
#[test]
fn transient_heap_faults_are_retried_to_success() {
    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 96, SEQ_LEN, 0xFA17);
    let fi = FaultedIndex::build(&corpus, 4);
    let family = Family::moving_averages(3..=8, SEQ_LEN);
    let spec = RangeSpec::correlation(0.92).with_policy(FilterPolicy::Safe);
    let q = fi.index.fetch_series(7).unwrap();
    let want = seqscan::range_query(&fi.index, &q, &family, &spec)
        .unwrap()
        .sorted_pairs();

    // Recover-after budgets (≤ 3) sit inside the pool's retry budget, so
    // the sequential scan — which reads every heap page — must succeed.
    let plan = FaultPlan::new()
        .transient_at(2, 3)
        .transient_at(9, 2)
        .transient_at(17, 1)
        .transient_at(31, 3);
    fi.heap.arm(plan);
    let got = seqscan::range_query(&fi.index, &q, &family, &spec)
        .expect("transient faults inside the retry budget must be invisible")
        .sorted_pairs();
    assert_eq!(got, want);
    assert!(
        fi.heap.injected().transient_errors > 0,
        "the plan never fired — the scan stayed in cache"
    );
    fi.heap.disarm();
}

/// Brute-force ground truth over the shadow corpus (live rows only), as in
/// `tests/stress.rs`.
fn brute(
    shadow: &[(usize, TimeSeries)],
    q: &TimeSeries,
    family: &Family,
    eps: f64,
) -> Vec<(usize, usize)> {
    let qf = SeqFeatures::extract(q).expect("query non-degenerate");
    let mut out = Vec::new();
    for (ordinal, ts) in shadow {
        let Some(xf) = SeqFeatures::extract(ts) else {
            continue;
        };
        for (ti, t) in family.transforms().iter().enumerate() {
            if t.transformed_distance(&xf, &qf) < eps {
                out.push((*ordinal, ti));
            }
        }
    }
    out.sort_unstable();
    out
}

/// 60 seeded insert/delete storms under fire. While no mutation has
/// failed, interleaved queries must still be exact-or-error against a
/// shadow corpus; once one fails the index may legitimately diverge from
/// the shadow, but it must never panic and the R*-tree must either stay
/// structurally valid or be flagged poisoned.
#[test]
fn mutation_storms_leave_tree_structurally_sound() {
    const SEEDS: u64 = 60;
    const OPS: usize = 40;

    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 24, SEQ_LEN, 0xBEEF);
    let family = Family::moving_averages(3..=8, SEQ_LEN);
    let spec = RangeSpec::correlation(0.92).with_policy(FilterPolicy::Safe);
    let eps = spec.epsilon(SEQ_LEN);

    let (mut clean_runs, mut tainted_runs) = (0u64, 0u64);

    for seed in 0..SEEDS {
        let mut fi = FaultedIndex::build(&corpus, 2);
        let mut shadow: Vec<(usize, TimeSeries)> =
            corpus.series().iter().cloned().enumerate().collect();
        let mut rng = SeededRng::seed_from_u64(seed.wrapping_mul(0x5851_F42D_4C95_7F2D));
        let params = PlanParams {
            horizon: 3000,
            max_page: 96,
            faults: 3,
        };
        fi.arm(seed, &params);

        // Once any mutation has failed the index may differ from the
        // shadow (the failed op is allowed to be partially applied), so
        // result equivalence stops being checkable — but nothing may
        // panic, and errors must stay typed.
        let mut tainted = false;

        for op in 0..OPS {
            match rng.random_range(0u32..10) {
                0..=4 => {
                    let ts = random_walk(&mut rng, SEQ_LEN, 200.0);
                    match fi.index.insert_series(&ts) {
                        Ok(ordinal) => shadow.push((ordinal, ts)),
                        Err(QueryError::Io(_)) => tainted = true,
                        Err(e) => panic!("seed {seed} op {op}: insert: non-IO error {e}"),
                    }
                }
                5..=7 => {
                    if shadow.is_empty() {
                        continue;
                    }
                    let pick = rng.random_range(0..shadow.len());
                    let ordinal = shadow[pick].0;
                    match fi.index.delete_series(ordinal) {
                        Ok(existed) => {
                            if !tainted {
                                assert!(existed, "seed {seed} op {op}: live row vanished");
                            }
                            shadow.swap_remove(pick);
                        }
                        Err(QueryError::Io(_)) => tainted = true,
                        Err(e) => panic!("seed {seed} op {op}: delete: non-IO error {e}"),
                    }
                }
                _ => {
                    if shadow.is_empty() {
                        continue;
                    }
                    let q = shadow[rng.random_range(0..shadow.len())].1.clone();
                    let got = mtindex::range_query(&fi.index, &q, &family, &spec);
                    match got {
                        Ok(r) if !tainted => {
                            let want = brute(&shadow, &q, &family, eps);
                            assert_eq!(
                                r.sorted_pairs(),
                                want,
                                "seed {seed} op {op}: WRONG ANSWER mid-storm"
                            );
                        }
                        Ok(_) => {}
                        Err(QueryError::Io(_)) => {}
                        Err(e) => panic!("seed {seed} op {op}: query: non-IO error {e}"),
                    }
                }
            }
        }

        fi.disarm();
        let torn = !fi.tree.torn_pages().is_empty() || !fi.heap.torn_pages().is_empty();
        if fi.index.tree_poisoned() {
            // A mid-operation failure may leave the tree transiently
            // inconsistent; the flag is the contract. Queries must still
            // answer or error cleanly — exercised above — and validation
            // is not required to hold.
            tainted_runs += 1;
        } else if !tainted && !torn {
            // Every op succeeded on an un-torn device: the tree must be
            // structurally perfect and both engines must agree with the
            // shadow corpus exactly.
            fi.index
                .validate()
                .unwrap_or_else(|e| panic!("seed {seed}: validate on healthy device: {e}"));
            let q = shadow[0].1.clone();
            let want = brute(&shadow, &q, &family, eps);
            let mt = mtindex::range_query(&fi.index, &q, &family, &spec).unwrap();
            let scan = seqscan::range_query(&fi.index, &q, &family, &spec).unwrap();
            assert_eq!(
                mt.sorted_pairs(),
                want,
                "seed {seed}: MT diverged post-storm"
            );
            assert_eq!(
                scan.sorted_pairs(),
                want,
                "seed {seed}: scan diverged post-storm"
            );
            clean_runs += 1;
        } else {
            // Device damage (torn pages) or a failed op without tree
            // poisoning: structural validation must still not panic — it
            // either passes or reports a typed device error.
            if let Err(e) = fi.index.validate() {
                let _ = e; // typed error is an acceptable outcome
            }
            tainted_runs += 1;
        }
    }

    assert!(
        clean_runs > 0,
        "no storm survived cleanly — fault plans too harsh to test equivalence"
    );
    assert!(
        tainted_runs > 0,
        "no storm ever faulted — fault plans too gentle to test degradation"
    );
}
