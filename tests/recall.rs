//! Cross-engine recall guarantees — the heart of the reproduction's
//! correctness story.
//!
//! Under `FilterPolicy::Safe`, Lemma 1 plus the symmetry bound make every
//! index filter lossless, so **all three algorithms must return identical
//! result sets** on any input. Under `FilterPolicy::Paper` (the original's
//! setup) the angle windows are heuristic; on the paper's workloads recall
//! must still be 100 %.

use simquery::engine::{join, mtindex, seqscan, stindex};
use simquery::partition::PartitionStrategy;
use simquery::prelude::*;
use simquery::query::FilterPolicy;

fn build(kind: CorpusKind, n: usize, seed: u64) -> (Corpus, SeqIndex) {
    let corpus = Corpus::generate(kind, n, 128, seed);
    let index = SeqIndex::build(&corpus, IndexConfig::default()).expect("non-empty");
    (corpus, index)
}

#[test]
fn safe_policy_equivalence_on_synthetic_walks() {
    let (corpus, index) = build(CorpusKind::SyntheticWalks, 300, 11);
    let family = Family::moving_averages(10..=25, 128);
    let spec = RangeSpec::correlation(0.96).with_policy(FilterPolicy::Safe);
    for qi in [0usize, 101, 299] {
        let q = &corpus.series()[qi];
        let scan = seqscan::range_query(&index, q, &family, &spec).unwrap();
        let st = stindex::range_query(&index, q, &family, &spec).unwrap();
        let mt = mtindex::range_query(&index, q, &family, &spec).unwrap();
        assert_eq!(scan.sorted_pairs(), st.sorted_pairs(), "ST, query {qi}");
        assert_eq!(scan.sorted_pairs(), mt.sorted_pairs(), "MT, query {qi}");
    }
}

#[test]
fn safe_policy_equivalence_on_stock_corpus_with_inverted_family() {
    let (corpus, index) = build(CorpusKind::StockCloses, 200, 13);
    // Two clusters (Fig. 9's family) stress the MBR machinery hardest.
    let family = Family::moving_averages(6..=17, 128).with_inverted();
    let spec = RangeSpec::correlation(0.96).with_policy(FilterPolicy::Safe);
    for qi in [3usize, 77] {
        let q = &corpus.series()[qi];
        let scan = seqscan::range_query(&index, q, &family, &spec).unwrap();
        let mt = mtindex::range_query(&index, q, &family, &spec).unwrap();
        assert_eq!(scan.sorted_pairs(), mt.sorted_pairs(), "query {qi}");
    }
}

#[test]
fn paper_policy_full_recall_on_paper_workloads() {
    // The original's ±ε/√2 angle windows: heuristic, but on the paper's
    // own workload shapes (random walks + MA families + ρ = 0.96) recall
    // stays complete. This guards the benchmarks' validity.
    let (corpus, index) = build(CorpusKind::SyntheticWalks, 400, 41);
    let family = Family::moving_averages(10..=25, 128);
    let safe = RangeSpec::correlation(0.96).with_policy(FilterPolicy::Safe);
    let paper = RangeSpec::correlation(0.96).with_policy(FilterPolicy::Paper);
    for qi in (0..400).step_by(37) {
        let q = &corpus.series()[qi];
        let want = mtindex::range_query(&index, q, &family, &safe).unwrap();
        let got = mtindex::range_query(&index, q, &family, &paper).unwrap();
        assert_eq!(
            want.sorted_pairs(),
            got.sorted_pairs(),
            "Paper policy lost matches on query {qi}"
        );
        let st = stindex::range_query(&index, q, &family, &paper).unwrap();
        assert_eq!(
            want.sorted_pairs(),
            st.sorted_pairs(),
            "ST/Paper, query {qi}"
        );
    }
}

#[test]
fn adaptive_policy_is_lossless_everywhere() {
    // The Adaptive policy's chord-bound angle filter must be exactly as
    // complete as Safe — including on the inverted-family workload that
    // provokes the Paper policy's false dismissals.
    let (corpus, index) = build(CorpusKind::StockCloses, 300, 5);
    let family = Family::moving_averages(6..=29, 128).with_inverted();
    let safe = RangeSpec::correlation(0.96).with_policy(FilterPolicy::Safe);
    let adaptive =
        RangeSpec::correlation(0.96).with_policy(simquery::query::FilterPolicy::Adaptive);
    for strategy in [
        PartitionStrategy::Single,
        PartitionStrategy::KMeans { k: 2 },
        PartitionStrategy::EqualWidth { per_mbr: 6 },
    ] {
        for qi in [50usize, 137] {
            let q = &corpus.series()[qi];
            let (want, _) =
                mtindex::range_query_partitioned(&index, q, &family, &safe, &strategy).unwrap();
            let (got, _) =
                mtindex::range_query_partitioned(&index, q, &family, &adaptive, &strategy).unwrap();
            assert_eq!(
                want.sorted_pairs(),
                got.sorted_pairs(),
                "Adaptive lost matches: {strategy:?}, query {qi}"
            );
            // And it never admits more candidates than Safe.
            assert!(got.metrics.candidates <= want.metrics.candidates);
        }
    }
}

/// Adaptive ≡ scan on random corpora/families/thresholds (8 seeded cases).
#[test]
fn adaptive_equals_scan_randomized() {
    let mut rng = tseries::rng::SeededRng::seed_from_u64(0x00AD_A971);
    for case in 0..8 {
        let seed = rng.random_range(0u64..1000);
        let n = rng.random_range(30usize..100);
        let lo = rng.random_range(1usize..16);
        let width = rng.random_range(0usize..12);
        let rho = rng.random_range(0.85f64..0.995);
        let inverted = rng.random_bool(0.5);
        let corpus = Corpus::generate(CorpusKind::SyntheticWalks, n, 64, seed);
        let index = SeqIndex::build(&corpus, IndexConfig::default()).expect("non-empty");
        let base = Family::moving_averages(lo..=(lo + width), 64);
        let family = if inverted { base.with_inverted() } else { base };
        let spec = RangeSpec::correlation(rho).with_policy(simquery::query::FilterPolicy::Adaptive);
        let q = &corpus.series()[seed as usize % n];
        let scan = seqscan::range_query(&index, q, &family, &spec).unwrap();
        let mt = mtindex::range_query(&index, q, &family, &spec).unwrap();
        assert_eq!(scan.sorted_pairs(), mt.sorted_pairs(), "case {case}");
    }
}

#[test]
fn every_partitioning_gives_the_same_answers() {
    let (corpus, index) = build(CorpusKind::StockCloses, 150, 19);
    let family = Family::moving_averages(6..=29, 128);
    let spec = RangeSpec::correlation(0.96).with_policy(FilterPolicy::Safe);
    let q = &corpus.series()[10];
    let baseline = seqscan::range_query(&index, q, &family, &spec).unwrap();
    for strategy in [
        PartitionStrategy::Single,
        PartitionStrategy::EqualWidth { per_mbr: 1 }, // degenerates to ST
        PartitionStrategy::EqualWidth { per_mbr: 6 },
        PartitionStrategy::EqualWidth { per_mbr: 8 },
        PartitionStrategy::KMeans { k: 3 },
        PartitionStrategy::Agglomerative { k: 4 },
    ] {
        let (got, _) =
            mtindex::range_query_partitioned(&index, q, &family, &spec, &strategy).unwrap();
        assert_eq!(baseline.sorted_pairs(), got.sorted_pairs(), "{strategy:?}");
    }
}

#[test]
fn join_engines_agree_and_match_query1_semantics() {
    let corpus = Corpus::generate(CorpusKind::StockCloses, 80, 128, 23);
    let index = SeqIndex::build(&corpus, IndexConfig::default()).unwrap();
    let family = Family::moving_averages(5..=14, 128);
    let spec = RangeSpec::correlation(0.92).with_policy(FilterPolicy::Safe);
    let scan = join::scan_join(&index, &family, &spec).unwrap();
    let st = join::st_join(&index, &family, &spec).unwrap();
    let mt = join::mt_join(&index, &family, &spec).unwrap();
    assert_eq!(scan.sorted_triples(), st.sorted_triples());
    assert_eq!(scan.sorted_triples(), mt.sorted_triples());

    // Join results must agree with pairwise range queries: pair (a, b)
    // joins under t iff b matches a's range query under t.
    let eps = spec.epsilon(128);
    let range_spec = RangeSpec::euclidean(eps).with_policy(FilterPolicy::Safe);
    for &(a, b, t) in scan.sorted_triples().iter().take(20) {
        let r = mtindex::range_query(&index, &corpus.series()[a], &family, &range_spec).unwrap();
        assert!(
            r.matches.iter().any(|m| m.seq == b && m.transform == t),
            "join pair ({a}, {b}, t{t}) missing from range query"
        );
    }
}

/// Random corpora, random thresholds, random MA windows: Safe-policy
/// MT-index ≡ sequential scan, always (8 seeded cases).
#[test]
fn mt_equals_scan_randomized() {
    let mut rng = tseries::rng::SeededRng::seed_from_u64(0x003C_4753);
    for case in 0..8 {
        let seed = rng.random_range(0u64..1000);
        let n = rng.random_range(30usize..120);
        let lo = rng.random_range(1usize..20);
        let width = rng.random_range(0usize..15);
        let rho = rng.random_range(0.85f64..0.995);
        let corpus = Corpus::generate(CorpusKind::SyntheticWalks, n, 64, seed);
        let index = SeqIndex::build(&corpus, IndexConfig::default()).expect("non-empty");
        let family = Family::moving_averages(lo..=(lo + width), 64);
        let spec = RangeSpec::correlation(rho).with_policy(FilterPolicy::Safe);
        let q = &corpus.series()[seed as usize % n];
        let scan = seqscan::range_query(&index, q, &family, &spec).unwrap();
        let mt = mtindex::range_query(&index, q, &family, &spec).unwrap();
        assert_eq!(scan.sorted_pairs(), mt.sorted_pairs(), "case {case}");
    }
}
