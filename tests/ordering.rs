//! §4.4 end-to-end: ordered families make every engine cheaper without
//! changing answers; the Appendix lemmas hold on the exact sequences from
//! the paper.

use simquery::engine::{mtindex, seqscan, stindex};
use simquery::ordering::{member_distances, OrderedFamily};
use simquery::prelude::*;
use simquery::query::FilterPolicy;
use tseries::{euclidean, moving_average_circular, moving_average_sliding};

fn setup() -> (Corpus, SeqIndex) {
    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 200, 128, 41);
    let index = SeqIndex::build(&corpus, IndexConfig::default()).unwrap();
    (corpus, index)
}

#[test]
fn ordered_engines_agree_with_general_engines() {
    let (corpus, index) = setup();
    let factors: Vec<f64> = (1..=100).map(|k| 1.0 + k as f64 * 0.05).collect();
    let ordered = OrderedFamily::scalings(&factors, 128);
    let spec = RangeSpec::euclidean(12.0).with_policy(FilterPolicy::Safe);
    let q = &corpus.series()[55];

    let scan = seqscan::range_query(&index, q, ordered.family(), &spec).unwrap();
    let scan_o = seqscan::range_query_ordered(&index, q, &ordered, &spec).unwrap();
    let st_o = stindex::range_query_ordered(&index, q, &ordered, &spec).unwrap();
    let mt_o = mtindex::range_query_ordered(&index, q, &ordered, &spec).unwrap();

    assert_eq!(scan.sorted_pairs(), scan_o.sorted_pairs());
    assert_eq!(scan.sorted_pairs(), st_o.sorted_pairs());
    assert_eq!(scan.sorted_pairs(), mt_o.sorted_pairs());

    // §4.4's accounting: |S|·log|T| for the scan.
    assert!(
        scan_o.metrics.comparisons <= (200.0 * (100f64).log2().ceil() + 200.0) as u64,
        "scan comparisons: {}",
        scan_o.metrics.comparisons
    );
    assert!(scan_o.metrics.comparisons * 5 < scan.metrics.comparisons);
    // Ordered ST needs one traversal instead of |T|.
    let st = stindex::range_query(&index, q, ordered.family(), &spec).unwrap();
    assert!(st_o.metrics.node_accesses * 20 <= st.metrics.node_accesses);
}

#[test]
fn lemma2_scale_family_is_ordered_on_corpus_pairs() {
    let (corpus, _) = setup();
    let factors: Vec<f64> = (1..=12).map(|k| k as f64).collect();
    let ordered = OrderedFamily::scalings(&factors, 128);
    let samples: Vec<_> = (0..10)
        .map(|i| {
            let a = simquery::feature::SeqFeatures::extract(&corpus.series()[i]).unwrap();
            let b = simquery::feature::SeqFeatures::extract(&corpus.series()[i + 50]).unwrap();
            (a, b)
        })
        .collect();
    assert_eq!(
        ordered.check_on(&samples),
        None,
        "Lemma 2 ordering violated"
    );
}

#[test]
fn lemma3_circular_moving_averages_not_ordered() {
    // The Appendix's exact counterexample sequences.
    let s1 = TimeSeries::new(vec![10.0, 12.0, 10.0, 12.0]);
    let s2 = TimeSeries::new(vec![10.0, 11.0, 12.0, 11.0]);
    let s3 = TimeSeries::new(vec![11.0, 11.0, 11.0, 11.0]);
    let d = |a: &TimeSeries, b: &TimeSeries, m: usize| {
        euclidean(
            &moving_average_circular(a, m),
            &moving_average_circular(b, m),
        )
    };
    // Case 1 (mv2 ⪯ mv3) fails on (s2, s3):
    assert!(d(&s2, &s3, 2) > d(&s2, &s3, 3));
    assert!((d(&s2, &s3, 2) - 1.0).abs() < 1e-12);
    // Case 2 (mv3 ⪯ mv2) fails on (s1, s3):
    assert!(d(&s1, &s3, 3) > d(&s1, &s3, 2));
    assert_eq!(d(&s1, &s3, 2), 0.0);
}

#[test]
fn lemma4_sliding_moving_averages_not_ordered() {
    let s1 = TimeSeries::new(vec![10.0, 12.0, 10.0, 12.0]);
    let s2 = TimeSeries::new(vec![10.0, 11.0, 12.0, 11.0]);
    let s3 = TimeSeries::new(vec![11.0, 11.0, 11.0, 11.0]);
    let d = |a: &TimeSeries, b: &TimeSeries, m: usize| {
        euclidean(&moving_average_sliding(a, m), &moving_average_sliding(b, m))
    };
    assert!(d(&s2, &s3, 2) > d(&s2, &s3, 3), "case 1 counterexample");
    assert!(d(&s1, &s3, 3) > d(&s1, &s3, 2), "case 2 counterexample");
}

#[test]
fn footnote2_mv_similarity_does_not_always_extend_to_longer_windows() {
    // §1's footnote: similarity w.r.t. the n-day MA does NOT in general
    // imply similarity w.r.t. the (n+1)-day MA — the Appendix
    // counterexample demonstrates it.
    let s1 = TimeSeries::new(vec![10.0, 12.0, 10.0, 12.0]);
    let s3 = TimeSeries::new(vec![11.0, 11.0, 11.0, 11.0]);
    let d2 = euclidean(
        &moving_average_circular(&s1, 2),
        &moving_average_circular(&s3, 2),
    );
    let d3 = euclidean(
        &moving_average_circular(&s1, 3),
        &moving_average_circular(&s3, 3),
    );
    let eps = 0.5;
    assert!(d2 < eps, "similar under mv2");
    assert!(d3 > eps, "no longer similar under mv3");
}

#[test]
fn member_distances_monotone_for_scalings_only() {
    let (corpus, _) = setup();
    let x = simquery::feature::SeqFeatures::extract(&corpus.series()[0]).unwrap();
    let q = simquery::feature::SeqFeatures::extract(&corpus.series()[9]).unwrap();
    let scalings = Family::scalings(&[1.0, 2.0, 4.0, 8.0], 128);
    let d = member_distances(&scalings, &x, &q);
    assert!(d.windows(2).all(|w| w[0] <= w[1] + 1e-9), "{d:?}");
}
