//! Seeded crash-point recovery suite: cut the write-ahead log at **every
//! byte offset**, recover, and assert the index is an **exact prefix** of
//! the acknowledged mutation schedule — never a wrong answer, never a
//! panic. Covers the single-index backend and 1/2/4/8-shard backends
//! (where a missing tail on one shard must also fence off later frames of
//! the *other* shards, by LSN), half-finished checkpoints, fault plans
//! armed while replay itself runs, and the advisory directory locks.

use pagestore::{Disk, FaultPlan, FaultyDisk, PageDevice, PlanParams};
use simquery::index::{DeviceWrap, IndexConfig, SeqIndex};
use simquery::prelude::*;
use simquery::report::QueryError;
use simquery::shared::{DurableError, SharedIndex};
use simshard::{gather, PartitionerKind, ShardConfig, ShardedIndex};
use simwal::{decode_frames, FsyncPolicy, HEADER_LEN, LOG_FILE, MANIFEST_FILE};
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use tseries::random_walk;
use tseries::rng::SeededRng;

const SEQ_LEN: usize = 16;
const POOL: usize = 32;

/// Channel for the faulted devices installed by a `DeviceWrap` hook.
type SmuggledDisks = Arc<Mutex<Option<(Arc<FaultyDisk>, Arc<FaultyDisk>)>>>;

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("simseq_recovery_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Recursive copy that skips advisory `LOCK` files — a copied lock would
/// name this very process as the live owner and block every reopen.
fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &to);
        } else if entry.file_name() != "LOCK" {
            std::fs::copy(entry.path(), &to).unwrap();
        }
    }
}

/// Round-robin keeps every shard non-empty on small corpora and spreads
/// the schedule's frames across all the logs.
fn rr_config(shards: usize) -> ShardConfig {
    ShardConfig {
        shards,
        partitioner: PartitionerKind::RoundRobin,
    }
    .validated()
    .unwrap()
}

/// One acknowledged mutation of the scripted schedule.
#[derive(Clone)]
enum Op {
    Insert(Vec<f64>),
    Delete(usize),
}

/// A seeded schedule that never deletes a dead ordinal, so every op logs
/// exactly one WAL frame: op `j` carries LSN `j + 1`.
fn schedule(seed: u64, initial: usize, n_ops: usize) -> Vec<Op> {
    let mut rng = SeededRng::seed_from_u64(seed);
    let mut live: Vec<usize> = (0..initial).collect();
    let mut next = initial;
    let mut ops = Vec::new();
    for _ in 0..n_ops {
        if rng.random_range(0u32..4) == 0 && live.len() > 1 {
            let pick = rng.random_range(0..live.len());
            ops.push(Op::Delete(live.swap_remove(pick)));
        } else {
            let ts = random_walk(&mut rng, SEQ_LEN, 100.0);
            ops.push(Op::Insert(ts.values().to_vec()));
            live.push(next);
            next += 1;
        }
    }
    ops
}

/// Ground truth after a prefix of the schedule: `(values, alive)` per
/// global ordinal.
fn shadow_after(corpus: &Corpus, ops: &[Op]) -> Vec<(Vec<f64>, bool)> {
    let mut state: Vec<(Vec<f64>, bool)> = corpus
        .series()
        .iter()
        .map(|ts| (ts.values().to_vec(), true))
        .collect();
    for op in ops {
        match op {
            Op::Insert(v) => state.push((v.clone(), true)),
            Op::Delete(g) => state[*g].1 = false,
        }
    }
    state
}

fn assert_single_state(index: &SeqIndex, want: &[(Vec<f64>, bool)], ctx: &str) {
    assert_eq!(index.len(), want.len(), "{ctx}: sequence count");
    let dead: HashSet<usize> = index.deleted_ordinals().into_iter().collect();
    for (g, (values, alive)) in want.iter().enumerate() {
        assert_eq!(!dead.contains(&g), *alive, "{ctx}: tombstone of {g}");
        if *alive {
            let got = index
                .fetch_series(g)
                .unwrap_or_else(|e| panic!("{ctx}: fetch {g}: {e}"));
            assert_eq!(got.values(), &values[..], "{ctx}: values of {g}");
        }
    }
}

fn assert_sharded_state(ix: &ShardedIndex, want: &[(Vec<f64>, bool)], ctx: &str) {
    assert_eq!(ix.len(), want.len(), "{ctx}: sequence count");
    let map = ix.map_snapshot();
    let mut dead = HashSet::new();
    for (s, shared) in ix.shards().iter().enumerate() {
        for l in shared.read().deleted_ordinals() {
            dead.insert(map.globals_of(s)[l]);
        }
    }
    for (g, (values, alive)) in want.iter().enumerate() {
        assert_eq!(!dead.contains(&g), *alive, "{ctx}: tombstone of {g}");
        if *alive {
            let got = ix
                .fetch_series(g)
                .unwrap_or_else(|e| panic!("{ctx}: fetch {g}: {e}"));
            assert_eq!(got.values(), &values[..], "{ctx}: values of {g}");
        }
    }
}

fn apply_single(shared: &SharedIndex, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Insert(v) => {
                shared.insert_series(&TimeSeries::new(v.clone())).unwrap();
            }
            Op::Delete(g) => assert!(shared.delete_series(*g).unwrap()),
        }
    }
}

fn apply_sharded(ix: &ShardedIndex, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Insert(v) => {
                ix.insert_series(&TimeSeries::new(v.clone())).unwrap();
            }
            Op::Delete(g) => assert!(ix.delete_series(*g).unwrap()),
        }
    }
}

/// Cuts the single index's log at every byte offset; the recovered index
/// must hold exactly the frames that survive intact below the cut.
#[test]
fn single_index_recovers_exact_prefix_at_every_cut() {
    let root = fresh_dir("single_cut");
    let idx = root.join("idx");
    let wal = root.join("wal");
    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 6, SEQ_LEN, 0xD0C);
    SeqIndex::build(&corpus, IndexConfig::default())
        .expect("non-empty corpus")
        .save(&idx)
        .unwrap();

    let ops = schedule(0xBEEF, 6, 10);
    {
        let (shared, rep) =
            SharedIndex::open_durable(&idx, &wal, POOL, FsyncPolicy::Never).expect("clean open");
        assert_eq!(rep.frames, 0);
        assert!(shared.is_durable());
        assert_eq!(shared.wal_epoch(), Some(1));
        apply_single(&shared, &ops);
        assert!(shared.sync_wal().unwrap());
    }
    let log = std::fs::read(wal.join(LOG_FILE)).unwrap();
    assert!(log.len() as u64 > HEADER_LEN, "schedule produced no frames");

    for cut in 0..=log.len() {
        let case = root.join(format!("cut{cut}"));
        copy_dir(&idx, &case.join("idx"));
        std::fs::create_dir_all(case.join("wal")).unwrap();
        std::fs::write(case.join("wal").join(LOG_FILE), &log[..cut]).unwrap();
        std::fs::copy(
            wal.join(MANIFEST_FILE),
            case.join("wal").join(MANIFEST_FILE),
        )
        .unwrap();

        // A cut inside the 16-byte header reads as a fresh, empty log.
        let expect = if cut <= HEADER_LEN as usize {
            0
        } else {
            decode_frames(&log[HEADER_LEN as usize..cut]).0.len()
        };
        let (shared, rep) = SharedIndex::open_durable(
            &case.join("idx"),
            &case.join("wal"),
            POOL,
            FsyncPolicy::Never,
        )
        .unwrap_or_else(|e| panic!("cut {cut}: recovery errored: {e}"));
        assert_eq!(rep.frames, expect, "cut {cut}: replayed frame count");
        assert_single_state(
            &shared.read(),
            &shadow_after(&corpus, &ops[..expect]),
            &format!("cut {cut}"),
        );
        drop(shared);
        std::fs::remove_dir_all(&case).unwrap();
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// For 1/2/4/8 shards: cut each shard's log at every byte offset. The
/// recovered index must be the longest schedule prefix whose LSNs all
/// survive — the cut shard's first missing frame fences off every later
/// frame on the other shards too, and the fenced-off frames are folded
/// away by the automatic post-recovery checkpoint.
#[test]
fn sharded_recovers_exact_prefix_at_every_cut() {
    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 12, SEQ_LEN, 0x5EED);
    let n_ops = 8usize;
    for shards in [1usize, 2, 4, 8] {
        let root = fresh_dir(&format!("shard{shards}_cut"));
        let idx = root.join("idx");
        let wal = root.join("wal");
        ShardedIndex::build(&corpus, rr_config(shards), IndexConfig::default())
            .expect("buildable corpus")
            .save(&idx)
            .unwrap();

        let ops = schedule(0xAB0 + shards as u64, 12, n_ops);
        {
            let (ix, rec) = ShardedIndex::open_durable(&idx, &wal, POOL, FsyncPolicy::Never)
                .expect("clean open");
            assert_eq!(rec.replayed, 0);
            apply_sharded(&ix, &ops);
            assert!(ix.sync_wal().unwrap());
        }

        // Full per-shard logs and their frame LSNs, for computing the
        // expected prefix under each cut.
        let logs: Vec<Vec<u8>> = (0..shards)
            .map(|s| std::fs::read(wal.join(format!("shard-{s}")).join(LOG_FILE)).unwrap())
            .collect();
        let lsns: Vec<Vec<u64>> = logs
            .iter()
            .map(|log| {
                decode_frames(&log[HEADER_LEN as usize..])
                    .0
                    .iter()
                    .map(|op| op.lsn())
                    .collect()
            })
            .collect();

        for cut_shard in 0..shards {
            let log = &logs[cut_shard];
            for cut in 0..=log.len() {
                let case = root.join(format!("s{cut_shard}c{cut}"));
                copy_dir(&idx, &case.join("idx"));
                copy_dir(&wal, &case.join("wal"));
                let cut_dir = case.join("wal").join(format!("shard-{cut_shard}"));
                std::fs::write(cut_dir.join(LOG_FILE), &log[..cut]).unwrap();

                // Frames surviving on the cut shard; its first missing
                // LSN bounds the recoverable prefix (op j has LSN j+1).
                let surviving = if cut <= HEADER_LEN as usize {
                    0
                } else {
                    decode_frames(&log[HEADER_LEN as usize..cut]).0.len()
                };
                let fence = lsns[cut_shard]
                    .get(surviving)
                    .copied()
                    .unwrap_or(n_ops as u64 + 1);
                let expect = (fence - 1) as usize;
                // Frames past the fence that still sit intact in some
                // log get dropped at the gap (the cut shard's lost tail
                // is gone from disk entirely, so it can't be "dropped").
                let lost = lsns[cut_shard].len() - surviving;
                let want_dropped = n_ops - lost - expect;

                let ctx = format!("{shards} shards, shard {cut_shard} cut {cut}");
                let (ix, rec) = ShardedIndex::open_durable(
                    &case.join("idx"),
                    &case.join("wal"),
                    POOL,
                    FsyncPolicy::Never,
                )
                .unwrap_or_else(|e| panic!("{ctx}: recovery errored: {e}"));
                assert_eq!(rec.replayed, expect, "{ctx}: replayed frame count");
                assert_eq!(rec.dropped, want_dropped, "{ctx}: dropped frame count");
                assert_sharded_state(&ix, &shadow_after(&corpus, &ops[..expect]), &ctx);
                drop(ix);

                // Frames were dropped → the open checkpointed; a second
                // open must see clean logs and the identical state at a
                // bumped epoch.
                if rec.dropped > 0 {
                    let (again, rec2) = ShardedIndex::open_durable(
                        &case.join("idx"),
                        &case.join("wal"),
                        POOL,
                        FsyncPolicy::Never,
                    )
                    .unwrap_or_else(|e| panic!("{ctx}: reopen errored: {e}"));
                    assert_eq!(rec2.replayed, 0, "{ctx}: reopen replays nothing");
                    assert!(rec2.epoch > rec.epoch, "{ctx}: checkpoint bumped the epoch");
                    assert_sharded_state(&again, &shadow_after(&corpus, &ops[..expect]), &ctx);
                }
                std::fs::remove_dir_all(&case).unwrap();
            }
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}

/// A crash after every shard snapshot was checkpointed but before the
/// manifest bump: an epoch-1 manifest and epoch-1 logs over epoch-2 shard
/// snapshots. Replay must be idempotent — skip frames the snapshots
/// already hold, re-extend the global map — and land on exactly the
/// pre-crash state.
#[test]
fn sharded_half_checkpoint_replays_idempotently() {
    let root = fresh_dir("half_ckpt");
    let idx = root.join("idx");
    let wal = root.join("wal");
    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 10, SEQ_LEN, 0xCAFE);
    ShardedIndex::build(&corpus, rr_config(4), IndexConfig::default())
        .unwrap()
        .save(&idx)
        .unwrap();

    let ops = schedule(0x51AB, 10, 12);
    {
        let (ix, _) = ShardedIndex::open_durable(&idx, &wal, POOL, FsyncPolicy::Always).unwrap();
        apply_sharded(&ix, &ops);
    }
    // Pre-checkpoint image: epoch-1 manifest + full logs.
    let pre = root.join("pre");
    copy_dir(&idx, &pre.join("idx"));
    copy_dir(&wal, &pre.join("wal"));

    // Run the checkpoint for real, then compose the torn state: the
    // checkpointed (epoch 2) shard snapshots under the OLD (epoch 1)
    // manifest and logs.
    {
        let (ix, _) = ShardedIndex::open_durable(&idx, &wal, POOL, FsyncPolicy::Always).unwrap();
        assert_eq!(ix.checkpoint().unwrap(), Some(2));
    }
    let torn = root.join("torn");
    copy_dir(&idx, &torn.join("idx")); // epoch-2 shard snapshots
    copy_dir(&pre.join("wal"), &torn.join("wal")); // epoch-1 logs
    std::fs::copy(
        pre.join("idx").join("sharding.txt"),
        torn.join("idx").join("sharding.txt"),
    )
    .unwrap();

    let (ix, rec) = ShardedIndex::open_durable(
        &torn.join("idx"),
        &torn.join("wal"),
        POOL,
        FsyncPolicy::Always,
    )
    .expect("half-checkpoint state recovers");
    assert_eq!(rec.epoch, 1, "the manifest is the epoch authority");
    assert_eq!(rec.dropped, 0);
    assert_sharded_state(&ix, &shadow_after(&corpus, &ops), "half checkpoint");
    let _ = std::fs::remove_dir_all(&root);
}

/// Seeded fault plans armed on the page devices **while replay runs**:
/// every open either recovers (state exact wherever the device is
/// un-torn) or fails with a typed error — never a panic, never a wrong
/// answer.
#[test]
fn faulted_replay_is_typed_error_or_exact_result() {
    let root = fresh_dir("faulted_replay");
    let idx = root.join("idx");
    let wal = root.join("wal");
    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 8, SEQ_LEN, 0xFA11);
    SeqIndex::build(&corpus, IndexConfig::default())
        .unwrap()
        .save(&idx)
        .unwrap();
    let ops = schedule(0xF00D, 8, 12);
    {
        let (shared, _) = SharedIndex::open_durable(&idx, &wal, POOL, FsyncPolicy::Always).unwrap();
        apply_single(&shared, &ops);
    }
    let want = shadow_after(&corpus, &ops);
    let params = PlanParams {
        horizon: 150,
        max_page: 64,
        faults: 5,
    };

    let (mut oks, mut errs) = (0u64, 0u64);
    for seed in 0..60u64 {
        let case = root.join(format!("seed{seed}"));
        copy_dir(&idx, &case.join("idx"));
        copy_dir(&wal, &case.join("wal"));

        // Smuggle the device handles out of the one-shot wrap hook so a
        // successful open can be inspected with the plan disarmed.
        let handles: SmuggledDisks = Arc::new(Mutex::new(None));
        let sink = Arc::clone(&handles);
        let wrap: DeviceWrap = Box::new(move |tree, heap| {
            let tree = Arc::new(FaultyDisk::new(tree));
            let heap = Arc::new(FaultyDisk::new(heap));
            tree.arm(FaultPlan::generate(seed, &params));
            heap.arm(FaultPlan::generate(seed ^ 0x9E37_79B9_7F4A_7C15, &params));
            *sink.lock().unwrap() = Some((Arc::clone(&tree), Arc::clone(&heap)));
            (tree as Arc<dyn PageDevice>, heap as Arc<dyn PageDevice>)
        });

        match SharedIndex::open_durable_with(
            &case.join("idx"),
            &case.join("wal"),
            POOL,
            FsyncPolicy::Never,
            wrap,
        ) {
            Ok((shared, rep)) => {
                assert_eq!(rep.frames, ops.len(), "seed {seed}: full replay");
                let (tree, heap) = handles.lock().unwrap().take().expect("wrap hook ran");
                tree.disarm();
                heap.disarm();
                let torn = !tree.torn_pages().is_empty() || !heap.torn_pages().is_empty();
                if !torn {
                    // Every write landed intact: state must be exact.
                    assert_single_state(&shared.read(), &want, &format!("seed {seed}"));
                    oks += 1;
                } else {
                    // Torn pages surface as typed errors on read; pages
                    // that read back must still be exact.
                    let index = shared.read();
                    assert_eq!(index.len(), want.len(), "seed {seed}: sequence count");
                    for (g, (values, alive)) in want.iter().enumerate() {
                        if !alive {
                            continue;
                        }
                        if let Ok(got) = index.fetch_series(g) {
                            assert_eq!(
                                got.values(),
                                &values[..],
                                "seed {seed}: torn-device fetch of {g} returned a WRONG ANSWER"
                            );
                        }
                    }
                    oks += 1;
                }
            }
            Err(
                DurableError::Query(_)
                | DurableError::Wal(_)
                | DurableError::Io(_)
                | DurableError::Poisoned
                | DurableError::Fenced { .. }
                | DurableError::Gap { .. },
            ) => errs += 1,
        }
        std::fs::remove_dir_all(&case).unwrap();
    }
    assert!(
        oks > 0,
        "no fault schedule let replay finish ({errs} errors)"
    );
    assert!(errs > 0, "no fault schedule ever fired during replay");
    let _ = std::fs::remove_dir_all(&root);
}

/// The sharded variant: a fault plan armed on ONE shard's devices during
/// a durable open. No auto-checkpoint may run on a faulted open, so the
/// dropped frames stay in the logs and a later clean open still recovers
/// the full prefix.
#[test]
fn sharded_faulted_replay_keeps_logs_for_the_next_open() {
    let root = fresh_dir("sharded_faulted_replay");
    let idx = root.join("idx");
    let wal = root.join("wal");
    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 12, SEQ_LEN, 0x0DDB);
    ShardedIndex::build(&corpus, rr_config(4), IndexConfig::default())
        .unwrap()
        .save(&idx)
        .unwrap();
    let ops = schedule(0x7EA5, 12, 10);
    {
        let (ix, _) = ShardedIndex::open_durable(&idx, &wal, POOL, FsyncPolicy::Always).unwrap();
        apply_sharded(&ix, &ops);
    }
    let want = shadow_after(&corpus, &ops);
    let params = PlanParams {
        horizon: 150,
        max_page: 64,
        faults: 5,
    };

    let (mut oks, mut errs) = (0u64, 0u64);
    for seed in 0..40u64 {
        let case = root.join(format!("seed{seed}"));
        copy_dir(&idx, &case.join("idx"));
        copy_dir(&wal, &case.join("wal"));

        let torn_flag = Arc::new(Mutex::new(Vec::<Arc<FaultyDisk>>::new()));
        let sink = Arc::clone(&torn_flag);
        let result = ShardedIndex::open_durable_with(
            &case.join("idx"),
            &case.join("wal"),
            POOL,
            FsyncPolicy::Never,
            |shard| {
                if shard != 1 {
                    return None;
                }
                let sink = Arc::clone(&sink);
                Some(Box::new(move |tree: Arc<Disk>, heap: Arc<Disk>| {
                    let tree = Arc::new(FaultyDisk::new(tree));
                    let heap = Arc::new(FaultyDisk::new(heap));
                    tree.arm(FaultPlan::generate(seed, &params));
                    heap.arm(FaultPlan::generate(seed.rotate_left(17), &params));
                    sink.lock()
                        .unwrap()
                        .extend([Arc::clone(&tree), Arc::clone(&heap)]);
                    (tree as Arc<dyn PageDevice>, heap as Arc<dyn PageDevice>)
                }) as DeviceWrap)
            },
        );
        match result {
            Ok((ix, rec)) => {
                assert_eq!(rec.replayed, ops.len(), "seed {seed}: full replay");
                let devices = std::mem::take(&mut *torn_flag.lock().unwrap());
                for d in &devices {
                    d.disarm();
                }
                if devices.iter().all(|d| d.torn_pages().is_empty()) {
                    assert_sharded_state(&ix, &want, &format!("seed {seed}"));
                }
                oks += 1;
            }
            Err(_) => {
                errs += 1;
                // The faulted open must not have checkpointed: a clean
                // open right after still recovers the full schedule.
                let (ix, rec) = ShardedIndex::open_durable(
                    &case.join("idx"),
                    &case.join("wal"),
                    POOL,
                    FsyncPolicy::Never,
                )
                .unwrap_or_else(|e| panic!("seed {seed}: clean reopen errored: {e}"));
                assert_eq!(rec.replayed, ops.len(), "seed {seed}: logs were preserved");
                assert_sharded_state(&ix, &want, &format!("seed {seed} reopen"));
            }
        }
        std::fs::remove_dir_all(&case).unwrap();
    }
    assert!(
        oks > 0,
        "no fault schedule let replay finish ({errs} errors)"
    );
    assert!(errs > 0, "no fault schedule ever fired during replay");
    let _ = std::fs::remove_dir_all(&root);
}

/// Parity satellite for the PR-2 chaos contract: a *saved sharded index*
/// reopened with a fault plan armed on one shard answers every scatter-
/// gather query with the exact result or a typed IO error.
#[test]
fn sharded_reopen_under_faults_is_typed_or_exact() {
    let root = fresh_dir("sharded_faulted_open");
    let idx = root.join("idx");
    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 24, SEQ_LEN, 0xFEED);
    ShardedIndex::build(&corpus, rr_config(4), IndexConfig::default())
        .unwrap()
        .save(&idx)
        .unwrap();

    let family = Family::moving_averages(2..=6, SEQ_LEN);
    let spec = RangeSpec::correlation(0.9).with_policy(FilterPolicy::Safe);
    let q = corpus.series()[3].clone();
    let control = {
        let ix = ShardedIndex::open(&idx, POOL).unwrap();
        gather::range_query(&ix, gather::Engine::Mt, &q, &family, &spec)
            .unwrap()
            .sorted_pairs()
    };

    // A two-frame pool keeps the queries reaching the device instead of
    // living in the cache, and the short horizon keeps the generated
    // triggers inside the handful of accesses one gather performs.
    let params = PlanParams {
        horizon: 12,
        max_page: 64,
        faults: 4,
    };
    let (mut oks, mut errs) = (0u64, 0u64);
    for seed in 0..40u64 {
        let ix = ShardedIndex::open_with(&idx, 2, |shard| {
            (shard == 1).then(|| -> DeviceWrap {
                Box::new(move |tree, heap| {
                    let tree = Arc::new(FaultyDisk::new(tree));
                    let heap = Arc::new(FaultyDisk::new(heap));
                    tree.arm(FaultPlan::generate(seed, &params));
                    heap.arm(FaultPlan::generate(seed.rotate_left(17), &params));
                    (tree as Arc<dyn PageDevice>, heap as Arc<dyn PageDevice>)
                })
            })
        })
        .expect("the open itself runs on the plain disks");
        match gather::range_query(&ix, gather::Engine::Mt, &q, &family, &spec) {
            Ok(r) => {
                assert_eq!(
                    r.sorted_pairs(),
                    control,
                    "seed {seed}: faulted shard corrupted the gather"
                );
                oks += 1;
            }
            Err(QueryError::Io(_)) => errs += 1,
            Err(e) => panic!("seed {seed}: non-IO error from faulted gather: {e}"),
        }
    }
    assert!(
        oks > 0 && errs > 0,
        "fault plans too weak or too harsh: {oks} exact, {errs} errors"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// The advisory locks: a second open of a live directory fails with a
/// typed `WouldBlock` error instead of silently sharing state, and the
/// lock dies with its holder.
#[test]
fn live_directories_are_locked() {
    let root = fresh_dir("locks");
    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 6, SEQ_LEN, 0x10C);

    let single = root.join("single");
    SeqIndex::build(&corpus, IndexConfig::default())
        .unwrap()
        .save(&single)
        .unwrap();
    let held = SeqIndex::open(&single, POOL).unwrap();
    let err = match SeqIndex::open(&single, POOL) {
        Ok(_) => panic!("second open must fail"),
        Err(e) => e,
    };
    assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock, "{err}");
    // Read-only opens bypass the lock (and never take it themselves):
    // a verification oracle must coexist with the serving process.
    let ro = SeqIndex::open_read_only(&single, POOL).expect("read-only open while locked");
    assert_eq!(ro.len(), 6);
    drop(ro);
    drop(held);
    drop(SeqIndex::open(&single, POOL).expect("reopen after release"));

    let sharded = root.join("sharded");
    ShardedIndex::build(&corpus, rr_config(2), IndexConfig::default())
        .unwrap()
        .save(&sharded)
        .unwrap();
    let held = ShardedIndex::open(&sharded, POOL).unwrap();
    let err = match ShardedIndex::open(&sharded, POOL) {
        Ok(_) => panic!("second open must fail"),
        Err(e) => e,
    };
    assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock, "{err}");
    let ro = ShardedIndex::open_read_only(&sharded, POOL).expect("read-only open while locked");
    assert_eq!(ro.len(), 6);
    drop(ro);
    drop(held);
    drop(ShardedIndex::open(&sharded, POOL).expect("reopen after release"));
    let _ = std::fs::remove_dir_all(&root);
}
