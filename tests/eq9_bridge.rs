//! Eq. 9 end-to-end: a correlation-threshold query and the equivalent
//! Euclidean-threshold query return the same answers, and the reported
//! distances translate back to correlations above the threshold.

use simquery::engine::mtindex;
use simquery::prelude::*;
use simquery::query::FilterPolicy;
use tseries::{cross_correlation, distance_threshold_for_correlation, moving_average_circular};

#[test]
fn correlation_and_euclidean_specs_are_interchangeable() {
    let n = 128;
    let corpus = Corpus::generate(CorpusKind::StockCloses, 150, n, 3);
    let index = SeqIndex::build(&corpus, IndexConfig::default()).unwrap();
    let family = Family::moving_averages(5..=20, n);
    let q = &corpus.series()[31];

    let rho = 0.96;
    let eps = distance_threshold_for_correlation(n, rho);
    let by_rho = mtindex::range_query(
        &index,
        q,
        &family,
        &RangeSpec::correlation(rho).with_policy(FilterPolicy::Safe),
    )
    .unwrap();
    let by_eps = mtindex::range_query(
        &index,
        q,
        &family,
        &RangeSpec::euclidean(eps).with_policy(FilterPolicy::Safe),
    )
    .unwrap();
    assert_eq!(by_rho.sorted_pairs(), by_eps.sorted_pairs());
    assert!(!by_rho.matches.is_empty(), "self-match at least");
}

#[test]
fn reported_distances_translate_to_correlations() {
    // For *normal-form-preserving* checks, verify the bridge directly on
    // the matched, transformed sequences: recompute both quantities in the
    // time domain and confirm D² = 2(n−1−nρ) holds for the renormalized
    // pair (the transformed sequences have mean 0 but std ≠ 1, so apply
    // Eq. 9 after renormalizing — the scale-invariance of ρ).
    let n = 128usize;
    let corpus = Corpus::generate(CorpusKind::StockCloses, 100, n, 5);
    let index = SeqIndex::build(&corpus, IndexConfig::default()).unwrap();
    let family = Family::moving_averages(5..=10, n);
    let spec = RangeSpec::correlation(0.96).with_policy(FilterPolicy::Safe);
    let q = &corpus.series()[7];
    let result = mtindex::range_query(&index, q, &family, &spec).unwrap();

    let qn = q.normal_form().unwrap().series;
    let mut checked = 0;
    for m in result.matches.iter().take(25) {
        let x = corpus.series()[m.seq].normal_form().unwrap().series;
        let window = m.transform + 5; // family starts at mv5
        let tx = moving_average_circular(&x, window);
        let tq = moving_average_circular(&qn, window);
        // The engine's reported distance equals the time-domain distance.
        let d = tseries::euclidean(&tx, &tq);
        assert!(
            (d - m.dist).abs() < 1e-6,
            "distance mismatch: {d} vs {}",
            m.dist
        );
        // Re-normalize and verify Eq. 9 connects distance and correlation.
        let (rnx, rnq) = (
            tx.normal_form().unwrap().series,
            tq.normal_form().unwrap().series,
        );
        let d2 = tseries::euclidean_sq(&rnx, &rnq);
        let rho = cross_correlation(&rnx, &rnq).unwrap();
        let rhs = 2.0 * (n as f64 - 1.0 - n as f64 * rho);
        assert!(
            (d2 - rhs).abs() < 1e-6 * (1.0 + d2),
            "Eq. 9 broke: {d2} vs {rhs}"
        );
        checked += 1;
    }
    assert!(checked > 0, "nothing to check");
}

#[test]
fn threshold_zero_only_finds_exact_duplicates() {
    // (ε = 1e-7: the twin's normal form equals the original's analytically;
    // numerically the FFT leaves ~1e-9 of residue.)
    let n = 64;
    let mut series: Vec<TimeSeries> = Corpus::generate(CorpusKind::SyntheticWalks, 20, n, 9)
        .series()
        .to_vec();
    // A scaled copy of sequence 0: identical normal form.
    let dup = series[0].map(|v| v * 3.0 + 10.0);
    series.push(dup);
    let names = (0..21).map(|i| format!("s{i}")).collect();
    let corpus = Corpus::from_parts(names, series);
    let index = SeqIndex::build(&corpus, IndexConfig::default()).unwrap();
    let family = Family::moving_averages(1..=1, n); // identity
    let spec = RangeSpec::euclidean(1e-7).with_policy(FilterPolicy::Safe);
    let r = mtindex::range_query(&index, &corpus.series()[0], &family, &spec).unwrap();
    assert_eq!(
        r.matched_sequences(),
        vec![0, 20],
        "itself and its scaled twin"
    );
}
