//! Integration tests for the beyond-the-paper extensions working together:
//! expression rewriting (§3.3) feeding the cost-based optimizer (§4.3),
//! persisted indexes answering queries identically after reopen, the
//! parallel scan agreeing with every engine, and subsequence matching
//! honouring the same filter-policy guarantees.

use simquery::cost::CostModel;
use simquery::engine::{mtindex, seqscan};
use simquery::prelude::*;
use simquery::subseq::sorted_subseq;
use simquery::transform::Transform;

const N: usize = 128;

fn build(n: usize, seed: u64) -> (Corpus, SeqIndex) {
    let corpus = Corpus::generate(CorpusKind::StockCloses, n, N, seed);
    let index = SeqIndex::build(&corpus, IndexConfig::default()).expect("non-empty");
    (corpus, index)
}

#[test]
fn expression_to_optimizer_to_query_pipeline() {
    // "any shift up to 3, then any of mv 6..17, or plain momentum" —
    // rewrite (Eq. 10/11), let the §4.3 optimizer choose rectangles,
    // run MT with them, and confirm against a scan.
    let (corpus, index) = build(200, 31);
    let expr = SimilarityExpr::any(Family::circular_shifts(0..=3, N))
        .then(SimilarityExpr::any(Family::moving_averages(6..=17, N)))
        .or(SimilarityExpr::one(Transform::momentum(1, N)));
    let family = expr.rewrite();
    assert_eq!(family.len(), 4 * 12 + 1);

    let spec = RangeSpec::correlation(0.96).with_policy(FilterPolicy::Safe);
    let samples = vec![corpus.series()[10].clone(), corpus.series()[150].clone()];
    let (mbrs, report) =
        simquery::partition::optimize(&index, &family, &spec, &samples, &CostModel::default())
            .expect("optimize");
    assert!(!report.is_empty());

    let q = &corpus.series()[77];
    let (mt, _) =
        mtindex::range_query_with_mbrs(&index, q, &family, &spec, &mbrs, None).expect("mt");
    let scan = seqscan::range_query(&index, q, &family, &spec).expect("scan");
    assert_eq!(mt.sorted_pairs(), scan.sorted_pairs());
    assert!(
        !mt.matches.is_empty(),
        "momentum identity-ish matches expected"
    );
}

#[test]
fn persisted_index_equals_live_index_across_engines_and_policies() {
    let (corpus, index) = build(180, 37);
    let dir = std::env::temp_dir().join("simseq_ext_persist");
    std::fs::create_dir_all(&dir).ok();
    index.save(&dir).expect("save");
    let reopened = SeqIndex::open(&dir, 64).expect("open");

    let family = Family::moving_averages(5..=16, N).with_inverted();
    for policy in [
        FilterPolicy::Safe,
        FilterPolicy::Adaptive,
        FilterPolicy::Paper,
    ] {
        let spec = RangeSpec::correlation(0.96).with_policy(policy);
        for qi in [0usize, 90, 179] {
            let q = &corpus.series()[qi];
            let live = mtindex::range_query(&index, q, &family, &spec).unwrap();
            let disk = mtindex::range_query(&reopened, q, &family, &spec).unwrap();
            assert_eq!(
                live.sorted_pairs(),
                disk.sorted_pairs(),
                "{policy:?}, query {qi}"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn parallel_scan_agrees_with_mt_under_every_mode() {
    let (corpus, index) = build(150, 41);
    let family = Family::circular_shifts(0..=6, N);
    for mode in [QueryMode::Symmetric, QueryMode::DataOnly] {
        let spec = RangeSpec::correlation(0.94)
            .with_policy(FilterPolicy::Safe)
            .with_mode(mode);
        let q = &corpus.series()[42];
        let par = seqscan::range_query_parallel(&index, q, &family, &spec, 4).unwrap();
        let mt = mtindex::range_query(&index, q, &family, &spec).unwrap();
        let st = simquery::engine::stindex::range_query(&index, q, &family, &spec).unwrap();
        assert_eq!(par.sorted_pairs(), mt.sorted_pairs(), "{mode:?}");
        assert_eq!(par.sorted_pairs(), st.sorted_pairs(), "ST {mode:?}");
    }
    // DataOnly with shifts finds asymmetric matches Symmetric cannot: a
    // copy rotated LEFT by 5 re-aligns onto the query under shift-right 5.
    let shifted: TimeSeries = {
        let base = corpus.series()[42].values();
        (0..N).map(|t| base[(t + 5) % N]).collect()
    };
    let mut series = corpus.series().to_vec();
    series.push(shifted);
    let names = (0..series.len()).map(|i| format!("s{i}")).collect();
    let corpus2 = Corpus::from_parts(names, series);
    let index2 = SeqIndex::build(&corpus2, IndexConfig::default()).unwrap();
    let spec = RangeSpec::euclidean(1e-6)
        .with_policy(FilterPolicy::Safe)
        .with_mode(QueryMode::DataOnly);
    let family = Family::circular_shifts(0..=6, N);
    let r = mtindex::range_query(&index2, &corpus2.series()[42], &family, &spec).unwrap();
    assert!(
        r.matches.iter().any(|m| m.seq == 150 && m.transform == 5),
        "rotated copy must match at shift 5: {:?}",
        r.sorted_pairs()
    );
}

#[test]
fn subsequence_matching_with_composed_families() {
    // Compose a shift with a smoothing window and search for a pattern's
    // occurrences across long sequences — index ≡ scan.
    use tseries::rng::SeededRng;
    let window = 32;
    let mut rng = SeededRng::seed_from_u64(47);
    let seqs: Vec<TimeSeries> = (0..10)
        .map(|_| tseries::random_walk(&mut rng, 256, 8.0))
        .collect();
    let index = SubseqIndex::build(seqs.clone(), window, 6).expect("indexable");
    let family =
        Family::circular_shifts(0..=2, window).compose(&Family::moving_averages(1..=3, window));
    let spec = RangeSpec::correlation(0.9).with_policy(FilterPolicy::Adaptive);
    let pattern: TimeSeries = seqs[2].values()[64..96].to_vec().into();
    let (got, _) = index.query(&pattern, &family, &spec).unwrap();
    let (want, _) = index.query_scan(&pattern, &family, &spec).unwrap();
    assert_eq!(sorted_subseq(&got), sorted_subseq(&want));
    assert!(got.iter().any(|m| m.seq == 2 && m.offset == 64));
}

#[test]
fn new_transform_families_keep_engine_equivalence() {
    // EMA / WMA / band-pass / reversal as one family through the engines.
    let (corpus, index) = build(120, 53);
    let family = Family::new(
        "extended",
        vec![
            Transform::exponential_moving_average(0.3, N),
            Transform::exponential_moving_average(0.7, N),
            Transform::weighted_moving_average(&[3.0, 2.0, 1.0], N),
            Transform::band_pass(1, 8, N),
            Transform::time_reverse(N),
            Transform::moving_average(5, N),
        ],
    );
    let spec = RangeSpec::correlation(0.9).with_policy(FilterPolicy::Safe);
    for qi in [5usize, 60] {
        let q = &corpus.series()[qi];
        let scan = seqscan::range_query(&index, q, &family, &spec).unwrap();
        let mt = mtindex::range_query(&index, q, &family, &spec).unwrap();
        assert_eq!(scan.sorted_pairs(), mt.sorted_pairs(), "query {qi}");
    }
}
