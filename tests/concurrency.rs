//! Concurrency equivalence: N threads firing the same seeded query
//! workload against one shared index must produce byte-identical result
//! sets to a single-threaded run — for both the MT-index and the
//! sequential-scan engines.
//!
//! This is the correctness contract behind `simserved`: the read path of
//! [`SeqIndex`] (tree search, buffer pool, access counters) is interior-
//! mutable and shared by every worker, so any cross-thread interference
//! would show up here as a result-set mismatch.

use simquery::engine::{mtindex, seqscan};
use simquery::prelude::*;
use simquery::query::FilterPolicy;
use tseries::rng::SeededRng;

const THREADS: usize = 8;
const OPS_PER_THREAD: usize = 12;

/// One seeded workload: `(query ordinal, ma window range, rho)` tuples.
/// Every thread regenerates the identical list from the same seed.
fn workload(seed: u64, corpus_len: usize) -> Vec<(usize, (usize, usize), f64)> {
    let mut rng = SeededRng::seed_from_u64(seed);
    (0..OPS_PER_THREAD)
        .map(|_| {
            let ord = rng.random_range(0usize..corpus_len);
            let lo = rng.random_range(2usize..10);
            let hi = lo + rng.random_range(2usize..12);
            let rho = rng.random_range(0.88f64..0.97);
            (ord, (lo, hi), rho)
        })
        .collect()
}

fn run_workload<F>(index: &SeqIndex, seed: u64, engine: F) -> Vec<Vec<(usize, usize)>>
where
    F: Fn(&SeqIndex, &TimeSeries, &Family, &RangeSpec) -> Vec<(usize, usize)>,
{
    workload(seed, index.len())
        .into_iter()
        .map(|(ord, (lo, hi), rho)| {
            let family = Family::moving_averages(lo..=hi, index.seq_len());
            // Safe policy: provably lossless, so every engine and every
            // interleaving must agree exactly.
            let spec = RangeSpec::correlation(rho).with_policy(FilterPolicy::Safe);
            let q = index.fetch_series(ord).unwrap();
            engine(index, &q, &family, &spec)
        })
        .collect()
}

fn mt_pairs(index: &SeqIndex, q: &TimeSeries, f: &Family, s: &RangeSpec) -> Vec<(usize, usize)> {
    mtindex::range_query(index, q, f, s).unwrap().sorted_pairs()
}

fn scan_pairs(index: &SeqIndex, q: &TimeSeries, f: &Family, s: &RangeSpec) -> Vec<(usize, usize)> {
    seqscan::range_query(index, q, f, s).unwrap().sorted_pairs()
}

type EngineFn = fn(&SeqIndex, &TimeSeries, &Family, &RangeSpec) -> Vec<(usize, usize)>;

fn check_engine(name: &str, engine: EngineFn) {
    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 90, 64, 47);
    let index = SeqIndex::build(&corpus, IndexConfig::default()).unwrap();
    let shared = SharedIndex::new(index);

    // Ground truth, computed before any concurrency exists.
    let want: Vec<Vec<Vec<(usize, usize)>>> = (0..THREADS)
        .map(|t| run_workload(&shared.read(), 1000 + t as u64, engine))
        .collect();

    std::thread::scope(|s| {
        for (t, want) in want.iter().enumerate() {
            let shared = &shared;
            s.spawn(move || {
                let index = shared.read();
                let got = run_workload(&index, 1000 + t as u64, engine);
                assert_eq!(&got, want, "{name}: thread {t} diverged");
            });
        }
    });
}

#[test]
fn mt_engine_is_deterministic_under_concurrency() {
    check_engine("mtindex", mt_pairs);
}

#[test]
fn seqscan_engine_is_deterministic_under_concurrency() {
    check_engine("seqscan", scan_pairs);
}

#[test]
fn mixed_engines_agree_across_threads() {
    // Half the threads run MT, half run the scan, all on the same shared
    // index at once; per-op result sets must be pairwise identical.
    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 70, 64, 53);
    let index = SeqIndex::build(&corpus, IndexConfig::default()).unwrap();
    let shared = SharedIndex::new(index);

    let results: Vec<Vec<Vec<(usize, usize)>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let shared = &shared;
                s.spawn(move || {
                    let index = shared.read();
                    // Same seed for everyone — results must match across
                    // threads AND engines.
                    if t % 2 == 0 {
                        run_workload(&index, 7, mt_pairs)
                    } else {
                        run_workload(&index, 7, scan_pairs)
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (t, r) in results.iter().enumerate().skip(1) {
        assert_eq!(r, &results[0], "thread {t} disagrees with thread 0");
    }
}
