//! The slow-query log: a bounded ring of fully-described outliers.
//!
//! The threshold check is a single atomic load against the measured total
//! latency; the (allocating) [`SlowEntry`] is built by a closure that only
//! runs once the query has already proven slow, so the fast path pays
//! nothing beyond the comparison. A query fires the log **iff**
//! `total_us >= threshold_us` — the boundary is inclusive, and the
//! exactness test in `crates/serve` pins it there.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default capacity of the slow-query ring.
pub const SLOW_LOG_CAP: usize = 128;

/// One slow query: what ran, what the planner promised, what it cost.
#[derive(Clone, Debug, Default)]
pub struct SlowEntry {
    /// The wire line (or CLI rendering) of the query.
    pub query: String,
    /// The chosen plan, rendered (`engine=… chosen_by=… fanout=…`).
    pub plan: String,
    /// Planner's page estimate.
    pub est_pages: f64,
    /// Measured record/heap page accesses.
    pub actual_pages: u64,
    /// Planner's comparison estimate.
    pub est_comparisons: f64,
    /// Measured distance computations.
    pub actual_comparisons: u64,
    /// Candidates the filter step produced.
    pub candidates: u64,
    /// Final matches.
    pub matches: u64,
    /// Planning time, µs (0 when the plan came from the result cache or a
    /// fan-out path that can't split stages).
    pub plan_us: u64,
    /// Execution time, µs.
    pub exec_us: u64,
    /// End-to-end time, µs — the value the threshold gates on.
    pub total_us: u64,
}

/// A bounded ring of [`SlowEntry`] values over a configurable threshold.
pub struct SlowLog {
    threshold_us: AtomicU64,
    fired: AtomicU64,
    cap: usize,
    ring: Mutex<VecDeque<SlowEntry>>,
}

impl SlowLog {
    /// A log holding at most `cap` entries, initially disabled
    /// (threshold `u64::MAX`).
    pub fn new(cap: usize) -> Self {
        Self {
            threshold_us: AtomicU64::new(u64::MAX),
            fired: AtomicU64::new(0),
            cap,
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Sets the inclusive firing threshold (µs). 0 logs every query,
    /// `u64::MAX` disables the log.
    pub fn set_threshold_us(&self, us: u64) {
        self.threshold_us.store(us, Ordering::Relaxed);
    }

    /// Current threshold (µs).
    pub fn threshold_us(&self) -> u64 {
        self.threshold_us.load(Ordering::Relaxed)
    }

    /// Gates `total_us` against the threshold; on a fire, builds the entry
    /// via `make` and records it. Returns whether it fired.
    pub fn observe<F: FnOnce() -> SlowEntry>(&self, total_us: u64, make: F) -> bool {
        if total_us < self.threshold_us.load(Ordering::Relaxed) {
            return false;
        }
        let mut entry = make();
        entry.total_us = total_us;
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() >= self.cap {
            ring.pop_front();
        }
        ring.push_back(entry);
        drop(ring);
        self.fired.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Total entries ever fired (not bounded by the ring).
    pub fn fired(&self) -> u64 {
        self.fired.load(Ordering::Relaxed)
    }

    /// The most recent `n` entries, oldest first (copies; the ring keeps
    /// its contents).
    pub fn recent(&self, n: usize) -> Vec<SlowEntry> {
        let ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        let skip = ring.len().saturating_sub(n);
        ring.iter().skip(skip).cloned().collect()
    }

    /// Entries currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when no entry has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(q: &str) -> SlowEntry {
        SlowEntry {
            query: q.to_string(),
            ..SlowEntry::default()
        }
    }

    #[test]
    fn fires_exactly_at_the_threshold() {
        let log = SlowLog::new(8);
        log.set_threshold_us(1000);
        assert!(!log.observe(999, || entry("under")), "below: no fire");
        assert!(log.observe(1000, || entry("at")), "inclusive boundary");
        assert!(log.observe(1001, || entry("over")));
        assert_eq!(log.fired(), 2);
        let recent = log.recent(10);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].query, "at");
        assert_eq!(recent[0].total_us, 1000);
    }

    #[test]
    fn disabled_by_default_and_entry_is_lazy() {
        let log = SlowLog::new(8);
        let fired = log.observe(u64::MAX - 1, || panic!("entry built below threshold"));
        assert!(!fired, "u64::MAX threshold never fires short of MAX");
        log.set_threshold_us(0);
        assert!(
            log.observe(0, || entry("any")),
            "threshold 0 logs everything"
        );
    }

    #[test]
    fn ring_is_bounded_keeping_the_newest() {
        let log = SlowLog::new(3);
        log.set_threshold_us(0);
        for i in 0..10 {
            log.observe(i, || entry(&format!("q{i}")));
        }
        assert_eq!(log.fired(), 10);
        assert_eq!(log.len(), 3);
        let recent = log.recent(3);
        assert_eq!(recent[0].query, "q7");
        assert_eq!(recent[2].query, "q9");
        assert_eq!(log.recent(1).len(), 1);
    }
}
