//! Named instruments and their text exposition.
//!
//! Latencies are recorded in microseconds into log₂ buckets (bucket `i`
//! holds `[2^i, 2^{i+1})` µs), so a histogram is 64 atomic counters —
//! cheap enough to update on every request from every worker without a
//! lock, and precise enough for the p50/p95/p99 the `STATS` request
//! reports (percentiles are bucket upper bounds, i.e. ≤ 2× the true
//! value).
//!
//! A [`MetricsRegistry`] maps fully-labelled metric names (e.g.
//! `simseq_op_total{op="query"}`) to shared instrument handles. Callers
//! keep the `Arc` handle and update it lock-free; the registry is only
//! locked at registration and render time. Rendering is Prometheus text
//! exposition: `name value` lines, lexicographically sorted, histograms
//! expanded into `{quantile=…}` summary lines plus `_count` / `_max_us`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const BUCKETS: usize = 64;

/// A monotone atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero (STATS `reset=1` semantics).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins float gauge (stored as bits).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self(AtomicU64::new(0f64.to_bits()))
    }

    /// Sets the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A lock-free log₂-bucketed histogram of microsecond latencies.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    max_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one latency.
    pub fn record(&self, d: Duration) {
        let us = d.as_micros().min(u64::MAX as u128) as u64;
        let bucket = (64 - us.leading_zeros()).saturating_sub(1) as usize; // floor(log2), 0 for 0–1 µs
        self.buckets[bucket.min(BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (0 < q ≤ 1) as the upper bound of the bucket the
    /// quantile sample falls in; 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                // Upper bound of bucket i = 2^{i+1} − 1.
                return (2u64 << i) - 1;
            }
        }
        self.max_us()
    }

    /// Largest recorded value.
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }

    /// Zeroes every bucket (STATS `reset=1` semantics).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.max_us.store(0, Ordering::Relaxed);
    }
}

/// Formats `name{k1="v1",k2="v2"}`; just `name` when `labels` is empty.
pub fn labeled(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let body: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    format!("{name}{{{}}}", body.join(","))
}

/// Inserts `suffix` before the label block: `a{x="1"}` + `_count` →
/// `a_count{x="1"}`.
fn suffixed(name: &str, suffix: &str) -> String {
    match name.find('{') {
        Some(i) => format!("{}{}{}", &name[..i], suffix, &name[i..]),
        None => format!("{name}{suffix}"),
    }
}

/// Merges one extra label into a possibly-already-labelled name.
fn with_label(name: &str, key: &str, value: &str) -> String {
    if let Some(stripped) = name.strip_suffix('}') {
        format!("{stripped},{key}=\"{value}\"}}")
    } else {
        format!("{name}{{{key}=\"{value}\"}}")
    }
}

#[derive(Default)]
struct Instruments {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// A registry of named instruments.
///
/// `counter` / `gauge` / `histogram` are get-or-register: the first call
/// for a name creates the instrument, later calls return the same handle,
/// so two subsystems naming the same metric share one atomic (this is what
/// makes `METRICS`/`STATS` parity structural). Per-instance, not global —
/// a test binary runs many servers and each owns its numbers.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Instruments>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get-or-register the counter `name` (a fully-labelled metric name).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner
            .counters
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Counter::new()))
            .clone()
    }

    /// Get-or-register the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner
            .gauges
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Gauge::new()))
            .clone()
    }

    /// Get-or-register the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// Renders every registered instrument into `out` as exposition lines.
    pub fn render_into(&self, out: &mut Exposition) {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        for (name, c) in &inner.counters {
            out.raw(format!("{name} {}", c.get()));
        }
        for (name, g) in &inner.gauges {
            out.raw(format!("{name} {}", fmt_f64(g.get())));
        }
        for (name, h) in &inner.histograms {
            for (q, label) in [(0.50, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                out.raw(format!(
                    "{} {}",
                    with_label(name, "quantile", label),
                    h.quantile_us(q)
                ));
            }
            out.raw(format!("{} {}", suffixed(name, "_count"), h.count()));
            out.raw(format!("{} {}", suffixed(name, "_max_us"), h.max_us()));
        }
    }
}

impl Histogram {
    /// A histogram with empty buckets.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Renders a float without scientific notation surprises for the common
/// cases (integral values print without a trailing `.0` machinery — `{}`
/// on f64 is already exact and compact).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// An exposition document under assembly: one metric per line.
#[derive(Default)]
pub struct Exposition {
    lines: Vec<String>,
}

impl Exposition {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a counter sample.
    pub fn counter(&mut self, name: &str, labels: &[(&str, &str)], v: u64) {
        self.lines.push(format!("{} {v}", labeled(name, labels)));
    }

    /// Appends a gauge sample.
    pub fn gauge(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.lines
            .push(format!("{} {}", labeled(name, labels), fmt_f64(v)));
    }

    /// Appends a preformatted line.
    pub fn raw(&mut self, line: String) {
        self.lines.push(line);
    }

    /// Number of lines so far.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// The finished document.
    pub fn into_lines(self) -> Vec<String> {
        self.lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        assert_eq!(h.quantile_us(0.5), 0, "empty histogram");
        for us in [1u64, 2, 3, 100, 100, 100, 100, 5000, 80_000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.max_us(), 80_000);
        let p50 = h.quantile_us(0.50);
        let p95 = h.quantile_us(0.95);
        let p99 = h.quantile_us(0.99);
        // 5th of 9 samples is one of the 100 µs records → bucket [64, 128).
        assert_eq!(p50, 127);
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!(p99 >= 80_000, "p99 covers the max bucket");
    }

    #[test]
    fn quantiles_are_upper_bounds_within_2x() {
        let h = Histogram::default();
        for us in 1..=1000u64 {
            h.record(Duration::from_micros(us));
        }
        let p50 = h.quantile_us(0.5);
        assert!((500..=1024).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn registry_shares_handles_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x_total");
        let b = reg.counter("x_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "same underlying atomic");
        let g = reg.gauge("drift");
        g.set(0.5);
        assert!((reg.gauge("drift").get() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn render_is_sorted_and_label_aware() {
        let reg = MetricsRegistry::new();
        reg.counter("b_total").inc();
        reg.counter("a_total{op=\"query\"}").add(7);
        reg.histogram("lat_us{op=\"query\"}")
            .record(Duration::from_micros(100));
        let mut exp = Exposition::new();
        reg.render_into(&mut exp);
        let lines = exp.into_lines();
        assert_eq!(lines[0], "a_total{op=\"query\"} 7");
        assert_eq!(lines[1], "b_total 1");
        assert!(lines.contains(&"lat_us{op=\"query\",quantile=\"0.5\"} 127".to_string()));
        assert!(lines.contains(&"lat_us_count{op=\"query\"} 1".to_string()));
        assert!(lines.contains(&"lat_us_max_us{op=\"query\"} 100".to_string()));
    }

    #[test]
    fn exposition_formats_labels() {
        let mut exp = Exposition::new();
        exp.counter("c", &[("family", "avg#8"), ("engine", "mt")], 4);
        exp.gauge("g", &[], 0.25);
        let lines = exp.into_lines();
        assert_eq!(lines[0], "c{family=\"avg#8\",engine=\"mt\"} 4");
        assert_eq!(lines[1], "g 0.25");
    }
}
