//! Span tracing: sampled, bounded, never blocking.
//!
//! A [`Span`] is an RAII timer named by a `&'static str` from the span
//! taxonomy (DESIGN §7): `plan.build`, `plan.execute`, `shard.scatter`,
//! `shard.fragment`, `shard.gather`, `wal.append`, `wal.fsync`,
//! `repl.feed`, `repl.apply`. Dropping the span pushes a [`TraceEvent`]
//! into a fixed-capacity ring the `TRACE <n>` verb drains.
//!
//! Sampling is decided once per **root** span (thread-local depth 0) by a
//! seeded splitmix64 counter — deterministic across runs, no syscalls —
//! and inherited by children through a thread-local `(trace, depth)`
//! cell, so a sampled query yields a complete tree and an unsampled one
//! costs two TLS reads and zero clock calls. Worker threads spawned
//! mid-query (the scatter pool) start fresh roots: they sample
//! independently, which keeps the fast path free of cross-thread handoff.
//!
//! The ring is guarded by a mutex, but writers only ever `try_lock`: a
//! contended push increments a `dropped` counter and walks away. `TRACE`
//! can therefore never stall a query, and memory is bounded by the ring
//! capacity regardless of reader behaviour.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Default 1-in-K root-span sampling rate.
pub const DEFAULT_SAMPLE: u64 = 64;

/// Capacity of the global trace ring.
pub const RING_CAP: usize = 4096;

/// One completed span.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Monotone event sequence number (assigned at record time).
    pub seq: u64,
    /// Trace (root-span) id this event belongs to.
    pub trace: u64,
    /// Span name from the static taxonomy.
    pub name: &'static str,
    /// Nesting depth under the root (root = 0).
    pub depth: u16,
    /// Start offset in µs since the tracer was created.
    pub start_us: u64,
    /// Duration in µs.
    pub dur_us: u64,
}

thread_local! {
    /// The active `(trace, depth)` on this thread; trace 0 = not tracing.
    static CURRENT: Cell<(u64, u16)> = const { Cell::new((0, 0)) };
}

/// A span tracer: sampling state plus the bounded event ring.
pub struct Tracer {
    base: Instant,
    /// 1-in-K sampling; 0 disables tracing entirely.
    sample: AtomicU64,
    rng: AtomicU64,
    seq: AtomicU64,
    next_trace: AtomicU64,
    recorded: AtomicU64,
    dropped: AtomicU64,
    cap: usize,
    ring: Mutex<VecDeque<TraceEvent>>,
}

/// splitmix64 — the same zero-dependency mixer `tseries::rng` builds on.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Tracer {
    /// A tracer with ring capacity `cap`, sampling 1-in-`sample`, seeded
    /// deterministically from `seed`.
    pub fn new(cap: usize, sample: u64, seed: u64) -> Self {
        Self {
            base: Instant::now(),
            sample: AtomicU64::new(sample),
            rng: AtomicU64::new(seed),
            seq: AtomicU64::new(0),
            next_trace: AtomicU64::new(1),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            cap,
            ring: Mutex::new(VecDeque::with_capacity(cap.min(64))),
        }
    }

    /// Sets the 1-in-K sampling rate (0 = off). Takes effect for the next
    /// root span; spans already open finish under the old decision.
    pub fn set_sample(&self, k: u64) {
        self.sample.store(k, Ordering::Relaxed);
    }

    /// Current 1-in-K sampling rate.
    pub fn sample(&self) -> u64 {
        self.sample.load(Ordering::Relaxed)
    }

    /// Opens a span. Returns an inert guard when tracing is off or this
    /// root lost the sampling draw.
    pub fn span(&self, name: &'static str) -> Span<'_> {
        let (trace, depth) = CURRENT.get();
        if trace != 0 {
            // Child of a sampled root: inherit unconditionally.
            let d = depth.saturating_add(1);
            CURRENT.set((trace, d));
            return Span {
                tracer: self,
                state: Some(SpanState {
                    trace,
                    depth: d,
                    name,
                    start: Instant::now(),
                    prev: (trace, depth),
                }),
            };
        }
        let k = self.sample.load(Ordering::Relaxed);
        if k == 0 {
            return Span {
                tracer: self,
                state: None,
            };
        }
        let draw = splitmix64(self.rng.fetch_add(1, Ordering::Relaxed));
        if k > 1 && !draw.is_multiple_of(k) {
            return Span {
                tracer: self,
                state: None,
            };
        }
        let id = self.next_trace.fetch_add(1, Ordering::Relaxed);
        CURRENT.set((id, 0));
        Span {
            tracer: self,
            state: Some(SpanState {
                trace: id,
                depth: 0,
                name,
                start: Instant::now(),
                prev: (0, 0),
            }),
        }
    }

    /// Records a finished span. `try_lock` only: contention drops the
    /// event and bumps [`Tracer::dropped`].
    fn push(&self, mut ev: TraceEvent) {
        ev.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        match self.ring.try_lock() {
            Ok(mut ring) => {
                if ring.len() >= self.cap {
                    ring.pop_front();
                }
                ring.push_back(ev);
                self.recorded.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Removes and returns the most recent `n` events, oldest first.
    pub fn drain(&self, n: usize) -> Vec<TraceEvent> {
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        let keep = ring.len().saturating_sub(n);
        ring.split_off(keep).into()
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events recorded into the ring since creation.
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Events dropped because the ring was contended.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

struct SpanState {
    trace: u64,
    depth: u16,
    name: &'static str,
    start: Instant,
    prev: (u64, u16),
}

/// RAII span guard; records a [`TraceEvent`] on drop when sampled.
pub struct Span<'a> {
    tracer: &'a Tracer,
    state: Option<SpanState>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(s) = self.state.take() else { return };
        CURRENT.set(s.prev);
        let start_us = s
            .start
            .duration_since(self.tracer.base)
            .as_micros()
            .min(u64::MAX as u128) as u64;
        let dur_us = s.start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        self.tracer.push(TraceEvent {
            seq: 0,
            trace: s.trace,
            name: s.name,
            depth: s.depth,
            start_us,
            dur_us,
        });
    }
}

/// The process-wide tracer the instrumented crates record into. Created
/// on first use at [`DEFAULT_SAMPLE`]; servers reconfigure it with
/// [`Tracer::set_sample`] from `--trace-sample`.
pub fn global() -> &'static Tracer {
    static GLOBAL: OnceLock<Tracer> = OnceLock::new();
    GLOBAL.get_or_init(|| Tracer::new(RING_CAP, DEFAULT_SAMPLE, 0x05EE_D0B5))
}

/// Opens a span on the global tracer — the one-liner hot paths use.
pub fn span(name: &'static str) -> Span<'static> {
    global().span(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_1_records_nested_spans() {
        let t = Tracer::new(16, 1, 42);
        {
            let _root = t.span("plan.build");
            let _child = t.span("plan.execute");
        }
        let evs = t.drain(16);
        assert_eq!(evs.len(), 2);
        // Children drop first: the execute span precedes the build span.
        assert_eq!(evs[0].name, "plan.execute");
        assert_eq!(evs[0].depth, 1);
        assert_eq!(evs[1].name, "plan.build");
        assert_eq!(evs[1].depth, 0);
        assert_eq!(evs[0].trace, evs[1].trace, "one tree, one trace id");
        assert!(evs[0].seq < evs[1].seq);
        assert_eq!((0, 0), (CURRENT.get().0, CURRENT.get().1), "TLS restored");
    }

    #[test]
    fn sample_0_records_nothing() {
        let t = Tracer::new(16, 0, 42);
        for _ in 0..100 {
            let _s = t.span("wal.append");
        }
        assert_eq!(t.recorded(), 0);
        assert!(t.is_empty());
    }

    #[test]
    fn ring_is_bounded() {
        let t = Tracer::new(8, 1, 7);
        for _ in 0..100 {
            let _s = t.span("wal.fsync");
        }
        assert_eq!(t.len(), 8, "capped at ring capacity");
        assert_eq!(t.recorded(), 100);
        let evs = t.drain(100);
        assert_eq!(evs.len(), 8);
        // Drain keeps the most recent events, oldest first.
        for w in evs.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
        assert_eq!(evs.last().unwrap().seq, 99);
        assert!(t.is_empty(), "drain consumes");
    }

    #[test]
    fn drain_takes_the_tail() {
        let t = Tracer::new(64, 1, 7);
        for _ in 0..10 {
            let _s = t.span("repl.feed");
        }
        let evs = t.drain(3);
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].seq, 7);
        assert_eq!(evs[2].seq, 9);
        assert_eq!(t.len(), 7, "earlier events remain");
    }

    #[test]
    fn sampling_thins_roots_but_keeps_trees_whole() {
        let t = Tracer::new(4096, 8, 1234);
        for _ in 0..800 {
            let _root = t.span("shard.scatter");
            let _child = t.span("shard.fragment");
        }
        let n = t.recorded();
        assert!(n > 0, "1-in-8 over 800 roots records something");
        assert!(n < 800, "sampling thins: {n} of 1600 spans");
        assert_eq!(n % 2, 0, "sampled trees are complete (root + child)");
    }

    #[test]
    fn unsampled_spans_are_cheap_and_balanced() {
        // Regression guard on the fast path: no clock, no allocation —
        // this can't assert cycles, but it can assert no state leaks.
        let t = Tracer::new(16, 0, 0);
        {
            let _a = t.span("a");
            let _b = t.span("b");
        }
        assert_eq!(CURRENT.get(), (0, 0));
    }
}
