//! Observability substrate for the workspace: a metrics registry of named
//! counters / gauges / log₂ histograms, a lightweight span tracer, and a
//! slow-query log.
//!
//! Like `simwal`, this crate is deliberately dependency-free (std only) so
//! every other crate — including the WAL underneath the storage layer — can
//! instrument its hot paths without cycles or registry access. The design
//! constraints, in order:
//!
//! 1. **Never block a hot path.** Instruments are plain atomics; the trace
//!    ring uses `try_lock` and counts a drop instead of waiting; the slow
//!    log builds its (allocating) entry only after the threshold check.
//! 2. **Bounded memory.** The trace ring and slow log are fixed-capacity
//!    rings; an idle reader cannot make a busy writer accumulate.
//! 3. **One source of truth.** The same atomic a `STATS` report reads is
//!    the one the Prometheus-style exposition renders, so the two views
//!    agree exactly by construction rather than by reconciliation.
//!
//! Span tracing ([`trace`]) is sampled per *root* span with a seeded
//! deterministic PRNG: a root decides once whether its whole tree is
//! recorded, children inherit the decision through a thread-local, and an
//! unsampled span costs two thread-local reads and no clock call.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod metrics;
pub mod slow;
pub mod trace;

pub use metrics::{Counter, Exposition, Gauge, Histogram, MetricsRegistry};
pub use slow::{SlowEntry, SlowLog};
pub use trace::{span, Span, TraceEvent, Tracer};
