//! The write-ahead log proper: an epoch-stamped append-only frame file
//! plus the `MANIFEST` that records which checkpoint epoch the log
//! belongs to. See the crate docs for the recovery/checkpoint protocol.

use crate::frame::{decode_frames, encode_frame, WalOp};
use crate::lock::DirLock;
use crate::{atomic_write, sync_dir, WalError};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Name of the frame file inside a WAL directory.
pub const LOG_FILE: &str = "wal.log";
/// Name of the epoch manifest inside a WAL directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

const MAGIC: &[u8; 8] = b"SIMWALOG";
/// Length of the log-file header (magic + epoch).
pub const HEADER_LEN: u64 = 16;

/// When appended frames are forced to stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Every append fsyncs before returning — no acknowledged mutation is
    /// ever lost, at one `fdatasync` per mutation.
    Always,
    /// Fsync once every `n` appends. A crash loses at most the last
    /// `n - 1` acknowledged mutations (still recovering to an exact
    /// prefix — the window bounds *how much* tail, never correctness).
    EveryN(u32),
    /// Never fsync from the append path; durability rides on the OS page
    /// cache and explicit [`Wal::sync`] / checkpoint calls.
    Never,
}

impl FsyncPolicy {
    /// Parses `always`, `never`, or a decimal `n` (meaning `EveryN(n)`;
    /// `0` and `1` both mean `Always`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "always" => Some(Self::Always),
            "never" => Some(Self::Never),
            _ => match s.parse::<u32>() {
                Ok(0) | Ok(1) => Some(Self::Always),
                Ok(n) => Some(Self::EveryN(n)),
                Err(_) => None,
            },
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Always => write!(f, "always"),
            Self::EveryN(n) => write!(f, "every{n}"),
            Self::Never => write!(f, "never"),
        }
    }
}

/// What [`Wal::open`] did to bring the log to a clean state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Epoch the log is now at.
    pub epoch: u64,
    /// Intact frames handed back for replay.
    pub frames: usize,
    /// Bytes of torn tail truncated from the end of the log.
    pub truncated_bytes: u64,
    /// Frames discarded because the log's epoch predated the snapshot —
    /// their effects are already inside the checkpoint that superseded
    /// them.
    pub stale_frames: usize,
}

/// Monotone counters for the `STATS` surface.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Frames appended since open.
    pub appends: u64,
    /// Fsyncs issued (append-path, explicit, and epoch installs).
    pub fsyncs: u64,
    /// Frames replayed at open.
    pub replayed: u64,
    /// Torn-tail bytes truncated at open.
    pub truncated_bytes: u64,
}

struct Inner {
    file: File,
    epoch: u64,
    /// Fencing token from the manifest: the minimum epoch this node may
    /// accept writes at (`0` = unfenced). A node whose `epoch` is below
    /// its fence has been superseded by a promoted peer and must stay
    /// read-only until it re-syncs onto the new timeline.
    fence: u64,
    since_sync: u32,
    /// File length after the last fully-written frame (or the header).
    /// A failed append rewinds here so its torn bytes can never sit in
    /// front of later frames — replay truncates at the first bad frame,
    /// which would silently discard every acknowledged successor.
    good_len: u64,
    /// File length covered by the last successful fsync — the prefix a
    /// crash is guaranteed to keep. Everything in `durable_len..good_len`
    /// is written but rides on the page cache (`FsyncPolicy::EveryN` /
    /// `Never` between syncs) and may not survive. The replication
    /// catch-up reader serves only from this prefix (syncing first to
    /// extend it), so no follower can ever hold a frame a restarted
    /// primary lost.
    durable_len: u64,
    /// Set when the tail state became unknowable (a rewind failed, or an
    /// fsync error made the page cache untrustworthy). All further
    /// appends/syncs fail with [`WalError::Poisoned`].
    poisoned: bool,
}

/// An open write-ahead log: exclusive owner of its directory (advisory
/// lock held for the struct's lifetime), safe to share behind an `Arc`
/// and append from any thread.
pub struct Wal {
    dir: PathBuf,
    policy: FsyncPolicy,
    inner: Mutex<Inner>,
    appends: AtomicU64,
    fsyncs: AtomicU64,
    replayed: u64,
    truncated: u64,
    // One-shot injected append fault (see `arm_append_fault`).
    fail_next_append: AtomicBool,
    _lock: DirLock,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("dir", &self.dir)
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

fn header_bytes(epoch: u64) -> [u8; HEADER_LEN as usize] {
    let mut h = [0u8; HEADER_LEN as usize];
    h[..8].copy_from_slice(MAGIC);
    h[8..].copy_from_slice(&epoch.to_le_bytes());
    h
}

fn write_manifest(dir: &Path, epoch: u64, fence: u64) -> Result<(), WalError> {
    let mut text = format!("simwal v1\nepoch {epoch}\n");
    if fence > 0 {
        // The fencing token: the minimum epoch this node may accept
        // writes at. Omitted when unset, so pre-failover manifests and
        // unfenced nodes keep the two-line format older readers expect.
        text.push_str(&format!("fence {fence}\n"));
    }
    atomic_write(&dir.join(MANIFEST_FILE), text.as_bytes())?;
    Ok(())
}

fn read_manifest(dir: &Path) -> Result<Option<(u64, u64)>, WalError> {
    let text = match fs::read_to_string(dir.join(MANIFEST_FILE)) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let mut lines = text.lines();
    if lines.next() != Some("simwal v1") {
        return Err(WalError::Corrupt(
            "manifest header is not `simwal v1`".into(),
        ));
    }
    let epoch = match lines.next().and_then(|l| l.strip_prefix("epoch ")) {
        Some(n) => n
            .trim()
            .parse()
            .map_err(|_| WalError::Corrupt("manifest epoch is not a number".into()))?,
        None => return Err(WalError::Corrupt("manifest has no epoch line".into())),
    };
    let fence = match lines.next().and_then(|l| l.strip_prefix("fence ")) {
        Some(n) => n
            .trim()
            .parse()
            .map_err(|_| WalError::Corrupt("manifest fence is not a number".into()))?,
        None => 0,
    };
    Ok(Some((epoch, fence)))
}

impl Wal {
    /// Opens (or creates) the WAL in `dir`, reconciling it against the
    /// paired snapshot's `snapshot_epoch`, and returns the log handle plus
    /// every intact frame of the current epoch for the caller to replay.
    ///
    /// Reconciliation, in order:
    /// - manifest epoch **ahead of** the snapshot → [`WalError::EpochMismatch`]
    ///   (this log belongs to some other index);
    /// - manifest epoch **behind** the snapshot → the crash hit between
    ///   snapshot install and manifest bump; the manifest is re-bumped and
    ///   the old-epoch log discarded (the snapshot already contains it);
    /// - log header epoch behind the manifest → same discard;
    /// - otherwise the frame body is scanned, the torn tail (if any)
    ///   physically truncated, and the intact frames returned.
    pub fn open(
        dir: &Path,
        policy: FsyncPolicy,
        snapshot_epoch: u64,
    ) -> Result<(Self, Vec<WalOp>, ReplayReport), WalError> {
        let lock = DirLock::acquire(dir)?;
        let manifest = read_manifest(dir)?;
        let fence = manifest.map_or(0, |(_, f)| f);
        let epoch = match manifest {
            Some((m, _)) if m > snapshot_epoch => {
                return Err(WalError::EpochMismatch {
                    wal: m,
                    snapshot: snapshot_epoch,
                })
            }
            Some((m, _)) if m == snapshot_epoch => m,
            _ => {
                // Missing or behind: (re)install the snapshot's epoch
                // (keeping any fencing token — a crash can never unfence
                // a demoted node).
                write_manifest(dir, snapshot_epoch, fence)?;
                snapshot_epoch
            }
        };

        let log_path = dir.join(LOG_FILE);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&log_path)?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;

        let mut report = ReplayReport {
            epoch,
            ..Default::default()
        };
        let mut ops = Vec::new();
        let fresh = |file: &mut File| -> Result<(), WalError> {
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(&header_bytes(epoch))?;
            file.sync_all()?;
            Ok(())
        };
        if buf.len() >= 8 && &buf[..8] != MAGIC {
            return Err(WalError::Corrupt(format!(
                "{} does not start with the SIMWALOG magic",
                log_path.display()
            )));
        }
        if buf.len() < HEADER_LEN as usize {
            // Brand-new log, or a crash tore the very first header write.
            fresh(&mut file)?;
        } else {
            let log_epoch = u64::from_le_bytes(buf[8..16].try_into().unwrap());
            if log_epoch > epoch {
                return Err(WalError::EpochMismatch {
                    wal: log_epoch,
                    snapshot: epoch,
                });
            }
            let (frames, consumed) = decode_frames(&buf[HEADER_LEN as usize..]);
            if log_epoch < epoch {
                // Every frame predates the checkpoint that defined
                // `epoch`; the snapshot already holds their effects.
                report.stale_frames = frames.len();
                fresh(&mut file)?;
            } else {
                let keep = HEADER_LEN + consumed as u64;
                let total = buf.len() as u64;
                if keep < total {
                    report.truncated_bytes = total - keep;
                    file.set_len(keep)?;
                    file.sync_all()?;
                }
                report.frames = frames.len();
                ops = frames;
            }
        }
        let good_len = file.seek(SeekFrom::End(0))?;
        // The fresh/truncate paths synced above; sync the clean path too,
        // so everything `open` read (possibly written-but-unsynced by the
        // previous owner) is durable and `durable_len` may start at
        // `good_len`.
        file.sync_all()?;
        sync_dir(dir)?;

        let wal = Self {
            dir: dir.to_path_buf(),
            policy,
            inner: Mutex::new(Inner {
                file,
                epoch,
                fence,
                since_sync: 0,
                good_len,
                durable_len: good_len,
                poisoned: false,
            }),
            appends: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            replayed: report.frames as u64,
            truncated: report.truncated_bytes,
            fail_next_append: AtomicBool::new(false),
            _lock: lock,
        };
        Ok((wal, ops, report))
    }

    /// Appends one frame, fsyncing according to the policy. The caller
    /// must have already *applied* the mutation — an op reaches the log
    /// only after it is true of the in-memory index, so replay order is
    /// apply order.
    pub fn append(&self, op: &WalOp) -> Result<(), WalError> {
        let _span = simobs::trace::span("wal.append");
        let frame = encode_frame(op);
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.poisoned {
            return Err(WalError::Poisoned {
                dir: self.dir.clone(),
            });
        }
        let wrote = if self.fail_next_append.swap(false, Ordering::Relaxed) {
            // Injected torn write: half the frame reaches the file, then
            // the device "fails" — what a full disk mid-append does.
            let _ = inner.file.write_all(&frame[..frame.len() / 2]);
            Err(std::io::Error::other("injected wal append fault"))
        } else {
            inner.file.write_all(&frame)
        };
        if let Err(e) = wrote {
            // The file may now end in a torn prefix of this frame. Rewind
            // to the last good frame so the failed (never-acknowledged)
            // append cannot sit in front of frames appended later; if the
            // rewind itself fails, poison the log so later mutations fail
            // instead of being acked-but-unrecoverable.
            let good = inner.good_len;
            let rewound =
                inner.file.set_len(good).is_ok() && inner.file.seek(SeekFrom::Start(good)).is_ok();
            inner.poisoned = !rewound;
            return Err(e.into());
        }
        inner.since_sync += 1;
        let due = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => inner.since_sync >= n,
            FsyncPolicy::Never => false,
        };
        if due {
            let _fsync_span = simobs::trace::span("wal.fsync");
            if let Err(e) = inner.file.sync_data() {
                // After a failed fsync the kernel may have dropped the
                // dirty tail; nothing past durable_len can be trusted.
                inner.poisoned = true;
                return Err(e.into());
            }
            inner.since_sync = 0;
            inner.durable_len = inner.good_len + frame.len() as u64;
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        inner.good_len += frame.len() as u64;
        self.appends.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Forces everything appended so far to stable storage, regardless of
    /// policy (the `SYNC` protocol op).
    pub fn sync(&self) -> Result<(), WalError> {
        let _span = simobs::trace::span("wal.fsync");
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.poisoned {
            return Err(WalError::Poisoned {
                dir: self.dir.clone(),
            });
        }
        if let Err(e) = inner.file.sync_data() {
            inner.poisoned = true;
            return Err(e.into());
        }
        inner.since_sync = 0;
        inner.durable_len = inner.good_len;
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Whether an earlier append/fsync failure left the log unusable (see
    /// [`WalError::Poisoned`]). A poisoned log still holds every frame
    /// appended before the failure; reopening replays that prefix.
    pub fn is_poisoned(&self) -> bool {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .poisoned
    }

    /// Arms a one-shot deterministic append fault (the `simwal` analogue
    /// of [`pagestore`'s `FaultyDisk::arm`]): the next [`Self::append`]
    /// writes only half its frame and then fails with an injected
    /// `Io` error, simulating a crash/full-disk mid-append. Used by the
    /// crash-consistency suites to exercise the rewind/poison path.
    pub fn arm_append_fault(&self) {
        self.fail_next_append.store(true, Ordering::Relaxed);
    }

    /// Completes a checkpoint: records `new_epoch` in the manifest, then
    /// resets the log to an empty file headed by `new_epoch`. The caller
    /// must have already installed a snapshot stamped with `new_epoch` —
    /// a crash before this call leaves the old manifest and a log the new
    /// snapshot supersedes, which [`Wal::open`] discards; a crash between
    /// the manifest bump and the log reset leaves a stale-epoch log,
    /// discarded the same way.
    pub fn install_epoch(&self, new_epoch: u64) -> Result<(), WalError> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        assert!(
            new_epoch > inner.epoch,
            "epoch must advance: {} -> {new_epoch}",
            inner.epoch
        );
        if inner.poisoned {
            return Err(WalError::Poisoned {
                dir: self.dir.clone(),
            });
        }
        // A manifest failure leaves the log file untouched (atomic_write
        // either installs the new manifest or leaves the old), so the old
        // epoch simply stays in force. A failure during the reset leaves
        // the file in an unknown half-reset state: poison.
        write_manifest(&self.dir, new_epoch, inner.fence)?;
        let reset = (|| {
            inner.file.set_len(0)?;
            inner.file.seek(SeekFrom::Start(0))?;
            inner.file.write_all(&header_bytes(new_epoch))?;
            inner.file.sync_all()
        })();
        if let Err(e) = reset {
            inner.poisoned = true;
            return Err(e.into());
        }
        inner.epoch = new_epoch;
        inner.since_sync = 0;
        inner.good_len = HEADER_LEN;
        inner.durable_len = HEADER_LEN;
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Reads back every durable-prefix frame with `lsn >= from_lsn`, up
    /// to `max` frames (`0` = unlimited) — the replication **catch-up
    /// reader**. A follower that reconnects mid-epoch names the next LSN
    /// it expects; this serves the already-on-disk tail without touching
    /// the append path's file handle (a fresh read handle, bounded by the
    /// `durable_len` snapshot, so a concurrent append can never expose a
    /// torn frame to the stream).
    ///
    /// Frames are made durable *before* they are served: a written but
    /// unsynced tail (`EveryN`/`Never` policies) is fsynced first, so a
    /// frame a follower holds can never be lost by a primary crash — the
    /// shipped prefix is always a prefix of what recovery replays. On a
    /// lazily-synced primary this amounts to group commit driven by
    /// follower polls.
    pub fn frames_since(&self, from_lsn: u64, max: usize) -> Result<Vec<WalOp>, WalError> {
        self.frames_since_hinted(from_lsn, max, None)
            .map(|(frames, _)| frames)
    }

    /// [`Self::frames_since`] with a resume cursor: `hint` is a
    /// `(lsn, byte offset)` pair from a previous call claiming the frame
    /// carrying `lsn` starts at `offset`. A valid hint for `from_lsn`
    /// makes the read O(frames served) instead of O(log) — the
    /// steady-state cost of one follower tailing one primary. A hint
    /// that is stale, out of bounds, or simply wrong (the bytes there
    /// don't decode to `from_lsn`) silently degrades to the full scan;
    /// it can never change which frames are returned. Returns the frames
    /// plus the cursor to pass next time.
    pub fn frames_since_hinted(
        &self,
        from_lsn: u64,
        max: usize,
        hint: Option<(u64, u64)>,
    ) -> Result<(Vec<WalOp>, (u64, u64)), WalError> {
        let durable_len = self.sync_for_read()?;
        if let Some((lsn, offset)) = hint {
            if lsn == from_lsn && (HEADER_LEN..=durable_len).contains(&offset) {
                let got = self.scan_frames(from_lsn, max, offset, durable_len)?;
                // Below `durable_len` every frame is intact, so an empty
                // or mis-LSN'd decode means the hint pointed at garbage
                // (e.g. the log was truncated and regrown) — rescan.
                match got.0.first() {
                    Some(op) if op.lsn() == from_lsn => return Ok(got),
                    None if offset == durable_len => return Ok(got),
                    _ => {}
                }
            }
        }
        self.scan_frames(from_lsn, max, HEADER_LEN, durable_len)
    }

    /// Extends the durable prefix over everything appended so far (the
    /// shipped-implies-durable half of the replication guarantee) and
    /// returns its length. A no-op holding the lock only briefly when
    /// the log is already fully synced (`FsyncPolicy::Always`, or no
    /// appends since the last poll).
    fn sync_for_read(&self) -> Result<u64, WalError> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.durable_len < inner.good_len {
            if inner.poisoned {
                // The tail past durable_len is unknowable; refusing the
                // read beats shipping frames that may not survive.
                return Err(WalError::Poisoned {
                    dir: self.dir.clone(),
                });
            }
            if let Err(e) = inner.file.sync_data() {
                inner.poisoned = true;
                return Err(e.into());
            }
            inner.since_sync = 0;
            inner.durable_len = inner.good_len;
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        Ok(inner.durable_len)
    }

    /// Length of the fsynced log prefix — the bytes a crash is
    /// guaranteed to keep (and the bound the catch-up reader serves
    /// under). Crash simulations truncate the file to this length.
    pub fn durable_len(&self) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .durable_len
    }

    /// Decodes frames with `lsn >= from_lsn` starting at byte `start`,
    /// bounded by the `durable_len` durable-prefix snapshot.
    fn scan_frames(
        &self,
        from_lsn: u64,
        max: usize,
        start: u64,
        durable_len: u64,
    ) -> Result<(Vec<WalOp>, (u64, u64)), WalError> {
        let mut file = File::open(self.dir.join(LOG_FILE))?;
        file.seek(SeekFrom::Start(start))?;
        let body = durable_len.saturating_sub(start);
        let mut out = Vec::new();
        let mut last_lsn = None;
        let mut iter = crate::frame::FrameIter::new(file.take(body));
        for frame in &mut iter {
            let op = frame?;
            last_lsn = Some(op.lsn());
            if op.lsn() >= from_lsn {
                out.push(op);
                if max != 0 && out.len() >= max {
                    break;
                }
            }
        }
        // LSNs are contiguous, so the frame after the last one decoded
        // (served or skipped) carries its LSN + 1 and starts right where
        // decoding stopped.
        let cursor = (
            last_lsn.map_or(from_lsn, |l| l + 1),
            start + iter.consumed(),
        );
        Ok((out, cursor))
    }

    /// The epoch the log is currently at.
    pub fn epoch(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).epoch
    }

    /// The fencing token: the minimum epoch this node may accept writes
    /// at (`0` = unfenced).
    pub fn fence(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).fence
    }

    /// Whether the fencing token forbids writes at the current epoch —
    /// a peer was promoted past this node's timeline and this node has
    /// not yet re-synced onto it.
    pub fn is_fenced(&self) -> bool {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.fence > inner.epoch
    }

    /// Persists a new fencing token (`0` clears it). Durable before it
    /// returns — a fenced node that crashes restarts fenced — and
    /// deliberately *not* gated on poisoning: fencing is a safety
    /// property, and refusing to fence a broken node would let it keep
    /// acknowledging writes the new timeline will never contain.
    pub fn set_fence(&self, fence: u64) -> Result<(), WalError> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.fence == fence {
            return Ok(());
        }
        write_manifest(&self.dir, inner.epoch, fence)?;
        inner.fence = fence;
        Ok(())
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The fsync policy the log was opened with.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// Counter snapshot for the stats surface.
    pub fn stats(&self) -> WalStats {
        WalStats {
            appends: self.appends.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            replayed: self.replayed,
            truncated_bytes: self.truncated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("simwal-log-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn ins(lsn: u64) -> WalOp {
        WalOp::Insert {
            lsn,
            global: lsn,
            local: lsn,
            values: vec![lsn as f64, -1.0],
        }
    }

    #[test]
    fn append_reopen_replays() {
        let dir = tmp("roundtrip");
        let ops: Vec<WalOp> = (0..5).map(ins).collect();
        {
            let (wal, replay, report) = Wal::open(&dir, FsyncPolicy::Always, 1).unwrap();
            assert!(replay.is_empty());
            assert_eq!(
                report,
                ReplayReport {
                    epoch: 1,
                    ..Default::default()
                }
            );
            for op in &ops {
                wal.append(op).unwrap();
            }
            assert_eq!(wal.stats().appends, 5);
            assert_eq!(wal.stats().fsyncs, 5);
        }
        let (wal, replay, report) = Wal::open(&dir, FsyncPolicy::Never, 1).unwrap();
        assert_eq!(replay, ops);
        assert_eq!(report.frames, 5);
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(wal.stats().replayed, 5);
        drop(wal);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = tmp("torn");
        {
            let (wal, _, _) = Wal::open(&dir, FsyncPolicy::Always, 1).unwrap();
            wal.append(&ins(0)).unwrap();
            wal.append(&ins(1)).unwrap();
        }
        // Simulate a crash mid-append: chop 3 bytes off the last frame.
        let log = dir.join(LOG_FILE);
        let len = fs::metadata(&log).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&log)
            .unwrap()
            .set_len(len - 3)
            .unwrap();
        let (_wal, replay, report) = Wal::open(&dir, FsyncPolicy::Always, 1).unwrap();
        assert_eq!(replay, vec![ins(0)]);
        assert_eq!(report.frames, 1);
        assert!(report.truncated_bytes > 0);
        // The truncation is physical: a third open sees a clean log.
        drop(_wal);
        let (_wal, replay, report) = Wal::open(&dir, FsyncPolicy::Always, 1).unwrap();
        assert_eq!(replay.len(), 1);
        assert_eq!(report.truncated_bytes, 0);
        drop(_wal);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_append_rewinds_so_later_frames_survive_replay() {
        let dir = tmp("rewind");
        {
            let (wal, _, _) = Wal::open(&dir, FsyncPolicy::Always, 1).unwrap();
            wal.append(&ins(0)).unwrap();
            wal.arm_append_fault();
            assert!(wal.append(&ins(1)).is_err(), "armed append must fail");
            // The torn half-frame was rewound, so the log stays usable
            // and the next append lands directly after frame 0 …
            assert!(!wal.is_poisoned());
            wal.append(&ins(2)).unwrap();
        }
        // … and replay sees both acknowledged frames, with no torn bytes
        // in between (without the rewind, frame 2 would sit behind the
        // torn region and be silently discarded here).
        let (_wal, replay, report) = Wal::open(&dir, FsyncPolicy::Always, 1).unwrap();
        assert_eq!(replay, vec![ins(0), ins(2)]);
        assert_eq!(report.truncated_bytes, 0);
        drop(_wal);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn frames_since_serves_the_durable_prefix() {
        let dir = tmp("since");
        let (wal, _, _) = Wal::open(&dir, FsyncPolicy::Never, 1).unwrap();
        for i in 1..=6 {
            wal.append(&ins(i)).unwrap();
        }
        // From the beginning, from mid-log, and from past the end.
        let all = wal.frames_since(0, 0).unwrap();
        assert_eq!(all, (1..=6).map(ins).collect::<Vec<_>>());
        let tail = wal.frames_since(4, 0).unwrap();
        assert_eq!(tail, (4..=6).map(ins).collect::<Vec<_>>());
        assert!(wal.frames_since(7, 0).unwrap().is_empty());
        // max caps the batch.
        let capped = wal.frames_since(2, 2).unwrap();
        assert_eq!(capped, vec![ins(2), ins(3)]);
        // A failed (rewound) append never reaches the stream.
        wal.arm_append_fault();
        assert!(wal.append(&ins(7)).is_err());
        assert!(wal.frames_since(7, 0).unwrap().is_empty());
        wal.append(&ins(8)).unwrap();
        assert_eq!(wal.frames_since(7, 0).unwrap(), vec![ins(8)]);
        drop(wal);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn frames_are_forced_durable_before_being_served() {
        let dir = tmp("durable");
        let (wal, _, _) = Wal::open(&dir, FsyncPolicy::Never, 1).unwrap();
        let base = wal.durable_len();
        assert_eq!(base, HEADER_LEN);
        for i in 1..=3 {
            wal.append(&ins(i)).unwrap();
        }
        // Never policy: the appends ride the page cache, so the durable
        // prefix still ends at the header …
        assert_eq!(wal.stats().fsyncs, 0);
        assert_eq!(wal.durable_len(), HEADER_LEN);
        // … until the catch-up reader serves them: shipping a frame
        // fsyncs it first, so a follower can never hold a frame a
        // primary crash would lose.
        let frames = wal.frames_since(1, 0).unwrap();
        assert_eq!(frames.len(), 3);
        assert_eq!(wal.stats().fsyncs, 1);
        let shipped = wal.durable_len();
        assert!(shipped > HEADER_LEN);
        // A further unpolled append lags again (and a caught-up re-read
        // does not re-sync) …
        let (none, _) = wal.frames_since_hinted(4, 0, None).unwrap();
        assert!(none.is_empty());
        assert_eq!(wal.stats().fsyncs, 1, "caught-up reads never re-sync");
        wal.append(&ins(4)).unwrap();
        assert_eq!(wal.durable_len(), shipped);
        // … and a crash losing everything past the durable prefix keeps
        // every served frame: truncate to durable_len and reopen.
        drop(wal);
        let log = dir.join(LOG_FILE);
        OpenOptions::new()
            .write(true)
            .open(&log)
            .unwrap()
            .set_len(shipped)
            .unwrap();
        let (_wal, replay, _) = Wal::open(&dir, FsyncPolicy::Never, 1).unwrap();
        assert_eq!(replay, (1..=3).map(ins).collect::<Vec<_>>());
        drop(_wal);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn hinted_reads_resume_and_reject_bad_cursors() {
        let dir = tmp("hinted");
        let (wal, _, _) = Wal::open(&dir, FsyncPolicy::Never, 1).unwrap();
        for i in 1..=6 {
            wal.append(&ins(i)).unwrap();
        }
        // Walking the log cursor-to-cursor serves exactly the frames a
        // full scan would, one batch at a time.
        let mut cursor = None;
        let mut got = Vec::new();
        let mut from = 1;
        loop {
            let (frames, next) = wal.frames_since_hinted(from, 2, cursor).unwrap();
            if frames.is_empty() {
                break;
            }
            from = frames.last().unwrap().lsn() + 1;
            got.extend(frames);
            cursor = Some(next);
        }
        assert_eq!(got, (1..=6).map(ins).collect::<Vec<_>>());
        // A caught-up cursor stays caught up until the next append…
        let caught_up = cursor.unwrap();
        let (frames, again) = wal.frames_since_hinted(7, 0, Some(caught_up)).unwrap();
        assert!(frames.is_empty());
        assert_eq!(again, caught_up);
        wal.append(&ins(7)).unwrap();
        let (frames, _) = wal.frames_since_hinted(7, 0, Some(caught_up)).unwrap();
        assert_eq!(frames, vec![ins(7)]);
        // … and a cursor pointing at garbage (mid-frame, or claiming the
        // wrong LSN) degrades to the full scan, never to wrong frames.
        for bad in [
            (3, caught_up.1),           // right offset, wrong LSN claim
            (3, caught_up.1 + 1),       // mid-frame offset
            (3, u64::MAX),              // out of bounds
            (2, super::HEADER_LEN + 3), // mid-frame near the top
        ] {
            let (frames, _) = wal.frames_since_hinted(bad.0, 0, Some(bad)).unwrap();
            assert_eq!(
                frames,
                wal.frames_since(bad.0, 0).unwrap(),
                "bad cursor {bad:?} must fall back to the scan"
            );
        }
        drop(wal);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_epoch_log_is_discarded() {
        let dir = tmp("stale");
        {
            let (wal, _, _) = Wal::open(&dir, FsyncPolicy::Always, 1).unwrap();
            wal.append(&ins(0)).unwrap();
        }
        // The snapshot has since checkpointed to epoch 2; the epoch-1
        // frames are inside it.
        let (wal, replay, report) = Wal::open(&dir, FsyncPolicy::Always, 2).unwrap();
        assert!(replay.is_empty());
        assert_eq!(report.stale_frames, 1);
        assert_eq!(wal.epoch(), 2);
        drop(wal);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_from_the_future_is_rejected() {
        let dir = tmp("future");
        {
            let (wal, _, _) = Wal::open(&dir, FsyncPolicy::Always, 5).unwrap();
            wal.append(&ins(0)).unwrap();
        }
        match Wal::open(&dir, FsyncPolicy::Always, 3) {
            Err(WalError::EpochMismatch {
                wal: 5,
                snapshot: 3,
            }) => {}
            other => panic!("expected EpochMismatch, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn install_epoch_resets_log() {
        let dir = tmp("install");
        {
            let (wal, _, _) = Wal::open(&dir, FsyncPolicy::Always, 1).unwrap();
            wal.append(&ins(0)).unwrap();
            wal.install_epoch(2).unwrap();
            assert_eq!(wal.epoch(), 2);
            wal.append(&ins(7)).unwrap();
        }
        let (wal, replay, report) = Wal::open(&dir, FsyncPolicy::Always, 2).unwrap();
        assert_eq!(replay, vec![ins(7)]);
        assert_eq!(report.epoch, 2);
        drop(wal);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_between_snapshot_and_manifest_bump() {
        // The snapshot reached epoch 2 but the manifest still says 1 and
        // the log still holds epoch-1 frames: open must re-bump the
        // manifest and discard the absorbed frames.
        let dir = tmp("halfckpt");
        {
            let (wal, _, _) = Wal::open(&dir, FsyncPolicy::Always, 1).unwrap();
            wal.append(&ins(0)).unwrap();
            wal.append(&ins(1)).unwrap();
        }
        let (wal, replay, report) = Wal::open(&dir, FsyncPolicy::Always, 2).unwrap();
        assert!(replay.is_empty());
        assert_eq!(report.stale_frames, 2);
        assert_eq!(report.epoch, 2);
        drop(wal);
        // And the manifest was persisted at 2.
        let (_wal, replay, _) = Wal::open(&dir, FsyncPolicy::Always, 2).unwrap();
        assert!(replay.is_empty());
        drop(_wal);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_n_batches_fsyncs() {
        let dir = tmp("everyn");
        let (wal, _, _) = Wal::open(&dir, FsyncPolicy::EveryN(3), 1).unwrap();
        for i in 0..7 {
            wal.append(&ins(i)).unwrap();
        }
        assert_eq!(wal.stats().appends, 7);
        assert_eq!(wal.stats().fsyncs, 2); // after frames 3 and 6
        wal.sync().unwrap();
        assert_eq!(wal.stats().fsyncs, 3);
        drop(wal);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn second_open_is_locked_out() {
        let dir = tmp("locked");
        let (wal, _, _) = Wal::open(&dir, FsyncPolicy::Never, 1).unwrap();
        match Wal::open(&dir, FsyncPolicy::Never, 1) {
            Err(WalError::Locked { .. }) => {}
            other => panic!("expected Locked, got {other:?}"),
        }
        drop(wal);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fence_persists_across_reopen_and_epoch_installs() {
        let dir = tmp("fence");
        {
            let (wal, _, _) = Wal::open(&dir, FsyncPolicy::Always, 1).unwrap();
            assert_eq!(wal.fence(), 0);
            assert!(!wal.is_fenced());
            // A higher-epoch peer fences this node.
            wal.set_fence(3).unwrap();
            assert_eq!(wal.fence(), 3);
            assert!(wal.is_fenced());
        }
        // The token survives a restart …
        {
            let (wal, _, _) = Wal::open(&dir, FsyncPolicy::Always, 1).unwrap();
            assert!(wal.is_fenced());
            // … and an epoch install below the fence keeps the node
            // fenced, while reaching the fence epoch unfences it.
            wal.install_epoch(2).unwrap();
            assert!(wal.is_fenced());
            wal.install_epoch(3).unwrap();
            assert_eq!(wal.fence(), 3);
            assert!(!wal.is_fenced());
        }
        let (wal, _, _) = Wal::open(&dir, FsyncPolicy::Always, 3).unwrap();
        assert_eq!(wal.fence(), 3);
        assert!(!wal.is_fenced());
        // Clearing drops the manifest line entirely (back to the
        // two-line format).
        wal.set_fence(0).unwrap();
        assert_eq!(wal.fence(), 0);
        let text = fs::read_to_string(dir.join(MANIFEST_FILE)).unwrap();
        assert_eq!(text, "simwal v1\nepoch 3\n");
        drop(wal);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unfenced_manifest_reads_as_fence_zero() {
        let dir = tmp("nofence");
        {
            let (wal, _, _) = Wal::open(&dir, FsyncPolicy::Always, 1).unwrap();
            wal.append(&ins(0)).unwrap();
        }
        // Pre-failover manifests have no fence line at all.
        let text = fs::read_to_string(dir.join(MANIFEST_FILE)).unwrap();
        assert_eq!(text, "simwal v1\nepoch 1\n");
        let (wal, replay, _) = Wal::open(&dir, FsyncPolicy::Always, 1).unwrap();
        assert_eq!(wal.fence(), 0);
        assert_eq!(replay.len(), 1);
        drop(wal);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn policy_parse() {
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("never"), Some(FsyncPolicy::Never));
        assert_eq!(FsyncPolicy::parse("1"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("64"), Some(FsyncPolicy::EveryN(64)));
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
    }
}
