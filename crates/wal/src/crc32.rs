//! CRC-32 (IEEE 802.3, the `zlib`/`gzip` polynomial), table-driven and
//! in-tree — the workspace carries no external crates. Guards every WAL
//! frame payload: a torn or bit-flipped frame fails its checksum and is
//! treated as the end of the log rather than replayed.

/// 256-entry lookup table for the reflected polynomial `0xEDB88320`,
/// built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `bytes` (initial value `0xFFFF_FFFF`, final XOR, reflected —
/// byte-identical to `zlib`'s `crc32`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Reference values from the CRC catalogue (CRC-32/ISO-HDLC).
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut frame = vec![0xA5u8; 64];
        let good = crc32(&frame);
        frame[17] ^= 0x04;
        assert_ne!(crc32(&frame), good);
    }
}
