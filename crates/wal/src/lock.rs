//! Advisory directory locks.
//!
//! A `LOCK` file created with `create_new` holds the owning pid. Two
//! processes replaying and appending to the same WAL — or checkpointing
//! the same index directory — would silently corrupt each other, so every
//! opener ([`simquery`]'s `SeqIndex::open`, `simshard`'s
//! `ShardedIndex::open`, and [`crate::Wal::open`]) takes the lock first
//! and surfaces [`crate::WalError::Locked`] instead of proceeding.
//! Read-only consumers use the `open_read_only` variants, which skip the
//! lock: rename-based atomic saves keep a concurrent reader consistent.
//!
//! The lock is advisory and crash-tolerant: if the recorded pid is no
//! longer alive (checked via `/proc/<pid>` on Linux) the stale file is
//! removed and acquisition retried. Dropping the guard releases the lock;
//! a missing file at drop time is tolerated, since tests and operators
//! legitimately remove whole directories while a guard is live.

use crate::WalError;
use std::fs;
use std::io::ErrorKind;
use std::path::{Path, PathBuf};

/// Name of the lock file inside a locked directory.
pub const LOCK_FILE: &str = "LOCK";

/// An acquired advisory lock on one directory. Released on drop.
#[derive(Debug)]
pub struct DirLock {
    path: PathBuf,
}

impl DirLock {
    /// Acquires the lock for `dir`, creating the directory if needed.
    ///
    /// Fails with [`WalError::Locked`] when another *live* process holds
    /// it; a lock left behind by a dead process is stolen. The
    /// steal-and-retry loop is bounded so two racing openers cannot spin
    /// forever on each other's fresh locks.
    pub fn acquire(dir: &Path) -> Result<Self, WalError> {
        fs::create_dir_all(dir)?;
        let path = dir.join(LOCK_FILE);
        for _ in 0..4 {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(f) => {
                    use std::io::Write as _;
                    let mut f = f;
                    let _ = write!(f, "{}", std::process::id());
                    let _ = f.sync_all();
                    return Ok(Self { path });
                }
                Err(e) if e.kind() == ErrorKind::AlreadyExists => {
                    let pid = fs::read_to_string(&path)
                        .ok()
                        .and_then(|s| s.trim().parse::<u32>().ok());
                    match pid {
                        Some(pid) if pid_alive(pid) => {
                            return Err(WalError::Locked {
                                dir: dir.to_path_buf(),
                                pid,
                            })
                        }
                        // Dead owner or unreadable file: steal and retry.
                        // The unlink can race another stealer; ignore.
                        _ => {
                            let _ = fs::remove_file(&path);
                        }
                    }
                }
                Err(e) => return Err(WalError::Io(e)),
            }
        }
        Err(WalError::Locked {
            dir: dir.to_path_buf(),
            pid: 0,
        })
    }

    /// The directory this guard protects.
    pub fn dir(&self) -> &Path {
        self.path.parent().unwrap_or_else(|| Path::new("."))
    }
}

impl Drop for DirLock {
    fn drop(&mut self) {
        // Tolerate a vanished file (the whole directory may be gone).
        let _ = fs::remove_file(&self.path);
    }
}

/// Whether `pid` names a live process. Uses `/proc` where available;
/// elsewhere assumes dead, which errs toward stealing a lock rather than
/// wedging recovery behind a pid file no one can ever clear.
fn pid_alive(pid: u32) -> bool {
    if pid == std::process::id() {
        return true;
    }
    if Path::new("/proc").is_dir() {
        Path::new(&format!("/proc/{pid}")).exists()
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("simwal-lock-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn second_acquire_reports_owner() {
        let dir = tmp("second");
        let guard = DirLock::acquire(&dir).unwrap();
        match DirLock::acquire(&dir) {
            Err(WalError::Locked { pid, .. }) => assert_eq!(pid, std::process::id()),
            other => panic!("expected Locked, got {other:?}"),
        }
        drop(guard);
        let again = DirLock::acquire(&dir).unwrap();
        drop(again);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_lock_is_stolen() {
        let dir = tmp("stale");
        fs::create_dir_all(&dir).unwrap();
        // Pid u32::MAX - 1 exceeds any real pid_max; the owner is dead.
        fs::write(dir.join(LOCK_FILE), format!("{}", u32::MAX - 1)).unwrap();
        let guard = DirLock::acquire(&dir).expect("stale lock should be stolen");
        drop(guard);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_lock_is_stolen() {
        let dir = tmp("garbage");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(LOCK_FILE), "not a pid").unwrap();
        let guard = DirLock::acquire(&dir).unwrap();
        drop(guard);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn drop_tolerates_missing_file() {
        let dir = tmp("missing");
        let guard = DirLock::acquire(&dir).unwrap();
        fs::remove_dir_all(&dir).unwrap();
        drop(guard); // must not panic
    }
}
