#![warn(missing_docs)]
//! # simwal — durability substrate for `simseq`
//!
//! A checksummed, length-prefixed append-only operation log with an
//! epoch-stamped header, torn-tail detection, configurable fsync policy,
//! and a checkpoint protocol. Indexes apply a mutation first, append the
//! matching [`WalOp`] frame before acknowledging it, and on restart replay
//! the tail of the log on top of the last checkpointed snapshot — so the
//! recovered state is always an exact *prefix* of the acknowledged
//! mutation schedule, never a rearrangement and never garbage.
//!
//! The crate is deliberately index-agnostic: it knows how to make frames
//! durable and how to hand them back after a crash, nothing else. The
//! replay semantics (idempotent apply, cross-shard ordering) live with the
//! index layers in `simquery::shared` and `simshard::index`.
//!
//! On-disk layout of a WAL directory:
//!
//! ```text
//! <dir>/MANIFEST   "simwal v1\nepoch N\n"      (temp + rename, fsynced)
//! <dir>/wal.log    [magic "SIMWALOG"][epoch u64 LE] then frames
//! <dir>/LOCK       advisory lock, pid of the owning process
//! ```
//!
//! Frame format (little-endian): `[len u32][crc32 u32][payload]`, where
//! the CRC covers the payload only and `len` is the payload length. A
//! frame whose length prefix overruns the file, whose CRC mismatches, or
//! whose payload fails to decode marks a *torn tail*: [`Wal::open`]
//! truncates the log there and reports the dropped byte count instead of
//! erroring — a crash mid-append is an expected state, not corruption.
//!
//! Checkpoint protocol (orchestrated by the caller, who owns the
//! snapshot): write the snapshot atomically stamped with `epoch + 1`, then
//! call [`Wal::install_epoch`]`(epoch + 1)`, which bumps the manifest and
//! resets the log, in that order. Every crash point in that sequence is
//! recoverable: [`Wal::open`] reconciles the snapshot epoch the caller
//! passes in against the manifest and the log header, discarding a log
//! that a newer snapshot has already absorbed.

pub mod crc32;
pub mod frame;
pub mod lock;
mod log;

pub use frame::{decode_frames, encode_frame, FrameIter, WalOp};
pub use lock::DirLock;
pub use log::{FsyncPolicy, ReplayReport, Wal, WalStats, HEADER_LEN, LOG_FILE, MANIFEST_FILE};

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Errors raised by the durability layer.
#[derive(Debug)]
pub enum WalError {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// The directory is locked by another live process.
    Locked {
        /// Directory whose `LOCK` file is held.
        dir: PathBuf,
        /// Pid recorded in the lock file.
        pid: u32,
    },
    /// The directory contents are not a WAL (bad magic, mangled manifest).
    /// Torn tails are *not* corruption — they are truncated silently.
    Corrupt(String),
    /// The log's epoch is ahead of the snapshot it is paired with: the
    /// WAL belongs to a different (or newer) index directory.
    EpochMismatch {
        /// Epoch found in the log/manifest.
        wal: u64,
        /// Epoch the paired snapshot expects.
        snapshot: u64,
    },
    /// An earlier append or fsync failed in a way that left the log tail
    /// in an unknown state (the rewind to the last good frame itself
    /// failed, or an fsync error made the page cache untrustworthy).
    /// Every further append is refused: acknowledging a mutation after
    /// the torn region would be acked-but-unrecoverable, because replay
    /// truncates at the first bad frame.
    Poisoned {
        /// Directory of the poisoned log.
        dir: PathBuf,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "wal i/o failed: {e}"),
            Self::Locked { dir, pid } => {
                write!(f, "{} is locked by live process {pid}", dir.display())
            }
            Self::Corrupt(what) => write!(f, "wal directory corrupt: {what}"),
            Self::EpochMismatch { wal, snapshot } => write!(
                f,
                "wal epoch {wal} is ahead of snapshot epoch {snapshot}: \
                 log and index directories do not belong together"
            ),
            Self::Poisoned { dir } => write!(
                f,
                "wal at {} is poisoned by an earlier append/fsync failure; \
                 reopen to recover the acknowledged prefix",
                dir.display()
            ),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// fsync, rename over the target, fsync the directory. The unit of
/// durability every manifest and metadata pointer in the workspace relies
/// on — after a crash the file holds either the old bytes or the new,
/// never a mix.
pub fn atomic_write(path: &std::path::Path, bytes: &[u8]) -> io::Result<()> {
    use std::io::Write as _;
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    sync_dir(path.parent().unwrap_or_else(|| std::path::Path::new(".")))
}

/// Fsyncs a directory so a rename performed inside it survives a crash.
/// Best-effort on filesystems that refuse to open directories.
pub fn sync_dir(dir: &std::path::Path) -> io::Result<()> {
    match std::fs::File::open(dir) {
        Ok(d) => d.sync_all().or(Ok(())),
        Err(_) => Ok(()),
    }
}
