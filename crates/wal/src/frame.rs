//! Logical WAL operations and their wire encoding.
//!
//! Each frame is `[len u32 LE][crc32 u32 LE][payload]`; the CRC covers the
//! payload only. Payloads:
//!
//! ```text
//! insert: [tag=1][lsn u64][global u64][local u64][count u32][count × f64]
//! delete: [tag=2][lsn u64][global u64][local u64]
//! ```
//!
//! Every frame carries an **LSN** — a log sequence number that is globally
//! monotone across all shards of one index (allocated from a single
//! counter under the mutation guard). Single-index logs replay in file
//! order; sharded recovery merges all per-shard logs by LSN and stops at
//! the first gap, which restores exactly the acknowledged prefix of the
//! mutation schedule. `global`/`local` are the global ordinal and the
//! shard-local ordinal of the affected sequence (equal for single-index
//! deployments, where the shard is the index).

use crate::crc32::crc32;

/// Hard ceiling on one frame's payload (16 MiB ≈ a two-million-point
/// series). A length prefix above this is treated as a torn tail, not an
/// allocation request — it bounds what a corrupt length byte can make
/// [`decode_frames`] try to read.
pub const MAX_PAYLOAD: u32 = 16 << 20;

const TAG_INSERT: u8 = 1;
const TAG_DELETE: u8 = 2;

/// One logged mutation.
#[derive(Clone, Debug, PartialEq)]
pub enum WalOp {
    /// A sequence was appended to the index.
    Insert {
        /// Globally monotone log sequence number.
        lsn: u64,
        /// Global ordinal the insert was acknowledged with.
        global: u64,
        /// Ordinal inside the owning shard (== `global` when unsharded).
        local: u64,
        /// The raw series values, so replay can re-run the insert.
        values: Vec<f64>,
    },
    /// A sequence was tombstoned.
    Delete {
        /// Globally monotone log sequence number.
        lsn: u64,
        /// Global ordinal that was deleted.
        global: u64,
        /// Ordinal inside the owning shard (== `global` when unsharded).
        local: u64,
    },
}

impl WalOp {
    /// The frame's log sequence number.
    pub fn lsn(&self) -> u64 {
        match self {
            Self::Insert { lsn, .. } | Self::Delete { lsn, .. } => *lsn,
        }
    }
}

/// Encodes `op` as a complete frame (length prefix + CRC + payload).
pub fn encode_frame(op: &WalOp) -> Vec<u8> {
    let mut payload = Vec::new();
    match op {
        WalOp::Insert {
            lsn,
            global,
            local,
            values,
        } => {
            payload.push(TAG_INSERT);
            payload.extend_from_slice(&lsn.to_le_bytes());
            payload.extend_from_slice(&global.to_le_bytes());
            payload.extend_from_slice(&local.to_le_bytes());
            payload.extend_from_slice(&(values.len() as u32).to_le_bytes());
            for v in values {
                payload.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        WalOp::Delete { lsn, global, local } => {
            payload.push(TAG_DELETE);
            payload.extend_from_slice(&lsn.to_le_bytes());
            payload.extend_from_slice(&global.to_le_bytes());
            payload.extend_from_slice(&local.to_le_bytes());
        }
    }
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

fn read_u64(payload: &[u8], at: usize) -> Option<u64> {
    Some(u64::from_le_bytes(
        payload.get(at..at + 8)?.try_into().ok()?,
    ))
}

/// Decodes one payload (past the length/CRC header). `None` means the
/// payload is malformed — callers treat that exactly like a CRC failure.
fn decode_payload(payload: &[u8]) -> Option<WalOp> {
    let tag = *payload.first()?;
    let lsn = read_u64(payload, 1)?;
    let global = read_u64(payload, 9)?;
    let local = read_u64(payload, 17)?;
    match tag {
        TAG_INSERT => {
            let count = u32::from_le_bytes(payload.get(25..29)?.try_into().ok()?) as usize;
            let bytes = payload.get(29..)?;
            if bytes.len() != count * 8 {
                return None;
            }
            let values = bytes
                .chunks_exact(8)
                .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap())))
                .collect();
            Some(WalOp::Insert {
                lsn,
                global,
                local,
                values,
            })
        }
        TAG_DELETE if payload.len() == 25 => Some(WalOp::Delete { lsn, global, local }),
        _ => None,
    }
}

/// An incremental decoder over any byte stream of concatenated frames —
/// the streaming counterpart of [`decode_frames`], used by the
/// replication catch-up reader ([`crate::Wal::frames_since`]) so a
/// primary can serialise frames to a follower without slurping the whole
/// log into memory at once.
///
/// Iteration yields every intact frame in order and then ends. A torn
/// tail (short header, oversized length, CRC mismatch, undecodable
/// payload) ends the stream exactly like [`decode_frames`] truncating
/// there; an I/O error from the underlying reader surfaces as one
/// `Err` item and also ends the stream.
pub struct FrameIter<R> {
    reader: R,
    buf: Vec<u8>,
    /// Offset of the first unconsumed byte in `buf`.
    at: usize,
    /// Total bytes of frames yielded so far (see [`Self::consumed`]).
    consumed: u64,
    eof: bool,
    done: bool,
}

impl<R: std::io::Read> FrameIter<R> {
    /// Starts decoding frames from `reader` (positioned past any file
    /// header — the stream must start at a frame boundary).
    pub fn new(reader: R) -> Self {
        Self {
            reader,
            buf: Vec::new(),
            at: 0,
            consumed: 0,
            eof: false,
            done: false,
        }
    }

    /// Total encoded bytes of every frame yielded so far — i.e. the
    /// stream offset of the next frame boundary. Lets a catch-up reader
    /// remember where a served frame ended and resume there instead of
    /// rescanning the log from the top.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Tries to decode one frame from the buffered bytes. `None` means
    /// more bytes are needed (or the tail is torn — distinguished by
    /// `eof`).
    fn decode_buffered(&mut self) -> Option<WalOp> {
        let buf = &self.buf[self.at..];
        if buf.len() < 8 {
            return None;
        }
        let len = u32::from_le_bytes(buf[..4].try_into().unwrap());
        let crc = u32::from_le_bytes(buf[4..8].try_into().unwrap());
        if len > MAX_PAYLOAD {
            self.done = true; // corrupt length: torn tail, stream over
            return None;
        }
        let end = 8 + len as usize;
        if buf.len() < end {
            return None;
        }
        let payload = &buf[8..end];
        if crc32(payload) != crc {
            self.done = true;
            return None;
        }
        match decode_payload(payload) {
            Some(op) => {
                self.at += end;
                self.consumed += end as u64;
                Some(op)
            }
            None => {
                self.done = true;
                None
            }
        }
    }
}

impl<R: std::io::Read> Iterator for FrameIter<R> {
    type Item = Result<WalOp, std::io::Error>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.done {
                return None;
            }
            if let Some(op) = self.decode_buffered() {
                return Some(Ok(op));
            }
            if self.done || self.eof {
                // A partial frame at EOF is a torn tail: end of stream.
                self.done = true;
                return None;
            }
            // Compact consumed bytes, then pull the next chunk.
            self.buf.drain(..self.at);
            self.at = 0;
            let mut chunk = [0u8; 64 * 1024];
            match self.reader.read(&mut chunk) {
                Ok(0) => self.eof = true,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

/// Walks a buffer of concatenated frames, returning every intact frame and
/// the byte offset where the intact prefix ends. Anything after that
/// offset — a short header, a length overrunning the buffer, a CRC
/// mismatch, an undecodable payload — is the torn tail a crash mid-append
/// leaves behind; the caller truncates the file there.
pub fn decode_frames(buf: &[u8]) -> (Vec<WalOp>, usize) {
    let mut ops = Vec::new();
    let mut at = 0usize;
    while buf.len() - at >= 8 {
        let len = u32::from_le_bytes(buf[at..at + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(buf[at + 4..at + 8].try_into().unwrap());
        if len > MAX_PAYLOAD {
            break;
        }
        let (start, end) = (at + 8, at + 8 + len as usize);
        if end > buf.len() {
            break;
        }
        let payload = &buf[start..end];
        if crc32(payload) != crc {
            break;
        }
        match decode_payload(payload) {
            Some(op) => ops.push(op),
            None => break,
        }
        at = end;
    }
    (ops, at)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<WalOp> {
        vec![
            WalOp::Insert {
                lsn: 1,
                global: 7,
                local: 3,
                values: vec![0.25, -1.5, f64::MIN_POSITIVE, 1e300],
            },
            WalOp::Delete {
                lsn: 2,
                global: 4,
                local: 1,
            },
            WalOp::Insert {
                lsn: 3,
                global: 8,
                local: 4,
                values: vec![],
            },
        ]
    }

    #[test]
    fn roundtrip() {
        let ops = sample_ops();
        let mut buf = Vec::new();
        for op in &ops {
            buf.extend_from_slice(&encode_frame(op));
        }
        let (back, consumed) = decode_frames(&buf);
        assert_eq!(back, ops);
        assert_eq!(consumed, buf.len());
    }

    #[test]
    fn every_cut_is_a_prefix() {
        let ops = sample_ops();
        let mut buf = Vec::new();
        let mut boundaries = vec![0usize];
        for op in &ops {
            buf.extend_from_slice(&encode_frame(op));
            boundaries.push(buf.len());
        }
        for cut in 0..=buf.len() {
            let (back, consumed) = decode_frames(&buf[..cut]);
            let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(back.len(), whole, "cut at {cut}");
            assert_eq!(back.as_slice(), &ops[..whole], "cut at {cut}");
            assert_eq!(consumed, boundaries[whole], "cut at {cut}");
        }
    }

    #[test]
    fn bit_flip_stops_decode() {
        let ops = sample_ops();
        let mut buf = Vec::new();
        for op in &ops {
            buf.extend_from_slice(&encode_frame(op));
        }
        let first = encode_frame(&ops[0]).len();
        // Flip a payload byte of the second frame: frame 1 survives,
        // frames 2..N are dropped.
        buf[first + 12] ^= 0x40;
        let (back, consumed) = decode_frames(&buf);
        assert_eq!(back.as_slice(), &ops[..1]);
        assert_eq!(consumed, first);
    }

    #[test]
    fn frame_iter_matches_decode_frames() {
        let ops = sample_ops();
        let mut buf = Vec::new();
        for op in &ops {
            buf.extend_from_slice(&encode_frame(op));
        }
        let got: Vec<WalOp> = FrameIter::new(std::io::Cursor::new(&buf))
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(got, ops);
    }

    #[test]
    fn frame_iter_stops_at_torn_tail_on_every_cut() {
        let ops = sample_ops();
        let mut buf = Vec::new();
        let mut boundaries = vec![0usize];
        for op in &ops {
            buf.extend_from_slice(&encode_frame(op));
            boundaries.push(buf.len());
        }
        for cut in 0..=buf.len() {
            let got: Vec<WalOp> = FrameIter::new(std::io::Cursor::new(&buf[..cut]))
                .map(|r| r.unwrap())
                .collect();
            let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(got.as_slice(), &ops[..whole], "cut at {cut}");
        }
    }

    #[test]
    fn frame_iter_surfaces_read_errors() {
        struct Failing;
        impl std::io::Read for Failing {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("injected"))
            }
        }
        let mut it = FrameIter::new(Failing);
        assert!(it.next().unwrap().is_err());
        assert!(it.next().is_none(), "stream ends after the error");
    }

    #[test]
    fn absurd_length_prefix_is_a_torn_tail() {
        let mut buf = encode_frame(&WalOp::Delete {
            lsn: 9,
            global: 0,
            local: 0,
        });
        let keep = buf.len();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&[0u8; 64]);
        let (back, consumed) = decode_frames(&buf);
        assert_eq!(back.len(), 1);
        assert_eq!(consumed, keep);
    }
}
