//! The query-planning layer: logical query → physical plan → execution.
//!
//! The paper's central question is not *whether* a similarity query can be
//! answered but *how cheaply*: sequential scan, one traversal per
//! transformation (ST), or one traversal per transformation *rectangle*
//! (MT), with Eq. 18–20 pricing the choice and §4.3 deciding how many
//! rectangles. Historically each consumer of this crate (server, shard
//! gather, CLI) hard-coded that decision at its own call site. This module
//! makes it first-class:
//!
//! * [`LogicalQuery`] — the verb-level IR (range / kNN / join over a
//!   transformation family). Similarity *expressions* (§3's algebra,
//!   [`crate::expr::SimilarityExpr`]) enter the IR through
//!   [`LogicalQuery::range_expr`], which applies the Eq. 10–11 rewrite
//!   rules as a plan-level rewrite.
//! * [`Planner`] — lowers a logical query to a [`PhysicalPlan`]: an engine
//!   choice plus MBR partitioning, priced by [`CostModel`] (Eq. 18–20) from
//!   runtime statistics ([`StatsRegistry`]) when available, and from the
//!   analytical node-access estimate otherwise.
//! * [`execute_plan`] — the single dispatch point into the engines; every
//!   execution feeds its measured cost back into the registry.
//! * [`PlanCache`] — a bounded LRU result cache keyed on
//!   `(fingerprint, QueryEpoch)`; the epoch is the WAL checkpoint epoch
//!   plus a mutation counter, so any insert/delete invalidates cached
//!   results without explicit bookkeeping.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use pagestore::sync::Mutex;
use pagestore::PAGE_SIZE;
use tseries::TimeSeries;

use crate::cost::{analytic_disk_accesses, CostModel};
use crate::engine::{join, knn, mtindex, seqscan, stindex};
use crate::expr::SimilarityExpr;
use crate::feature::{SeqFeatures, DIMS};
use crate::index::SeqIndex;
use crate::partition::{partition, PartitionStrategy};
use crate::query::{expansion, FilterPolicy, QueryMode, RangeSpec, Threshold};
use crate::report::{EngineMetrics, JoinResult, Match, QueryError, QueryResult};
use crate::stats::StatsRegistry;
use crate::tmbr::TransformMbr;
use crate::transform::Family;

/// The three query-processing algorithms of §4.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EngineChoice {
    /// Sequential scan (`|S|·|T|` comparisons).
    Scan,
    /// Single Transformation at a time — one traversal per transformation.
    St,
    /// Multiple Transformations at a time — Algorithm 1.
    Mt,
}

impl EngineChoice {
    /// Wire/CLI name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Self::Scan => "scan",
            Self::St => "st",
            Self::Mt => "mt",
        }
    }
}

/// Whether the planner may choose the engine or must obey the caller.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum EnginePref {
    /// Cost-based choice (Eq. 18–20).
    #[default]
    Auto,
    /// Forced engine (the paper's per-algorithm experiments; also what a
    /// parity test uses to pin each side of a comparison).
    Force(EngineChoice),
}

/// The verb of a logical query.
#[derive(Clone, Debug, PartialEq)]
pub enum LogicalVerb {
    /// Query 1 — all `(sequence, transformation)` pairs within ε.
    Range,
    /// Query 3 — the k nearest sequences under the best family member.
    Knn {
        /// Number of neighbours.
        k: usize,
    },
    /// Query 2 — the self-join within ε.
    Join,
}

/// The logical IR: verb × transformation family × threshold spec.
#[derive(Clone, Debug)]
pub struct LogicalQuery {
    /// The transformation family (post-rewrite, Eq. 10–11).
    pub family: Family,
    /// The verb.
    pub verb: LogicalVerb,
    /// Threshold, filter policy, and query mode. For kNN only the policy
    /// and mode matter (the threshold is found, not given).
    pub spec: RangeSpec,
    /// Engine preference.
    pub engine: EnginePref,
}

impl LogicalQuery {
    /// A range query over `family`.
    pub fn range(family: Family, spec: RangeSpec) -> Self {
        Self {
            family,
            verb: LogicalVerb::Range,
            spec,
            engine: EnginePref::Auto,
        }
    }

    /// A range query over a similarity expression: the Eq. 10–11 rewrite
    /// rules run here, as plan-level rewrites, producing the flat family
    /// the engines index against.
    pub fn range_expr(expr: &SimilarityExpr, spec: RangeSpec) -> Self {
        Self::range(expr.rewrite(), spec)
    }

    /// A k-nearest-neighbour query over `family`.
    pub fn knn(family: Family, k: usize) -> Self {
        Self {
            family,
            verb: LogicalVerb::Knn { k },
            spec: RangeSpec::euclidean(0.0),
            engine: EnginePref::Auto,
        }
    }

    /// A self-join over `family`.
    pub fn join(family: Family, spec: RangeSpec) -> Self {
        Self {
            family,
            verb: LogicalVerb::Join,
            spec,
            engine: EnginePref::Auto,
        }
    }

    /// Overrides the engine preference.
    pub fn with_engine(mut self, engine: EnginePref) -> Self {
        self.engine = engine;
        self
    }

    /// A stable fingerprint of this query (and, when given, the query
    /// sequence) — the result-cache key material. Two queries with equal
    /// fingerprints produce identical results against the same epoch.
    pub fn fingerprint(&self, query: Option<&TimeSeries>) -> u64 {
        let mut h = Fnv::new();
        match &self.verb {
            LogicalVerb::Range => h.byte(1),
            LogicalVerb::Knn { k } => {
                h.byte(2);
                h.u64(*k as u64);
            }
            LogicalVerb::Join => h.byte(3),
        }
        match self.spec.threshold {
            Threshold::Euclidean(e) => {
                h.byte(10);
                h.u64(e.to_bits());
            }
            Threshold::Correlation(r) => {
                h.byte(11);
                h.u64(r.to_bits());
            }
        }
        h.byte(match self.spec.policy {
            FilterPolicy::Paper => 20,
            FilterPolicy::Safe => 21,
            FilterPolicy::Adaptive => 22,
        });
        h.byte(match self.spec.mode {
            QueryMode::Symmetric => 30,
            QueryMode::DataOnly => 31,
        });
        match self.engine {
            EnginePref::Auto => h.byte(40),
            EnginePref::Force(e) => h.byte(match e {
                EngineChoice::Scan => 41,
                EngineChoice::St => 42,
                EngineChoice::Mt => 43,
            }),
        }
        h.bytes(self.family.name().as_bytes());
        h.u64(self.family.len() as u64);
        for t in self.family.transforms() {
            h.bytes(t.label().as_bytes());
            h.byte(0xfe);
        }
        if let Some(ts) = query {
            h.u64(ts.len() as u64);
            for &v in ts.values() {
                h.u64(v.to_bits());
            }
        }
        h.finish()
    }
}

/// FNV-1a, 64-bit — enough for a cache key, no dependencies.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }
    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x1_0000_01b3);
    }
    fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.byte(b);
        }
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// How the planner arrived at its engine choice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChosenBy {
    /// The caller forced the engine.
    Forced,
    /// Eq. 18–20 over measured statistics and/or the analytical estimate.
    CostModel,
    /// The verb admits only one strategy (kNN's best-first search).
    OnlyOption,
}

impl ChosenBy {
    /// Stable label (CLI/`EXPLAIN` output).
    pub fn as_str(&self) -> &'static str {
        match self {
            Self::Forced => "forced",
            Self::CostModel => "cost-model",
            Self::OnlyOption => "only-option",
        }
    }
}

/// The physical plan: engine, partitioning, fan-out shape, estimates.
#[derive(Clone, Debug)]
pub struct PhysicalPlan {
    /// Chosen engine.
    pub engine: EngineChoice,
    /// Transformation rectangles for the MT engine (empty otherwise).
    pub mbrs: Vec<TransformMbr>,
    /// Shards this plan fans out over (1 = single index).
    pub fanout: usize,
    /// Scatter threads the distributed executor should use.
    pub threads: usize,
    /// Estimated index node accesses.
    pub est_nodes: f64,
    /// Estimated record/heap page accesses.
    pub est_pages: f64,
    /// Estimated distance computations.
    pub est_comparisons: f64,
    /// Eq. 18–20 cost of the chosen alternative.
    pub est_cost: f64,
    /// Provenance of the choice.
    pub chosen_by: ChosenBy,
}

impl PhysicalPlan {
    /// Number of transformation rectangles (0 for non-MT plans).
    pub fn partitions(&self) -> usize {
        self.mbrs.len()
    }
}

/// Per-engine cost estimate produced while planning.
#[derive(Clone, Debug)]
struct Estimate {
    nodes: f64,
    pages: f64,
    comparisons: f64,
    cost: f64,
    mbrs: Vec<TransformMbr>,
}

/// The cost-based planner. Stateless apart from its model constants; all
/// memory lives in the [`StatsRegistry`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Planner {
    /// Cost constants (Fig. 8 calibration by default).
    pub model: CostModel,
}

/// Minimum recorded queries before measured statistics override the
/// analytical estimate.
const STATS_MIN_QUERIES: u64 = 3;

impl Planner {
    /// A planner with the paper's Fig. 8 cost calibration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lowers `lq` to a physical plan against `index`. The query sequence,
    /// when available, sharpens the MT estimate (per-rectangle window
    /// placement); planning never touches the record heap.
    pub fn plan(
        &self,
        index: &SeqIndex,
        stats: &StatsRegistry,
        lq: &LogicalQuery,
        query: Option<&TimeSeries>,
    ) -> Result<PhysicalPlan, QueryError> {
        let _span = simobs::trace::span("plan.build");
        stats.note_plan_built();
        if let LogicalVerb::Knn { .. } = lq.verb {
            // kNN is answered by best-first search over the one index
            // structure; there is no engine alternative to price.
            return Ok(PhysicalPlan {
                engine: EngineChoice::Mt,
                mbrs: vec![TransformMbr::of_family(&lq.family)],
                fanout: 1,
                threads: 1,
                est_nodes: 0.0,
                est_pages: 0.0,
                est_comparisons: 0.0,
                est_cost: 0.0,
                chosen_by: ChosenBy::OnlyOption,
            });
        }

        let q = match query {
            Some(ts) => Some(index.prepare_query(ts)?),
            None => None,
        };
        let candidates: [EngineChoice; 3] =
            [EngineChoice::Scan, EngineChoice::St, EngineChoice::Mt];
        let (mut best, mut best_est): (Option<EngineChoice>, Option<Estimate>) = (None, None);
        match lq.engine {
            EnginePref::Force(e) => {
                let est = self.estimate(index, stats, lq, q.as_ref(), e)?;
                return Ok(self.finish(e, est, ChosenBy::Forced));
            }
            EnginePref::Auto => {
                for e in candidates {
                    let est = self.estimate(index, stats, lq, q.as_ref(), e)?;
                    if best_est.as_ref().is_none_or(|b| est.cost < b.cost) {
                        best = Some(e);
                        best_est = Some(est);
                    }
                }
            }
        }
        let engine = best.expect("three candidates priced");
        Ok(self.finish(engine, best_est.expect("estimate"), ChosenBy::CostModel))
    }

    fn finish(&self, engine: EngineChoice, est: Estimate, chosen_by: ChosenBy) -> PhysicalPlan {
        PhysicalPlan {
            engine,
            mbrs: est.mbrs,
            fanout: 1,
            threads: 1,
            est_nodes: est.nodes,
            est_pages: est.pages,
            est_comparisons: est.comparisons,
            est_cost: est.cost,
            chosen_by,
        }
    }

    /// Prices one engine alternative. Measured statistics win once the
    /// family has been queried enough; otherwise the analytical model of
    /// §4.3 (placement-blind, but free) supplies node estimates.
    fn estimate(
        &self,
        index: &SeqIndex,
        stats: &StatsRegistry,
        lq: &LogicalQuery,
        q: Option<&SeqFeatures>,
        engine: EngineChoice,
    ) -> Result<Estimate, QueryError> {
        let n_live = (index.len() - index.deleted_count()) as f64;
        let nt = lq.family.len() as f64;
        let mbrs = if engine == EngineChoice::Mt {
            self.choose_partitioning(index, stats, lq, q)?
        } else {
            Vec::new()
        };

        if let Some(fs) = stats.family_stats(engine, &lq.family) {
            if fs.queries >= STATS_MIN_QUERIES {
                let (nodes, pages, cmps) = (fs.avg_nodes(), fs.avg_pages(), fs.avg_comparisons());
                let cost = self.model.cda * (nodes + pages) + self.model.ccmp * cmps;
                return Ok(Estimate {
                    nodes,
                    pages,
                    comparisons: cmps,
                    cost,
                    mbrs,
                });
            }
        }

        let est = match engine {
            EngineChoice::Scan => {
                // One heap pass plus |S|·|T| comparisons (Eq. 17 in
                // spirit): records are seq_len f64s plus a small header.
                let rec = (index.seq_len() * 8 + 16) as f64;
                let per_page = (PAGE_SIZE as f64 / rec).floor().max(1.0);
                let pages = (n_live / per_page).ceil();
                let comparisons = n_live * nt;
                Estimate {
                    nodes: 0.0,
                    pages,
                    comparisons,
                    cost: self.model.cda * pages + self.model.ccmp * comparisons,
                    mbrs: Vec::new(),
                }
            }
            EngineChoice::St => {
                let shape = stats.tree_shape(index).map_err(QueryError::Io)?;
                let eps = lq.spec.epsilon(index.seq_len());
                let e = expansion(eps, lq.spec.policy);
                let mut widths = [0.0; DIMS];
                for d in 0..DIMS {
                    widths[d] = if e[d].is_finite() {
                        2.0 * e[d]
                    } else {
                        shape.extent[d]
                    };
                }
                // The analytical model is placement-blind (§4.3), so every
                // transformation's traversal is priced identically.
                let per = analytic_disk_accesses(&shape.summaries, &shape.extent, &widths);
                let leaves = leaf_accesses(&shape, &widths);
                let nodes = nt * per;
                let comparisons = nt * leaves * index.leaf_capacity() as f64;
                Estimate {
                    nodes,
                    pages: comparisons, // one candidate fetch per comparison
                    comparisons,
                    cost: self.model.cda * nodes + self.model.ccmp * comparisons,
                    mbrs: Vec::new(),
                }
            }
            EngineChoice::Mt => {
                let shape = stats.tree_shape(index).map_err(QueryError::Io)?;
                let eps = lq.spec.epsilon(index.seq_len());
                let e = expansion(eps, lq.spec.policy);
                let mut nodes = 0.0;
                let mut comparisons = 0.0;
                for mbr in &mbrs {
                    let widths = mbr_widths(mbr, q, &e, &shape.extent, lq.spec.mode);
                    nodes += analytic_disk_accesses(&shape.summaries, &shape.extent, &widths);
                    comparisons += leaf_accesses(&shape, &widths)
                        * index.leaf_capacity() as f64
                        * mbr.nt() as f64;
                }
                Estimate {
                    nodes,
                    pages: comparisons / nt.max(1.0),
                    comparisons,
                    cost: self.model.cda * nodes + self.model.ccmp * comparisons,
                    mbrs,
                }
            }
        };
        Ok(est)
    }

    /// The §4.3 choice: evaluate a few candidate partitionings under the
    /// analytical Eq. 20 and keep the cheapest. Memoised per family so
    /// repeated queries pay a hash lookup.
    fn choose_partitioning(
        &self,
        index: &SeqIndex,
        stats: &StatsRegistry,
        lq: &LogicalQuery,
        q: Option<&SeqFeatures>,
    ) -> Result<Vec<TransformMbr>, QueryError> {
        let nt = lq.family.len();
        if nt <= 2 {
            return Ok(vec![TransformMbr::of_family(&lq.family)]);
        }
        let shape = stats.tree_shape(index).map_err(QueryError::Io)?;
        let eps = lq.spec.epsilon(index.seq_len());
        let e = expansion(eps, lq.spec.policy);
        // The memo variant folds in everything the geometry depends on.
        let variant = {
            let mut h = Fnv::new();
            h.u64(eps.to_bits());
            h.byte(lq.spec.policy as u8);
            h.byte(lq.spec.mode as u8);
            h.u64(index.height() as u64);
            h.finish()
        };
        let model = self.model;
        let ca_leaf = index.leaf_capacity() as f64;
        Ok(stats.partition_for(&lq.family, variant, || {
            let mut candidates = vec![PartitionStrategy::Single];
            for per in [2usize, 4, 8] {
                if per < nt {
                    candidates.push(PartitionStrategy::EqualWidth { per_mbr: per });
                }
            }
            for k in [2usize, 3, 4] {
                if k < nt {
                    candidates.push(PartitionStrategy::KMeans { k });
                }
            }
            let mut best: Option<(f64, Vec<TransformMbr>)> = None;
            for strat in &candidates {
                let mbrs = partition(&lq.family, strat);
                let mut cost = 0.0;
                for mbr in &mbrs {
                    let widths = mbr_widths(mbr, q, &e, &shape.extent, lq.spec.mode);
                    let nodes = analytic_disk_accesses(&shape.summaries, &shape.extent, &widths);
                    let cand = leaf_accesses(&shape, &widths) * ca_leaf * mbr.nt() as f64;
                    cost += model.cda * nodes + model.ccmp * cand;
                }
                if best.as_ref().is_none_or(|(c, _)| cost < *c) {
                    best = Some((cost, mbrs));
                }
            }
            best.expect("at least Single was priced").1
        }))
    }
}

/// Window widths of one MT rectangle's traversal: the rectangle applied to
/// the query point (symmetric mode), expanded by the filter windows;
/// unconstrained dimensions count as the full data extent.
fn mbr_widths(
    mbr: &TransformMbr,
    q: Option<&SeqFeatures>,
    e: &[f64; DIMS],
    extent: &[f64; DIMS],
    mode: QueryMode,
) -> [f64; DIMS] {
    let mut widths = [0.0; DIMS];
    let region = match (mode, q) {
        (QueryMode::Symmetric, Some(q)) => Some(mbr.apply_to_point(&q.point)),
        _ => None,
    };
    for d in 0..DIMS {
        if e[d].is_finite() {
            let span = region.as_ref().map_or(0.0, |r| r.hi[d] - r.lo[d]);
            widths[d] = span + 2.0 * e[d];
        } else {
            widths[d] = extent[d];
        }
    }
    widths
}

/// The leaf-level share of the analytical estimate.
fn leaf_accesses(shape: &crate::stats::TreeShape, widths: &[f64; DIMS]) -> f64 {
    shape
        .summaries
        .iter()
        .filter(|l| l.level == 0)
        .map(|l| {
            let frac: f64 = (0..DIMS)
                .map(|d| {
                    if shape.extent[d] <= 0.0 {
                        1.0
                    } else {
                        ((l.avg_extent[d] + widths[d]) / shape.extent[d]).min(1.0)
                    }
                })
                .product();
            l.nodes as f64 * frac
        })
        .sum()
}

/// The result of executing a physical plan.
#[derive(Clone, Debug)]
pub enum PlanOutput {
    /// Range-query result.
    Range(QueryResult),
    /// kNN result.
    Knn(Vec<Match>, EngineMetrics),
    /// Join result.
    Join(JoinResult),
}

impl PlanOutput {
    /// The metrics of whichever variant this is.
    pub fn metrics(&self) -> &EngineMetrics {
        match self {
            Self::Range(r) => &r.metrics,
            Self::Knn(_, m) => m,
            Self::Join(r) => &r.metrics,
        }
    }
}

/// Executes `plan` — the single dispatch point into the engines. Measured
/// cost feeds back into `stats` for the next planning round.
pub fn execute_plan(
    index: &SeqIndex,
    stats: &StatsRegistry,
    lq: &LogicalQuery,
    plan: &PhysicalPlan,
    query: Option<&TimeSeries>,
) -> Result<PlanOutput, QueryError> {
    let _span = simobs::trace::span("plan.execute");
    stats.note_dispatch(plan.engine);
    let out = match &lq.verb {
        LogicalVerb::Range => {
            let q = query.ok_or(QueryError::DegenerateQuery)?;
            let result = match plan.engine {
                EngineChoice::Scan => seqscan::range_query(index, q, &lq.family, &lq.spec)?,
                EngineChoice::St => stindex::range_query(index, q, &lq.family, &lq.spec)?,
                EngineChoice::Mt => {
                    let mbrs: &[TransformMbr] = if plan.mbrs.is_empty() {
                        &[TransformMbr::of_family(&lq.family)]
                    } else {
                        &plan.mbrs
                    };
                    mtindex::range_query_with_mbrs(index, q, &lq.family, &lq.spec, mbrs, None)?.0
                }
            };
            PlanOutput::Range(result)
        }
        LogicalVerb::Knn { k } => {
            let q = query.ok_or(QueryError::DegenerateQuery)?;
            let (matches, metrics) = knn::knn(index, q, &lq.family, *k)?;
            PlanOutput::Knn(matches, metrics)
        }
        LogicalVerb::Join => {
            let result = match plan.engine {
                EngineChoice::Scan => join::scan_join(index, &lq.family, &lq.spec)?,
                EngineChoice::St => join::st_join(index, &lq.family, &lq.spec)?,
                EngineChoice::Mt => {
                    let mbrs: &[TransformMbr] = if plan.mbrs.is_empty() {
                        &[TransformMbr::of_family(&lq.family)]
                    } else {
                        &plan.mbrs
                    };
                    join::mt_join_with_mbrs(index, &lq.family, &lq.spec, mbrs)?
                }
            };
            PlanOutput::Join(result)
        }
    };
    let live = (index.len() - index.deleted_count()) as u64;
    let pairs = live * lq.family.len() as u64;
    let matched = match &out {
        PlanOutput::Range(r) => r.matches.len() as u64,
        PlanOutput::Knn(m, _) => m.len() as u64,
        PlanOutput::Join(r) => r.matches.len() as u64,
    };
    stats.record_query(
        plan.engine,
        &lq.family,
        pairs,
        matched,
        out.metrics(),
        (plan.est_pages, plan.est_comparisons),
    );
    Ok(out)
}

/// Wall-clock split of one planned execution, for the slow-query log.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTimings {
    /// Time spent in [`Planner::plan`], µs.
    pub plan_us: u64,
    /// Time spent in [`execute_plan`], µs.
    pub exec_us: u64,
}

/// Plans and executes in one call (the common single-index path).
pub fn run(
    index: &SeqIndex,
    stats: &StatsRegistry,
    lq: &LogicalQuery,
    query: Option<&TimeSeries>,
) -> Result<(PhysicalPlan, PlanOutput), QueryError> {
    let (plan, out, _) = run_timed(index, stats, lq, query)?;
    Ok((plan, out))
}

/// [`run`], but also reporting the per-stage wall-clock split. The clock
/// is read unconditionally — two `Instant::now` pairs per query, noise
/// against the work of planning itself — so the slow-query log never
/// depends on trace sampling.
pub fn run_timed(
    index: &SeqIndex,
    stats: &StatsRegistry,
    lq: &LogicalQuery,
    query: Option<&TimeSeries>,
) -> Result<(PhysicalPlan, PlanOutput, StageTimings), QueryError> {
    let planner = Planner::new();
    let t0 = Instant::now();
    let plan = planner.plan(index, stats, lq, query)?;
    let t1 = Instant::now();
    let out = execute_plan(index, stats, lq, &plan, query)?;
    let timings = StageTimings {
        plan_us: t1.duration_since(t0).as_micros().min(u64::MAX as u128) as u64,
        exec_us: t1.elapsed().as_micros().min(u64::MAX as u128) as u64,
    };
    Ok((plan, out, timings))
}

/// The kNN fan-out fragment: a bounded per-shard search the distributed
/// executor threads a running global bound through (τ-pruning).
pub fn execute_knn_fragment(
    index: &SeqIndex,
    query: &TimeSeries,
    family: &Family,
    k: usize,
    bound: f64,
) -> Result<(Vec<Match>, EngineMetrics), QueryError> {
    knn::knn_bounded(index, query, family, k, bound)
}

/// The cache epoch a result is valid for: the WAL checkpoint epoch plus a
/// per-index mutation counter. Any insert or delete bumps `mutations`,
/// so equality of `QueryEpoch`s implies the index is byte-identical from
/// the query's point of view.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct QueryEpoch {
    /// WAL checkpoint epoch (0 when the index is not durable).
    pub epoch: u64,
    /// Mutations applied since process start (monotone).
    pub mutations: u64,
}

/// Cache observability counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups that returned a cached result.
    pub hits: u64,
    /// Lookups that missed (absent or stale epoch).
    pub misses: u64,
    /// Entries evicted by the LRU bound or staleness.
    pub evictions: u64,
    /// Entries inserted.
    pub inserts: u64,
    /// Current entry count.
    pub entries: u64,
    /// Results admitted by the cost floor (every insert is an admission).
    pub admitted: u64,
    /// Results refused because their measured cost was under the floor.
    pub rejected: u64,
}

struct CacheEntry {
    epoch: QueryEpoch,
    plan: PhysicalPlan,
    output: PlanOutput,
    tick: u64,
}

struct CacheInner {
    map: HashMap<u64, CacheEntry>,
    tick: u64,
}

/// A bounded LRU result cache keyed on `(fingerprint, QueryEpoch)`.
///
/// Invalidation is structural: a lookup whose stored epoch differs from
/// the caller's current epoch is a miss (and the stale entry is dropped),
/// so WAL checkpoints *and* individual mutations invalidate without any
/// explicit flush call. Capacity 0 disables caching entirely.
///
/// Admission is adaptive when a cost floor is set ([`Self::with_floor`]):
/// [`Self::offer`] prices the result by its measured work
/// ([`execution_cost`]) and refuses entries cheaper than the floor —
/// caching a result that costs less to recompute than the cache
/// bookkeeping only evicts entries worth keeping. [`Self::put`] bypasses
/// the floor for callers that know better.
pub struct PlanCache {
    cap: usize,
    floor: f64,
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    inserts: AtomicU64,
    admitted: AtomicU64,
    rejected: AtomicU64,
}

/// The admission-control price of one executed result: its measured work
/// in cost-model units (node + page accesses weigh like disk accesses,
/// comparisons like CPU — the same currency as Eq. 18–20, with unit
/// weights so the floor is easy to reason about).
pub fn execution_cost(out: &PlanOutput) -> f64 {
    let m = out.metrics();
    (m.node_accesses + m.record_page_accesses + m.comparisons) as f64
}

impl PlanCache {
    /// A cache holding at most `cap` results, admitting everything
    /// (floor 0 — the historical behaviour).
    pub fn new(cap: usize) -> Self {
        Self::with_floor(cap, 0.0)
    }

    /// A cache holding at most `cap` results, admitting only results whose
    /// measured execution cost is at least `floor` work units.
    pub fn with_floor(cap: usize, floor: f64) -> Self {
        Self {
            cap,
            floor,
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                tick: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Configured admission floor (work units).
    pub fn floor(&self) -> f64 {
        self.floor
    }

    /// Offers a result to the cache: admitted (and stored) when its
    /// [`execution_cost`] reaches the floor, refused otherwise. Returns
    /// whether it was admitted.
    pub fn offer(
        &self,
        fingerprint: u64,
        epoch: QueryEpoch,
        plan: PhysicalPlan,
        output: PlanOutput,
    ) -> bool {
        if self.cap == 0 {
            return false;
        }
        if execution_cost(&output) < self.floor {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        self.put(fingerprint, epoch, plan, output);
        true
    }

    /// Looks up `fingerprint` at `epoch`. A stored entry from another
    /// epoch is stale: it is removed and the lookup misses.
    pub fn get(&self, fingerprint: u64, epoch: QueryEpoch) -> Option<(PhysicalPlan, PlanOutput)> {
        if self.cap == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&fingerprint) {
            Some(entry) if entry.epoch == epoch => {
                entry.tick = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some((entry.plan.clone(), entry.output.clone()))
            }
            Some(_) => {
                inner.map.remove(&fingerprint);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a result, evicting the least-recently-used entry when full.
    pub fn put(&self, fingerprint: u64, epoch: QueryEpoch, plan: PhysicalPlan, output: PlanOutput) {
        if self.cap == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if inner.map.len() >= self.cap && !inner.map.contains_key(&fingerprint) {
            if let Some((&victim, _)) = inner.map.iter().min_by_key(|(_, e)| e.tick) {
                inner.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.map.insert(
            fingerprint,
            CacheEntry {
                epoch,
                plan,
                output,
                tick,
            },
        );
        self.inserts.fetch_add(1, Ordering::Relaxed);
        self.admitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Drops every entry.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        let n = inner.map.len() as u64;
        inner.map.clear();
        self.evictions.fetch_add(n, Ordering::Relaxed);
    }

    /// Observability counters.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            entries: self.inner.lock().map.len() as u64,
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexConfig;
    use tseries::{Corpus, CorpusKind};

    fn fixture() -> (SeqIndex, Corpus) {
        let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 80, 64, 7);
        let index = SeqIndex::build(&corpus, IndexConfig::default()).unwrap();
        (index, corpus)
    }

    #[test]
    fn fingerprints_distinguish_queries() {
        let fam = Family::moving_averages(2..=5, 64);
        let spec = RangeSpec::correlation(0.9);
        let a = LogicalQuery::range(fam.clone(), spec);
        let b = LogicalQuery::range(fam.clone(), RangeSpec::correlation(0.95));
        let c = LogicalQuery::knn(fam.clone(), 5);
        let d = LogicalQuery::range(fam, spec).with_engine(EnginePref::Force(EngineChoice::St));
        let fps: Vec<u64> = [&a, &b, &c, &d]
            .iter()
            .map(|q| q.fingerprint(None))
            .collect();
        for i in 0..fps.len() {
            for j in (i + 1)..fps.len() {
                assert_ne!(fps[i], fps[j], "queries {i} and {j} collide");
            }
        }
        // Same logical query, same fingerprint.
        let a2 = LogicalQuery::range(Family::moving_averages(2..=5, 64), spec);
        assert_eq!(a.fingerprint(None), a2.fingerprint(None));
        // Different query series, different fingerprint.
        let (_, corpus) = fixture();
        let q0 = &corpus.series()[0];
        let q1 = &corpus.series()[1];
        assert_ne!(a.fingerprint(Some(q0)), a.fingerprint(Some(q1)));
    }

    #[test]
    fn rewrite_enters_ir() {
        let e = SimilarityExpr::any(Family::moving_averages(2..=4, 64)).or(SimilarityExpr::one(
            crate::transform::Transform::identity(64),
        ));
        let lq = LogicalQuery::range_expr(&e, RangeSpec::euclidean(1.0));
        assert_eq!(lq.family.len(), e.cardinality());
    }

    #[test]
    fn forced_engines_execute_and_agree() {
        let (index, corpus) = fixture();
        let stats = StatsRegistry::new();
        let fam = Family::moving_averages(2..=9, 64);
        let spec = RangeSpec::correlation(0.9).with_policy(FilterPolicy::Safe);
        let q = &corpus.series()[3];
        let mut pairs: Vec<Vec<(usize, usize)>> = Vec::new();
        for e in [EngineChoice::Scan, EngineChoice::St, EngineChoice::Mt] {
            let lq = LogicalQuery::range(fam.clone(), spec).with_engine(EnginePref::Force(e));
            let (plan, out) = run(&index, &stats, &lq, Some(q)).unwrap();
            assert_eq!(plan.engine, e);
            assert_eq!(plan.chosen_by, ChosenBy::Forced);
            match out {
                PlanOutput::Range(r) => pairs.push(r.sorted_pairs()),
                _ => panic!("range output expected"),
            }
        }
        assert_eq!(pairs[0], pairs[1]);
        assert_eq!(pairs[1], pairs[2]);
        let snap = stats.snapshot();
        assert_eq!(snap.plans_built, 3);
        assert_eq!(snap.dispatch_mt, 1);
        assert_eq!(snap.dispatch_scan, 1);
        assert_eq!(snap.dispatch_st, 1);
    }

    #[test]
    fn auto_choice_matches_forced_results() {
        let (index, corpus) = fixture();
        let stats = StatsRegistry::new();
        let fam = Family::moving_averages(2..=9, 64);
        let spec = RangeSpec::correlation(0.9).with_policy(FilterPolicy::Adaptive);
        let q = &corpus.series()[5];
        let lq = LogicalQuery::range(fam.clone(), spec);
        let (plan, out) = run(&index, &stats, &lq, Some(q)).unwrap();
        assert_eq!(plan.chosen_by, ChosenBy::CostModel);
        let forced =
            LogicalQuery::range(fam, spec).with_engine(EnginePref::Force(EngineChoice::Scan));
        let (_, fout) = run(&index, &stats, &forced, Some(q)).unwrap();
        match (out, fout) {
            (PlanOutput::Range(a), PlanOutput::Range(b)) => {
                assert_eq!(a.sorted_pairs(), b.sorted_pairs());
            }
            _ => panic!("range outputs expected"),
        }
    }

    #[test]
    fn stats_feed_back_into_estimates() {
        let (index, corpus) = fixture();
        let stats = StatsRegistry::new();
        let fam = Family::moving_averages(2..=5, 64);
        let spec = RangeSpec::correlation(0.9).with_policy(FilterPolicy::Safe);
        let lq =
            LogicalQuery::range(fam.clone(), spec).with_engine(EnginePref::Force(EngineChoice::Mt));
        for i in 0..4 {
            run(&index, &stats, &lq, Some(&corpus.series()[i])).unwrap();
        }
        let fs = stats.family_stats(EngineChoice::Mt, &fam).unwrap();
        assert!(fs.queries >= STATS_MIN_QUERIES);
        // A fresh plan is now priced from measurements: the estimate equals
        // the recorded averages.
        let planner = Planner::new();
        let plan = planner
            .plan(&index, &stats, &lq, Some(&corpus.series()[0]))
            .unwrap();
        assert!((plan.est_nodes - fs.avg_nodes()).abs() < 1e-9);
    }

    #[test]
    fn knn_plans_execute() {
        let (index, corpus) = fixture();
        let stats = StatsRegistry::new();
        let lq = LogicalQuery::knn(Family::moving_averages(2..=5, 64), 3);
        let (plan, out) = run(&index, &stats, &lq, Some(&corpus.series()[2])).unwrap();
        assert_eq!(plan.chosen_by, ChosenBy::OnlyOption);
        match out {
            PlanOutput::Knn(matches, _) => assert_eq!(matches.len(), 3),
            _ => panic!("knn output expected"),
        }
    }

    #[test]
    fn join_plans_execute_and_agree() {
        let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 30, 64, 11);
        let index = SeqIndex::build(&corpus, IndexConfig::default()).unwrap();
        let stats = StatsRegistry::new();
        let fam = Family::moving_averages(2..=4, 64);
        let spec = RangeSpec::correlation(0.95).with_policy(FilterPolicy::Safe);
        let mut triples: Vec<Vec<(usize, usize, usize)>> = Vec::new();
        for e in [EngineChoice::Scan, EngineChoice::St, EngineChoice::Mt] {
            let lq = LogicalQuery::join(fam.clone(), spec).with_engine(EnginePref::Force(e));
            let (_, out) = run(&index, &stats, &lq, None).unwrap();
            match out {
                PlanOutput::Join(r) => triples.push(r.sorted_triples()),
                _ => panic!("join output expected"),
            }
        }
        assert_eq!(triples[0], triples[1]);
        assert_eq!(triples[1], triples[2]);
    }

    #[test]
    fn cache_hits_until_epoch_moves() {
        let cache = PlanCache::new(4);
        let plan = PhysicalPlan {
            engine: EngineChoice::Scan,
            mbrs: Vec::new(),
            fanout: 1,
            threads: 1,
            est_nodes: 0.0,
            est_pages: 0.0,
            est_comparisons: 0.0,
            est_cost: 0.0,
            chosen_by: ChosenBy::Forced,
        };
        let out = PlanOutput::Range(QueryResult::default());
        let e0 = QueryEpoch {
            epoch: 1,
            mutations: 0,
        };
        cache.put(42, e0, plan.clone(), out.clone());
        assert!(cache.get(42, e0).is_some());
        // A mutation bumps the epoch: the entry is stale.
        let e1 = QueryEpoch {
            epoch: 1,
            mutations: 1,
        };
        assert!(cache.get(42, e1).is_none());
        // And it was dropped, so even the old epoch misses now.
        assert!(cache.get(42, e0).is_none());
        let c = cache.counters();
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 2);
        assert_eq!(c.evictions, 1);
    }

    #[test]
    fn cache_lru_bounds_entries() {
        let cache = PlanCache::new(2);
        let plan = PhysicalPlan {
            engine: EngineChoice::Scan,
            mbrs: Vec::new(),
            fanout: 1,
            threads: 1,
            est_nodes: 0.0,
            est_pages: 0.0,
            est_comparisons: 0.0,
            est_cost: 0.0,
            chosen_by: ChosenBy::Forced,
        };
        let out = PlanOutput::Range(QueryResult::default());
        let e = QueryEpoch::default();
        cache.put(1, e, plan.clone(), out.clone());
        cache.put(2, e, plan.clone(), out.clone());
        // Touch 1 so 2 is the LRU victim.
        assert!(cache.get(1, e).is_some());
        cache.put(3, e, plan.clone(), out.clone());
        assert!(cache.get(2, e).is_none(), "LRU victim evicted");
        assert!(cache.get(1, e).is_some());
        assert!(cache.get(3, e).is_some());
        assert_eq!(cache.counters().entries, 2);
        // Capacity 0 disables caching.
        let off = PlanCache::new(0);
        off.put(9, e, plan, out);
        assert!(off.get(9, e).is_none());
        assert_eq!(off.counters().entries, 0);
    }

    #[test]
    fn admission_floor_refuses_cheap_results() {
        let cache = PlanCache::with_floor(4, 100.0);
        let plan = PhysicalPlan {
            engine: EngineChoice::Scan,
            mbrs: Vec::new(),
            fanout: 1,
            threads: 1,
            est_nodes: 0.0,
            est_pages: 0.0,
            est_comparisons: 0.0,
            est_cost: 0.0,
            chosen_by: ChosenBy::Forced,
        };
        let e = QueryEpoch::default();
        let cheap = PlanOutput::Range(QueryResult::default());
        assert!((execution_cost(&cheap) - 0.0).abs() < 1e-12);
        assert!(!cache.offer(1, e, plan.clone(), cheap), "under the floor");
        assert!(cache.get(1, e).is_none());
        let mut costly = QueryResult::default();
        costly.metrics.comparisons = 80;
        costly.metrics.node_accesses = 15;
        costly.metrics.record_page_accesses = 5;
        let costly = PlanOutput::Range(costly);
        assert!((execution_cost(&costly) - 100.0).abs() < 1e-12);
        assert!(
            cache.offer(2, e, plan.clone(), costly),
            "at the floor admits"
        );
        assert!(cache.get(2, e).is_some());
        let c = cache.counters();
        assert_eq!(c.rejected, 1);
        assert_eq!(c.admitted, 1);
        assert_eq!(c.inserts, 1);
        // The floorless constructor admits everything (back-compat).
        let open = PlanCache::new(4);
        assert!(open.offer(3, e, plan, PlanOutput::Range(QueryResult::default())));
        assert_eq!(open.counters().admitted, 1);
    }
}
