//! Transformation MBRs and the rectangle algebra of §4.1 (Eq. 12).
//!
//! A transformation `t = (a, b)` is a point in a `2·DIMS`-dimensional
//! space. A *set* of transformations is bounded by a rectangle there, which
//! decomposes into a `mult-MBR` (bounding the `a` parts) and an `add-MBR`
//! (bounding the `b` parts). Applying the pair to a data rectangle `X`
//! yields the rectangle `Y` of Eq. 12:
//!
//! ```text
//! Y_i^lo = A_i^lo + min(M_i^lo·X_i^lo, M_i^lo·X_i^hi, M_i^hi·X_i^lo, M_i^hi·X_i^hi)
//! Y_i^hi = A_i^hi + max(  …same four products… )
//! ```
//!
//! Lemma 1 (proved in §4.2 and property-tested here): for every `t` inside
//! the MBR and every point `x ∈ X`, `t(x) ∈ Y` — so intersection tests
//! against `Y` never dismiss a qualifying sequence.

use crate::feature::{FRect, FeatureVec, DIMS};
use crate::transform::{Family, Transform};
use rstartree::Rect;

/// The MBR of a set of transformations, pre-split into its multiplicative
/// and additive halves.
#[derive(Clone, Debug, PartialEq)]
pub struct TransformMbr {
    /// Bounds on the multiplicative parts `a`.
    pub mult_lo: FeatureVec,
    /// Upper bounds on `a`.
    pub mult_hi: FeatureVec,
    /// Bounds on the additive parts `b`.
    pub add_lo: FeatureVec,
    /// Upper bounds on `b`.
    pub add_hi: FeatureVec,
    /// Indices (into the originating [`Family`]) of the member
    /// transformations — the `NT(r)` set of the cost model.
    pub members: Vec<usize>,
}

impl TransformMbr {
    /// Bounds the given members of a family.
    ///
    /// # Panics
    ///
    /// Panics when `members` is empty or out of range.
    pub fn of(family: &Family, members: Vec<usize>) -> Self {
        assert!(
            !members.is_empty(),
            "a transformation MBR needs at least one member"
        );
        let mut mult_lo = [f64::INFINITY; DIMS];
        let mut mult_hi = [f64::NEG_INFINITY; DIMS];
        let mut add_lo = [f64::INFINITY; DIMS];
        let mut add_hi = [f64::NEG_INFINITY; DIMS];
        for &idx in &members {
            let t = &family.transforms()[idx];
            for i in 0..DIMS {
                mult_lo[i] = mult_lo[i].min(t.feat_a()[i]);
                mult_hi[i] = mult_hi[i].max(t.feat_a()[i]);
                add_lo[i] = add_lo[i].min(t.feat_b()[i]);
                add_hi[i] = add_hi[i].max(t.feat_b()[i]);
            }
        }
        Self {
            mult_lo,
            mult_hi,
            add_lo,
            add_hi,
            members,
        }
    }

    /// Bounds the whole family in one rectangle (the default MT-index
    /// configuration of §5.1).
    pub fn of_family(family: &Family) -> Self {
        Self::of(family, (0..family.len()).collect())
    }

    /// `NT(r)` — the number of transformations inside this rectangle.
    pub fn nt(&self) -> usize {
        self.members.len()
    }

    /// The member transformations, borrowed from their family.
    pub fn transforms<'a>(&'a self, family: &'a Family) -> impl Iterator<Item = &'a Transform> {
        self.members.iter().map(move |&i| &family.transforms()[i])
    }

    /// Eq. 12 — applies the transformation rectangle to a data rectangle.
    pub fn apply_to_rect(&self, x: &FRect) -> FRect {
        let mut lo = [0.0; DIMS];
        let mut hi = [0.0; DIMS];
        for i in 0..DIMS {
            let products = [
                self.mult_lo[i] * x.lo[i],
                self.mult_lo[i] * x.hi[i],
                self.mult_hi[i] * x.lo[i],
                self.mult_hi[i] * x.hi[i],
            ];
            lo[i] = self.add_lo[i] + products.iter().copied().fold(f64::INFINITY, f64::min);
            hi[i] = self.add_hi[i] + products.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        }
        Rect { lo, hi }
    }

    /// Applies the transformation rectangle to a point — the MBR of
    /// `{t(p) : t inside}` (used to bound the transformed query point).
    pub fn apply_to_point(&self, p: &FeatureVec) -> FRect {
        self.apply_to_rect(&Rect::point(*p))
    }

    /// The area of the mult-/add-rectangle pair, summed — a rough size
    /// proxy used by partitioning heuristics.
    pub fn extent(&self) -> f64 {
        (0..DIMS)
            .map(|i| (self.mult_hi[i] - self.mult_lo[i]) + (self.add_hi[i] - self.add_lo[i]))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mv_family(n: usize) -> Family {
        Family::moving_averages(1..=(40.min(n / 2)), n)
    }

    #[test]
    fn fig3_shape_mult_line_at_one_add_line_at_zero() {
        // Figure 3: for moving averages, the *angle* dimension has a ≡ 1
        // (mult-MBR is a horizontal line at 1) and the *magnitude*
        // dimension has b ≡ 0 (add-MBR is a vertical line at 0).
        let fam = mv_family(128);
        let mbr = TransformMbr::of_family(&fam);
        // dim 2 = |F1| (magnitude): additive part degenerate at 0.
        assert_eq!(mbr.add_lo[2], 0.0);
        assert_eq!(mbr.add_hi[2], 0.0);
        // dim 3 = ∠F1 (angle): multiplicative part degenerate at 1.
        assert_eq!(mbr.mult_lo[3], 1.0);
        assert_eq!(mbr.mult_hi[3], 1.0);
        // Magnitude multipliers span (0, 1]: mv1 is the identity (a = 1),
        // longer windows shrink the low-frequency magnitude.
        assert!(mbr.mult_hi[2] <= 1.0 + 1e-12);
        assert!(mbr.mult_lo[2] > 0.0);
        assert!(mbr.mult_lo[2] < mbr.mult_hi[2]);
        // Angle addends are ≤ 0 and spread (the phase lag of the window).
        assert!(mbr.add_lo[3] < 0.0);
        assert!(mbr.add_hi[3] <= 1e-12);
    }

    #[test]
    fn fig4_worked_example() {
        // A data rectangle transformed per Eq. 12, checked by hand:
        // dims 2 (magnitude): M = [0.85, 1], A = [0, 0], X = [7, 17]
        //   → Y = [0.85·7, 1·17] = [5.95, 17]
        // dims 3 (angle): M = [1, 1], A = [−0.96, 0], X = [1, 3]
        //   → Y = [1·1 − 0.96, 1·3 + 0] = [0.04, 3]
        let mut mbr = TransformMbr {
            mult_lo: [1.0; DIMS],
            mult_hi: [1.0; DIMS],
            add_lo: [0.0; DIMS],
            add_hi: [0.0; DIMS],
            members: vec![0],
        };
        mbr.mult_lo[2] = 0.85;
        mbr.mult_hi[2] = 1.0;
        mbr.add_lo[3] = -0.96;
        mbr.add_hi[3] = 0.0;
        let mut lo = [0.0; DIMS];
        let mut hi = [0.0; DIMS];
        lo[2] = 7.0;
        hi[2] = 17.0;
        lo[3] = 1.0;
        hi[3] = 3.0;
        let y = mbr.apply_to_rect(&Rect { lo, hi });
        assert!((y.lo[2] - 5.95).abs() < 1e-12);
        assert!((y.hi[2] - 17.0).abs() < 1e-12);
        assert!((y.lo[3] - 0.04).abs() < 1e-12);
        assert!((y.hi[3] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn single_member_mbr_is_exact_on_points() {
        let fam = mv_family(64);
        let mbr = TransformMbr::of(&fam, vec![8]);
        let t = &fam.transforms()[8];
        let p: FeatureVec = [3.0, 1.5, 0.8, -0.4, 0.3, 2.0];
        let rect = mbr.apply_to_point(&p);
        let tp = t.apply_point(&p);
        for (i, v) in tp.iter().enumerate() {
            assert!((rect.lo[i] - v).abs() < 1e-12);
            assert!((rect.hi[i] - v).abs() < 1e-12);
        }
    }

    #[test]
    fn lemma1_containment_for_mv_family() {
        // Every member's action on every corner/point of X lands inside Y.
        let fam = mv_family(32);
        let mbr = TransformMbr::of_family(&fam);
        let x = {
            let mut lo = [-2.0; DIMS];
            let mut hi = [3.0; DIMS];
            lo[1] = 0.5; // std is positive
            hi[1] = 2.0;
            Rect { lo, hi }
        };
        let y = mbr.apply_to_rect(&x);
        for t in fam.transforms() {
            for corner_mask in 0..(1 << DIMS) {
                let mut p = [0.0; DIMS];
                for (i, slot) in p.iter_mut().enumerate() {
                    *slot = if corner_mask & (1 << i) != 0 {
                        x.hi[i]
                    } else {
                        x.lo[i]
                    };
                }
                let tp = t.apply_point(&p);
                assert!(
                    y.contains_point(&tp),
                    "t = {} escapes: {tp:?} not in {y:?}",
                    t.label()
                );
            }
        }
    }

    #[test]
    fn extent_shrinks_with_fewer_members() {
        let fam = mv_family(64);
        let all = TransformMbr::of_family(&fam);
        let half = TransformMbr::of(&fam, (0..20).collect());
        let one = TransformMbr::of(&fam, vec![5]);
        assert!(one.extent() <= half.extent());
        assert!(half.extent() <= all.extent());
        assert_eq!(one.extent(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_members_rejected() {
        TransformMbr::of(&mv_family(16), vec![]);
    }

    /// Lemma 1, property form: random transforms in a random family
    /// subset, random data rectangles, random interior points — the
    /// transformed point is always inside the transformed rectangle.
    #[test]
    fn lemma1_random() {
        let mut rng = tseries::rng::SeededRng::seed_from_u64(0x7310);
        let fam = Family::moving_averages(1..=16, 32);
        for _case in 0..48 {
            let members: Vec<usize> = {
                let mut m: Vec<usize> = (0..rng.random_range(1usize..8))
                    .map(|_| rng.random_range(0usize..16))
                    .collect();
                m.sort_unstable();
                m.dedup();
                m
            };
            let mbr = TransformMbr::of(&fam, members.clone());
            let mut lo = [0.0; DIMS];
            let mut hi = [0.0; DIMS];
            let mut p = [0.0; DIMS];
            for i in 0..DIMS {
                lo[i] = rng.random_range(-10f64..10.0);
                let ext = rng.random_range(0f64..5.0);
                hi[i] = lo[i] + ext;
                p[i] = lo[i] + rng.random_range(0f64..=1.0) * ext;
            }
            let x = Rect { lo, hi };
            let y = mbr.apply_to_rect(&x);
            for &m in &members {
                let tp = fam.transforms()[m].apply_point(&p);
                for (i, v) in tp.iter().enumerate() {
                    assert!(
                        y.lo[i] - 1e-9 <= *v && *v <= y.hi[i] + 1e-9,
                        "dim {i}: {v} not in [{}, {}]",
                        y.lo[i],
                        y.hi[i]
                    );
                }
            }
        }
    }
}
