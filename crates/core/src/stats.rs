//! Runtime statistics feeding the cost-based planner.
//!
//! The §4.2–§4.3 cost model (Eq. 18–20) needs two kinds of input the
//! engines can measure but a cold optimiser cannot: how *selective* a
//! transformation family actually is on this corpus (candidates and
//! matches per query), and how many node/page accesses its traversals
//! really cost. A [`StatsRegistry`] hangs off every shared index and
//! accumulates both, per `(family, engine)` pair, as queries execute; the
//! planner ([`crate::plan::Planner`]) consults it before falling back to
//! the analytical estimate of [`crate::cost::analytic_disk_accesses`].
//!
//! The registry also memoises the structural inputs of the analytical
//! model — the R*-tree [`rstartree::LevelSummary`] walk and the data-space
//! extent — keyed on `(len, deleted, height)` so repeated planning does
//! not re-walk an unchanged tree, and the §4.3 multi-rectangle choice per
//! family so the optimizer's probe cost is paid once, not per query.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use pagestore::sync::Mutex;
use rstartree::LevelSummary;

use crate::feature::DIMS;
use crate::index::SeqIndex;
use crate::plan::EngineChoice;
use crate::report::EngineMetrics;
use crate::tmbr::TransformMbr;
use crate::transform::Family;

/// Number of log₂-spaced selectivity histogram buckets.
pub const SELECTIVITY_BUCKETS: usize = 16;

/// Accumulated per-`(family, engine)` execution statistics.
#[derive(Clone, Debug, Default)]
pub struct FamilyStats {
    /// Queries recorded.
    pub queries: u64,
    /// Candidate sequences summed over all recorded queries.
    pub candidates: u64,
    /// Qualifying `(sequence, transformation)` pairs summed.
    pub matches: u64,
    /// Index node accesses summed.
    pub node_accesses: u64,
    /// Leaf accesses summed.
    pub leaf_accesses: u64,
    /// Record-page accesses summed.
    pub page_accesses: u64,
    /// Full-sequence distance computations summed.
    pub comparisons: u64,
    /// `|S|·|T|` pairs examined, summed — the selectivity denominator.
    pub pairs_examined: u64,
    /// Histogram of per-query match selectivity: bucket `b` counts queries
    /// with `matches / (|S|·|T|)` in `(2^-(b+1), 2^-b]`; the last bucket
    /// absorbs everything smaller (including zero matches).
    pub selectivity: [u64; SELECTIVITY_BUCKETS],
    /// Planner page estimates summed — the drift-gauge denominator.
    pub est_pages_sum: f64,
    /// Planner comparison estimates summed.
    pub est_comparisons_sum: f64,
}

impl FamilyStats {
    fn record(
        &mut self,
        metrics: &EngineMetrics,
        pairs: u64,
        matches: u64,
        est_pages: f64,
        est_comparisons: f64,
    ) {
        self.queries += 1;
        self.candidates += metrics.candidates;
        self.matches += matches;
        self.node_accesses += metrics.node_accesses;
        self.leaf_accesses += metrics.leaf_accesses;
        self.page_accesses += metrics.record_page_accesses;
        self.comparisons += metrics.comparisons;
        self.pairs_examined += pairs;
        self.selectivity[bucket_of(matches, pairs)] += 1;
        self.est_pages_sum += est_pages.max(0.0);
        self.est_comparisons_sum += est_comparisons.max(0.0);
    }

    /// Mean node accesses per recorded query.
    pub fn avg_nodes(&self) -> f64 {
        self.node_accesses as f64 / self.queries.max(1) as f64
    }

    /// Mean record-page accesses per recorded query.
    pub fn avg_pages(&self) -> f64 {
        self.page_accesses as f64 / self.queries.max(1) as f64
    }

    /// Mean distance computations per recorded query.
    pub fn avg_comparisons(&self) -> f64 {
        self.comparisons as f64 / self.queries.max(1) as f64
    }

    /// Mean match selectivity `matches / (|S|·|T|)` over all recorded
    /// queries, or `None` before the first query.
    pub fn mean_selectivity(&self) -> Option<f64> {
        if self.pairs_examined == 0 {
            None
        } else {
            Some(self.matches as f64 / self.pairs_examined as f64)
        }
    }

    /// Cost-model page drift: measured pages over estimated pages (ratio
    /// of sums — 1.0 means the Eq. 18–20 estimate was exact on average).
    /// `None` until an estimate has been recorded.
    pub fn pages_drift(&self) -> Option<f64> {
        (self.est_pages_sum > 0.0).then(|| self.page_accesses as f64 / self.est_pages_sum)
    }

    /// Cost-model comparison drift (see [`Self::pages_drift`]).
    pub fn comparisons_drift(&self) -> Option<f64> {
        (self.est_comparisons_sum > 0.0).then(|| self.comparisons as f64 / self.est_comparisons_sum)
    }
}

/// One `(family, engine)` row of the est-vs-actual drift report.
#[derive(Clone, Debug)]
pub struct DriftLine {
    /// Family key (`name#len`).
    pub family: String,
    /// Engine name (`scan` / `st` / `mt`).
    pub engine: &'static str,
    /// Queries the row aggregates.
    pub queries: u64,
    /// Planner page estimates summed.
    pub est_pages: f64,
    /// Measured page accesses summed.
    pub actual_pages: u64,
    /// Planner comparison estimates summed.
    pub est_comparisons: f64,
    /// Measured comparisons summed.
    pub actual_comparisons: u64,
}

impl DriftLine {
    /// Measured-over-estimated page ratio (`None` when the estimate sum
    /// is zero).
    pub fn pages_ratio(&self) -> Option<f64> {
        (self.est_pages > 0.0).then(|| self.actual_pages as f64 / self.est_pages)
    }

    /// Measured-over-estimated comparison ratio.
    pub fn comparisons_ratio(&self) -> Option<f64> {
        (self.est_comparisons > 0.0).then(|| self.actual_comparisons as f64 / self.est_comparisons)
    }
}

/// The histogram bucket for one query's selectivity.
fn bucket_of(matches: u64, pairs: u64) -> usize {
    if pairs == 0 || matches == 0 {
        return SELECTIVITY_BUCKETS - 1;
    }
    let s = matches as f64 / pairs as f64;
    // s ∈ (2^-(b+1), 2^-b] → bucket b.
    let b = (-s.log2()).ceil().max(1.0) - 1.0;
    (b as usize).min(SELECTIVITY_BUCKETS - 1)
}

/// Memoised structural inputs of the analytical cost model.
#[derive(Clone, Debug)]
pub struct TreeShape {
    /// Per-level node counts and mean MBR extents (level 0 = leaves).
    pub summaries: Vec<LevelSummary<DIMS>>,
    /// Data-space extent per dimension (the root MBR's side lengths).
    pub extent: [f64; DIMS],
}

/// The memo key a [`TreeShape`] stays valid for.
type ShapeKey = (usize, usize, u32);

/// A memoised §4.3 multi-rectangle choice.
type PartitionMemo = HashMap<(String, u64), Vec<TransformMbr>>;

/// Aggregate counters every shared index exposes through STATS.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Physical plans constructed by the planner.
    pub plans_built: u64,
    /// Executions dispatched to the MT-index engine.
    pub dispatch_mt: u64,
    /// Executions dispatched to the ST-index engine.
    pub dispatch_st: u64,
    /// Executions dispatched to the sequential-scan engine.
    pub dispatch_scan: u64,
    /// Queries whose metrics were recorded into family statistics.
    pub recorded: u64,
}

/// Runtime statistics registry — one per shared index (and one per shard
/// group), shared by reference with every planner invocation.
#[derive(Debug, Default)]
pub struct StatsRegistry {
    plans_built: AtomicU64,
    dispatch_mt: AtomicU64,
    dispatch_st: AtomicU64,
    dispatch_scan: AtomicU64,
    recorded: AtomicU64,
    families: Mutex<HashMap<(String, u8), FamilyStats>>,
    shape: Mutex<Option<(ShapeKey, TreeShape)>>,
    partitions: Mutex<PartitionMemo>,
}

/// The key family statistics are accumulated under.
fn family_key(family: &Family) -> String {
    format!("{}#{}", family.name(), family.len())
}

fn engine_tag(engine: EngineChoice) -> u8 {
    match engine {
        EngineChoice::Scan => 0,
        EngineChoice::St => 1,
        EngineChoice::Mt => 2,
    }
}

fn engine_name(tag: u8) -> &'static str {
    match tag {
        0 => "scan",
        1 => "st",
        _ => "mt",
    }
}

impl StatsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Notes one planner invocation.
    pub fn note_plan_built(&self) {
        self.plans_built.fetch_add(1, Ordering::Relaxed);
    }

    /// Notes one execution dispatched to `engine`.
    pub fn note_dispatch(&self, engine: EngineChoice) {
        match engine {
            EngineChoice::Mt => &self.dispatch_mt,
            EngineChoice::St => &self.dispatch_st,
            EngineChoice::Scan => &self.dispatch_scan,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one executed query's measured cost into the family
    /// statistics. `pairs` is the `|S|·|T|` selectivity denominator;
    /// `est` is the plan's `(est_pages, est_comparisons)` pair, kept for
    /// the drift report.
    pub fn record_query(
        &self,
        engine: EngineChoice,
        family: &Family,
        pairs: u64,
        matches: u64,
        metrics: &EngineMetrics,
        est: (f64, f64),
    ) {
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let mut map = self.families.lock();
        map.entry((family_key(family), engine_tag(engine)))
            .or_default()
            .record(metrics, pairs, matches, est.0, est.1);
    }

    /// Statistics accumulated for `(family, engine)`, if any.
    pub fn family_stats(&self, engine: EngineChoice, family: &Family) -> Option<FamilyStats> {
        self.families
            .lock()
            .get(&(family_key(family), engine_tag(engine)))
            .cloned()
    }

    /// Est-vs-actual drift rows for every `(family, engine)` pair that has
    /// recorded at least one query, sorted for deterministic exposition.
    pub fn drift_report(&self) -> Vec<DriftLine> {
        let map = self.families.lock();
        let mut rows: Vec<DriftLine> = map
            .iter()
            .map(|((family, tag), fs)| DriftLine {
                family: family.clone(),
                engine: engine_name(*tag),
                queries: fs.queries,
                est_pages: fs.est_pages_sum,
                actual_pages: fs.page_accesses,
                est_comparisons: fs.est_comparisons_sum,
                actual_comparisons: fs.comparisons,
            })
            .collect();
        drop(map);
        rows.sort_by(|a, b| (&a.family, a.engine).cmp(&(&b.family, b.engine)));
        rows
    }

    /// Aggregate counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            plans_built: self.plans_built.load(Ordering::Relaxed),
            dispatch_mt: self.dispatch_mt.load(Ordering::Relaxed),
            dispatch_st: self.dispatch_st.load(Ordering::Relaxed),
            dispatch_scan: self.dispatch_scan.load(Ordering::Relaxed),
            recorded: self.recorded.load(Ordering::Relaxed),
        }
    }

    /// The tree's structural summary, memoised until the index visibly
    /// changes (`len`/`deleted`/`height` key). One full tree walk on miss.
    pub fn tree_shape(&self, index: &SeqIndex) -> Result<TreeShape, pagestore::PageError> {
        let key: ShapeKey = (index.len(), index.deleted_count(), index.height());
        if let Some((k, shape)) = self.shape.lock().as_ref() {
            if *k == key {
                return Ok(shape.clone());
            }
        }
        let summaries = index.level_summaries()?;
        // The data-space extent is the root MBR's side lengths — the level
        // with a single node (absent only for an empty tree).
        let extent = summaries
            .iter()
            .find(|l| l.nodes == 1)
            .map(|l| l.avg_extent)
            .unwrap_or([0.0; DIMS]);
        let shape = TreeShape { summaries, extent };
        *self.shape.lock() = Some((key, shape.clone()));
        Ok(shape)
    }

    /// Looks up (or computes and memoises) the §4.3 rectangle choice for a
    /// family. `variant` distinguishes specs that change the geometry
    /// (policy/threshold); the memo is dropped when the tree shape key
    /// changes enough to be re-probed via [`Self::invalidate_structures`].
    pub fn partition_for(
        &self,
        family: &Family,
        variant: u64,
        compute: impl FnOnce() -> Vec<TransformMbr>,
    ) -> Vec<TransformMbr> {
        let key = (family_key(family), variant);
        if let Some(mbrs) = self.partitions.lock().get(&key) {
            return mbrs.clone();
        }
        let mbrs = compute();
        self.partitions.lock().insert(key, mbrs.clone());
        mbrs
    }

    /// Drops the memoised tree shape and partitionings (call after bulk
    /// mutations or checkpoint restores; per-query staleness is already
    /// handled by the shape key).
    pub fn invalidate_structures(&self) {
        *self.shape.lock() = None;
        self.partitions.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selectivity_buckets_are_log2() {
        // s = 1/2 → bucket 0; s = 1/5 → bucket 2 (2^-3 < 1/5 ≤ 2^-2);
        // zero matches → last bucket.
        assert_eq!(bucket_of(1, 2), 0);
        assert_eq!(bucket_of(1, 5), 2);
        assert_eq!(bucket_of(0, 100), SELECTIVITY_BUCKETS - 1);
        assert_eq!(bucket_of(1, u64::MAX), SELECTIVITY_BUCKETS - 1);
    }

    #[test]
    fn registry_accumulates_per_family_and_engine() {
        let reg = StatsRegistry::new();
        let fam = Family::moving_averages(2..=5, 32);
        let m = EngineMetrics {
            node_accesses: 10,
            candidates: 4,
            comparisons: 16,
            ..Default::default()
        };
        reg.record_query(EngineChoice::Mt, &fam, 400, 2, &m, (8.0, 20.0));
        reg.record_query(EngineChoice::Mt, &fam, 400, 0, &m, (8.0, 20.0));
        let s = reg.family_stats(EngineChoice::Mt, &fam).unwrap();
        assert_eq!(s.queries, 2);
        assert_eq!(s.node_accesses, 20);
        assert!((s.mean_selectivity().unwrap() - 2.0 / 800.0).abs() < 1e-12);
        assert!(reg.family_stats(EngineChoice::Scan, &fam).is_none());
        // Drift: 0 measured pages over 16 estimated; 32 comparisons over 40.
        assert!((s.pages_drift().unwrap() - 0.0).abs() < 1e-12);
        assert!((s.comparisons_drift().unwrap() - 32.0 / 40.0).abs() < 1e-12);
        let drift = reg.drift_report();
        assert_eq!(drift.len(), 1);
        assert_eq!(drift[0].engine, "mt");
        assert_eq!(drift[0].queries, 2);
        assert!((drift[0].comparisons_ratio().unwrap() - 0.8).abs() < 1e-12);
        reg.note_dispatch(EngineChoice::Mt);
        reg.note_dispatch(EngineChoice::Scan);
        let snap = reg.snapshot();
        assert_eq!(snap.dispatch_mt, 1);
        assert_eq!(snap.dispatch_scan, 1);
        assert_eq!(snap.recorded, 2);
    }

    #[test]
    fn partition_memo_computes_once() {
        let reg = StatsRegistry::new();
        let fam = Family::moving_averages(2..=9, 32);
        let mut calls = 0;
        for _ in 0..3 {
            reg.partition_for(&fam, 7, || {
                calls += 1;
                vec![TransformMbr::of_family(&fam)]
            });
        }
        assert_eq!(calls, 1);
        reg.invalidate_structures();
        reg.partition_for(&fam, 7, || {
            calls += 1;
            vec![TransformMbr::of_family(&fam)]
        });
        assert_eq!(calls, 2);
    }
}
