//! The 6-dimensional feature space of §5.
//!
//! For every sequence the paper stores, in this order:
//!
//! | dim | content |
//! |-----|---------|
//! | 0 | mean of the original sequence |
//! | 1 | (sample) standard deviation of the original sequence |
//! | 2 | magnitude of DFT coefficient 1 of the **normal form** |
//! | 3 | phase angle of DFT coefficient 1 |
//! | 4 | magnitude of DFT coefficient 2 |
//! | 5 | phase angle of DFT coefficient 2 |
//!
//! Coefficient 0 of a normal form is identically zero ("the first Fourier
//! coefficient is always zero, so we can throw it away") and is not stored.
//! The conjugate-symmetry property (Eq. 6) makes the two retained
//! coefficients bound the true distance *twice over* — the √2 shrink
//! applied to every search rectangle (see [`crate::query`]).

use rstartree::Rect;
use tseries::TimeSeries;
use tsfft::{Complex64, RealDft};

/// Number of feature dimensions.
pub const DIMS: usize = 6;
/// Number of retained DFT coefficients (coefficients `1..=COEFFS`).
pub const COEFFS: usize = 2;
/// Feature-space dimensions holding magnitudes.
pub const MAG_DIMS: [usize; COEFFS] = [2, 4];
/// Feature-space dimensions holding phase angles.
pub const ANGLE_DIMS: [usize; COEFFS] = [3, 5];

/// A point in the feature space.
pub type FeatureVec = [f64; DIMS];
/// A rectangle in the feature space.
pub type FRect = Rect<DIMS>;

/// Everything extracted from one sequence: the index point plus the full
/// normal-form spectrum used for exact distance computation.
#[derive(Clone, Debug)]
pub struct SeqFeatures {
    /// The 6-dimensional index point.
    pub point: FeatureVec,
    /// Mean of the original sequence.
    pub mean: f64,
    /// Sample standard deviation of the original sequence.
    pub std: f64,
    /// Full unitary DFT of the normal form (length `n`).
    pub spectrum: Vec<Complex64>,
    /// Polar form of every coefficient, cached for the hot distance loop
    /// (transformations act on magnitude/angle — §3.1.1).
    pub polar: Vec<(f64, f64)>,
    /// Whether the spectrum is conjugate-symmetric (Eq. 6) — true for every
    /// real sequence; prepared targets built from asymmetric transforms may
    /// lose it, disabling the half-spectrum distance fast path.
    pub conj_symmetric: bool,
}

impl SeqFeatures {
    /// Extracts features; `None` for degenerate (constant or too-short)
    /// sequences, which have no normal form.
    pub fn extract(ts: &TimeSeries) -> Option<Self> {
        if ts.len() <= 2 * COEFFS {
            return None;
        }
        let nf = ts.normal_form()?;
        let dft = RealDft::forward(nf.series.values());
        Some(Self::from_spectrum(dft.coeffs().to_vec(), nf.mean, nf.std))
    }

    /// Builds features directly from a spectrum — for *prepared* query
    /// targets, e.g. comparing candidates against a transformed version of
    /// a sequence (`mom(q̂)` in the Example 1.2 workflow). The index point
    /// is recomputed from the spectrum so filters and verification agree.
    pub fn from_spectrum(spectrum: Vec<Complex64>, mean: f64, std: f64) -> Self {
        assert!(
            spectrum.len() > 2 * COEFFS,
            "spectrum too short for the feature space"
        );
        let polar: Vec<(f64, f64)> = spectrum.iter().map(|c| c.to_polar()).collect();
        let n = spectrum.len();
        let scale: f64 = polar.iter().map(|(r, _)| r.abs()).fold(0.0, f64::max) + 1e-12;
        let conj_symmetric =
            (1..n).all(|f| (spectrum[f] - spectrum[n - f].conj()).abs() <= 1e-9 * scale);
        let mut point = [0.0; DIMS];
        point[0] = mean;
        point[1] = std;
        for (k, (&md, &ad)) in MAG_DIMS.iter().zip(&ANGLE_DIMS).enumerate() {
            let (r, theta) = polar[k + 1];
            point[md] = r;
            point[ad] = theta;
        }
        Self {
            point,
            mean,
            std,
            spectrum,
            polar,
            conj_symmetric,
        }
    }

    /// Sequence length.
    pub fn len(&self) -> usize {
        self.spectrum.len()
    }

    /// True when the spectrum is empty (never produced by
    /// [`Self::extract`]).
    pub fn is_empty(&self) -> bool {
        self.spectrum.is_empty()
    }

    /// Exact Euclidean distance between the *normal forms* of the two
    /// underlying sequences (via Parseval, Eq. 8).
    pub fn distance(&self, other: &Self) -> f64 {
        debug_assert_eq!(self.len(), other.len());
        self.spectrum
            .iter()
            .zip(&other.spectrum)
            .map(|(a, b)| (*a - *b).norm_sqr())
            .sum::<f64>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tseries::euclidean;

    fn sample(seed: f64) -> TimeSeries {
        (0..128)
            .map(|t| (t as f64 * 0.13 + seed).sin() * 5.0 + seed + t as f64 * 0.02)
            .collect()
    }

    #[test]
    fn extract_layout_matches_paper() {
        let ts = sample(1.0);
        let f = SeqFeatures::extract(&ts).unwrap();
        assert!((f.point[0] - ts.mean()).abs() < 1e-12);
        assert!((f.point[1] - ts.std()).abs() < 1e-12);
        // Coefficient 0 of the normal form is ~0 (not stored).
        assert!(f.spectrum[0].abs() < 1e-9);
        // Stored polar coords match the spectrum.
        assert!((f.point[2] - f.spectrum[1].abs()).abs() < 1e-12);
        assert!((f.point[3] - f.spectrum[1].arg()).abs() < 1e-12);
        assert!((f.point[4] - f.spectrum[2].abs()).abs() < 1e-12);
        assert!((f.point[5] - f.spectrum[2].arg()).abs() < 1e-12);
    }

    #[test]
    fn degenerate_sequences_are_rejected() {
        assert!(SeqFeatures::extract(&TimeSeries::new(vec![7.0; 50])).is_none());
        assert!(SeqFeatures::extract(&TimeSeries::new(vec![1.0, 2.0, 3.0])).is_none());
        assert!(SeqFeatures::extract(&TimeSeries::default()).is_none());
    }

    #[test]
    fn distance_equals_time_domain_normal_form_distance() {
        let (a, b) = (sample(0.0), sample(2.0));
        let (fa, fb) = (
            SeqFeatures::extract(&a).unwrap(),
            SeqFeatures::extract(&b).unwrap(),
        );
        let want = euclidean(
            &a.normal_form().unwrap().series,
            &b.normal_form().unwrap().series,
        );
        assert!((fa.distance(&fb) - want).abs() < 1e-8);
    }

    #[test]
    fn feature_point_lower_bounds_distance() {
        // √2 · (truncated feature distance on DFT dims) ≤ true distance.
        let (a, b) = (sample(0.5), sample(3.0));
        let (fa, fb) = (
            SeqFeatures::extract(&a).unwrap(),
            SeqFeatures::extract(&b).unwrap(),
        );
        let partial: f64 = (1..=COEFFS)
            .map(|k| (fa.spectrum[k] - fb.spectrum[k]).norm_sqr())
            .sum();
        assert!((2.0 * partial).sqrt() <= fa.distance(&fb) + 1e-9);
    }
}
