//! Linear transformations over the Fourier representation (§3).
//!
//! A transformation is a pair of real vectors `t = (a, b)` acting
//! componentwise, `x ↦ a ⊙ x + b`, on the *interleaved polar* encoding of a
//! spectrum (magnitudes at even slots, angles at odd slots — §3.1.1). Every
//! [`Transform`] here carries **two** consistent representations:
//!
//! * the action on the 6-dimensional index feature vector (what the search
//!   algorithms apply to index rectangles), and
//! * the action on the full `n`-coefficient spectrum (what the
//!   post-processing step uses to compute exact distances).
//!
//! Convolution-style operators (moving average, momentum, time shift) are
//! built from their masks via the convolution theorem (Eq. 5): the
//! transformation multiplies each coefficient's magnitude by `√n·|H_f|` and
//! adds `∠H_f` to its angle. (The `√n` compensates the unitary DFT
//! normalisation.)

use crate::feature::{FeatureVec, SeqFeatures, ANGLE_DIMS, COEFFS, DIMS, MAG_DIMS};
use std::ops::RangeInclusive;
use tsfft::{fft, Complex64};

/// A linear transformation with index-level and spectrum-level actions.
#[derive(Clone, Debug)]
pub struct Transform {
    label: String,
    /// Multiplicative part on the feature vector.
    feat_a: FeatureVec,
    /// Additive part on the feature vector.
    feat_b: FeatureVec,
    /// Multiplicative part on the interleaved-polar spectrum (length `2n`).
    spec_a: Vec<f64>,
    /// Additive part on the interleaved-polar spectrum (length `2n`).
    spec_b: Vec<f64>,
    /// Whether the action is conjugate-symmetric (coefficient `n−f`
    /// mirrors `f`), enabling the half-spectrum distance fast path.
    symmetric: bool,
}

impl Transform {
    /// The identity transformation for sequences of length `n`.
    pub fn identity(n: usize) -> Self {
        let mut t = Self {
            label: "id".into(),
            feat_a: [1.0; DIMS],
            feat_b: [0.0; DIMS],
            spec_a: vec![0.0; 2 * n],
            spec_b: vec![0.0; 2 * n],
            symmetric: true,
        };
        for f in 0..n {
            t.spec_a[2 * f] = 1.0; // magnitude × 1
            t.spec_a[2 * f + 1] = 1.0; // angle × 1
        }
        t
    }

    /// Detects conjugate symmetry of the action: magnitude parts and the
    /// angle multiplier mirror (`v[n−f] = v[f]`), the angle addend
    /// conjugates (`b_θ[n−f] ≡ −b_θ[f] (mod 2π)`). All convolution-derived
    /// transformations have it; §3.1.2's approximate shift does not.
    fn detect_symmetry(&mut self) {
        let n = self.seq_len();
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * (1.0 + a.abs() + b.abs());
        let angle_conj = |a: f64, b: f64| {
            let d = Complex64::cis(a) - Complex64::cis(-b);
            d.abs() <= 1e-9
        };
        self.symmetric = (1..n).all(|f| {
            let m = n - f;
            close(self.spec_a[2 * f], self.spec_a[2 * m])
                && close(self.spec_b[2 * f], self.spec_b[2 * m])
                && close(self.spec_a[2 * f + 1], self.spec_a[2 * m + 1])
                && angle_conj(self.spec_b[2 * m + 1], self.spec_b[2 * f + 1])
        });
    }

    /// Builds the transformation equivalent to circular convolution with
    /// `mask` (§3.1.1's construction, generalised to any mask).
    pub fn from_mask(label: impl Into<String>, mask: &[f64]) -> Self {
        let n = mask.len();
        assert!(n > 2 * COEFFS, "mask too short for the feature space");
        let spectrum = fft(&mask
            .iter()
            .copied()
            .map(Complex64::from_real)
            .collect::<Vec<_>>());
        let scale = (n as f64).sqrt(); // unitary-DFT convolution factor
        let mut t = Self::identity(n);
        t.label = label.into();
        for (f, h) in spectrum.iter().enumerate() {
            let (r, theta) = h.to_polar();
            t.spec_a[2 * f] = scale * r; // magnitude multiplier
            t.spec_b[2 * f + 1] = theta; // angle addend
        }
        t.sync_feature_action();
        t.detect_symmetry();
        t
    }

    /// `m`-day circular moving average over length-`n` sequences.
    pub fn moving_average(m: usize, n: usize) -> Self {
        assert!(m >= 1 && m <= n, "window {m} out of range for length {n}");
        let mut mask = vec![0.0; n];
        for slot in mask.iter_mut().take(m) {
            *slot = 1.0 / m as f64;
        }
        Self::from_mask(format!("mv{m}"), &mask)
    }

    /// Circular momentum with `lag` (the mask `[1, −1, 0, …]` of §3.1.1 for
    /// `lag = 1`): `y_t = x_t − x_{t−lag}`.
    pub fn momentum(lag: usize, n: usize) -> Self {
        assert!(lag >= 1 && lag < n, "lag {lag} out of range for length {n}");
        let mut mask = vec![0.0; n];
        mask[0] = 1.0;
        mask[lag] = -1.0;
        Self::from_mask(format!("mom{lag}"), &mask)
    }

    /// Exact circular time shift right by `s` days (rotation): adds
    /// `−2πfs/n` to each angle.
    pub fn circular_shift(s: usize, n: usize) -> Self {
        let mut mask = vec![0.0; n];
        mask[s % n] = 1.0;
        let mut t = Self::from_mask(format!("shift{s}"), &mask);
        t.label = format!("shift{s}");
        t
    }

    /// The paper's §3.1.2 *approximate* shift for long sequences: angle
    /// addend `−2πfs/(n+1)`, magnitudes untouched. Kept for fidelity;
    /// [`Self::circular_shift`] is the exact counterpart.
    pub fn paper_shift(s: usize, n: usize) -> Self {
        let mut t = Self::identity(n);
        t.label = format!("pshift{s}");
        for f in 0..n {
            t.spec_b[2 * f + 1] = -2.0 * std::f64::consts::PI * (f * s) as f64 / (n + 1) as f64;
        }
        t.sync_feature_action();
        t.detect_symmetry();
        t
    }

    /// Scaling by `k` (Lemma 2's family): every coefficient magnitude ×|k|
    /// (angle +π when k < 0); the mean/std dimensions scale accordingly.
    pub fn scaling(k: f64, n: usize) -> Self {
        let mut t = Self::identity(n);
        t.label = format!("scale{k}");
        for f in 0..n {
            t.spec_a[2 * f] = k.abs();
            if k < 0.0 {
                t.spec_b[2 * f + 1] = std::f64::consts::PI;
            }
        }
        t.sync_feature_action();
        t.detect_symmetry();
        // Raw-statistics dimensions: mean scales by k, std by |k|.
        t.feat_a[0] = k;
        t.feat_a[1] = k.abs();
        t
    }

    /// Inversion (×−1) — the transformation Fig. 9 adds to create a second
    /// cluster.
    pub fn inversion(n: usize) -> Self {
        let mut t = Self::scaling(-1.0, n);
        t.label = "invert".into();
        t
    }

    /// Weighted circular moving average with arbitrary non-negative
    /// weights (most recent sample first); weights are normalised to sum
    /// to 1.
    ///
    /// # Panics
    ///
    /// Panics when weights are empty, longer than `n`, or sum to zero.
    pub fn weighted_moving_average(weights: &[f64], n: usize) -> Self {
        assert!(
            !weights.is_empty() && weights.len() <= n,
            "bad weight count"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut mask = vec![0.0; n];
        for (slot, w) in mask.iter_mut().zip(weights) {
            *slot = w / total;
        }
        Self::from_mask(format!("wma{}", weights.len()), &mask)
    }

    /// Exponential moving average with smoothing factor `alpha ∈ (0, 1]`,
    /// truncated once the tail weight drops below 10⁻¹² (then treated as a
    /// circular mask like every other convolution operator).
    pub fn exponential_moving_average(alpha: f64, n: usize) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must lie in (0, 1]");
        let mut weights = Vec::new();
        let mut w = alpha;
        while w > 1e-12 && weights.len() < n {
            weights.push(w);
            w *= 1.0 - alpha;
        }
        let mut t = Self::weighted_moving_average(&weights, n);
        t.label = format!("ema{alpha}");
        t
    }

    /// Time reversal `y_t = x_{(n−t) mod n}`: conjugates every coefficient —
    /// the angle *multiplier* becomes −1, exercising the general `a ⊙ x + b`
    /// form beyond multiplier-1 angles. Comparing `reverse(x)` against `q`
    /// (data-only mode) finds sequences whose mirror image matches.
    pub fn time_reverse(n: usize) -> Self {
        let mut t = Self::identity(n);
        t.label = "reverse".into();
        for f in 0..n {
            t.spec_a[2 * f + 1] = -1.0; // θ ↦ −θ
        }
        t.sync_feature_action();
        t.detect_symmetry();
        t
    }

    /// Ideal band-pass: keeps coefficients `lo..=hi` (and their conjugate
    /// mirrors), zeroing the rest. `lo = 1` with small `hi` is a detrending
    /// low-pass over the normal form; `lo > 1` removes slow trends too.
    ///
    /// # Panics
    ///
    /// Panics unless `lo ≤ hi < n`.
    pub fn band_pass(lo: usize, hi: usize, n: usize) -> Self {
        assert!(
            lo <= hi && hi < n,
            "band {lo}..={hi} out of range for length {n}"
        );
        let mut t = Self::identity(n);
        t.label = format!("band{lo}-{hi}");
        for f in 0..n {
            let mirrored = if f == 0 { 0 } else { n - f };
            let keep = (lo..=hi).contains(&f) || (lo..=hi).contains(&mirrored);
            if !keep {
                t.spec_a[2 * f] = 0.0;
            }
        }
        t.sync_feature_action();
        t.detect_symmetry();
        t
    }

    /// Functional composition `self ∘ inner` (Eq. 10): apply `inner` first,
    /// then `self`. `a₃ = a₂ ⊙ a₁`, `b₃ = a₂ ⊙ b₁ + b₂`.
    ///
    /// ```
    /// use simquery::transform::Transform;
    /// // "2-day shift, then 10-day moving average" as one operator.
    /// let t = Transform::moving_average(10, 128).compose(&Transform::circular_shift(2, 128));
    /// assert_eq!(t.label(), "mv10(shift2)");
    /// ```
    pub fn compose(&self, inner: &Self) -> Self {
        assert_eq!(
            self.spec_a.len(),
            inner.spec_a.len(),
            "length mismatch in composition"
        );
        let mut out = self.clone();
        out.label = format!("{}({})", self.label, inner.label);
        for i in 0..DIMS {
            out.feat_a[i] = self.feat_a[i] * inner.feat_a[i];
            out.feat_b[i] = self.feat_a[i] * inner.feat_b[i] + self.feat_b[i];
        }
        for i in 0..self.spec_a.len() {
            out.spec_a[i] = self.spec_a[i] * inner.spec_a[i];
            out.spec_b[i] = self.spec_a[i] * inner.spec_b[i] + self.spec_b[i];
        }
        out.detect_symmetry();
        out
    }

    /// Keeps the feature-space action in sync with the spectrum action
    /// (dims 2..6 mirror coefficients 1 and 2).
    fn sync_feature_action(&mut self) {
        for (k, (&md, &ad)) in MAG_DIMS.iter().zip(&ANGLE_DIMS).enumerate() {
            let f = k + 1;
            self.feat_a[md] = self.spec_a[2 * f];
            self.feat_b[md] = self.spec_b[2 * f];
            self.feat_a[ad] = self.spec_a[2 * f + 1];
            self.feat_b[ad] = self.spec_b[2 * f + 1];
        }
    }

    /// Display label (`mv9`, `shift2`, `scale3(mv5)`, …).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Sequence length this transform was built for.
    pub fn seq_len(&self) -> usize {
        self.spec_a.len() / 2
    }

    /// The multiplicative feature-space part `a`.
    pub fn feat_a(&self) -> &FeatureVec {
        &self.feat_a
    }

    /// The additive feature-space part `b`.
    pub fn feat_b(&self) -> &FeatureVec {
        &self.feat_b
    }

    /// Applies the transformation to a feature point.
    pub fn apply_point(&self, p: &FeatureVec) -> FeatureVec {
        let mut out = [0.0; DIMS];
        for i in 0..DIMS {
            out[i] = self.feat_a[i] * p[i] + self.feat_b[i];
        }
        out
    }

    /// Applies the transformation to a feature rectangle (the ST-index
    /// per-entry operation): each dimension maps through `a·x + b`, which
    /// may swap the corner order when `a < 0`.
    pub fn apply_rect(&self, rect: &rstartree::Rect<DIMS>) -> rstartree::Rect<DIMS> {
        let mut lo = [0.0; DIMS];
        let mut hi = [0.0; DIMS];
        for i in 0..DIMS {
            let u = self.feat_a[i] * rect.lo[i] + self.feat_b[i];
            let v = self.feat_a[i] * rect.hi[i] + self.feat_b[i];
            lo[i] = u.min(v);
            hi[i] = u.max(v);
        }
        rstartree::Rect { lo, hi }
    }

    /// Applies the transformation to a full spectrum: per coefficient `f`,
    /// magnitude `r ↦ a_{2f}·r + b_{2f}` and angle `θ ↦ a_{2f+1}·θ +
    /// b_{2f+1}`.
    pub fn apply_spectrum(&self, spectrum: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(spectrum.len(), self.seq_len(), "spectrum length mismatch");
        spectrum
            .iter()
            .enumerate()
            .map(|(f, c)| {
                let (r, theta) = c.to_polar();
                Complex64::from_polar(
                    self.spec_a[2 * f] * r + self.spec_b[2 * f],
                    self.spec_a[2 * f + 1] * theta + self.spec_b[2 * f + 1],
                )
            })
            .collect()
    }

    /// Exact `D(t(x), t(q))` over the full transformed spectra — the
    /// post-processing distance of Algorithm 1, step 5.
    ///
    /// This is the hot loop of every engine. Per coefficient the squared
    /// difference is evaluated in polar form (law of cosines, exact):
    /// `|A−B|² = r_A² + r_B² − 2·r_A·r_B·cos(θ_A − θ_B)`. When the
    /// transformation is conjugate-symmetric (every convolution-style
    /// operator is), coefficient `n−f` contributes the same as `f`
    /// (Eq. 6), so only half the spectrum is visited.
    pub fn transformed_distance(&self, x: &SeqFeatures, q: &SeqFeatures) -> f64 {
        debug_assert_eq!(x.len(), q.len());
        let n = x.len();
        debug_assert_eq!(n, self.seq_len());
        let term = |f: usize| -> f64 {
            let (rx, tx) = x.polar[f];
            let (rq, tq) = q.polar[f];
            let a_r = self.spec_a[2 * f];
            let b_r = self.spec_b[2 * f];
            let a_t = self.spec_a[2 * f + 1];
            let (ra, rb) = (a_r * rx + b_r, a_r * rq + b_r);
            let dth = a_t * (tx - tq); // the shared b_t cancels in the difference
            ra * ra + rb * rb - 2.0 * ra * rb * dth.cos()
        };
        let acc = if self.symmetric && x.conj_symmetric && q.conj_symmetric {
            let mut acc = term(0);
            for f in 1..n.div_ceil(2) {
                acc += 2.0 * term(f);
            }
            if n.is_multiple_of(2) {
                acc += term(n / 2);
            }
            acc
        } else {
            (0..n).map(term).sum()
        };
        acc.max(0.0).sqrt()
    }

    /// `D(t(x), q)` — the transformation applied to the **data side only**.
    ///
    /// Symmetric application (Query 1's `D(t(x), t(q))`) makes unitary
    /// transformations like time shifts and inversion useless — rotating or
    /// negating *both* sequences is an isometry. Alignment queries
    /// (Example 1.2's "shift the momentum of PCG two days") and hedging
    /// queries ("opposite way") compare the transformed data against the
    /// *untransformed* query; this is also the literal reading of
    /// Algorithm 1's step 2, which builds the search rectangle around `q`
    /// itself.
    pub fn distance_data_only(&self, x: &SeqFeatures, q: &SeqFeatures) -> f64 {
        debug_assert_eq!(x.len(), q.len());
        let n = x.len();
        debug_assert_eq!(n, self.seq_len());
        let term = |f: usize| -> f64 {
            let (rx, tx) = x.polar[f];
            let (rq, tq) = q.polar[f];
            let ra = self.spec_a[2 * f] * rx + self.spec_b[2 * f];
            let ta = self.spec_a[2 * f + 1] * tx + self.spec_b[2 * f + 1];
            ra * ra + rq * rq - 2.0 * ra * rq * (ta - tq).cos()
        };
        let acc = if self.symmetric && x.conj_symmetric && q.conj_symmetric {
            let mut acc = term(0);
            for f in 1..n.div_ceil(2) {
                acc += 2.0 * term(f);
            }
            if n.is_multiple_of(2) {
                acc += term(n / 2);
            }
            acc
        } else {
            (0..n).map(term).sum()
        };
        acc.max(0.0).sqrt()
    }
}

/// A named, ordered set of transformations — the `T` of Query 1.
#[derive(Clone, Debug)]
pub struct Family {
    name: String,
    transforms: Vec<Transform>,
}

impl Family {
    /// Wraps explicit transformations.
    pub fn new(name: impl Into<String>, transforms: Vec<Transform>) -> Self {
        assert!(
            !transforms.is_empty(),
            "a family needs at least one transformation"
        );
        let n = transforms[0].seq_len();
        assert!(
            transforms.iter().all(|t| t.seq_len() == n),
            "all transformations must target one sequence length"
        );
        Self {
            name: name.into(),
            transforms,
        }
    }

    /// `m`-day circular moving averages for `m ∈ range` (the workload of
    /// Figures 5–9).
    ///
    /// ```
    /// use simquery::transform::Family;
    /// let family = Family::moving_averages(10..=25, 128);
    /// assert_eq!(family.len(), 16);
    /// assert_eq!(family.transforms()[0].label(), "mv10");
    /// ```
    pub fn moving_averages(range: RangeInclusive<usize>, n: usize) -> Self {
        let transforms: Vec<Transform> = range
            .clone()
            .map(|m| Transform::moving_average(m, n))
            .collect();
        Self::new(format!("mv{}-{}", range.start(), range.end()), transforms)
    }

    /// Exact circular shifts for `s ∈ range`.
    pub fn circular_shifts(range: RangeInclusive<usize>, n: usize) -> Self {
        let transforms: Vec<Transform> = range
            .clone()
            .map(|s| Transform::circular_shift(s, n))
            .collect();
        Self::new(
            format!("shift{}-{}", range.start(), range.end()),
            transforms,
        )
    }

    /// Scalings by the given factors (Lemma 2's ordered family).
    pub fn scalings(factors: &[f64], n: usize) -> Self {
        let transforms: Vec<Transform> =
            factors.iter().map(|&k| Transform::scaling(k, n)).collect();
        Self::new("scalings", transforms)
    }

    /// Momentum transforms (circular) for the given lags.
    pub fn momenta(lags: RangeInclusive<usize>, n: usize) -> Self {
        let transforms: Vec<Transform> = lags.clone().map(|l| Transform::momentum(l, n)).collect();
        Self::new(format!("mom{}-{}", lags.start(), lags.end()), transforms)
    }

    /// Appends the inverted version of every member ("we later added the
    /// inverted version of each transformation", §5.2) — creates the
    /// two-cluster family of Fig. 9.
    pub fn with_inverted(&self) -> Self {
        let n = self.transforms[0].seq_len();
        let inv = Transform::inversion(n);
        let mut transforms = self.transforms.clone();
        transforms.extend(self.transforms.iter().map(|t| inv.compose(t)));
        Self {
            name: format!("{}±", self.name),
            transforms,
        }
    }

    /// The composed family `self ∘ inner` — every `t₂(t₁)` pair (Eq. 11).
    pub fn compose(&self, inner: &Family) -> Self {
        let transforms: Vec<Transform> = self
            .transforms
            .iter()
            .flat_map(|t2| inner.transforms.iter().map(move |t1| t2.compose(t1)))
            .collect();
        Self {
            name: format!("{}({})", self.name, inner.name),
            transforms,
        }
    }

    /// Family name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The transformations.
    pub fn transforms(&self) -> &[Transform] {
        &self.transforms
    }

    /// Number of member transformations (`|T|`).
    pub fn len(&self) -> usize {
        self.transforms.len()
    }

    /// Families are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// A sub-family of the first `k` members (experiment sweeps vary |T|).
    pub fn take(&self, k: usize) -> Self {
        assert!(k >= 1 && k <= self.len(), "take({k}) out of range");
        Self {
            name: self.name.clone(),
            transforms: self.transforms[..k].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::SeqFeatures;
    use tseries::{euclidean, momentum_circular, moving_average_circular, scale, TimeSeries};

    fn sample(seed: f64) -> TimeSeries {
        (0..128)
            .map(|t| (t as f64 * 0.19 + seed).sin() * 4.0 + (t as f64 * 0.031).cos() + seed)
            .collect()
    }

    /// D(t(x̂), t(q̂)) computed fully in the time domain.
    fn time_domain_distance(
        op: impl Fn(&TimeSeries) -> TimeSeries,
        x: &TimeSeries,
        q: &TimeSeries,
    ) -> f64 {
        let nx = x.normal_form().unwrap().series;
        let nq = q.normal_form().unwrap().series;
        euclidean(&op(&nx), &op(&nq))
    }

    #[test]
    fn moving_average_matches_time_domain() {
        let (x, q) = (sample(0.0), sample(1.3));
        let fx = SeqFeatures::extract(&x).unwrap();
        let fq = SeqFeatures::extract(&q).unwrap();
        for m in [1usize, 2, 5, 9, 19, 40] {
            let t = Transform::moving_average(m, 128);
            let got = t.transformed_distance(&fx, &fq);
            let want = time_domain_distance(|s| moving_average_circular(s, m), &x, &q);
            assert!((got - want).abs() < 1e-8, "mv{m}: {got} vs {want}");
        }
    }

    #[test]
    fn momentum_matches_time_domain() {
        let (x, q) = (sample(0.4), sample(2.0));
        let fx = SeqFeatures::extract(&x).unwrap();
        let fq = SeqFeatures::extract(&q).unwrap();
        for lag in [1usize, 2, 5] {
            let t = Transform::momentum(lag, 128);
            let got = t.transformed_distance(&fx, &fq);
            let want = time_domain_distance(|s| momentum_circular(s, lag), &x, &q);
            assert!((got - want).abs() < 1e-8, "mom{lag}: {got} vs {want}");
        }
    }

    #[test]
    fn circular_shift_preserves_pairwise_distance() {
        // A rotation is an isometry: distances between two spectra are
        // unchanged when *both* are rotated.
        let (x, q) = (sample(0.2), sample(1.7));
        let fx = SeqFeatures::extract(&x).unwrap();
        let fq = SeqFeatures::extract(&q).unwrap();
        let base = fx.distance(&fq);
        for s in [0usize, 1, 2, 7] {
            let t = Transform::circular_shift(s, 128);
            let got = t.transformed_distance(&fx, &fq);
            assert!((got - base).abs() < 1e-8, "shift{s}: {got} vs {base}");
        }
    }

    #[test]
    fn scaling_scales_distance_linearly() {
        let (x, q) = (sample(0.0), sample(0.9));
        let fx = SeqFeatures::extract(&x).unwrap();
        let fq = SeqFeatures::extract(&q).unwrap();
        let base = fx.distance(&fq);
        for k in [0.5, 2.0, 7.0] {
            let t = Transform::scaling(k, 128);
            assert!((t.transformed_distance(&fx, &fq) - k * base).abs() < 1e-8);
        }
        // Time-domain cross-check.
        let want = time_domain_distance(|s| scale(s, 3.0), &x, &q);
        let got = Transform::scaling(3.0, 128).transformed_distance(&fx, &fq);
        assert!((got - want).abs() < 1e-8);
    }

    #[test]
    fn inversion_is_isometric_on_pairs_and_flips_sign() {
        let (x, q) = (sample(0.1), sample(2.5));
        let fx = SeqFeatures::extract(&x).unwrap();
        let fq = SeqFeatures::extract(&q).unwrap();
        let t = Transform::inversion(128);
        // D(−x, −q) = D(x, q).
        assert!((t.transformed_distance(&fx, &fq) - fx.distance(&fq)).abs() < 1e-8);
        // Inverting only one side: spectrum of t(x) equals spectrum of −x̂.
        let tx = t.apply_spectrum(&fx.spectrum);
        let minus = SeqFeatures::extract(&x.map(|v| -v)).unwrap();
        // −x has mean −μ and the same σ; its normal form is −x̂.
        for (a, b) in tx.iter().zip(&minus.spectrum) {
            assert!((*a - *b).abs() < 1e-8);
        }
    }

    #[test]
    fn composition_matches_sequential_application() {
        // Eq. 10: t₂(t₁(X)) computed by the composed transform equals
        // applying the two in sequence.
        let x = sample(0.7);
        let fx = SeqFeatures::extract(&x).unwrap();
        let t1 = Transform::circular_shift(2, 128);
        let t2 = Transform::moving_average(10, 128);
        let composed = t2.compose(&t1);
        let seq = t2.apply_spectrum(&t1.apply_spectrum(&fx.spectrum));
        let direct = composed.apply_spectrum(&fx.spectrum);
        for (a, b) in seq.iter().zip(&direct) {
            assert!((*a - *b).abs() < 1e-8);
        }
    }

    #[test]
    fn composition_distance_matches_time_domain_pipeline() {
        let (x, q) = (sample(0.0), sample(1.1));
        let fx = SeqFeatures::extract(&x).unwrap();
        let fq = SeqFeatures::extract(&q).unwrap();
        let composed = Transform::moving_average(10, 128).compose(&Transform::momentum(1, 128));
        let got = composed.transformed_distance(&fx, &fq);
        let want = time_domain_distance(
            |s| moving_average_circular(&momentum_circular(s, 1), 10),
            &x,
            &q,
        );
        assert!((got - want).abs() < 1e-8, "{got} vs {want}");
    }

    #[test]
    fn feature_action_mirrors_spectrum_action() {
        let x = sample(0.3);
        let fx = SeqFeatures::extract(&x).unwrap();
        for t in [
            Transform::moving_average(7, 128),
            Transform::momentum(1, 128),
            Transform::circular_shift(3, 128),
            Transform::scaling(2.5, 128),
        ] {
            let p = t.apply_point(&fx.point);
            let spec = t.apply_spectrum(&fx.spectrum);
            // Magnitude dims: transformed point magnitude == |t(X)_f|
            // (angles may differ by 2π wraps; compare via cis).
            for (k, (&md, &ad)) in MAG_DIMS.iter().zip(&ANGLE_DIMS).enumerate() {
                let f = k + 1;
                assert!(
                    (p[md].abs() - spec[f].abs()).abs() < 1e-9,
                    "{} mag",
                    t.label()
                );
                let a = Complex64::cis(p[ad]);
                let b = Complex64::cis(spec[f].arg());
                assert!((a - b).abs() < 1e-9, "{} angle", t.label());
            }
        }
    }

    #[test]
    fn mv1_is_identity() {
        let x = sample(0.0);
        let fx = SeqFeatures::extract(&x).unwrap();
        let t = Transform::moving_average(1, 128);
        let spec = t.apply_spectrum(&fx.spectrum);
        for (a, b) in spec.iter().zip(&fx.spectrum) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn paper_shift_approximates_real_shift_for_long_sequences() {
        // §3.1.2's approximation: compare against the zero-pad shift in the
        // time domain. They should roughly agree (loose tolerance — it is
        // an approximation).
        let (x, q) = (sample(0.0), sample(0.05));
        let fx = SeqFeatures::extract(&x).unwrap();
        let fq = SeqFeatures::extract(&q).unwrap();
        let t = Transform::paper_shift(2, 128);
        let got = t.transformed_distance(&fx, &fq);
        // Shifting both sides by the same amount is near-isometric.
        let base = fx.distance(&fq);
        assert!((got - base).abs() / base < 0.05, "got {got}, base {base}");
    }

    #[test]
    fn family_builders() {
        let f = Family::moving_averages(10..=25, 128);
        assert_eq!(f.len(), 16);
        assert_eq!(f.transforms()[0].label(), "mv10");
        let f2 = f.with_inverted();
        assert_eq!(f2.len(), 32);
        let sub = f.take(4);
        assert_eq!(sub.len(), 4);
        let comp = Family::moving_averages(1..=3, 64).compose(&Family::circular_shifts(0..=1, 64));
        assert_eq!(comp.len(), 6);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_family_rejected() {
        Family::new("empty", vec![]);
    }

    #[test]
    fn weighted_ma_generalises_plain_ma() {
        // Equal weights == plain moving average.
        let (x, q) = (sample(0.0), sample(1.0));
        let fx = SeqFeatures::extract(&x).unwrap();
        let fq = SeqFeatures::extract(&q).unwrap();
        let plain = Transform::moving_average(7, 128);
        let weighted = Transform::weighted_moving_average(&[1.0; 7], 128);
        assert!(
            (plain.transformed_distance(&fx, &fq) - weighted.transformed_distance(&fx, &fq)).abs()
                < 1e-9
        );
        // Triangular weights: still a valid smoothing (distance between
        // smoothed versions is below the raw distance for smooth pairs).
        let tri = Transform::weighted_moving_average(&[3.0, 2.0, 1.0], 128);
        assert!(tri.transformed_distance(&fx, &fq).is_finite());
    }

    #[test]
    fn ema_matches_time_domain_filter() {
        let x = sample(0.3);
        let fx = SeqFeatures::extract(&x).unwrap();
        let alpha = 0.25;
        let t = Transform::exponential_moving_average(alpha, 128);
        let spec = t.apply_spectrum(&fx.spectrum);
        // Time-domain circular EMA via direct convolution with the
        // truncated geometric mask.
        let nx = x.normal_form().unwrap().series;
        let mut mask = vec![0.0; 128];
        let mut w = alpha;
        let mut i = 0;
        let mut total = 0.0;
        while w > 1e-12 && i < 128 {
            mask[i] = w;
            total += w;
            w *= 1.0 - alpha;
            i += 1;
        }
        for m in &mut mask {
            *m /= total;
        }
        let expect = tsfft::convolve_circular(nx.values(), &mask);
        let got: Vec<f64> = tsfft::ifft(&spec).iter().map(|c| c.re).collect();
        for (a, b) in got.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn time_reverse_matches_time_domain() {
        let x = sample(0.9);
        let fx = SeqFeatures::extract(&x).unwrap();
        let t = Transform::time_reverse(128);
        let got: Vec<f64> = tsfft::ifft(&t.apply_spectrum(&fx.spectrum))
            .iter()
            .map(|c| c.re)
            .collect();
        let nx = x.normal_form().unwrap().series;
        for (i, g) in got.iter().enumerate() {
            let want = nx[(128 - i) % 128];
            assert!((g - want).abs() < 1e-8, "t={i}: {g} vs {want}");
        }
        // A palindromic sequence is a fixed point (data-only distance 0).
        let pal: TimeSeries = (0..128)
            .map(|t| ((t as f64 - 64.0).abs() * 0.1).sin() * 3.0 + (t as f64 * 0.0))
            .collect();
        let fp = SeqFeatures::extract(&pal).unwrap();
        // pal[t] vs pal[(n−t) mod n]: pal is symmetric about 64 except the
        // wrap; check distance is small relative to the sequence energy.
        let d = t.distance_data_only(&fp, &fp);
        assert!(
            d < 2.0,
            "near-palindrome should nearly match its reverse: {d}"
        );
    }

    #[test]
    fn band_pass_zeroes_out_of_band_energy() {
        let x = sample(0.2);
        let fx = SeqFeatures::extract(&x).unwrap();
        let t = Transform::band_pass(1, 4, 128);
        let spec = t.apply_spectrum(&fx.spectrum);
        for (f, c) in spec.iter().enumerate() {
            let mirrored = if f == 0 { 0 } else { 128 - f };
            let in_band = (1..=4).contains(&f) || (1..=4).contains(&mirrored);
            if in_band {
                assert!((c.abs() - fx.spectrum[f].abs()).abs() < 1e-12);
            } else {
                assert!(c.abs() < 1e-12, "bin {f} should be zeroed");
            }
        }
        // Band-passed signals are real (mirrors kept symmetrically).
        let back = tsfft::ifft(&spec);
        assert!(back.iter().all(|c| c.im.abs() < 1e-9));
    }

    #[test]
    fn new_transforms_are_symmetric_and_safe_in_queries() {
        // All four participate in families and keep MT ≡ scan (Safe policy
        // equivalence is asserted at engine level; here: Lemma-1 style
        // containment of the composed MBR).
        let n = 64;
        let fam = Family::new(
            "mixed",
            vec![
                Transform::weighted_moving_average(&[2.0, 1.0], n),
                Transform::exponential_moving_average(0.5, n),
                Transform::time_reverse(n),
                Transform::band_pass(1, 6, n),
            ],
        );
        let mbr = crate::tmbr::TransformMbr::of_family(&fam);
        let p: crate::feature::FeatureVec = [1.0, 2.0, 0.7, -0.9, 0.4, 2.2];
        let rect = mbr.apply_to_point(&p);
        for t in fam.transforms() {
            let tp = t.apply_point(&p);
            for (i, v) in tp.iter().enumerate() {
                assert!(
                    rect.lo[i] - 1e-9 <= *v && *v <= rect.hi[i] + 1e-9,
                    "{}: dim {i}",
                    t.label()
                );
            }
        }
    }

    #[test]
    fn apply_rect_handles_negative_multipliers() {
        let t = Transform::scaling(-2.0, 16);
        // Feature dim 0 has a = −2: corners must swap.
        let rect = rstartree::Rect::<DIMS>::new([1.0; DIMS], [2.0; DIMS]);
        let out = t.apply_rect(&rect);
        assert!(out.lo[0] <= out.hi[0]);
        assert_eq!(out.lo[0], -4.0);
        assert_eq!(out.hi[0], -2.0);
    }
}
