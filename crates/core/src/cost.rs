//! The cost model of §4.2–§4.3 (Eq. 18–20).
//!
//! For transformation rectangles `r₁ … r_k`:
//!
//! ```text
//! C_k = C_DA · Σᵢ DA_all(q, rᵢ)  +  CA_leaf · C_cmp · Σᵢ DA_leaf(q, rᵢ) · NT(rᵢ)
//! ```
//!
//! Fig. 8–9 evaluate this with `C_DA = 1` and `C_cmp = 0.4·C_DA` ("a
//! sequence comparison takes as much as 40 percent the time of a disk
//! access") and show the model tracks the measured running time, with its
//! minimum at the best rectangle count.

use crate::engine::mtindex::RectTraversal;

/// Relative costs of one disk access and one sequence comparison.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// `C_DA`.
    pub cda: f64,
    /// `C_cmp`.
    pub ccmp: f64,
}

impl Default for CostModel {
    /// The paper's Fig. 8 calibration: `C_DA = 1`, `C_cmp = 0.4`.
    fn default() -> Self {
        Self {
            cda: 1.0,
            ccmp: 0.4,
        }
    }
}

impl CostModel {
    /// Eq. 18 — single rectangle.
    pub fn cost_single(&self, da_all: u64, da_leaf: u64, nt: usize, ca_leaf: usize) -> f64 {
        self.cda * da_all as f64 + da_leaf as f64 * ca_leaf as f64 * nt as f64 * self.ccmp
    }

    /// Eq. 20 — the general `k`-rectangle form, evaluated from measured
    /// per-rectangle traversal counters.
    pub fn cost(&self, traversals: &[RectTraversal], ca_leaf: usize) -> f64 {
        let da_term: f64 = traversals.iter().map(|t| t.da_all as f64).sum();
        let cmp_term: f64 = traversals
            .iter()
            .map(|t| t.da_leaf as f64 * t.nt as f64)
            .sum();
        self.cda * da_term + ca_leaf as f64 * self.ccmp * cmp_term
    }

    /// Eq. 20 with the *actual* candidate counts substituted for the
    /// `DA_leaf·CA_leaf` estimate — a tighter variant the experiments also
    /// report ("a good estimate of the number of candidate data items is
    /// DA_leaf(q,r)·CA_leaf").
    pub fn cost_with_candidates(&self, traversals: &[RectTraversal]) -> f64 {
        let da_term: f64 = traversals.iter().map(|t| t.da_all as f64).sum();
        let cmp_term: f64 = traversals
            .iter()
            .map(|t| t.candidates as f64 * t.nt as f64)
            .sum();
        self.cda * da_term + self.ccmp * cmp_term
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tr(da_all: u64, da_leaf: u64, candidates: u64, nt: usize) -> RectTraversal {
        RectTraversal {
            da_all,
            da_leaf,
            candidates,
            nt,
        }
    }

    #[test]
    fn single_rectangle_matches_eq18() {
        let m = CostModel::default();
        // C = 1·100 + 50·78·16·0.4
        let c = m.cost_single(100, 50, 16, 78);
        assert!((c - (100.0 + 50.0 * 78.0 * 16.0 * 0.4)).abs() < 1e-9);
    }

    #[test]
    fn multi_rectangle_sums_eq20() {
        let m = CostModel::default();
        let ts = [tr(60, 20, 0, 8), tr(40, 10, 0, 8)];
        let c = m.cost(&ts, 10);
        let want = 1.0 * (60.0 + 40.0) + 10.0 * 0.4 * (20.0 * 8.0 + 10.0 * 8.0);
        assert!((c - want).abs() < 1e-9);
    }

    #[test]
    fn candidates_variant_uses_actual_counts() {
        let m = CostModel {
            cda: 2.0,
            ccmp: 1.0,
        };
        let ts = [tr(10, 4, 30, 5)];
        assert!((m.cost_with_candidates(&ts) - (20.0 + 150.0)).abs() < 1e-9);
    }

    #[test]
    fn more_rectangles_raise_da_term_only() {
        let m = CostModel::default();
        let one = [tr(100, 30, 0, 16)];
        let two = [tr(80, 20, 0, 8), tr(80, 20, 0, 8)];
        // DA doubles-ish, comparison term halves per rectangle but sums to
        // the same product: the trade-off of §4.3.
        let c1 = m.cost(&one, 78);
        let c2 = m.cost(&two, 78);
        // Both finite and positive; the model differentiates them.
        assert!(c1 > 0.0 && c2 > 0.0 && (c1 - c2).abs() > 1.0);
    }
}

/// The analytical disk-access estimate §4.3 discusses (after Theodoridis &
/// Sellis, PODS '96): a window query of per-dimension widths `q` touches,
/// at every tree level, roughly
///
/// ```text
/// N_ℓ · Π_d min(1, (s_{ℓ,d} + q_d) / W_d)
/// ```
///
/// nodes, where `s_{ℓ,d}` is the mean node-MBR side, `N_ℓ` the node count,
/// and `W_d` the data-space extent. The paper's §4.3 point — reproduced in
/// the tests — is that this estimate depends only on the *window size*,
/// never on where the transformation rectangle puts it, so optimising the
/// rectangle count with it alone always (wrongly) favours a single
/// rectangle. [`crate::partition::optimize`] therefore probes the real
/// tree instead.
pub fn analytic_disk_accesses<const D: usize>(
    summaries: &[rstartree::LevelSummary<D>],
    data_extent: &[f64; D],
    query_widths: &[f64; D],
) -> f64 {
    summaries
        .iter()
        .map(|level| {
            let frac: f64 = (0..D)
                .map(|d| {
                    if data_extent[d] <= 0.0 {
                        1.0
                    } else {
                        ((level.avg_extent[d] + query_widths[d]) / data_extent[d]).min(1.0)
                    }
                })
                .product();
            level.nodes as f64 * frac
        })
        .sum()
}

#[cfg(test)]
mod analytic_tests {
    use super::*;
    use rstartree::{bulk_load_str, MemStore, Params, Rect};

    fn uniform_tree(n: usize) -> rstartree::RStarTree<2, MemStore<2>> {
        let items: Vec<(Rect<2>, u64)> = (0..n)
            .map(|i| {
                let x = (i % 100) as f64 * 10.0;
                let y = (i / 100) as f64 * 10.0;
                (Rect::point([x, y]), i as u64)
            })
            .collect();
        bulk_load_str(MemStore::new(), Params::with_max(16), items)
    }

    #[test]
    fn estimate_tracks_measured_accesses_on_uniform_data() {
        let tree = uniform_tree(10_000);
        let summaries = tree.level_summaries().unwrap();
        let extent = [1000.0, 1000.0];
        for width in [50.0, 150.0, 400.0] {
            let q = Rect::new([300.0, 300.0], [300.0 + width, 300.0 + width]);
            let (_, stats) = tree.range(&q).unwrap();
            let est = analytic_disk_accesses(&summaries, &extent, &[width, width]);
            let measured = stats.nodes_accessed as f64;
            assert!(
                est > measured * 0.3 && est < measured * 3.0,
                "width {width}: estimate {est:.1} vs measured {measured}"
            );
        }
    }

    #[test]
    fn estimate_grows_with_window() {
        let tree = uniform_tree(5_000);
        let summaries = tree.level_summaries().unwrap();
        let extent = [1000.0, 500.0];
        let small = analytic_disk_accesses(&summaries, &extent, &[10.0, 10.0]);
        let large = analytic_disk_accesses(&summaries, &extent, &[300.0, 300.0]);
        assert!(small < large);
        // A window covering the space touches every node.
        let all = analytic_disk_accesses(&summaries, &extent, &[1e9, 1e9]);
        let total: u64 = summaries.iter().map(|l| l.nodes).sum();
        assert!((all - total as f64).abs() < 1e-9);
    }

    #[test]
    fn estimate_is_placement_blind_hence_misleads_partitioning() {
        // §4.3's argument, verbatim: by this model, k transformation
        // rectangles with the same window each cost k × the single-
        // rectangle estimate — the model can never justify splitting, yet
        // the paper's (and our) measurements show splitting often wins
        // because the *real* per-rectangle windows are smaller AND land in
        // sparser regions. Here we check the first half mechanically.
        let tree = uniform_tree(5_000);
        let summaries = tree.level_summaries().unwrap();
        let extent = [1000.0, 500.0];
        let q = [120.0, 120.0];
        let one = analytic_disk_accesses(&summaries, &extent, &q);
        let four_identical = 4.0 * analytic_disk_accesses(&summaries, &extent, &q);
        assert!(
            (four_identical - 4.0 * one).abs() < 1e-9,
            "placement-blind by construction"
        );
    }
}
