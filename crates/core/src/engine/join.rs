//! Query 2 — the spatial self-join: "find every pair `s₁, s₂` of stocks and
//! every `t ∈ T` such that the transformed sequences are similar" (§4, §5,
//! Fig. 7).
//!
//! Semantics: the join predicate is `D(t(x̂), t(ŷ)) < ε` with ε derived
//! from the correlation threshold through Eq. 9 — the paper's ρ ≥ 0.99
//! becomes ε = √(2(n−1−0.99n)). The MT variant applies the transformation
//! MBR to *both* rectangles of every node pair before testing overlap,
//! exactly as §4.1 describes for join queries.

use crate::engine::{check_family, CandidateCache};
use crate::feature::SeqFeatures;
use crate::index::SeqIndex;
use crate::query::{Filter, RangeSpec};
use crate::report::{EngineMetrics, JoinMatch, JoinResult, QueryError};
use crate::tmbr::TransformMbr;
use crate::transform::Family;
#[allow(unused_imports)] // used by paired joins below
use crate::transform::Transform;
use std::time::Instant;

/// Query 2 by nested-loop scan: all `|S|·(|S|−1)/2` pairs × all
/// transformations.
pub fn scan_join(
    index: &SeqIndex,
    family: &Family,
    spec: &RangeSpec,
) -> Result<JoinResult, QueryError> {
    let start = Instant::now();
    check_family(family, index.seq_len())?;
    let eps = spec.epsilon(index.seq_len());

    let before = index.counters();
    // One pass over the relation materialises the features (the scan's page
    // accesses are counted); the pair loop is then CPU-bound, as in a real
    // block nested-loop join whose inner relation fits in memory.
    let mut feats: Vec<(usize, SeqFeatures)> = Vec::new();
    index.scan(|ordinal, ts| {
        if let Some(f) = SeqFeatures::extract(&ts) {
            feats.push((ordinal, f));
        }
    })?;

    let mut metrics = EngineMetrics::default();
    let mut matches = Vec::new();
    for i in 0..feats.len() {
        for j in (i + 1)..feats.len() {
            let (sa, fa) = &feats[i];
            let (sb, fb) = &feats[j];
            for (ti, t) in family.transforms().iter().enumerate() {
                let d = t.transformed_distance(fa, fb);
                metrics.comparisons += 1;
                if d < eps {
                    matches.push(JoinMatch {
                        seq_a: *sa,
                        seq_b: *sb,
                        transform: ti,
                        dist: d,
                    });
                }
            }
        }
    }
    let after = index.counters();
    metrics.record_page_accesses = after.record_page_reads - before.record_page_reads;
    metrics.record_fetches = after.record_fetches - before.record_fetches;
    metrics.candidates = (feats.len() * (feats.len() - 1) / 2) as u64;
    metrics.wall = start.elapsed();
    Ok(JoinResult { matches, metrics })
}

/// Query 2 by ST-index: one R*-tree self-join per transformation.
pub fn st_join(
    index: &SeqIndex,
    family: &Family,
    spec: &RangeSpec,
) -> Result<JoinResult, QueryError> {
    let start = Instant::now();
    check_family(family, index.seq_len())?;
    let eps = spec.epsilon(index.seq_len());
    let filter = Filter::new(eps, spec.policy);

    let before = index.counters();
    let mut metrics = EngineMetrics::default();
    let mut matches = Vec::new();
    let mut cache = CandidateCache::new(index);

    for (ti, t) in family.transforms().iter().enumerate() {
        let mut pairs = Vec::new();
        let stats = index.self_join(
            |r1, r2| filter.hit(&t.apply_rect(r1), &t.apply_rect(r2)),
            |_, d1, _, d2| pairs.push((d1 as usize, d2 as usize)),
        )?;
        metrics.node_accesses += stats.nodes_accessed;
        metrics.leaf_accesses += stats.leaf_nodes_accessed;
        metrics.candidates += pairs.len() as u64;
        for (sa, sb) in pairs {
            let d = {
                let fa = cache.get(sa)?;
                let fb = cache.get(sb)?;
                t.transformed_distance(&fa, &fb)
            };
            metrics.comparisons += 1;
            if d < eps {
                let (seq_a, seq_b) = (sa.min(sb), sa.max(sb));
                matches.push(JoinMatch {
                    seq_a,
                    seq_b,
                    transform: ti,
                    dist: d,
                });
            }
        }
    }
    let after = index.counters();
    metrics.record_page_accesses = after.record_page_reads - before.record_page_reads;
    metrics.record_fetches = cache.touches;
    metrics.wall = start.elapsed();
    Ok(JoinResult { matches, metrics })
}

/// Query 2 by MT-index: one self-join per transformation rectangle, with
/// the rectangle applied to both sides of every pair (§4.1's join recipe).
pub fn mt_join(
    index: &SeqIndex,
    family: &Family,
    spec: &RangeSpec,
) -> Result<JoinResult, QueryError> {
    mt_join_with_mbrs(index, family, spec, &[TransformMbr::of_family(family)])
}

/// MT join with explicit transformation rectangles.
pub fn mt_join_with_mbrs(
    index: &SeqIndex,
    family: &Family,
    spec: &RangeSpec,
    mbrs: &[TransformMbr],
) -> Result<JoinResult, QueryError> {
    let start = Instant::now();
    check_family(family, index.seq_len())?;
    let eps = spec.epsilon(index.seq_len());
    let filter = Filter::new(eps, spec.policy);

    let before = index.counters();
    let mut metrics = EngineMetrics::default();
    let mut matches = Vec::new();
    let mut cache = CandidateCache::new(index);

    for mbr in mbrs {
        let mut pairs = Vec::new();
        let stats = index.self_join(
            |r1, r2| filter.hit(&mbr.apply_to_rect(r1), &mbr.apply_to_rect(r2)),
            |_, d1, _, d2| pairs.push((d1 as usize, d2 as usize)),
        )?;
        metrics.node_accesses += stats.nodes_accessed;
        metrics.leaf_accesses += stats.leaf_nodes_accessed;
        metrics.candidates += pairs.len() as u64;
        for (sa, sb) in pairs {
            let fa = cache.get(sa)?;
            let fb = cache.get(sb)?;
            for &ti in &mbr.members {
                let d = family.transforms()[ti].transformed_distance(&fa, &fb);
                metrics.comparisons += 1;
                if d < eps {
                    let (seq_a, seq_b) = (sa.min(sb), sa.max(sb));
                    matches.push(JoinMatch {
                        seq_a,
                        seq_b,
                        transform: ti,
                        dist: d,
                    });
                }
            }
        }
    }
    let after = index.counters();
    metrics.record_page_accesses = after.record_page_reads - before.record_page_reads;
    metrics.record_fetches = cache.touches;
    metrics.wall = start.elapsed();
    Ok(JoinResult { matches, metrics })
}

/// Paired-family join: predicate `D(L_i(x), R_i(y)) < ε` for matching
/// member index `i` — transformations may differ per side. This is how
/// asymmetric relationships are expressed: hedging ("approximately the
/// opposite way", §1) pairs `L_i = invert ∘ mv_m` with `R_i = mv_m`, so a
/// match means the *inverted* smoothed left sequence tracks the smoothed
/// right sequence.
///
/// The MT filter applies the left family's MBR to one rectangle and the
/// right family's MBR to the other before the expanded-intersection test —
/// Lemma 1 applies per side, so `Safe`-policy recall is exact.
///
/// Note the predicate is not symmetric: each unordered pair `{x, y}` is
/// tested both ways and reported with `seq_a`/`seq_b` in predicate order
/// (`L` applies to `seq_a`).
pub fn mt_join_paired(
    index: &SeqIndex,
    left: &Family,
    right: &Family,
    spec: &RangeSpec,
) -> Result<JoinResult, QueryError> {
    assert_eq!(
        left.len(),
        right.len(),
        "paired families must have equal sizes"
    );
    let start = Instant::now();
    check_family(left, index.seq_len())?;
    check_family(right, index.seq_len())?;
    let eps = spec.epsilon(index.seq_len());
    let filter = Filter::new(eps, spec.policy);
    let lmbr = TransformMbr::of_family(left);
    let rmbr = TransformMbr::of_family(right);

    let before = index.counters();
    let mut metrics = EngineMetrics::default();
    let mut matches = Vec::new();
    let mut cache = CandidateCache::new(index);

    let mut pairs = Vec::new();
    // The index pair filter must admit a pair when EITHER orientation can
    // qualify (the tree's self-join visits each unordered pair once).
    let stats = index.self_join(
        |r1, r2| {
            filter.hit(&lmbr.apply_to_rect(r1), &rmbr.apply_to_rect(r2))
                || filter.hit(&lmbr.apply_to_rect(r2), &rmbr.apply_to_rect(r1))
        },
        |_, d1, _, d2| pairs.push((d1 as usize, d2 as usize)),
    )?;
    metrics.node_accesses = stats.nodes_accessed;
    metrics.leaf_accesses = stats.leaf_nodes_accessed;
    metrics.candidates = pairs.len() as u64;

    for (sa, sb) in pairs {
        let fa = cache.get(sa)?;
        let fb = cache.get(sb)?;
        for ti in 0..left.len() {
            let lt = &left.transforms()[ti];
            let rt = &right.transforms()[ti];
            for (seq_a, seq_b, x, y) in [(sa, sb, &fa, &fb), (sb, sa, &fb, &fa)] {
                let d = pair_spectrum_distance(lt, rt, x, y);
                metrics.comparisons += 1;
                if d < eps {
                    matches.push(JoinMatch {
                        seq_a,
                        seq_b,
                        transform: ti,
                        dist: d,
                    });
                }
            }
        }
    }
    let after = index.counters();
    metrics.record_page_accesses = after.record_page_reads - before.record_page_reads;
    metrics.record_fetches = cache.touches;
    metrics.wall = start.elapsed();
    Ok(JoinResult { matches, metrics })
}

/// Nested-loop ground truth for [`mt_join_paired`].
pub fn scan_join_paired(
    index: &SeqIndex,
    left: &Family,
    right: &Family,
    spec: &RangeSpec,
) -> Result<JoinResult, QueryError> {
    assert_eq!(
        left.len(),
        right.len(),
        "paired families must have equal sizes"
    );
    let start = Instant::now();
    check_family(left, index.seq_len())?;
    check_family(right, index.seq_len())?;
    let eps = spec.epsilon(index.seq_len());

    let before = index.counters();
    let mut feats: Vec<(usize, SeqFeatures)> = Vec::new();
    index.scan(|ordinal, ts| {
        if let Some(f) = SeqFeatures::extract(&ts) {
            feats.push((ordinal, f));
        }
    })?;
    let mut metrics = EngineMetrics::default();
    let mut matches = Vec::new();
    for i in 0..feats.len() {
        for j in 0..feats.len() {
            if i == j {
                continue;
            }
            let (sa, fa) = &feats[i];
            let (sb, fb) = &feats[j];
            for ti in 0..left.len() {
                let d =
                    pair_spectrum_distance(&left.transforms()[ti], &right.transforms()[ti], fa, fb);
                metrics.comparisons += 1;
                if d < eps {
                    matches.push(JoinMatch {
                        seq_a: *sa,
                        seq_b: *sb,
                        transform: ti,
                        dist: d,
                    });
                }
            }
        }
    }
    let after = index.counters();
    metrics.record_page_accesses = after.record_page_reads - before.record_page_reads;
    metrics.record_fetches = after.record_fetches - before.record_fetches;
    metrics.wall = start.elapsed();
    Ok(JoinResult { matches, metrics })
}

/// `D(L(x), R(y))` over full spectra.
fn pair_spectrum_distance(
    lt: &crate::transform::Transform,
    rt: &crate::transform::Transform,
    x: &SeqFeatures,
    y: &SeqFeatures,
) -> f64 {
    let tx = lt.apply_spectrum(&x.spectrum);
    let ty = rt.apply_spectrum(&y.spectrum);
    tx.iter()
        .zip(&ty)
        .map(|(a, b)| (*a - *b).norm_sqr())
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexConfig;
    use crate::query::FilterPolicy;
    use tseries::{Corpus, CorpusKind};

    fn setup(n: usize) -> SeqIndex {
        let c = Corpus::generate(CorpusKind::StockCloses, n, 128, 31);
        SeqIndex::build(&c, IndexConfig::default()).unwrap()
    }

    #[test]
    fn all_three_join_algorithms_agree_under_safe_policy() {
        let idx = setup(60);
        let family = Family::moving_averages(5..=12, 128);
        let spec = RangeSpec::correlation(0.90).with_policy(FilterPolicy::Safe);
        let scan = scan_join(&idx, &family, &spec).unwrap();
        let st = st_join(&idx, &family, &spec).unwrap();
        let mt = mt_join(&idx, &family, &spec).unwrap();
        assert_eq!(scan.sorted_triples(), st.sorted_triples());
        assert_eq!(scan.sorted_triples(), mt.sorted_triples());
        assert!(
            !scan.matches.is_empty(),
            "sector-correlated corpus should produce pairs"
        );
    }

    #[test]
    fn mt_join_uses_fewer_node_accesses_than_st() {
        let idx = setup(80);
        let family = Family::moving_averages(5..=24, 128);
        let spec = RangeSpec::correlation(0.99);
        let st = st_join(&idx, &family, &spec).unwrap();
        let mt = mt_join(&idx, &family, &spec).unwrap();
        assert!(
            mt.metrics.node_accesses < st.metrics.node_accesses / 2,
            "MT {} vs ST {}",
            mt.metrics.node_accesses,
            st.metrics.node_accesses
        );
    }

    #[test]
    fn paired_join_matches_nested_loop_and_finds_hedges() {
        let idx = setup(50);
        let base = Family::moving_averages(5..=9, 128);
        let inv = Transform::inversion(128);
        let left = Family::new(
            "inv∘mv",
            base.transforms().iter().map(|t| inv.compose(t)).collect(),
        );
        let spec = RangeSpec::correlation(0.90).with_policy(FilterPolicy::Safe);
        let mt = mt_join_paired(&idx, &left, &base, &spec).unwrap();
        let scan = scan_join_paired(&idx, &left, &base, &spec).unwrap();
        assert_eq!(mt.sorted_triples(), scan.sorted_triples());
        // Every reported pair is genuinely anti-correlated after smoothing.
        for m in mt.matches.iter().take(10) {
            let a = idx.fetch(m.seq_a).unwrap();
            let b = idx.fetch(m.seq_b).unwrap();
            // Symmetric smoothing distance should be LARGE (they move
            // oppositely), while the paired (inverted) distance is small.
            let t = &base.transforms()[m.transform];
            assert!(t.transformed_distance(&a, &b) > m.dist);
        }
    }

    #[test]
    fn pairs_are_canonical_and_unique() {
        let idx = setup(40);
        let family = Family::moving_averages(5..=9, 128);
        let spec = RangeSpec::correlation(0.95).with_policy(FilterPolicy::Safe);
        let r = mt_join(&idx, &family, &spec).unwrap();
        for m in &r.matches {
            assert!(m.seq_a < m.seq_b);
        }
        let mut t = r.sorted_triples();
        let before = t.len();
        t.dedup();
        assert_eq!(t.len(), before, "duplicate (pair, transform) triples");
    }
}
