//! The three query-processing algorithms of §4–§5 plus joins and k-NN.
//!
//! | module | paper name | index traversals | comparisons |
//! |--------|-----------|------------------|-------------|
//! | [`seqscan`] | sequential-scan | 0 (full relation scan) | `|S|·|T|` |
//! | [`stindex`] | ST-index | `|T|` | `Σ_t cands(t)` |
//! | [`mtindex`] | MT-index (Algorithm 1) | `k` (number of MBRs) | `Σ_r cands(r)·NT(r)` |
//!
//! All three return identical result sets (property-tested under
//! [`FilterPolicy::Safe`](crate::query::FilterPolicy)); they differ only in
//! cost, which is the paper's entire point.

pub mod join;
pub mod knn;
pub mod mtindex;
pub mod seqscan;
pub mod stindex;

use crate::feature::SeqFeatures;
use crate::ordering::OrderedFamily;
use crate::query::QueryMode;
use crate::report::{Match, QueryError};
use crate::transform::{Family, Transform};

/// Validates that a family targets the indexed sequence length.
pub(crate) fn check_family(family: &Family, indexed_len: usize) -> Result<(), QueryError> {
    let fam_len = family.transforms()[0].seq_len();
    if fam_len != indexed_len {
        return Err(QueryError::FamilyLengthMismatch {
            family: fam_len,
            indexed: indexed_len,
        });
    }
    Ok(())
}

/// How candidate verification walks the member transformations.
#[derive(Clone, Copy)]
pub(crate) enum VerifyMode<'a> {
    /// Try every member (the general case — moving averages are provably
    /// unordered, Lemmas 3–4).
    Exhaustive,
    /// Binary-search an ordered family (§4.4): `log|T|` comparisons find
    /// the maximal qualifying member; everything below it qualifies.
    Ordered(&'a OrderedFamily),
}

/// A per-query cache of fetched candidate features.
///
/// Within one query the same sequence may surface as a candidate many times
/// (once per ST traversal / per transformation rectangle / per join pair);
/// any real system's buffer manager serves the repeats from memory. The
/// cache fetches each distinct candidate once and counts every *touch* —
/// the logical access count the paper's figures report.
pub(crate) struct CandidateCache<'a> {
    index: &'a crate::index::SeqIndex,
    cache: std::collections::HashMap<usize, std::rc::Rc<SeqFeatures>>,
    /// Logical record touches (≥ distinct fetches).
    pub touches: u64,
}

impl<'a> CandidateCache<'a> {
    pub fn new(index: &'a crate::index::SeqIndex) -> Self {
        Self {
            index,
            cache: std::collections::HashMap::new(),
            touches: 0,
        }
    }

    pub fn get(&mut self, seq: usize) -> Result<std::rc::Rc<SeqFeatures>, pagestore::PageError> {
        self.touches += 1;
        if let Some(f) = self.cache.get(&seq) {
            return Ok(std::rc::Rc::clone(f));
        }
        let f = std::rc::Rc::new(self.index.fetch(seq)?);
        self.cache.insert(seq, std::rc::Rc::clone(&f));
        Ok(f)
    }
}

/// The distance of one candidate/query pair under one transformation,
/// respecting the query mode.
pub(crate) fn pair_distance(
    t: &Transform,
    x: &SeqFeatures,
    q: &SeqFeatures,
    mode: QueryMode,
) -> f64 {
    match mode {
        QueryMode::Symmetric => t.transformed_distance(x, q),
        QueryMode::DataOnly => t.distance_data_only(x, q),
    }
}

/// Algorithm 1 step 5: apply member transformations to a candidate and keep
/// those within ε. `members` are indices into `family`; every distance
/// computation increments `comparisons`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn verify_candidate(
    family: &Family,
    members: &[usize],
    mode: VerifyMode<'_>,
    query_mode: QueryMode,
    seq: usize,
    x: &SeqFeatures,
    q: &SeqFeatures,
    eps: f64,
    comparisons: &mut u64,
    out: &mut Vec<Match>,
) {
    match mode {
        VerifyMode::Exhaustive => {
            for &ti in members {
                let d = pair_distance(&family.transforms()[ti], x, q, query_mode);
                *comparisons += 1;
                if d < eps {
                    out.push(Match {
                        seq,
                        transform: ti,
                        dist: d,
                    });
                }
            }
        }
        VerifyMode::Ordered(ordered) => {
            // Orderings (Definition 1) are stated for symmetric
            // application; binary search is only sound there.
            assert_eq!(
                query_mode,
                QueryMode::Symmetric,
                "ordered verification requires symmetric queries"
            );
            // The members of an MBR over an ordered family are contiguous
            // ranks; binary-search the maximal qualifying rank, then emit
            // every member at or below it (their distances are computed for
            // the report but NOT counted — the decision needed only
            // log|T| comparisons, matching §4.4's accounting).
            let Some(max_rank) = ordered.max_qualifying_in(members, x, q, eps, comparisons) else {
                return;
            };
            for &ti in members {
                if ti <= max_rank {
                    let d = family.transforms()[ti].transformed_distance(x, q);
                    if d < eps {
                        out.push(Match {
                            seq,
                            transform: ti,
                            dist: d,
                        });
                    }
                }
            }
        }
    }
}
