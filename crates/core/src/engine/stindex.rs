//! ST-index — *a Single Transformation at a time* (§4).
//!
//! For every `t ∈ T`, apply `t` to the index (every rectangle met during
//! the descent is transformed through `a⊙x + b`) and run a range search
//! around `t(q)`; the union over `t` is the answer. Costs `|T|` traversals.

use crate::engine::{check_family, pair_distance, CandidateCache};
use crate::index::SeqIndex;
use crate::ordering::OrderedFamily;
use crate::query::{st_query_region, Filter, RangeSpec};
use crate::report::{EngineMetrics, Match, QueryError, QueryResult};
use crate::transform::Family;
use std::time::Instant;
use tseries::TimeSeries;

/// Query 1 by ST-index.
pub fn range_query(
    index: &SeqIndex,
    query: &TimeSeries,
    family: &Family,
    spec: &RangeSpec,
) -> Result<QueryResult, QueryError> {
    let start = Instant::now();
    check_family(family, index.seq_len())?;
    let q = index.prepare_query(query)?;
    let eps = spec.epsilon(index.seq_len());
    let filter = Filter::new(eps, spec.policy);

    let before = index.counters();
    let mut metrics = EngineMetrics::default();
    let mut matches = Vec::new();
    let mut cache = CandidateCache::new(index);

    for (ti, t) in family.transforms().iter().enumerate() {
        let region = st_query_region(t, &q.point, spec.mode);
        let mut candidates = Vec::new();
        let stats = index.search(
            |rect| filter.hit(&t.apply_rect(rect), &region),
            |_, data| candidates.push(data as usize),
        )?;
        metrics.node_accesses += stats.nodes_accessed;
        metrics.leaf_accesses += stats.leaf_nodes_accessed;
        metrics.candidates += candidates.len() as u64;
        for seq in candidates {
            let x = cache.get(seq)?;
            let d = pair_distance(t, &x, &q, spec.mode);
            metrics.comparisons += 1;
            if d < eps {
                matches.push(Match {
                    seq,
                    transform: ti,
                    dist: d,
                });
            }
        }
    }

    let after = index.counters();
    metrics.record_page_accesses = after.record_page_reads - before.record_page_reads;
    metrics.record_fetches = cache.touches;
    metrics.wall = start.elapsed();
    Ok(QueryResult { matches, metrics })
}

/// ST-index over an *ordered* family (§4.4, refined): since qualifying
/// members form a per-sequence prefix, a **single** traversal with the
/// minimal transformation retrieves a superset of every member's answers;
/// each candidate is then binary-searched for its maximal qualifying rank.
pub fn range_query_ordered(
    index: &SeqIndex,
    query: &TimeSeries,
    ordered: &OrderedFamily,
    spec: &RangeSpec,
) -> Result<QueryResult, QueryError> {
    let start = Instant::now();
    let family = ordered.family();
    check_family(family, index.seq_len())?;
    let q = index.prepare_query(query)?;
    let eps = spec.epsilon(index.seq_len());
    let filter = Filter::new(eps, spec.policy);

    let before = index.counters();
    let mut metrics = EngineMetrics::default();
    let mut matches = Vec::new();

    let t0 = &family.transforms()[0];
    let region = st_query_region(t0, &q.point, spec.mode);
    let mut candidates = Vec::new();
    let stats = index.search(
        |rect| filter.hit(&t0.apply_rect(rect), &region),
        |_, data| candidates.push(data as usize),
    )?;
    metrics.node_accesses = stats.nodes_accessed;
    metrics.leaf_accesses = stats.leaf_nodes_accessed;
    metrics.candidates = candidates.len() as u64;

    for seq in candidates {
        let x = index.fetch(seq)?;
        if let Some(max_rank) = ordered.max_qualifying(&x, &q, eps, &mut metrics.comparisons) {
            for ti in 0..=max_rank {
                let d = family.transforms()[ti].transformed_distance(&x, &q);
                matches.push(Match {
                    seq,
                    transform: ti,
                    dist: d,
                });
            }
        }
    }

    let after = index.counters();
    metrics.record_page_accesses = after.record_page_reads - before.record_page_reads;
    metrics.record_fetches = after.record_fetches - before.record_fetches;
    metrics.wall = start.elapsed();
    Ok(QueryResult { matches, metrics })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::seqscan;
    use crate::index::IndexConfig;
    use crate::query::FilterPolicy;
    use tseries::{Corpus, CorpusKind};

    fn setup(n: usize) -> (Corpus, SeqIndex) {
        let c = Corpus::generate(CorpusKind::SyntheticWalks, n, 128, 23);
        let idx = SeqIndex::build(&c, IndexConfig::default()).unwrap();
        (c, idx)
    }

    #[test]
    fn safe_policy_matches_sequential_scan() {
        let (c, idx) = setup(120);
        let family = Family::moving_averages(10..=17, 128);
        let spec = RangeSpec::correlation(0.96).with_policy(FilterPolicy::Safe);
        for qi in [0usize, 31, 77] {
            let a = seqscan::range_query(&idx, &c.series()[qi], &family, &spec).unwrap();
            let b = range_query(&idx, &c.series()[qi], &family, &spec).unwrap();
            assert_eq!(a.sorted_pairs(), b.sorted_pairs(), "query {qi}");
        }
    }

    #[test]
    fn traversal_count_scales_with_family() {
        let (c, idx) = setup(300);
        let spec = RangeSpec::correlation(0.96);
        let small = Family::moving_averages(10..=11, 128);
        let large = Family::moving_averages(10..=25, 128);
        let q = &c.series()[0];
        let a = range_query(&idx, q, &small, &spec).unwrap();
        let b = range_query(&idx, q, &large, &spec).unwrap();
        // 16 traversals vs 2: node accesses should grow accordingly.
        assert!(
            b.metrics.node_accesses >= 4 * a.metrics.node_accesses,
            "{} vs {}",
            b.metrics.node_accesses,
            a.metrics.node_accesses
        );
    }

    #[test]
    fn ordered_variant_equals_general_variant() {
        let (c, idx) = setup(100);
        let factors: Vec<f64> = (1..=8).map(|k| 0.5 + k as f64 * 0.25).collect();
        let ordered = OrderedFamily::scalings(&factors, 128);
        let spec = RangeSpec::euclidean(6.0).with_policy(FilterPolicy::Safe);
        let q = &c.series()[9];
        let a = range_query(&idx, q, ordered.family(), &spec).unwrap();
        let b = range_query_ordered(&idx, q, &ordered, &spec).unwrap();
        assert_eq!(a.sorted_pairs(), b.sorted_pairs());
        assert!(b.metrics.node_accesses < a.metrics.node_accesses);
    }
}
