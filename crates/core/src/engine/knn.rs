//! Nearest-neighbour queries under multiple transformations (§4.1's last
//! paragraph): "as we walk down the tree, we apply the transformation MBR
//! to all entries of the node we visit", pruning with a MINDIST-style
//! metric (Roussopoulos et al.).
//!
//! Semantics: the distance of sequence `x` to the query is
//! `min_{t ∈ T} D(t(x̂), t(q̂))`; the k sequences minimising it are
//! returned, each with its best transformation.

use crate::engine::check_family;
use crate::feature::{FRect, MAG_DIMS};
use crate::index::SeqIndex;
use crate::report::{EngineMetrics, Match, QueryError};
use crate::tmbr::TransformMbr;
use crate::transform::Family;
use std::time::Instant;
use tseries::TimeSeries;

/// The k sequences nearest to `query` under the best member of `family`,
/// via best-first search with a transformed MINDIST bound.
pub fn knn(
    index: &SeqIndex,
    query: &TimeSeries,
    family: &Family,
    k: usize,
) -> Result<(Vec<Match>, EngineMetrics), QueryError> {
    knn_bounded(index, query, family, k, f64::INFINITY)
}

/// [`knn`] seeded with an external pruning bound: only sequences at
/// distance ≤ `init_bound` are considered (ties at the bound are kept so
/// a caller merging several indexes can break them deterministically).
/// The sharded gather executor passes the running global k-th distance
/// here to prune later per-shard searches; `init_bound = ∞` is plain kNN.
pub fn knn_bounded(
    index: &SeqIndex,
    query: &TimeSeries,
    family: &Family,
    k: usize,
    init_bound: f64,
) -> Result<(Vec<Match>, EngineMetrics), QueryError> {
    let start = Instant::now();
    check_family(family, index.seq_len())?;
    let q = index.prepare_query(query)?;
    let mbr = TransformMbr::of_family(family);
    let qregion = mbr.apply_to_point(&q.point);

    let before = index.counters();
    let mut comparisons = 0u64;
    let mut best_transform: Vec<(usize, usize, f64)> = Vec::new();
    // The refine closure cannot return a Result; the first fetch failure is
    // parked here and re-raised after the traversal returns.
    let mut fetch_err: Option<pagestore::PageError> = None;

    // Optimal multi-step search: leaf entries carry the cheap feature-space
    // bound; the expensive fetch-and-verify runs only when an entry reaches
    // the head of the queue.
    let (neighbors, stats) = index.nearest_by_refine_bounded(
        k,
        init_bound,
        |rect| mindist_bound(&mbr.apply_to_rect(rect), &qregion),
        |rect, _| mindist_bound(&mbr.apply_to_rect(rect), &qregion),
        |_, data| {
            let seq = data as usize;
            let x = match index.fetch(seq) {
                Ok(x) => x,
                Err(e) => {
                    fetch_err.get_or_insert(e);
                    return None;
                }
            };
            // Exact score: the best member transformation.
            let (mut best_t, mut best_d) = (0usize, f64::INFINITY);
            for (ti, t) in family.transforms().iter().enumerate() {
                let d = t.transformed_distance(&x, &q);
                comparisons += 1;
                if d < best_d {
                    best_d = d;
                    best_t = ti;
                }
            }
            best_transform.push((seq, best_t, best_d));
            Some(best_d)
        },
    )?;
    if let Some(e) = fetch_err {
        return Err(e.into());
    }

    let after = index.counters();
    let matches: Vec<Match> = neighbors
        .iter()
        .map(|n| {
            let seq = n.data as usize;
            let (_, t, d) = best_transform
                .iter()
                .find(|(s, _, _)| *s == seq)
                .copied()
                .expect("scored before reported");
            debug_assert!((d - n.dist).abs() < 1e-12);
            Match {
                seq,
                transform: t,
                dist: d,
            }
        })
        .collect();

    let metrics = EngineMetrics {
        node_accesses: stats.nodes_accessed,
        leaf_accesses: stats.leaf_nodes_accessed,
        record_page_accesses: after.record_page_reads - before.record_page_reads,
        record_fetches: after.record_fetches - before.record_fetches,
        comparisons,
        candidates: stats.candidates,
        wall: start.elapsed(),
    };
    Ok((matches, metrics))
}

/// Lower bound on `min_t D(t(x), t(q))` for everything under a transformed
/// rectangle: √2 × the magnitude-dimension gap between the transformed data
/// rectangle and the transformed query region (the symmetry factor makes
/// each stored coefficient count twice; angle dimensions are not lower
/// bounds and are excluded).
fn mindist_bound(data: &FRect, qregion: &FRect) -> f64 {
    let mut acc = 0.0;
    for &d in &MAG_DIMS {
        let gap = if data.lo[d] > qregion.hi[d] {
            data.lo[d] - qregion.hi[d]
        } else if qregion.lo[d] > data.hi[d] {
            qregion.lo[d] - data.hi[d]
        } else {
            0.0
        };
        acc += gap * gap;
    }
    (2.0 * acc).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexConfig;
    use tseries::{Corpus, CorpusKind};

    fn setup(n: usize) -> (Corpus, SeqIndex) {
        let c = Corpus::generate(CorpusKind::SyntheticWalks, n, 128, 37);
        let idx = SeqIndex::build(&c, IndexConfig::default()).unwrap();
        (c, idx)
    }

    fn brute_force(
        index: &SeqIndex,
        c: &Corpus,
        query: &TimeSeries,
        family: &Family,
        k: usize,
    ) -> Vec<(usize, f64)> {
        let q = index.prepare_query(query).unwrap();
        let mut scored: Vec<(usize, f64)> = c
            .series()
            .iter()
            .enumerate()
            .filter_map(|(i, ts)| {
                let x = crate::feature::SeqFeatures::extract(ts)?;
                let d = family
                    .transforms()
                    .iter()
                    .map(|t| t.transformed_distance(&x, &q))
                    .fold(f64::INFINITY, f64::min);
                Some((i, d))
            })
            .collect();
        scored.sort_by(|a, b| a.1.total_cmp(&b.1));
        scored.truncate(k);
        scored
    }

    #[test]
    fn knn_matches_brute_force() {
        let (c, idx) = setup(120);
        let family = Family::moving_averages(5..=14, 128);
        for qi in [0usize, 60] {
            let (got, _) = knn(&idx, &c.series()[qi], &family, 5).unwrap();
            let want = brute_force(&idx, &c, &c.series()[qi], &family, 5);
            assert_eq!(got.len(), 5);
            for (g, (ws, wd)) in got.iter().zip(&want) {
                // Distances must match the brute-force ranking (ties may
                // permute equal-distance sequences).
                assert!((g.dist - wd).abs() < 1e-9, "query {qi}: {} vs {wd}", g.dist);
                let _ = ws;
            }
        }
    }

    #[test]
    fn nearest_to_itself_is_itself() {
        let (c, idx) = setup(80);
        let family = Family::moving_averages(1..=5, 128);
        let (got, metrics) = knn(&idx, &c.series()[42], &family, 1).unwrap();
        assert_eq!(got[0].seq, 42);
        assert!(got[0].dist < 1e-9);
        assert_eq!(got[0].transform, 0, "identity (mv1) achieves distance 0");
        assert!(metrics.comparisons > 0);
    }

    #[test]
    fn pruning_avoids_scoring_everything() {
        let (c, idx) = setup(600);
        let family = Family::moving_averages(3..=6, 128);
        let (_, metrics) = knn(&idx, &c.series()[10], &family, 3).unwrap();
        assert!(
            metrics.candidates < 600,
            "best-first should not score every sequence: {}",
            metrics.candidates
        );
    }
}
