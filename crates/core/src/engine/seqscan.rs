//! The sequential-scan baseline: read the whole relation, try every
//! transformation on every sequence (`|S|·|T|` comparisons — §4's cost
//! description).

use crate::engine::{check_family, verify_candidate, VerifyMode};
use crate::feature::SeqFeatures;
use crate::index::SeqIndex;
use crate::ordering::OrderedFamily;
use crate::query::RangeSpec;
use crate::report::{EngineMetrics, QueryError, QueryResult};
use crate::transform::Family;
use std::time::Instant;
use tseries::TimeSeries;

/// Query 1 by sequential scan.
pub fn range_query(
    index: &SeqIndex,
    query: &TimeSeries,
    family: &Family,
    spec: &RangeSpec,
) -> Result<QueryResult, QueryError> {
    run(index, query, family, spec, VerifyMode::Exhaustive)
}

/// Sequential scan over an *ordered* family (§4.4): `|S|·log|T|`
/// comparisons instead of `|S|·|T|`.
pub fn range_query_ordered(
    index: &SeqIndex,
    query: &TimeSeries,
    ordered: &OrderedFamily,
    spec: &RangeSpec,
) -> Result<QueryResult, QueryError> {
    run(
        index,
        query,
        ordered.family(),
        spec,
        VerifyMode::Ordered(ordered),
    )
}

/// A multi-threaded sequential scan: the relation is partitioned into
/// `threads` disjoint ordinal ranges scanned concurrently (std scoped
/// threads). Identical results to [`range_query`]; a modern baseline the
/// 1999 evaluation lacked, included so the index algorithms are compared
/// against the strongest scan available.
pub fn range_query_parallel(
    index: &SeqIndex,
    query: &TimeSeries,
    family: &Family,
    spec: &RangeSpec,
    threads: usize,
) -> Result<QueryResult, QueryError> {
    assert!(threads >= 1, "need at least one thread");
    let start = Instant::now();
    check_family(family, index.seq_len())?;
    let q = index.prepare_query(query)?;
    let eps = spec.epsilon(index.seq_len());
    let members: Vec<usize> = (0..family.len()).collect();

    let before = index.counters();
    let n = index.len();
    let chunk = n.div_ceil(threads);
    type WorkerResult = Result<(Vec<crate::report::Match>, u64), pagestore::PageError>;
    let results: Vec<WorkerResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let (lo, hi) = (t * chunk, ((t + 1) * chunk).min(n));
                let (q, members) = (&q, &members);
                scope.spawn(move || {
                    let mut matches = Vec::new();
                    let mut comparisons = 0;
                    index.scan_range(lo, hi, |ordinal, ts| {
                        let Some(x) = SeqFeatures::extract(&ts) else {
                            return;
                        };
                        verify_candidate(
                            family,
                            members,
                            VerifyMode::Exhaustive,
                            spec.mode,
                            ordinal,
                            &x,
                            q,
                            eps,
                            &mut comparisons,
                            &mut matches,
                        );
                    })?;
                    Ok((matches, comparisons))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scan worker panicked"))
            .collect()
    });

    let mut matches = Vec::new();
    let mut comparisons = 0;
    // Workers stop at their first failed page; the query reports the first
    // failure rather than a partial result.
    for worker in results {
        let (m, c) = worker?;
        matches.extend(m);
        comparisons += c;
    }
    matches.sort_by_key(|a| (a.seq, a.transform));
    let after = index.counters();

    Ok(QueryResult {
        matches,
        metrics: EngineMetrics {
            node_accesses: 0,
            leaf_accesses: 0,
            record_page_accesses: after.record_page_reads - before.record_page_reads,
            record_fetches: after.record_fetches - before.record_fetches,
            comparisons,
            candidates: n as u64,
            wall: start.elapsed(),
        },
    })
}

fn run(
    index: &SeqIndex,
    query: &TimeSeries,
    family: &Family,
    spec: &RangeSpec,
    mode: VerifyMode<'_>,
) -> Result<QueryResult, QueryError> {
    let start = Instant::now();
    check_family(family, index.seq_len())?;
    let q = index.prepare_query(query)?;
    let eps = spec.epsilon(index.seq_len());
    let members: Vec<usize> = (0..family.len()).collect();

    let before = index.counters();
    let mut comparisons = 0;
    let mut matches = Vec::new();
    index.scan(|ordinal, ts| {
        let Some(x) = SeqFeatures::extract(&ts) else {
            return; // degenerate rows cannot match a normal-form query
        };
        verify_candidate(
            family,
            &members,
            mode,
            spec.mode,
            ordinal,
            &x,
            &q,
            eps,
            &mut comparisons,
            &mut matches,
        );
    })?;
    let after = index.counters();

    Ok(QueryResult {
        matches,
        metrics: EngineMetrics {
            node_accesses: 0,
            leaf_accesses: 0,
            record_page_accesses: after.record_page_reads - before.record_page_reads,
            record_fetches: after.record_fetches - before.record_fetches,
            comparisons,
            candidates: index.len() as u64,
            wall: start.elapsed(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexConfig;
    use tseries::{Corpus, CorpusKind};

    fn setup(n: usize) -> (Corpus, SeqIndex) {
        let c = Corpus::generate(CorpusKind::SyntheticWalks, n, 64, 17);
        let idx = SeqIndex::build(&c, IndexConfig::default()).unwrap();
        (c, idx)
    }

    #[test]
    fn finds_itself_under_identity_window() {
        let (c, idx) = setup(40);
        let family = Family::moving_averages(1..=8, 64);
        let spec = RangeSpec::euclidean(1e-6);
        let r = range_query(&idx, &c.series()[7], &family, &spec).unwrap();
        // mv1 = identity: the query matches itself at distance 0.
        assert!(r.matches.iter().any(|m| m.seq == 7 && m.transform == 0));
        assert_eq!(r.metrics.comparisons, 40 * 8);
    }

    #[test]
    fn record_pages_counted() {
        let (c, idx) = setup(100);
        idx.reset_counters().unwrap();
        let family = Family::moving_averages(5..=6, 64);
        let r = range_query(&idx, &c.series()[0], &family, &RangeSpec::correlation(0.96)).unwrap();
        // 100 sequences × 512 bytes = 6.4 per 8 KiB page → 7 pages.
        assert!(r.metrics.record_page_accesses >= 7, "{}", r.metrics);
        assert_eq!(r.metrics.node_accesses, 0);
    }

    #[test]
    fn ordered_scan_equals_exhaustive_scan() {
        let (c, idx) = setup(60);
        let factors: Vec<f64> = (1..=16).map(|k| k as f64 * 0.5).collect();
        let ordered = OrderedFamily::scalings(&factors, 64);
        let spec = RangeSpec::euclidean(8.0);
        let q = &c.series()[3];
        let a = range_query(&idx, q, ordered.family(), &spec).unwrap();
        let b = range_query_ordered(&idx, q, &ordered, &spec).unwrap();
        assert_eq!(a.sorted_pairs(), b.sorted_pairs());
        assert!(
            b.metrics.comparisons < a.metrics.comparisons / 2,
            "binary search should save comparisons: {} vs {}",
            b.metrics.comparisons,
            a.metrics.comparisons
        );
    }

    #[test]
    fn parallel_scan_equals_sequential_scan() {
        let (c, idx) = setup(200);
        let family = Family::moving_averages(3..=10, 64);
        let spec = RangeSpec::correlation(0.96);
        for threads in [1usize, 2, 4, 7] {
            let a = range_query(&idx, &c.series()[11], &family, &spec).unwrap();
            let b = range_query_parallel(&idx, &c.series()[11], &family, &spec, threads).unwrap();
            assert_eq!(a.sorted_pairs(), b.sorted_pairs(), "threads = {threads}");
            assert_eq!(a.metrics.comparisons, b.metrics.comparisons);
        }
    }

    #[test]
    fn rejects_mismatched_family() {
        let (c, idx) = setup(10);
        let family = Family::moving_averages(1..=4, 32); // wrong length
        let err =
            range_query(&idx, &c.series()[0], &family, &RangeSpec::euclidean(1.0)).unwrap_err();
        assert!(matches!(
            err,
            QueryError::FamilyLengthMismatch {
                family: 32,
                indexed: 64
            }
        ));
    }
}
