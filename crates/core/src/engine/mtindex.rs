//! MT-index — *Multiple Transformations at a time* (Algorithm 1, the
//! paper's contribution).
//!
//! Build the MBR of the transformation set, split it into a mult-MBR and an
//! add-MBR, and descend the R*-tree **once**, applying the pair to every
//! index rectangle via Eq. 12 and testing the result against the
//! ε-expanded query region. Candidates are post-processed with every member
//! transformation (step 5). With `k > 1` transformation rectangles (§4.3)
//! the index is traversed once per rectangle — the trade-off Figures 8–9
//! explore.

use crate::engine::{check_family, verify_candidate, CandidateCache, VerifyMode};
use crate::index::SeqIndex;
use crate::ordering::OrderedFamily;
use crate::partition::PartitionStrategy;
use crate::query::{mt_query_region, Filter, RangeSpec};
use crate::report::{EngineMetrics, QueryError, QueryResult};
use crate::tmbr::TransformMbr;
use crate::transform::Family;
use std::time::Instant;
use tseries::TimeSeries;

/// Per-rectangle cost counters — the `DA_all(q, rᵢ)`, `DA_leaf(q, rᵢ)` and
/// `NT(rᵢ)` of Eq. 19/20, reported so the cost model can be evaluated
/// against measurements (Fig. 8).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RectTraversal {
    /// Node accesses of this rectangle's traversal (all levels).
    pub da_all: u64,
    /// Leaf accesses of this rectangle's traversal.
    pub da_leaf: u64,
    /// Candidates retrieved.
    pub candidates: u64,
    /// Number of member transformations.
    pub nt: usize,
}

/// Query 1 by MT-index with all transformations in one rectangle (the §5.1
/// configuration).
pub fn range_query(
    index: &SeqIndex,
    query: &TimeSeries,
    family: &Family,
    spec: &RangeSpec,
) -> Result<QueryResult, QueryError> {
    let (result, _) =
        range_query_partitioned(index, query, family, spec, &PartitionStrategy::Single)?;
    Ok(result)
}

/// Query 1 by MT-index with an explicit partitioning strategy; also returns
/// the per-rectangle traversal counters for cost-model evaluation.
pub fn range_query_partitioned(
    index: &SeqIndex,
    query: &TimeSeries,
    family: &Family,
    spec: &RangeSpec,
    strategy: &PartitionStrategy,
) -> Result<(QueryResult, Vec<RectTraversal>), QueryError> {
    let mbrs = crate::partition::partition(family, strategy);
    range_query_with_mbrs(index, query, family, spec, &mbrs, None)
}

/// Query 1 by MT-index over an ordered family: candidate verification uses
/// binary search (§4.4 — "the number of comparisons for every candidate
/// sequence drops to log|T|").
pub fn range_query_ordered(
    index: &SeqIndex,
    query: &TimeSeries,
    ordered: &OrderedFamily,
    spec: &RangeSpec,
) -> Result<QueryResult, QueryError> {
    let mbrs = vec![TransformMbr::of_family(ordered.family())];
    let (result, _) =
        range_query_with_mbrs(index, query, ordered.family(), spec, &mbrs, Some(ordered))?;
    Ok(result)
}

/// The general driver: one traversal per transformation rectangle.
pub fn range_query_with_mbrs(
    index: &SeqIndex,
    query: &TimeSeries,
    family: &Family,
    spec: &RangeSpec,
    mbrs: &[TransformMbr],
    ordered: Option<&OrderedFamily>,
) -> Result<(QueryResult, Vec<RectTraversal>), QueryError> {
    let q = index.prepare_query(query)?;
    range_query_features(index, &q, family, spec, mbrs, ordered)
}

/// Like [`range_query_with_mbrs`] but with an already-prepared query target
/// — typically used with [`crate::query::QueryMode::DataOnly`] and a
/// transformed spectrum (e.g. "compare each candidate's shifted momentum
/// against the momentum of q").
pub fn range_query_features(
    index: &SeqIndex,
    q: &crate::feature::SeqFeatures,
    family: &Family,
    spec: &RangeSpec,
    mbrs: &[TransformMbr],
    ordered: Option<&OrderedFamily>,
) -> Result<(QueryResult, Vec<RectTraversal>), QueryError> {
    let start = Instant::now();
    check_family(family, index.seq_len())?;
    if q.len() != index.seq_len() {
        return Err(QueryError::LengthMismatch {
            query: q.len(),
            indexed: index.seq_len(),
        });
    }
    let eps = spec.epsilon(index.seq_len());
    let filter = Filter::new(eps, spec.policy);

    let before = index.counters();
    let mut metrics = EngineMetrics::default();
    let mut matches = Vec::new();
    let mut traversals = Vec::with_capacity(mbrs.len());
    let mut cache = CandidateCache::new(index);

    for mbr in mbrs {
        // Step 1–2: the transformed query region for this rectangle.
        let region = mt_query_region(mbr, &q.point, spec.mode);
        // Steps 3–4: one descent, transforming every index rectangle.
        let mut candidates = Vec::new();
        let stats = index.search(
            |rect| filter.hit(&mbr.apply_to_rect(rect), &region),
            |_, data| candidates.push(data as usize),
        )?;
        metrics.node_accesses += stats.nodes_accessed;
        metrics.leaf_accesses += stats.leaf_nodes_accessed;
        metrics.candidates += candidates.len() as u64;
        traversals.push(RectTraversal {
            da_all: stats.nodes_accessed,
            da_leaf: stats.leaf_nodes_accessed,
            candidates: candidates.len() as u64,
            nt: mbr.nt(),
        });

        // Step 5: retrieve full records and verify every member.
        let mode = match ordered {
            Some(of) => VerifyMode::Ordered(of),
            None => VerifyMode::Exhaustive,
        };
        for seq in candidates {
            let x = cache.get(seq)?;
            verify_candidate(
                family,
                &mbr.members,
                mode,
                spec.mode,
                seq,
                &x,
                q,
                eps,
                &mut metrics.comparisons,
                &mut matches,
            );
        }
    }

    let after = index.counters();
    metrics.record_page_accesses = after.record_page_reads - before.record_page_reads;
    metrics.record_fetches = cache.touches;
    metrics.wall = start.elapsed();
    Ok((QueryResult { matches, metrics }, traversals))
}

/// A filter-only probe: runs each rectangle's traversal, counting node and
/// candidate statistics **without** fetching or verifying candidates. This
/// is the measurement §4.3's optimizer needs to evaluate Eq. 20 for a
/// candidate partitioning at a fraction of a real query's cost.
pub fn probe(
    index: &SeqIndex,
    query: &TimeSeries,
    family: &Family,
    spec: &RangeSpec,
    mbrs: &[TransformMbr],
) -> Result<Vec<RectTraversal>, QueryError> {
    check_family(family, index.seq_len())?;
    let q = index.prepare_query(query)?;
    let eps = spec.epsilon(index.seq_len());
    let filter = Filter::new(eps, spec.policy);
    let mut out = Vec::with_capacity(mbrs.len());
    for mbr in mbrs {
        let region = mt_query_region(mbr, &q.point, spec.mode);
        let mut candidates = 0u64;
        let stats = index.search(
            |rect| filter.hit(&mbr.apply_to_rect(rect), &region),
            |_, _| candidates += 1,
        )?;
        out.push(RectTraversal {
            da_all: stats.nodes_accessed,
            da_leaf: stats.leaf_nodes_accessed,
            candidates,
            nt: mbr.nt(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{seqscan, stindex};
    use crate::index::IndexConfig;
    use crate::query::FilterPolicy;
    use tseries::{Corpus, CorpusKind};

    fn setup(n: usize) -> (Corpus, SeqIndex) {
        let c = Corpus::generate(CorpusKind::SyntheticWalks, n, 128, 29);
        let idx = SeqIndex::build(&c, IndexConfig::default()).unwrap();
        (c, idx)
    }

    #[test]
    fn safe_policy_matches_scan_and_st() {
        let (c, idx) = setup(150);
        let family = Family::moving_averages(10..=25, 128);
        let spec = RangeSpec::correlation(0.96).with_policy(FilterPolicy::Safe);
        for qi in [0usize, 50, 149] {
            let q = &c.series()[qi];
            let scan = seqscan::range_query(&idx, q, &family, &spec).unwrap();
            let st = stindex::range_query(&idx, q, &family, &spec).unwrap();
            let mt = range_query(&idx, q, &family, &spec).unwrap();
            assert_eq!(scan.sorted_pairs(), st.sorted_pairs(), "ST query {qi}");
            assert_eq!(scan.sorted_pairs(), mt.sorted_pairs(), "MT query {qi}");
        }
    }

    #[test]
    fn single_traversal_beats_st_on_node_accesses() {
        let (c, idx) = setup(400);
        let family = Family::moving_averages(5..=34, 128);
        let spec = RangeSpec::correlation(0.96);
        let q = &c.series()[11];
        let st = stindex::range_query(&idx, q, &family, &spec).unwrap();
        let mt = range_query(&idx, q, &family, &spec).unwrap();
        assert!(
            mt.metrics.node_accesses * 5 < st.metrics.node_accesses,
            "MT {} vs ST {}",
            mt.metrics.node_accesses,
            st.metrics.node_accesses
        );
    }

    #[test]
    fn partitioned_equals_single_rectangle_results() {
        let (c, idx) = setup(120);
        let family = Family::moving_averages(6..=29, 128);
        let spec = RangeSpec::correlation(0.96).with_policy(FilterPolicy::Safe);
        let q = &c.series()[5];
        let (one, tr1) =
            range_query_partitioned(&idx, q, &family, &spec, &PartitionStrategy::Single).unwrap();
        let (four, tr4) = range_query_partitioned(
            &idx,
            q,
            &family,
            &spec,
            &PartitionStrategy::EqualWidth { per_mbr: 6 },
        )
        .unwrap();
        assert_eq!(one.sorted_pairs(), four.sorted_pairs());
        assert_eq!(tr1.len(), 1);
        assert_eq!(tr4.len(), 4);
        assert_eq!(tr4.iter().map(|t| t.nt).sum::<usize>(), 24);
    }

    #[test]
    fn traversal_counters_sum_to_metrics() {
        let (c, idx) = setup(200);
        let family = Family::moving_averages(6..=17, 128);
        let spec = RangeSpec::correlation(0.96);
        let (res, trav) = range_query_partitioned(
            &idx,
            &c.series()[2],
            &family,
            &spec,
            &PartitionStrategy::EqualWidth { per_mbr: 4 },
        )
        .unwrap();
        assert_eq!(
            trav.iter().map(|t| t.da_all).sum::<u64>(),
            res.metrics.node_accesses
        );
        assert_eq!(
            trav.iter().map(|t| t.candidates).sum::<u64>(),
            res.metrics.candidates
        );
    }

    #[test]
    fn ordered_verification_saves_comparisons() {
        let (c, idx) = setup(150);
        let factors: Vec<f64> = (1..=32).map(|k| 0.2 + 0.1 * k as f64).collect();
        let ordered = OrderedFamily::scalings(&factors, 128);
        let spec = RangeSpec::euclidean(10.0).with_policy(FilterPolicy::Safe);
        let q = &c.series()[8];
        let general = range_query(&idx, q, ordered.family(), &spec).unwrap();
        let fast = range_query_ordered(&idx, q, &ordered, &spec).unwrap();
        assert_eq!(general.sorted_pairs(), fast.sorted_pairs());
        assert!(
            fast.metrics.comparisons <= general.metrics.comparisons / 3,
            "{} vs {}",
            fast.metrics.comparisons,
            general.metrics.comparisons
        );
    }
}
