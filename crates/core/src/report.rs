//! Query results and the metrics every engine reports.

use std::fmt;
use std::time::Duration;

/// One qualifying `(sequence, transformation)` pair of Query 1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Match {
    /// Ordinal of the matching sequence in the corpus.
    pub seq: usize,
    /// Index of the qualifying transformation in the family.
    pub transform: usize,
    /// The exact distance `D(t(x), t(q))`.
    pub dist: f64,
}

/// One qualifying pair of the spatial join (Query 2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JoinMatch {
    /// First sequence (always `< seq_b`).
    pub seq_a: usize,
    /// Second sequence.
    pub seq_b: usize,
    /// Index of the qualifying transformation.
    pub transform: usize,
    /// The exact distance `D(t(x), t(y))`.
    pub dist: f64,
}

/// Cost counters of one query execution — the quantities the paper's cost
/// model (Eq. 18–20) is built from.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EngineMetrics {
    /// Index node accesses over all levels — `Σ DA_all(q, rᵢ)`.
    pub node_accesses: u64,
    /// Leaf-node accesses — `Σ DA_leaf(q, rᵢ)`.
    pub leaf_accesses: u64,
    /// Heap (record) page accesses during scans and post-processing
    /// (physical: buffer-pool misses).
    pub record_page_accesses: u64,
    /// Logical record fetches, one per candidate verification touch — the
    /// unit the paper's access counts use.
    pub record_fetches: u64,
    /// Full-sequence distance computations — the `C_cmp`-weighted term.
    pub comparisons: u64,
    /// Candidate sequences that reached post-processing.
    pub candidates: u64,
    /// Wall-clock time of the query.
    pub wall: Duration,
}

impl EngineMetrics {
    /// Total physical disk accesses (index nodes + record pages).
    pub fn disk_accesses(&self) -> u64 {
        self.node_accesses + self.record_page_accesses
    }

    /// The paper's Fig. 8–9 accounting: index node accesses plus *logical*
    /// record fetches (no buffering assumed).
    pub fn paper_disk_accesses(&self) -> u64 {
        self.node_accesses + self.record_fetches
    }
}

impl fmt::Display for EngineMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "nodes={} (leaf {}) record_pages={} fetches={} cmps={} cands={} wall={:?}",
            self.node_accesses,
            self.leaf_accesses,
            self.record_page_accesses,
            self.record_fetches,
            self.comparisons,
            self.candidates,
            self.wall
        )
    }
}

/// A range-query result.
#[derive(Clone, Debug, Default)]
pub struct QueryResult {
    /// All qualifying `(sequence, transformation, distance)` triples.
    pub matches: Vec<Match>,
    /// Cost counters.
    pub metrics: EngineMetrics,
}

impl QueryResult {
    /// Deduplicated matching sequence ordinals, sorted.
    pub fn matched_sequences(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.matches.iter().map(|m| m.seq).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Canonical ordering for result-set comparisons in tests.
    pub fn sorted_pairs(&self) -> Vec<(usize, usize)> {
        let mut v: Vec<(usize, usize)> =
            self.matches.iter().map(|m| (m.seq, m.transform)).collect();
        v.sort_unstable();
        v
    }
}

/// A join-query result.
#[derive(Clone, Debug, Default)]
pub struct JoinResult {
    /// All qualifying pairs.
    pub matches: Vec<JoinMatch>,
    /// Cost counters.
    pub metrics: EngineMetrics,
}

impl JoinResult {
    /// Canonical ordering for result-set comparisons in tests.
    pub fn sorted_triples(&self) -> Vec<(usize, usize, usize)> {
        let mut v: Vec<(usize, usize, usize)> = self
            .matches
            .iter()
            .map(|m| (m.seq_a, m.seq_b, m.transform))
            .collect();
        v.sort_unstable();
        v
    }
}

/// Errors raised by the query engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The query sequence has no normal form (constant or too short).
    DegenerateQuery,
    /// The query length does not match the indexed corpus length.
    LengthMismatch {
        /// Length of the query sequence.
        query: usize,
        /// Length of the indexed sequences.
        indexed: usize,
    },
    /// The transformation family targets a different sequence length.
    FamilyLengthMismatch {
        /// Length the family was built for.
        family: usize,
        /// Length of the indexed sequences.
        indexed: usize,
    },
    /// A page access failed while executing the query. The query produced
    /// no partial result — engines abort cleanly on the first device error.
    Io(pagestore::PageError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DegenerateQuery => write!(f, "query sequence has no normal form"),
            Self::LengthMismatch { query, indexed } => {
                write!(f, "query length {query} != indexed length {indexed}")
            }
            Self::FamilyLengthMismatch { family, indexed } => {
                write!(
                    f,
                    "family built for length {family}, index holds length {indexed}"
                )
            }
            Self::Io(e) => write!(f, "page access failed: {e}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pagestore::PageError> for QueryError {
    fn from(e: pagestore::PageError) -> Self {
        Self::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matched_sequences_dedups() {
        let r = QueryResult {
            matches: vec![
                Match {
                    seq: 3,
                    transform: 0,
                    dist: 1.0,
                },
                Match {
                    seq: 1,
                    transform: 2,
                    dist: 0.5,
                },
                Match {
                    seq: 3,
                    transform: 1,
                    dist: 0.9,
                },
            ],
            metrics: EngineMetrics::default(),
        };
        assert_eq!(r.matched_sequences(), vec![1, 3]);
        assert_eq!(r.sorted_pairs(), vec![(1, 2), (3, 0), (3, 1)]);
    }

    #[test]
    fn metrics_total() {
        let m = EngineMetrics {
            node_accesses: 10,
            record_page_accesses: 5,
            ..Default::default()
        };
        assert_eq!(m.disk_accesses(), 15);
    }

    #[test]
    fn error_display() {
        let e = QueryError::LengthMismatch {
            query: 64,
            indexed: 128,
        };
        assert!(e.to_string().contains("64"));
    }
}
