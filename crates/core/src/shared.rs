//! A thread-safe handle to a [`SeqIndex`] for concurrent serving.
//!
//! The read path of every query engine takes `&SeqIndex` and is already
//! interior-mutable where it must be (access counters are atomics, the
//! buffer pool and node stores lock internally), so any number of queries
//! may run concurrently under a shared read guard. Structural mutation —
//! [`SeqIndex::insert_series`] / [`SeqIndex::delete_series`] — takes
//! `&mut SeqIndex` and therefore the exclusive write guard.
//!
//! [`SharedIndex`] packages that discipline: a cheap cloneable
//! `Arc<RwLock<SeqIndex>>` whose lock recovers from poisoning (see
//! [`pagestore::sync`]), so a panicking query thread cannot wedge a
//! server.
//!
//! # Write-guard starvation discipline
//!
//! The write guard is exclusive for the *entire* mutation: while one
//! `insert_series` runs (feature extraction, heap append, R*-tree insert
//! with possible forced reinserts and splits), every reader of the same
//! handle blocks. That is inherent to the single-lock design, so two rules
//! keep the stall bounded:
//!
//! 1. **Never hold the write guard across anything but the mutation
//!    itself.** Callers must prepare inputs (parse, validate, materialise
//!    the [`tseries::TimeSeries`]) *before* taking the guard and must drop
//!    it before serialising the response. Holding it across I/O to a
//!    client would convert one slow connection into a server-wide stall.
//! 2. **Shard to bound the blast radius.** A mutation can only starve
//!    readers of *its own* lock. The `simshard` crate partitions a corpus
//!    across N independent `SharedIndex` handles precisely so that an
//!    insert write-locks one shard while the other N−1 keep serving reads
//!    concurrently — a property its `reads_proceed_during_insert`
//!    regression test asserts by querying shard B while shard A's write
//!    guard is deliberately held.

use crate::index::SeqIndex;
use pagestore::sync::RwLock;
use std::sync::{Arc, RwLockReadGuard, RwLockWriteGuard};

// The whole point of SharedIndex is crossing threads; fail the build, not
// a runtime, if an index component ever stops being thread-safe.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SeqIndex>();
    assert_send_sync::<SharedIndex>();
};

/// A cloneable, thread-safe handle to one [`SeqIndex`].
#[derive(Clone)]
pub struct SharedIndex {
    inner: Arc<RwLock<SeqIndex>>,
}

impl std::fmt::Debug for SharedIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedIndex").finish_non_exhaustive()
    }
}

impl SharedIndex {
    /// Wraps an index for shared use.
    pub fn new(index: SeqIndex) -> Self {
        Self {
            inner: Arc::new(RwLock::new(index)),
        }
    }

    /// Opens a persisted index directory (see [`SeqIndex::open`]) for
    /// shared use.
    pub fn open(dir: &std::path::Path, heap_pool_pages: usize) -> std::io::Result<Self> {
        Ok(Self::new(SeqIndex::open(dir, heap_pool_pages)?))
    }

    /// Acquires a shared read guard: queries, scans, counter reads.
    /// Any number of readers proceed concurrently.
    pub fn read(&self) -> RwLockReadGuard<'_, SeqIndex> {
        self.inner.read()
    }

    /// Acquires the exclusive write guard: inserts and deletes.
    pub fn write(&self) -> RwLockWriteGuard<'_, SeqIndex> {
        self.inner.write()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{mtindex, seqscan};
    use crate::index::IndexConfig;
    use crate::query::RangeSpec;
    use crate::transform::Family;
    use tseries::{Corpus, CorpusKind};

    fn shared(n: usize) -> (Corpus, SharedIndex) {
        let c = Corpus::generate(CorpusKind::SyntheticWalks, n, 64, 3);
        let idx = SeqIndex::build(&c, IndexConfig::default()).unwrap();
        (c, SharedIndex::new(idx))
    }

    #[test]
    fn concurrent_readers_agree_with_single_thread() {
        let (c, shared) = shared(120);
        let family = Family::moving_averages(4..=11, 64);
        let spec = RangeSpec::correlation(0.95);
        let want = {
            let idx = shared.read();
            mtindex::range_query(&idx, &c.series()[5], &family, &spec)
                .unwrap()
                .sorted_pairs()
        };
        std::thread::scope(|s| {
            for _ in 0..8 {
                let (shared, c, family, spec, want) = (&shared, &c, &family, &spec, &want);
                s.spawn(move || {
                    for _ in 0..5 {
                        let idx = shared.read();
                        let got = mtindex::range_query(&idx, &c.series()[5], family, spec)
                            .unwrap()
                            .sorted_pairs();
                        assert_eq!(&got, want);
                    }
                });
            }
        });
    }

    #[test]
    fn writer_excludes_readers_but_not_correctness() {
        let (c, shared) = shared(60);
        let extra = Corpus::generate(CorpusKind::SyntheticWalks, 8, 64, 99);
        let family = Family::moving_averages(2..=6, 64);
        // Safe policy: scan ≡ mt is guaranteed on arbitrary workloads
        // (Paper's angle windows are heuristic and may falsely dismiss).
        let spec = RangeSpec::correlation(0.9).with_policy(crate::query::FilterPolicy::Safe);
        std::thread::scope(|s| {
            // One writer inserting, many readers querying throughout.
            let w = &shared;
            s.spawn(move || {
                for ts in extra.series() {
                    w.write().insert_series(ts).unwrap();
                }
            });
            for t in 0..4 {
                let (shared, c, family, spec) = (&shared, &c, &family, &spec);
                s.spawn(move || {
                    for i in 0..10 {
                        let idx = shared.read();
                        let q = &c.series()[(t * 10 + i) % 60];
                        let a = seqscan::range_query(&idx, q, family, spec).unwrap();
                        let b = mtindex::range_query(&idx, q, family, spec).unwrap();
                        assert_eq!(a.sorted_pairs(), b.sorted_pairs());
                    }
                });
            }
        });
        assert_eq!(shared.read().len(), 68);
    }
}
