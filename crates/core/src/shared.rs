//! A thread-safe handle to a [`SeqIndex`] for concurrent serving.
//!
//! The read path of every query engine takes `&SeqIndex` and is already
//! interior-mutable where it must be (access counters are atomics, the
//! buffer pool and node stores lock internally), so any number of queries
//! may run concurrently under a shared read guard. Structural mutation —
//! [`SeqIndex::insert_series`] / [`SeqIndex::delete_series`] — takes
//! `&mut SeqIndex` and therefore the exclusive write guard.
//!
//! [`SharedIndex`] packages that discipline: a cheap cloneable
//! `Arc<RwLock<SeqIndex>>` whose lock recovers from poisoning (see
//! [`pagestore::sync`]), so a panicking query thread cannot wedge a
//! server.
//!
//! # Write-guard starvation discipline
//!
//! The write guard is exclusive for the *entire* mutation: while one
//! `insert_series` runs (feature extraction, heap append, R*-tree insert
//! with possible forced reinserts and splits), every reader of the same
//! handle blocks. That is inherent to the single-lock design, so two rules
//! keep the stall bounded:
//!
//! 1. **Never hold the write guard across anything but the mutation
//!    itself.** Callers must prepare inputs (parse, validate, materialise
//!    the [`tseries::TimeSeries`]) *before* taking the guard and must drop
//!    it before serialising the response. Holding it across I/O to a
//!    client would convert one slow connection into a server-wide stall.
//! 2. **Shard to bound the blast radius.** A mutation can only starve
//!    readers of *its own* lock. The `simshard` crate partitions a corpus
//!    across N independent `SharedIndex` handles precisely so that an
//!    insert write-locks one shard while the other N−1 keep serving reads
//!    concurrently — a property its `reads_proceed_during_insert`
//!    regression test asserts by querying shard B while shard A's write
//!    guard is deliberately held.

use crate::index::{DeviceWrap, SeqIndex};
use crate::plan::{self, LogicalQuery, PhysicalPlan, PlanOutput, QueryEpoch};
use crate::report::QueryError;
use crate::stats::StatsRegistry;
use pagestore::sync::RwLock;
use simwal::{FsyncPolicy, ReplayReport, Wal, WalError, WalOp, WalStats};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLockReadGuard, RwLockWriteGuard};
use tseries::TimeSeries;

// The whole point of SharedIndex is crossing threads; fail the build, not
// a runtime, if an index component ever stops being thread-safe.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SeqIndex>();
    assert_send_sync::<SharedIndex>();
};

/// Errors from the durable (logged) mutation and recovery paths: either
/// the underlying index operation failed, or the durability machinery
/// itself did. Both stay fully typed so servers can map them to protocol
/// error codes and tests can assert *which* failure fired.
#[derive(Debug)]
pub enum DurableError {
    /// The index mutation/replay failed (device fault, bad input).
    Query(QueryError),
    /// The write-ahead log failed (append, fsync, epoch install).
    Wal(WalError),
    /// A snapshot load/save failed.
    Io(std::io::Error),
    /// An earlier WAL append failed *after* its mutation had applied in
    /// memory, so the log no longer covers the live state; every further
    /// mutation (and checkpoint) is refused, because acknowledging one
    /// would make it unrecoverable. Reopen the index to resume from the
    /// acknowledged prefix.
    Poisoned,
    /// A replicated frame addressed state this replica does not hold —
    /// an insert for an ordinal beyond the current prefix. Applying it
    /// would tear a hole in the exact-prefix guarantee, so the frame is
    /// refused; the follower must re-handshake (the primary falls back
    /// to a snapshot transfer).
    Gap {
        /// LSN of the offending frame.
        lsn: u64,
        /// Global ordinal the frame addressed.
        global: u64,
        /// Sequences the replica actually holds.
        len: usize,
    },
    /// A peer was promoted past this node's timeline: the fencing token
    /// forbids writes until the node re-syncs onto the new timeline
    /// (which clears the fence). Accepting a write here would put it on
    /// a timeline the rest of the fleet has abandoned — split-brain.
    Fenced {
        /// The minimum epoch this node may accept writes at.
        fence: u64,
        /// The epoch the node is actually at.
        epoch: u64,
    },
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Query(e) => write!(f, "{e}"),
            Self::Wal(e) => write!(f, "{e}"),
            Self::Io(e) => write!(f, "snapshot i/o failed: {e}"),
            Self::Poisoned => write!(
                f,
                "index poisoned by an earlier wal append failure; \
                 mutations are rejected until the index is reopened"
            ),
            Self::Gap { lsn, global, len } => write!(
                f,
                "replication gap: frame lsn {lsn} addresses ordinal {global} \
                 but the replica holds only {len} sequences; re-handshake \
                 for a snapshot transfer"
            ),
            Self::Fenced { fence, epoch } => write!(
                f,
                "node is fenced at epoch {fence} (currently at epoch {epoch}): \
                 a peer was promoted onto a newer timeline; re-sync from the \
                 new primary before accepting writes"
            ),
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Query(e) => Some(e),
            Self::Wal(e) => Some(e),
            Self::Io(e) => Some(e),
            Self::Poisoned | Self::Gap { .. } | Self::Fenced { .. } => None,
        }
    }
}

impl From<QueryError> for DurableError {
    fn from(e: QueryError) -> Self {
        Self::Query(e)
    }
}

impl From<WalError> for DurableError {
    fn from(e: WalError) -> Self {
        Self::Wal(e)
    }
}

impl From<std::io::Error> for DurableError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// The durability attachment of a [`SharedIndex`]: its WAL, the snapshot
/// directory checkpoints go to, and the LSN allocator.
struct Durability {
    wal: Wal,
    index_dir: PathBuf,
    next_lsn: AtomicU64,
    /// Set when a WAL append failed after its mutation applied: the log
    /// has a hole the live state depends on, so no later mutation may be
    /// acknowledged (replay would surface it without its predecessor).
    poisoned: AtomicBool,
}

/// A cloneable, thread-safe handle to one [`SeqIndex`].
#[derive(Clone)]
pub struct SharedIndex {
    inner: Arc<RwLock<SeqIndex>>,
    durable: Option<Arc<Durability>>,
    stats: Arc<StatsRegistry>,
    /// Mutations acknowledged through the typed paths since this handle
    /// (group) was created — the fine-grained half of [`QueryEpoch`].
    /// Replicated frames bump it too, so a follower's [`QueryEpoch`]
    /// (and therefore every plan-cache key) moves with every applied
    /// frame, not just local mutations.
    mutations: Arc<AtomicU64>,
    /// Highest primary LSN applied through [`Self::apply_replicated`].
    /// Zero until the first frame lands (primary LSNs start at 1).
    applied_lsn: Arc<AtomicU64>,
    /// The primary's checkpoint epoch as of the last snapshot install /
    /// handshake — the coarse half of a *follower's* [`QueryEpoch`] when
    /// the handle has no WAL of its own.
    repl_epoch: Arc<AtomicU64>,
    /// Fencing token for handles without a WAL (`0` = unfenced); durable
    /// handles persist theirs in the WAL manifest instead. See
    /// [`Self::fence_at`].
    mem_fence: Arc<AtomicU64>,
}

impl std::fmt::Debug for SharedIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedIndex").finish_non_exhaustive()
    }
}

impl SharedIndex {
    /// Wraps an index for shared use.
    pub fn new(index: SeqIndex) -> Self {
        Self {
            inner: Arc::new(RwLock::new(index)),
            durable: None,
            stats: Arc::new(StatsRegistry::new()),
            mutations: Arc::new(AtomicU64::new(0)),
            applied_lsn: Arc::new(AtomicU64::new(0)),
            repl_epoch: Arc::new(AtomicU64::new(0)),
            mem_fence: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Opens a persisted index directory (see [`SeqIndex::open`]) for
    /// shared use.
    pub fn open(dir: &std::path::Path, heap_pool_pages: usize) -> std::io::Result<Self> {
        Ok(Self::new(SeqIndex::open(dir, heap_pool_pages)?))
    }

    /// Opens a persisted index directory without taking its `LOCK` (see
    /// [`SeqIndex::open_read_only`]), so a verification oracle can read
    /// the same directory a live server is serving.
    pub fn open_read_only(dir: &std::path::Path, heap_pool_pages: usize) -> std::io::Result<Self> {
        Ok(Self::new(SeqIndex::open_read_only(dir, heap_pool_pages)?))
    }

    /// Opens a persisted index *with a write-ahead log*: loads the
    /// snapshot in `index_dir`, opens (or creates) the WAL in `wal_dir`
    /// reconciled against the snapshot's epoch, and replays the log tail
    /// on top of the snapshot. After this returns, every mutation made
    /// through [`Self::insert_series`]/[`Self::delete_series`] is logged
    /// before it is acknowledged, and the recovered state is always an
    /// exact prefix of the acknowledged mutation schedule.
    pub fn open_durable(
        index_dir: &Path,
        wal_dir: &Path,
        heap_pool_pages: usize,
        policy: FsyncPolicy,
    ) -> Result<(Self, ReplayReport), DurableError> {
        Self::open_durable_impl(index_dir, wal_dir, heap_pool_pages, policy, None)
    }

    /// [`Self::open_durable`] with caller-wrapped page devices (see
    /// [`SeqIndex::open_with`]), so WAL replay itself runs against an
    /// armed [`pagestore::FaultyDisk`]. Replay faults surface as typed
    /// [`DurableError::Query`] — never a panic, never a partial ack.
    /// Checkpointing is unavailable on such an index, so gap-dropped
    /// frames stay in the log for the next (unfaulted) open.
    pub fn open_durable_with(
        index_dir: &Path,
        wal_dir: &Path,
        heap_pool_pages: usize,
        policy: FsyncPolicy,
        wrap: DeviceWrap,
    ) -> Result<(Self, ReplayReport), DurableError> {
        Self::open_durable_impl(index_dir, wal_dir, heap_pool_pages, policy, Some(wrap))
    }

    fn open_durable_impl(
        index_dir: &Path,
        wal_dir: &Path,
        heap_pool_pages: usize,
        policy: FsyncPolicy,
        wrap: Option<DeviceWrap>,
    ) -> Result<(Self, ReplayReport), DurableError> {
        let faulted = wrap.is_some();
        let mut index = match wrap {
            None => SeqIndex::open(index_dir, heap_pool_pages)?,
            Some(wrap) => SeqIndex::open_with(index_dir, heap_pool_pages, wrap)?,
        };
        let (wal, ops, mut report) = Wal::open(wal_dir, policy, index.wal_epoch())?;
        let mut max_lsn = 0u64;
        let mut applied = 0usize;
        for op in &ops {
            match op {
                WalOp::Insert { global, values, .. } => {
                    let g = *global as usize;
                    if g > index.len() {
                        // A frame for an ordinal beyond the recovered
                        // prefix (should be impossible for a single
                        // index, whose log is written in ack order).
                        break;
                    }
                    if g == index.len() {
                        index.insert_series(&TimeSeries::new(values.clone()))?;
                    }
                    // g < len: the snapshot already absorbed this frame
                    // (a crash interrupted the checkpoint after the
                    // snapshot install); nothing to redo.
                }
                WalOp::Delete { global, .. } => {
                    let g = *global as usize;
                    if g >= index.len() {
                        break;
                    }
                    index.delete_series(g)?; // Ok(false) if already gone
                }
            }
            max_lsn = max_lsn.max(op.lsn());
            applied += 1;
        }
        let dropped = applied < ops.len();
        report.frames = applied;
        let shared = Self {
            inner: Arc::new(RwLock::new(index)),
            durable: Some(Arc::new(Durability {
                wal,
                index_dir: index_dir.to_path_buf(),
                next_lsn: AtomicU64::new(max_lsn + 1),
                poisoned: AtomicBool::new(false),
            })),
            stats: Arc::new(StatsRegistry::new()),
            mutations: Arc::new(AtomicU64::new(0)),
            // On a durable follower the local log stores the primary's
            // LSNs, so the replayed maximum is the applied position.
            applied_lsn: Arc::new(AtomicU64::new(max_lsn)),
            repl_epoch: Arc::new(AtomicU64::new(0)),
            mem_fence: Arc::new(AtomicU64::new(0)),
        };
        if dropped && !faulted {
            // Frames past the recovered prefix would otherwise replay on
            // the next open; fold the prefix into a snapshot and reset.
            shared.checkpoint()?;
        }
        Ok((shared, report))
    }

    /// Whether this handle logs mutations to a WAL.
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// WAL counter snapshot, when durable.
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.durable.as_ref().map(|d| d.wal.stats())
    }

    /// Current checkpoint epoch, when durable.
    pub fn wal_epoch(&self) -> Option<u64> {
        self.durable.as_ref().map(|d| d.wal.epoch())
    }

    /// The epoch of this node on the replication timeline: its own WAL
    /// checkpoint epoch when durable, otherwise the primary epoch
    /// learned over replication. Fencing comparisons happen in this
    /// timeline.
    pub fn timeline_epoch(&self) -> u64 {
        self.wal_epoch().unwrap_or_else(|| self.replica_epoch())
    }

    /// The fencing token: the minimum epoch this node may accept writes
    /// at (`0` = unfenced). Persisted in the WAL manifest when durable.
    pub fn fence(&self) -> u64 {
        match &self.durable {
            Some(d) => d.wal.fence(),
            None => self.mem_fence.load(Ordering::Acquire),
        }
    }

    /// Whether the fencing token forbids writes at the current epoch — a
    /// peer was promoted onto a newer timeline and this node has not yet
    /// re-synced onto it. Queries still serve; mutations, checkpoints,
    /// and promotion-independent epoch bumps are refused (see
    /// [`DurableError::Fenced`]).
    pub fn is_fenced(&self) -> bool {
        self.fence() > self.timeline_epoch()
    }

    /// Raises the fencing token to at least `epoch` — the demotion half
    /// of failover. Called when a higher-epoch peer reveals itself (a
    /// `REPL` poll from a follower that already applied frames of a
    /// newer timeline). Durable before it returns on a durable handle,
    /// so a fenced ex-primary that crashes restarts fenced. Never
    /// lowers an existing fence; [`Self::install_replica_snapshot`]
    /// clears it once the node has re-synced.
    pub fn fence_at(&self, epoch: u64) -> Result<(), DurableError> {
        match &self.durable {
            Some(d) => {
                if epoch > d.wal.fence() {
                    d.wal.set_fence(epoch)?;
                }
            }
            None => {
                self.mem_fence.fetch_max(epoch, Ordering::AcqRel);
            }
        }
        Ok(())
    }

    /// Promotes this node to primary on a new timeline: under the write
    /// guard, picks an epoch strictly past everything the node has seen
    /// (its own checkpoint sequence, the old primary's epoch, and any
    /// fence), checkpoints the current state under it, installs it in
    /// the WAL, and persists the fencing token at the same epoch — so
    /// the switch survives a crash and the node begins accepting writes
    /// from exactly its acked prefix ([`Self::apply_replicated`] keeps
    /// the LSN allocator strictly ahead of every shipped frame). Returns
    /// the new timeline epoch.
    pub fn promote(&self) -> Result<u64, DurableError> {
        let guard = self.inner.write();
        self.check_poisoned()?;
        let new_epoch = self
            .timeline_epoch()
            .max(self.replica_epoch())
            .max(self.fence())
            + 1;
        if let Some(d) = &self.durable {
            d.wal.sync()?;
            guard.save_with_epoch(&d.index_dir, new_epoch)?;
            d.wal.install_epoch(new_epoch)?;
            d.wal.set_fence(new_epoch)?;
        } else {
            self.mem_fence.store(new_epoch, Ordering::Release);
        }
        self.repl_epoch.store(new_epoch, Ordering::Release);
        // Bump under the guard: cached results keyed on the follower-era
        // epoch must not survive the timeline switch.
        self.mutations.fetch_add(1, Ordering::Release);
        drop(guard);
        Ok(new_epoch)
    }

    /// Inserts a sequence through the logged-mutation path: the mutation
    /// is applied under the write guard, then (still under the guard, so
    /// log order is apply order) appended to the WAL — the op only
    /// reaches the caller as acknowledged once it is in the log. Without
    /// a WAL this is plain `write().insert_series`.
    pub fn insert_series(&self, ts: &TimeSeries) -> Result<usize, DurableError> {
        let mut guard = self.inner.write();
        self.check_poisoned()?;
        self.check_fenced()?;
        let ordinal = guard.insert_series(ts)?;
        if let Some(d) = &self.durable {
            let lsn = d.next_lsn.fetch_add(1, Ordering::Relaxed);
            let logged = d.wal.append(&WalOp::Insert {
                lsn,
                global: ordinal as u64,
                local: ordinal as u64,
                values: ts.values().to_vec(),
            });
            if let Err(e) = logged {
                // The insert is applied in memory but absent from the
                // log; a later logged mutation would replay on a state
                // missing this one. Refuse all further mutations.
                d.poisoned.store(true, Ordering::Release);
                return Err(e.into());
            }
        }
        // Bump while still under the write guard so no reader can observe
        // the new state under the old epoch.
        self.mutations.fetch_add(1, Ordering::Release);
        Ok(ordinal)
    }

    /// Tombstones a sequence through the logged-mutation path (see
    /// [`Self::insert_series`]); no-op deletes are not logged.
    pub fn delete_series(&self, ordinal: usize) -> Result<bool, DurableError> {
        let mut guard = self.inner.write();
        self.check_poisoned()?;
        self.check_fenced()?;
        let deleted = guard.delete_series(ordinal)?;
        if deleted {
            if let Some(d) = &self.durable {
                let lsn = d.next_lsn.fetch_add(1, Ordering::Relaxed);
                let logged = d.wal.append(&WalOp::Delete {
                    lsn,
                    global: ordinal as u64,
                    local: ordinal as u64,
                });
                if let Err(e) = logged {
                    d.poisoned.store(true, Ordering::Release);
                    return Err(e.into());
                }
            }
        }
        if deleted {
            self.mutations.fetch_add(1, Ordering::Release);
        }
        Ok(deleted)
    }

    /// Applies one WAL frame shipped from a replication primary, under
    /// the write guard and with exactly the recovery replay's idempotent
    /// semantics: an insert lands only when its ordinal extends the
    /// current prefix (a frame the snapshot already absorbed is skipped,
    /// a frame *beyond* the prefix is a typed [`DurableError::Gap`]); a
    /// delete of an already-tombstoned ordinal is a no-op. Returns
    /// whether the frame changed state. Re-applying any shipped prefix
    /// is therefore always safe — no gaps, no duplicates.
    ///
    /// On a durable handle every state-changing frame is also appended
    /// to the *local* WAL carrying the primary's LSN, so a restarted
    /// follower recovers its applied position (`max` replayed LSN) along
    /// with its state; an append failure poisons the handle exactly like
    /// a local mutation would. The mutation counter bumps under the
    /// guard on every state change, so no cached plan result can outlive
    /// an applied frame (see [`Self::query_epoch`]).
    pub fn apply_replicated(&self, op: &WalOp) -> Result<bool, DurableError> {
        let mut guard = self.inner.write();
        self.check_poisoned()?;
        let changed = match op {
            WalOp::Insert {
                lsn,
                global,
                values,
                ..
            } => {
                let g = *global as usize;
                if g > guard.len() {
                    return Err(DurableError::Gap {
                        lsn: *lsn,
                        global: *global,
                        len: guard.len(),
                    });
                }
                if g == guard.len() {
                    guard.insert_series(&TimeSeries::new(values.clone()))?;
                    true
                } else {
                    false // the snapshot (or an earlier frame) already holds it
                }
            }
            WalOp::Delete { global, .. } => {
                let g = *global as usize;
                g < guard.len() && guard.delete_series(g)?
            }
        };
        if changed {
            if let Some(d) = &self.durable {
                if let Err(e) = d.wal.append(op) {
                    d.poisoned.store(true, Ordering::Release);
                    return Err(e.into());
                }
                // Keep the local allocator strictly ahead of the shipped
                // LSNs, so a promoted follower could not reuse one.
                let mut cur = d.next_lsn.load(Ordering::Relaxed);
                while cur <= op.lsn() {
                    match d.next_lsn.compare_exchange(
                        cur,
                        op.lsn() + 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => break,
                        Err(now) => cur = now,
                    }
                }
            }
            self.mutations.fetch_add(1, Ordering::Release);
        }
        // Still under the guard: a reader that observes this applied
        // position is guaranteed to see the state that includes it.
        let mut cur = self.applied_lsn.load(Ordering::Relaxed);
        while cur < op.lsn() {
            match self.applied_lsn.compare_exchange(
                cur,
                op.lsn(),
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
        drop(guard);
        Ok(changed)
    }

    /// Replaces the whole index with a snapshot transferred from a
    /// replication primary (the epoch-mismatch fallback of the `REPL`
    /// handshake). `primary_epoch` is the primary's checkpoint epoch the
    /// snapshot corresponds to and `next_lsn` the first LSN the stream
    /// will resume from; the replica's applied position becomes
    /// `next_lsn - 1`. On a durable handle the snapshot is checkpointed
    /// into the local index directory under the *local* next epoch (the
    /// local epoch sequence is independent of the primary's), so a
    /// restart recovers it without re-transferring.
    pub fn install_replica_snapshot(
        &self,
        index: SeqIndex,
        primary_epoch: u64,
        next_lsn: u64,
    ) -> Result<(), DurableError> {
        let mut guard = self.inner.write();
        self.check_poisoned()?;
        // Refuse a snapshot from a timeline older than the one this node
        // already follows: a poll that was in flight when the node was
        // promoted must not roll the new timeline back (and clear its
        // fence) by installing the deposed primary's state.
        let current = self.repl_epoch.load(Ordering::Acquire);
        if primary_epoch < current {
            return Err(DurableError::Fenced {
                fence: current,
                epoch: primary_epoch,
            });
        }
        *guard = index;
        if let Some(d) = &self.durable {
            d.wal.sync()?;
            let new_epoch = d.wal.epoch() + 1;
            guard.save_with_epoch(&d.index_dir, new_epoch)?;
            d.wal.install_epoch(new_epoch)?;
            d.next_lsn.store(next_lsn, Ordering::Relaxed);
            // The node now holds the new timeline's state byte-for-byte;
            // a demotion fence (if any) has served its purpose. Clearing
            // it last means a crash anywhere above restarts fenced —
            // never writable with half-installed state.
            d.wal.set_fence(0)?;
        }
        self.mem_fence.store(0, Ordering::Release);
        self.repl_epoch.store(primary_epoch, Ordering::Release);
        self.applied_lsn
            .store(next_lsn.saturating_sub(1), Ordering::Release);
        // Bump under the guard: the whole state changed, so every cached
        // result keyed on the old epoch must become unreachable.
        self.mutations.fetch_add(1, Ordering::Release);
        drop(guard);
        Ok(())
    }

    /// Records the primary's checkpoint epoch learned at handshake time
    /// (the frame-streaming path, where no snapshot transfer happens).
    pub fn note_replica_epoch(&self, primary_epoch: u64) {
        self.repl_epoch.store(primary_epoch, Ordering::Release);
    }

    /// Restores a follower's replication position after a restart:
    /// adopts `primary_epoch` and raises the applied position to at
    /// least `applied` (never lowers it). A durable follower's local
    /// log replays only frames appended since its last snapshot
    /// install, so the install-time floor is re-asserted from the
    /// persisted replica state.
    pub fn note_replica_position(&self, primary_epoch: u64, applied: u64) {
        self.repl_epoch.store(primary_epoch, Ordering::Release);
        self.applied_lsn.fetch_max(applied, Ordering::AcqRel);
    }

    /// Highest primary LSN applied through [`Self::apply_replicated`]
    /// (0 before any frame lands). On a restarted durable follower this
    /// is recovered from the local log's replayed maximum.
    pub fn applied_lsn(&self) -> u64 {
        self.applied_lsn.load(Ordering::Acquire)
    }

    /// The primary checkpoint epoch this replica last synchronised with
    /// (0 until a snapshot install or `note_replica_*` call records one).
    pub fn replica_epoch(&self) -> u64 {
        self.repl_epoch.load(Ordering::Acquire)
    }

    /// The next LSN this index would allocate, when durable — the
    /// exclusive upper bound of the log's coverage, which the `REPL`
    /// handshake checks a follower's resume position against.
    pub fn wal_next_lsn(&self) -> Option<u64> {
        self.durable
            .as_ref()
            .map(|d| d.next_lsn.load(Ordering::Relaxed))
    }

    /// Bytes of this index's WAL covered by the last fsync — the prefix
    /// a crash is guaranteed to keep, and the bound the replication
    /// feeder serves under. Crash-point tests truncate the log file to
    /// this length to simulate losing the page-cache tail.
    pub fn wal_durable_bytes(&self) -> Option<u64> {
        self.durable.as_ref().map(|d| d.wal.durable_len())
    }

    /// Reads up to `max` frames with `lsn >= from_lsn` from the durable
    /// prefix of this index's own WAL (see [`Wal::frames_since`]) — the
    /// catch-up half of the replication feeder; frames are fsynced
    /// before they are served, so a shipped frame always survives a
    /// crash. `max == 0` means no cap.
    pub fn wal_frames_since(&self, from_lsn: u64, max: usize) -> Result<Vec<WalOp>, DurableError> {
        self.wal_frames_since_hinted(from_lsn, max, None)
            .map(|(frames, _)| frames)
    }

    /// [`Self::wal_frames_since`] with a `(lsn, byte offset)` resume
    /// cursor (see [`Wal::frames_since_hinted`]): a valid cursor makes
    /// tailing O(frames served); a stale one degrades to a full scan.
    pub fn wal_frames_since_hinted(
        &self,
        from_lsn: u64,
        max: usize,
        hint: Option<(u64, u64)>,
    ) -> Result<(Vec<WalOp>, (u64, u64)), DurableError> {
        match &self.durable {
            Some(d) => Ok(d.wal.frames_since_hinted(from_lsn, max, hint)?),
            None => Err(DurableError::Io(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "index has no write-ahead log to stream from",
            ))),
        }
    }

    /// Whether an earlier WAL append failure poisoned this handle (see
    /// [`DurableError::Poisoned`]). Queries still serve; mutations and
    /// checkpoints are rejected until the index is reopened.
    pub fn is_poisoned(&self) -> bool {
        self.durable
            .as_ref()
            .is_some_and(|d| d.poisoned.load(Ordering::Acquire))
    }

    fn check_poisoned(&self) -> Result<(), DurableError> {
        if self.is_poisoned() {
            return Err(DurableError::Poisoned);
        }
        Ok(())
    }

    fn check_fenced(&self) -> Result<(), DurableError> {
        let fence = self.fence();
        let epoch = self.timeline_epoch();
        if fence > epoch {
            return Err(DurableError::Fenced { fence, epoch });
        }
        Ok(())
    }

    /// Forces every appended frame to stable storage (the `SYNC` op).
    /// `Ok(false)` when the handle has no WAL.
    pub fn sync_wal(&self) -> Result<bool, DurableError> {
        match &self.durable {
            Some(d) => {
                d.wal.sync()?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Checkpoints a durable index: under the exclusive write guard,
    /// syncs the log, writes an atomic snapshot stamped with the next
    /// epoch, then installs that epoch in the WAL (manifest bump + log
    /// reset). Returns the new epoch, or `None` for a non-durable
    /// handle. A crash at any point leaves a recoverable state — see the
    /// crash matrix in DESIGN.md §5.
    pub fn checkpoint(&self) -> Result<Option<u64>, DurableError> {
        let Some(d) = &self.durable else {
            return Ok(None);
        };
        let guard = self.inner.write();
        // A poisoned handle holds an applied-but-unlogged mutation that
        // was never acknowledged; folding it into a snapshot would make
        // the recovered state more than the acknowledged prefix. A
        // fenced one must not checkpoint either: each checkpoint bumps
        // the epoch, and enough of them would walk it up to the fence
        // and silently unfence a node that never re-synced.
        self.check_poisoned()?;
        self.check_fenced()?;
        d.wal.sync()?;
        let new_epoch = d.wal.epoch() + 1;
        guard.save_with_epoch(&d.index_dir, new_epoch)?;
        d.wal.install_epoch(new_epoch)?;
        drop(guard);
        Ok(Some(new_epoch))
    }

    /// The runtime-statistics registry the planner reads and the plan
    /// executor writes. Shared across clones of this handle.
    pub fn stats(&self) -> &Arc<StatsRegistry> {
        &self.stats
    }

    /// The cache epoch of the current state: WAL checkpoint epoch plus
    /// the typed-path mutation counter. Results cached under an equal
    /// epoch are exact for the current state; any acknowledged mutation
    /// makes older epochs unequal. On a non-durable *follower* the
    /// coarse half is the primary's epoch learned over replication, and
    /// [`Self::apply_replicated`] bumps the counter — so a cached result
    /// can never outlive an applied frame, local or shipped.
    pub fn query_epoch(&self) -> QueryEpoch {
        QueryEpoch {
            epoch: self
                .wal_epoch()
                .unwrap_or_else(|| self.repl_epoch.load(Ordering::Acquire)),
            mutations: self.mutations.load(Ordering::Acquire),
        }
    }

    /// Plans and executes a logical query against this index — the one
    /// query entry point every consumer (server, CLI, shard executor)
    /// routes through. Takes the shared read guard for the duration.
    pub fn execute(
        &self,
        lq: &LogicalQuery,
        query: Option<&TimeSeries>,
    ) -> Result<(PhysicalPlan, PlanOutput), QueryError> {
        let guard = self.inner.read();
        plan::run(&guard, &self.stats, lq, query)
    }

    /// [`Self::execute`], but also reporting the plan/execute wall-clock
    /// split — what the server's slow-query log records.
    pub fn execute_timed(
        &self,
        lq: &LogicalQuery,
        query: Option<&TimeSeries>,
    ) -> Result<(PhysicalPlan, PlanOutput, plan::StageTimings), QueryError> {
        let guard = self.inner.read();
        plan::run_timed(&guard, &self.stats, lq, query)
    }

    /// Acquires a shared read guard: queries, scans, counter reads.
    /// Any number of readers proceed concurrently.
    pub fn read(&self) -> RwLockReadGuard<'_, SeqIndex> {
        self.inner.read()
    }

    /// Acquires the exclusive write guard: inserts and deletes.
    ///
    /// Mutating *directly* through this guard bypasses the WAL; durable
    /// handles must mutate via [`Self::insert_series`] /
    /// [`Self::delete_series`] instead.
    pub fn write(&self) -> RwLockWriteGuard<'_, SeqIndex> {
        self.inner.write()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{mtindex, seqscan};
    use crate::index::IndexConfig;
    use crate::query::RangeSpec;
    use crate::transform::Family;
    use tseries::{Corpus, CorpusKind};

    fn shared(n: usize) -> (Corpus, SharedIndex) {
        let c = Corpus::generate(CorpusKind::SyntheticWalks, n, 64, 3);
        let idx = SeqIndex::build(&c, IndexConfig::default()).unwrap();
        (c, SharedIndex::new(idx))
    }

    #[test]
    fn concurrent_readers_agree_with_single_thread() {
        let (c, shared) = shared(120);
        let family = Family::moving_averages(4..=11, 64);
        let spec = RangeSpec::correlation(0.95);
        let want = {
            let idx = shared.read();
            mtindex::range_query(&idx, &c.series()[5], &family, &spec)
                .unwrap()
                .sorted_pairs()
        };
        std::thread::scope(|s| {
            for _ in 0..8 {
                let (shared, c, family, spec, want) = (&shared, &c, &family, &spec, &want);
                s.spawn(move || {
                    for _ in 0..5 {
                        let idx = shared.read();
                        let got = mtindex::range_query(&idx, &c.series()[5], family, spec)
                            .unwrap()
                            .sorted_pairs();
                        assert_eq!(&got, want);
                    }
                });
            }
        });
    }

    #[test]
    fn wal_append_failure_poisons_the_handle() {
        let root = std::env::temp_dir()
            .join("simquery-shared-tests")
            .join(format!("poison-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let c = Corpus::generate(CorpusKind::SyntheticWalks, 10, 64, 7);
        SeqIndex::build(&c, IndexConfig::default())
            .unwrap()
            .save(&root.join("idx"))
            .unwrap();
        let extra = Corpus::generate(CorpusKind::SyntheticWalks, 3, 64, 8);
        let (shared, _) = SharedIndex::open_durable(
            &root.join("idx"),
            &root.join("wal"),
            16,
            FsyncPolicy::Always,
        )
        .unwrap();
        shared.insert_series(&extra.series()[0]).unwrap();
        shared.durable.as_ref().unwrap().wal.arm_append_fault();
        let err = shared.insert_series(&extra.series()[1]).unwrap_err();
        assert!(matches!(err, DurableError::Wal(_)), "{err}");
        assert!(shared.is_poisoned());
        assert_eq!(
            shared.read().len(),
            12,
            "the failed insert stays applied in memory"
        );
        // Applied-but-unlogged: acknowledging anything after it would be
        // unrecoverable, so mutations and checkpoints are refused …
        assert!(matches!(
            shared.insert_series(&extra.series()[2]).unwrap_err(),
            DurableError::Poisoned
        ));
        assert!(matches!(
            shared.delete_series(0).unwrap_err(),
            DurableError::Poisoned
        ));
        assert!(matches!(
            shared.checkpoint().unwrap_err(),
            DurableError::Poisoned
        ));
        drop(shared);
        // … and a reopen recovers exactly the acknowledged prefix.
        let (shared, rep) = SharedIndex::open_durable(
            &root.join("idx"),
            &root.join("wal"),
            16,
            FsyncPolicy::Always,
        )
        .unwrap();
        assert_eq!(rep.frames, 1, "only the acknowledged insert replays");
        assert_eq!(shared.read().len(), 11);
        shared.insert_series(&extra.series()[2]).unwrap();
        drop(shared);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn writer_excludes_readers_but_not_correctness() {
        let (c, shared) = shared(60);
        let extra = Corpus::generate(CorpusKind::SyntheticWalks, 8, 64, 99);
        let family = Family::moving_averages(2..=6, 64);
        // Safe policy: scan ≡ mt is guaranteed on arbitrary workloads
        // (Paper's angle windows are heuristic and may falsely dismiss).
        let spec = RangeSpec::correlation(0.9).with_policy(crate::query::FilterPolicy::Safe);
        std::thread::scope(|s| {
            // One writer inserting, many readers querying throughout.
            let w = &shared;
            s.spawn(move || {
                for ts in extra.series() {
                    w.write().insert_series(ts).unwrap();
                }
            });
            for t in 0..4 {
                let (shared, c, family, spec) = (&shared, &c, &family, &spec);
                s.spawn(move || {
                    for i in 0..10 {
                        let idx = shared.read();
                        let q = &c.series()[(t * 10 + i) % 60];
                        let a = seqscan::range_query(&idx, q, family, spec).unwrap();
                        let b = mtindex::range_query(&idx, q, family, spec).unwrap();
                        assert_eq!(a.sorted_pairs(), b.sorted_pairs());
                    }
                });
            }
        });
        assert_eq!(shared.read().len(), 68);
    }

    #[test]
    fn apply_replicated_is_idempotent_and_gap_safe() {
        let (_, shared) = shared(4);
        let extra = Corpus::generate(CorpusKind::SyntheticWalks, 2, 64, 41);
        let ins = |lsn: u64, g: u64, ts: &TimeSeries| WalOp::Insert {
            lsn,
            global: g,
            local: g,
            values: ts.values().to_vec(),
        };
        let e0 = shared.query_epoch();
        assert!(shared
            .apply_replicated(&ins(1, 4, &extra.series()[0]))
            .unwrap());
        assert_eq!(shared.read().len(), 5);
        assert_eq!(shared.applied_lsn(), 1);
        assert_ne!(
            shared.query_epoch(),
            e0,
            "applied frame must move the epoch"
        );
        // Re-applying the same frame: no duplicate, position keeps.
        assert!(!shared
            .apply_replicated(&ins(1, 4, &extra.series()[0]))
            .unwrap());
        assert_eq!(shared.read().len(), 5);
        // A frame beyond the prefix is a typed gap, not an apply.
        let err = shared
            .apply_replicated(&ins(3, 6, &extra.series()[1]))
            .unwrap_err();
        assert!(
            matches!(
                err,
                DurableError::Gap {
                    lsn: 3,
                    global: 6,
                    len: 5
                }
            ),
            "{err}"
        );
        assert_eq!(shared.read().len(), 5);
        // Deletes: applied once, then a no-op — never an error.
        let del = WalOp::Delete {
            lsn: 2,
            global: 4,
            local: 4,
        };
        assert!(shared.apply_replicated(&del).unwrap());
        assert!(!shared.apply_replicated(&del).unwrap());
        assert_eq!(shared.applied_lsn(), 2);
        // A no-change frame still advances the applied position.
        assert!(!shared
            .apply_replicated(&WalOp::Delete {
                lsn: 7,
                global: 4,
                local: 4
            })
            .unwrap());
        assert_eq!(shared.applied_lsn(), 7);
    }

    #[test]
    fn durable_follower_recovers_applied_position() {
        let root = std::env::temp_dir()
            .join("simquery-shared-tests")
            .join(format!("repl-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let c = Corpus::generate(CorpusKind::SyntheticWalks, 3, 64, 5);
        SeqIndex::build(&c, IndexConfig::default())
            .unwrap()
            .save(&root.join("idx"))
            .unwrap();
        let extra = Corpus::generate(CorpusKind::SyntheticWalks, 2, 64, 6);
        let (follower, _) = SharedIndex::open_durable(
            &root.join("idx"),
            &root.join("wal"),
            16,
            FsyncPolicy::Always,
        )
        .unwrap();
        // Ship two frames with the primary's (sparse) LSNs.
        for (i, ts) in extra.series().iter().enumerate() {
            follower
                .apply_replicated(&WalOp::Insert {
                    lsn: 10 + i as u64 * 10,
                    global: 3 + i as u64,
                    local: 3 + i as u64,
                    values: ts.values().to_vec(),
                })
                .unwrap();
        }
        assert_eq!(follower.applied_lsn(), 20);
        assert!(follower.wal_next_lsn().unwrap() > 20);
        drop(follower);
        // Restart: state and applied position both come back.
        let (follower, rep) = SharedIndex::open_durable(
            &root.join("idx"),
            &root.join("wal"),
            16,
            FsyncPolicy::Always,
        )
        .unwrap();
        assert_eq!(rep.frames, 2);
        assert_eq!(follower.read().len(), 5);
        assert_eq!(follower.applied_lsn(), 20);
        drop(follower);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn fence_blocks_writes_and_snapshot_install_clears_it() {
        let (_, shared) = shared(4);
        let extra = Corpus::generate(CorpusKind::SyntheticWalks, 2, 64, 42);
        assert!(!shared.is_fenced());
        // A promoted peer at epoch 5 fences this node.
        shared.fence_at(5).unwrap();
        assert!(shared.is_fenced());
        assert_eq!(shared.fence(), 5);
        let err = shared.insert_series(&extra.series()[0]).unwrap_err();
        assert!(
            matches!(err, DurableError::Fenced { fence: 5, epoch: 0 }),
            "{err}"
        );
        assert!(matches!(
            shared.delete_series(0).unwrap_err(),
            DurableError::Fenced { .. }
        ));
        // Fences only ratchet upward …
        shared.fence_at(3).unwrap();
        assert_eq!(shared.fence(), 5);
        // … and queries still serve while fenced.
        assert_eq!(shared.read().len(), 4);
        // Re-syncing onto the new timeline clears the fence.
        let c2 = Corpus::generate(CorpusKind::SyntheticWalks, 6, 64, 43);
        let snap = SeqIndex::build(&c2, IndexConfig::default()).unwrap();
        shared.install_replica_snapshot(snap, 5, 11).unwrap();
        assert!(!shared.is_fenced());
        assert_eq!(shared.fence(), 0);
        shared.write().insert_series(&extra.series()[1]).unwrap();
    }

    #[test]
    fn promotion_moves_past_the_old_timeline_and_survives_restart() {
        let root = std::env::temp_dir()
            .join("simquery-shared-tests")
            .join(format!("promote-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let c = Corpus::generate(CorpusKind::SyntheticWalks, 3, 64, 5);
        SeqIndex::build(&c, IndexConfig::default())
            .unwrap()
            .save(&root.join("idx"))
            .unwrap();
        let extra = Corpus::generate(CorpusKind::SyntheticWalks, 2, 64, 6);
        let (follower, _) = SharedIndex::open_durable(
            &root.join("idx"),
            &root.join("wal"),
            16,
            FsyncPolicy::Always,
        )
        .unwrap();
        // Catch up as a follower of a primary at epoch 7, then promote.
        follower
            .apply_replicated(&WalOp::Insert {
                lsn: 9,
                global: 3,
                local: 3,
                values: extra.series()[0].values().to_vec(),
            })
            .unwrap();
        follower.note_replica_epoch(7);
        let new_epoch = follower.promote().unwrap();
        assert!(new_epoch > 7, "promotion must outrun the old timeline");
        assert_eq!(follower.wal_epoch(), Some(new_epoch));
        assert_eq!(follower.fence(), new_epoch);
        assert!(!follower.is_fenced(), "a promoted node is writable");
        // Writes resume from the acked prefix with fresh LSNs.
        let ord = follower.insert_series(&extra.series()[1]).unwrap();
        assert_eq!(ord, 4);
        assert!(follower.wal_next_lsn().unwrap() > 9);
        drop(follower);
        // The switch is durable: a restart comes back on the new
        // timeline with the full prefix.
        let (reopened, _) = SharedIndex::open_durable(
            &root.join("idx"),
            &root.join("wal"),
            16,
            FsyncPolicy::Always,
        )
        .unwrap();
        assert_eq!(reopened.wal_epoch(), Some(new_epoch));
        assert_eq!(reopened.read().len(), 5);
        assert!(!reopened.is_fenced());
        drop(reopened);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn fenced_durable_node_stays_fenced_across_restart() {
        let root = std::env::temp_dir()
            .join("simquery-shared-tests")
            .join(format!("fence-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let c = Corpus::generate(CorpusKind::SyntheticWalks, 3, 64, 5);
        SeqIndex::build(&c, IndexConfig::default())
            .unwrap()
            .save(&root.join("idx"))
            .unwrap();
        let extra = Corpus::generate(CorpusKind::SyntheticWalks, 1, 64, 6);
        let (primary, _) = SharedIndex::open_durable(
            &root.join("idx"),
            &root.join("wal"),
            16,
            FsyncPolicy::Always,
        )
        .unwrap();
        let epoch = primary.wal_epoch().unwrap();
        primary.fence_at(epoch + 3).unwrap();
        assert!(primary.is_fenced());
        assert!(matches!(
            primary.insert_series(&extra.series()[0]).unwrap_err(),
            DurableError::Fenced { .. }
        ));
        // Checkpoints are refused too — they would walk the epoch up to
        // the fence and silently unfence a node that never re-synced.
        assert!(matches!(
            primary.checkpoint().unwrap_err(),
            DurableError::Fenced { .. }
        ));
        drop(primary);
        let (reopened, _) = SharedIndex::open_durable(
            &root.join("idx"),
            &root.join("wal"),
            16,
            FsyncPolicy::Always,
        )
        .unwrap();
        assert!(reopened.is_fenced(), "the fence survives a restart");
        drop(reopened);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn snapshot_install_replaces_state_and_epoch() {
        let (_, follower) = shared(3);
        let c2 = Corpus::generate(CorpusKind::SyntheticWalks, 6, 64, 9);
        let snap = SeqIndex::build(&c2, IndexConfig::default()).unwrap();
        let before = follower.query_epoch();
        follower.install_replica_snapshot(snap, 4, 31).unwrap();
        assert_eq!(follower.read().len(), 6);
        assert_eq!(follower.applied_lsn(), 30);
        let after = follower.query_epoch();
        assert_ne!(before, after);
        assert_eq!(
            after.epoch, 4,
            "non-durable follower adopts the primary epoch"
        );
    }
}
