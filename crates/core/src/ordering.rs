//! Transformation orderings (§4.4, Definition 1) and the binary-search
//! shortcut they enable.
//!
//! `⟨T, ⪯⟩` is an ordering when `t_l ⪯ t_k ⟹ D(t_l(v_i), t_l(v_j)) ≤
//! D(t_k(v_i), t_k(v_j))` for all values. Scale factors under `<` are
//! ordered (Lemma 2); moving averages are **not** (Lemmas 3–4 — their
//! counterexamples are reproduced in `tseries::ops::tests`). When an
//! ordering holds, the qualifying members for any pair form a prefix of the
//! family, so a binary search with `⌈log₂|T|⌉` distance computations
//! replaces the `|T|`-comparison exhaustive pass.

use crate::feature::SeqFeatures;
use crate::transform::{Family, Transform};

/// A family whose members are sorted ascending w.r.t. Definition 1.
#[derive(Clone, Debug)]
pub struct OrderedFamily {
    family: Family,
}

impl OrderedFamily {
    /// Scale factors sorted ascending — ordered by Lemma 2.
    ///
    /// # Panics
    ///
    /// Panics when the factors are not positive-ascending (negative factors
    /// break the lemma's proof).
    pub fn scalings(factors: &[f64], n: usize) -> Self {
        assert!(
            factors.windows(2).all(|w| w[0] < w[1]) && factors.first().is_some_and(|f| *f > 0.0),
            "scale factors must be positive and strictly ascending"
        );
        Self {
            family: Family::scalings(factors, n),
        }
    }

    /// Asserts (without proof) that `family` is ordered ascending. Use
    /// [`Self::check_on`] to spot-check the claim on sample data; a wrong
    /// assertion silently loses matches.
    pub fn assume_ordered(family: Family) -> Self {
        Self { family }
    }

    /// The underlying family.
    pub fn family(&self) -> &Family {
        &self.family
    }

    /// Empirically validates the ordering on sample pairs: returns the
    /// first violating `(pair, rank)` found, or `None` when consistent.
    pub fn check_on(&self, samples: &[(SeqFeatures, SeqFeatures)]) -> Option<(usize, usize)> {
        for (pi, (x, q)) in samples.iter().enumerate() {
            let mut prev = f64::NEG_INFINITY;
            for (rank, t) in self.family.transforms().iter().enumerate() {
                let d = t.transformed_distance(x, q);
                if d + 1e-9 < prev {
                    return Some((pi, rank));
                }
                prev = prev.max(d);
            }
        }
        None
    }

    /// Binary search over the whole family: the maximal rank whose
    /// transformation keeps `D(t(x), t(q)) < ε`, or `None` when even the
    /// first member fails. Increments `comparisons` once per distance
    /// computed (`≤ ⌈log₂|T|⌉ + 1`).
    pub fn max_qualifying(
        &self,
        x: &SeqFeatures,
        q: &SeqFeatures,
        eps: f64,
        comparisons: &mut u64,
    ) -> Option<usize> {
        let ranks: Vec<usize> = (0..self.family.len()).collect();
        self.max_qualifying_in(&ranks, x, q, eps, comparisons)
    }

    /// Binary search restricted to an ascending subset of ranks (an MBR's
    /// members).
    pub fn max_qualifying_in(
        &self,
        ranks: &[usize],
        x: &SeqFeatures,
        q: &SeqFeatures,
        eps: f64,
        comparisons: &mut u64,
    ) -> Option<usize> {
        debug_assert!(ranks.windows(2).all(|w| w[0] < w[1]), "ranks must ascend");
        if ranks.is_empty() {
            return None;
        }
        let dist = |rank: usize, comparisons: &mut u64| -> f64 {
            *comparisons += 1;
            self.family.transforms()[rank].transformed_distance(x, q)
        };
        // Invariant: everything below `lo` qualifies, everything at or
        // above `hi` fails.
        let (mut lo, mut hi) = (0usize, ranks.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if dist(ranks[mid], comparisons) < eps {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo.checked_sub(1).map(|i| ranks[i])
    }
}

/// Convenience: the distances of every member for a pair — used by tests
/// and by ordering diagnostics.
pub fn member_distances(family: &Family, x: &SeqFeatures, q: &SeqFeatures) -> Vec<f64> {
    family
        .transforms()
        .iter()
        .map(|t: &Transform| t.transformed_distance(x, q))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tseries::TimeSeries;

    fn feats(seed: f64) -> SeqFeatures {
        let ts: TimeSeries = (0..64)
            .map(|t| (t as f64 * 0.3 + seed).sin() * 3.0 + seed * 0.1)
            .collect();
        SeqFeatures::extract(&ts).unwrap()
    }

    #[test]
    fn scalings_are_ordered_on_samples() {
        let fam = OrderedFamily::scalings(&[1.0, 2.0, 3.0, 5.0, 8.0, 13.0], 64);
        let samples = vec![(feats(0.0), feats(1.0)), (feats(0.3), feats(2.5))];
        assert_eq!(fam.check_on(&samples), None);
    }

    #[test]
    fn moving_averages_fail_the_check() {
        // Lemma 3: no ordering for moving averages. The Appendix
        // counterexample uses specific 4-point sequences; here a descending
        // arrangement (mv distances *decrease* with window for smooth
        // pairs) is caught by check_on against the ascending claim.
        let fam = OrderedFamily::assume_ordered(Family::moving_averages(1..=20, 64));
        let samples = vec![(feats(0.0), feats(0.7))];
        assert!(
            fam.check_on(&samples).is_some(),
            "smoothing shrinks distances, violating the ascending claim"
        );
    }

    #[test]
    fn binary_search_matches_linear_scan() {
        let factors: Vec<f64> = (1..=32).map(|k| k as f64 * 0.25).collect();
        let fam = OrderedFamily::scalings(&factors, 64);
        let (x, q) = (feats(0.1), feats(0.4));
        let base = fam.family().transforms()[0].transformed_distance(&x, &q) / 0.25;
        for eps_mult in [0.1, 0.6, 1.7, 3.0, 9.0] {
            let eps = base * eps_mult;
            let mut cmp = 0;
            let got = fam.max_qualifying(&x, &q, eps, &mut cmp);
            let want = fam
                .family()
                .transforms()
                .iter()
                .enumerate()
                .filter(|(_, t)| t.transformed_distance(&x, &q) < eps)
                .map(|(i, _)| i)
                .next_back();
            assert_eq!(got, want, "eps_mult = {eps_mult}");
            assert!(cmp <= 6, "log₂ 32 = 5 (+1 slack), used {cmp}");
        }
    }

    #[test]
    fn binary_search_on_subset() {
        let factors: Vec<f64> = (1..=16).map(|k| k as f64).collect();
        let fam = OrderedFamily::scalings(&factors, 64);
        let (x, q) = (feats(0.2), feats(0.9));
        let d1 = fam.family().transforms()[0].transformed_distance(&x, &q);
        // Subset {4..8}: factors 5..9 → distances 5·d1..9·d1.
        let ranks: Vec<usize> = (4..=8).collect();
        let mut cmp = 0;
        let got = fam.max_qualifying_in(&ranks, &x, &q, 7.5 * d1, &mut cmp);
        assert_eq!(
            got,
            Some(6),
            "factor 7 qualifies (7·d1 < 7.5·d1), factor 8 fails"
        );
        let none = fam.max_qualifying_in(&ranks, &x, &q, d1, &mut cmp);
        assert_eq!(none, None, "even factor 5 exceeds 1·d1");
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_scalings_rejected() {
        OrderedFamily::scalings(&[2.0, 1.0], 16);
    }

    #[test]
    fn member_distances_shape() {
        let fam = Family::moving_averages(1..=5, 64);
        let d = member_distances(&fam, &feats(0.0), &feats(1.0));
        assert_eq!(d.len(), 5);
        assert!(d.iter().all(|v| *v >= 0.0));
    }
}
