//! Query-expression rewriting (§3.3 and the paper's abstract: "we also
//! examine the possibility of composing transformations in a query or of
//! rewriting a query expression such that the resulting query can be
//! efficiently evaluated").
//!
//! A [`SimilarityExpr`] describes *which* transformations a query allows —
//! single operators, whole families, unions, and sequenced applications —
//! without committing to an evaluation order. [`SimilarityExpr::rewrite`]
//! normalises any expression into one flat [`Family`] using Eq. 10
//! (pairwise composition) and Eq. 11 (set composition), which the MT-index
//! engine then processes in a single pass — exactly the paper's promise
//! that "queries expressed in terms of such a sequence of transformations
//! also benefit from the algorithms given in this paper".

use crate::transform::{Family, Transform};

/// A transformation expression tree.
#[derive(Clone, Debug)]
pub enum SimilarityExpr {
    /// A single transformation.
    One(Transform),
    /// Any member of a family ("some m-day moving average").
    Any(Family),
    /// Either branch ("a moving average OR a momentum").
    Union(Box<SimilarityExpr>, Box<SimilarityExpr>),
    /// `second ∘ first`: apply `first`, then `second` ("an s-day shift
    /// followed by an m-day moving average", §3.3's worked example).
    Then(Box<SimilarityExpr>, Box<SimilarityExpr>),
}

impl SimilarityExpr {
    /// A single-transformation leaf.
    pub fn one(t: Transform) -> Self {
        Self::One(t)
    }

    /// A family leaf.
    pub fn any(family: Family) -> Self {
        Self::Any(family)
    }

    /// `self` followed by `next` (reads left to right, like a pipeline).
    pub fn then(self, next: SimilarityExpr) -> Self {
        Self::Then(Box::new(self), Box::new(next))
    }

    /// `self` or `other`.
    pub fn or(self, other: SimilarityExpr) -> Self {
        Self::Union(Box::new(self), Box::new(other))
    }

    /// Number of concrete transformations the expression denotes
    /// (|T₁|·|T₂| for sequences, |T₁|+|T₂| for unions).
    pub fn cardinality(&self) -> usize {
        match self {
            Self::One(_) => 1,
            Self::Any(f) => f.len(),
            Self::Union(a, b) => a.cardinality() + b.cardinality(),
            Self::Then(a, b) => a.cardinality() * b.cardinality(),
        }
    }

    /// Rewrites the expression into a single flat family via Eq. 10–11.
    /// The result's member order is deterministic: unions concatenate
    /// left-to-right; sequences enumerate the second stage outermost
    /// (matching [`Family::compose`]).
    pub fn rewrite(&self) -> Family {
        match self {
            Self::One(t) => Family::new(t.label().to_string(), vec![t.clone()]),
            Self::Any(f) => f.clone(),
            Self::Union(a, b) => {
                let fa = a.rewrite();
                let fb = b.rewrite();
                let mut transforms = fa.transforms().to_vec();
                transforms.extend(fb.transforms().iter().cloned());
                Family::new(format!("{}|{}", fa.name(), fb.name()), transforms)
            }
            // `a then b` = apply a first → the composed operator is b∘a.
            Self::Then(a, b) => b.rewrite().compose(&a.rewrite()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{mtindex, seqscan};
    use crate::index::{IndexConfig, SeqIndex};
    use crate::query::{FilterPolicy, RangeSpec};
    use tseries::{Corpus, CorpusKind};

    const N: usize = 64;

    #[test]
    fn cardinality_arithmetic() {
        let shifts = SimilarityExpr::any(Family::circular_shifts(0..=10, N)); // 11
        let mas = SimilarityExpr::any(Family::moving_averages(1..=40, N)); // 40
        let momentum = SimilarityExpr::one(Transform::momentum(1, N)); // 1
        let expr = shifts.then(mas).or(momentum);
        assert_eq!(expr.cardinality(), 11 * 40 + 1);
        assert_eq!(expr.rewrite().len(), 441);
    }

    #[test]
    fn then_composes_in_application_order() {
        // "shift 2, then mv 5" must equal mv5 ∘ shift2.
        let expr = SimilarityExpr::one(Transform::circular_shift(2, N))
            .then(SimilarityExpr::one(Transform::moving_average(5, N)));
        let fam = expr.rewrite();
        assert_eq!(fam.len(), 1);
        let direct = Transform::moving_average(5, N).compose(&Transform::circular_shift(2, N));
        let ts: tseries::TimeSeries = (0..N).map(|t| (t as f64 * 0.37).sin() * 3.0).collect();
        let f = crate::feature::SeqFeatures::extract(&ts).unwrap();
        let a = fam.transforms()[0].apply_spectrum(&f.spectrum);
        let b = direct.apply_spectrum(&f.spectrum);
        for (x, y) in a.iter().zip(&b) {
            assert!((*x - *y).abs() < 1e-9);
        }
    }

    #[test]
    fn rewritten_expression_queries_like_its_parts() {
        // A union-of-sequences expression, rewritten and run through MT,
        // must agree with a sequential scan of the same flat family.
        let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 120, N, 5);
        let index = SeqIndex::build(&corpus, IndexConfig::default()).unwrap();
        let expr = SimilarityExpr::any(Family::circular_shifts(0..=2, N))
            .then(SimilarityExpr::any(Family::moving_averages(3..=6, N)))
            .or(SimilarityExpr::one(Transform::momentum(1, N)));
        let family = expr.rewrite();
        assert_eq!(family.len(), 3 * 4 + 1);
        let spec = RangeSpec::correlation(0.93).with_policy(FilterPolicy::Safe);
        let q = &corpus.series()[7];
        let scan = seqscan::range_query(&index, q, &family, &spec).unwrap();
        let mt = mtindex::range_query(&index, q, &family, &spec).unwrap();
        assert_eq!(scan.sorted_pairs(), mt.sorted_pairs());
    }

    #[test]
    fn union_preserves_left_to_right_member_order() {
        let left = Family::moving_averages(1..=3, N);
        let right = Family::circular_shifts(0..=1, N);
        let expr = SimilarityExpr::any(left.clone()).or(SimilarityExpr::any(right.clone()));
        let fam = expr.rewrite();
        assert_eq!(fam.len(), 5);
        assert_eq!(fam.transforms()[0].label(), left.transforms()[0].label());
        assert_eq!(fam.transforms()[3].label(), right.transforms()[0].label());
    }

    #[test]
    fn nested_sequences_flatten_associatively() {
        // (a then b) then c ≡ a then (b then c) on spectra.
        let a = SimilarityExpr::one(Transform::circular_shift(1, N));
        let b = SimilarityExpr::one(Transform::moving_average(4, N));
        let c = SimilarityExpr::one(Transform::scaling(2.0, N));
        let left = a.clone().then(b.clone()).then(c.clone()).rewrite();
        let right = a.then(b.then(c)).rewrite();
        let ts: tseries::TimeSeries = (0..N).map(|t| ((t * 3) % 17) as f64).collect();
        let f = crate::feature::SeqFeatures::extract(&ts).unwrap();
        let x = left.transforms()[0].apply_spectrum(&f.spectrum);
        let y = right.transforms()[0].apply_spectrum(&f.spectrum);
        for (u, v) in x.iter().zip(&y) {
            assert!((*u - *v).abs() < 1e-9);
        }
    }
}
