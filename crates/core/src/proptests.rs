#![allow(clippy::needless_range_loop)] // parallel-array loops over DIMS read clearer indexed
//! Crate-wide property tests of the core geometric/algebraic invariants.

use crate::feature::{FeatureVec, DIMS};
use crate::query::{Filter, FilterPolicy};
use crate::tmbr::TransformMbr;
use crate::transform::{Family, Transform};
use proptest::prelude::*;
use rstartree::Rect;

fn fvec() -> impl Strategy<Value = FeatureVec> {
    // mean/std plain; magnitudes non-negative; angles within (−π, π].
    let pi = std::f64::consts::PI;
    (
        -100f64..100.0,
        0.1f64..50.0,
        0f64..12.0,
        -pi..pi,
        0f64..8.0,
        -pi..pi,
    )
        .prop_map(|(m, s, r1, t1, r2, t2)| [m, s, r1, t1, r2, t2])
}

fn frect() -> impl Strategy<Value = Rect<DIMS>> {
    (fvec(), prop::collection::vec(0f64..3.0, DIMS)).prop_map(|(lo, ext)| {
        let mut hi = lo;
        for (h, e) in hi.iter_mut().zip(&ext) {
            *h += e;
        }
        Rect { lo, hi }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Applying a single transformation's MBR to a point equals applying
    /// the transformation — degenerate rectangles stay degenerate.
    #[test]
    fn single_member_mbr_is_the_transform(p in fvec(), m in 1usize..20) {
        let fam = Family::moving_averages(1..=20, 64);
        let mbr = TransformMbr::of(&fam, vec![m - 1]);
        let rect = mbr.apply_to_point(&p);
        let tp = fam.transforms()[m - 1].apply_point(&p);
        for i in 0..DIMS {
            prop_assert!((rect.lo[i] - tp[i]).abs() < 1e-9);
            prop_assert!((rect.hi[i] - tp[i]).abs() < 1e-9);
        }
    }

    /// Eq. 12 is monotone: a bigger data rectangle yields a bigger
    /// transformed rectangle (the property the index descent relies on).
    #[test]
    fn apply_to_rect_is_monotone(r in frect(), grow in prop::collection::vec(0f64..2.0, DIMS)) {
        let fam = Family::moving_averages(2..=9, 64).with_inverted();
        let mbr = TransformMbr::of_family(&fam);
        let mut big = r;
        for i in 0..DIMS {
            big.lo[i] -= grow[i];
            big.hi[i] += grow[i];
        }
        let small_t = mbr.apply_to_rect(&r);
        let big_t = mbr.apply_to_rect(&big);
        prop_assert!(big_t.contains_rect(&small_t), "{small_t:?} not within {big_t:?}");
    }

    /// Filter monotonicity: growing either rectangle can only turn a miss
    /// into a hit, never the reverse — under every policy.
    #[test]
    fn filter_hit_is_monotone(
        a in frect(),
        b in frect(),
        grow in prop::collection::vec(0f64..1.5, DIMS),
        eps in 0.1f64..5.0,
    ) {
        for policy in [FilterPolicy::Paper, FilterPolicy::Safe, FilterPolicy::Adaptive] {
            let filter = Filter::new(eps, policy);
            if filter.hit(&a, &b) {
                let mut bigger = a;
                for i in 0..DIMS {
                    bigger.lo[i] -= grow[i];
                    bigger.hi[i] += grow[i];
                }
                prop_assert!(filter.hit(&bigger, &b), "{policy:?} lost a hit when a grew");
            }
        }
    }

    /// Adaptive admits a subset of Safe and a superset of nothing it
    /// shouldn't: any pair of points whose *true* complex distance over the
    /// two stored coefficients is within ε/√2 must hit under Adaptive.
    #[test]
    fn adaptive_is_sound_on_points(x in fvec(), q in fvec(), eps in 0.2f64..6.0) {
        use tsfft::Complex64;
        let per_coeff: f64 = [(2usize, 3usize), (4, 5)]
            .iter()
            .map(|&(md, ad)| {
                (Complex64::from_polar(x[md], x[ad]) - Complex64::from_polar(q[md], q[ad]))
                    .norm_sqr()
            })
            .sum();
        // If the full distance could be ≤ ε then (symmetry) the two-coeff
        // part is ≤ ε²/2.
        if per_coeff.sqrt() <= eps / std::f64::consts::SQRT_2 {
            let filter = Filter::new(eps, FilterPolicy::Adaptive);
            prop_assert!(
                filter.hit(&Rect::point(x), &Rect::point(q)),
                "Adaptive dismissed a qualifying pair: coeff dist {} vs {}",
                per_coeff.sqrt(),
                eps / std::f64::consts::SQRT_2
            );
        }
    }

    /// Composition is associative on the feature action.
    #[test]
    fn composition_associative_on_features(p in fvec()) {
        let a = Transform::moving_average(3, 64);
        let b = Transform::circular_shift(2, 64);
        let c = Transform::scaling(1.5, 64);
        let left = a.compose(&b).compose(&c);
        let right = a.compose(&b.compose(&c));
        let lp = left.apply_point(&p);
        let rp = right.apply_point(&p);
        for i in 0..DIMS {
            prop_assert!((lp[i] - rp[i]).abs() < 1e-9);
        }
    }

    /// `apply_rect` of a degenerate rectangle equals `apply_point`, for
    /// arbitrary (including negative-multiplier) transformations.
    #[test]
    fn apply_rect_point_consistency(p in fvec(), k in -4f64..4.0) {
        prop_assume!(k.abs() > 1e-3);
        let t = Transform::scaling(k, 64);
        let r = t.apply_rect(&Rect::point(p));
        let tp = t.apply_point(&p);
        for i in 0..DIMS {
            prop_assert!((r.lo[i] - tp[i]).abs() < 1e-9);
            prop_assert!((r.hi[i] - tp[i]).abs() < 1e-9);
        }
    }
}
