//! Subsequence matching under transformations — the Faloutsos–Ranganathan–
//! Manolopoulos (SIGMOD '94) extension the paper cites as related work [7],
//! carried over to the multiple-transformation framework.
//!
//! Long sequences are decomposed into sliding windows of a fixed length
//! `w`; each window's normal form maps to the usual 6-dimensional feature
//! point, and the *trail* of consecutive window points is packed, a few
//! windows at a time, into MBRs stored in the R*-tree (FRM's "ST-index"
//! idea: a sub-trail MBR is far cheaper than one point per window). A
//! pattern query then works exactly like Algorithm 1 — the transformation
//! MBR is applied to every index rectangle, including the sub-trail MBRs,
//! during a single traversal — and candidate trails are verified window by
//! window.
//!
//! Sequences here may be long and of heterogeneous lengths; they are kept
//! in memory and only index-node accesses are metered (the record-level
//! I/O accounting of [`crate::index::SeqIndex`] concerns the paper's own
//! experiments, which are whole-sequence).

use crate::engine::pair_distance;
use crate::feature::{FRect, SeqFeatures};
use crate::query::{mt_query_region, Filter, RangeSpec};
use crate::report::{EngineMetrics, QueryError};
use crate::tmbr::TransformMbr;
use crate::transform::Family;
use rstartree::{bulk_load_str, MemStore, Params, RStarTree, Rect};
use std::time::Instant;
use tseries::TimeSeries;

/// One qualifying subsequence.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SubseqMatch {
    /// Which long sequence.
    pub seq: usize,
    /// Window start offset within it.
    pub offset: usize,
    /// Qualifying transformation (index into the family).
    pub transform: usize,
    /// Exact distance `D(t(window), t(pattern))`.
    pub dist: f64,
}

struct Trail {
    seq: usize,
    start: usize,
    len: usize,
}

/// A sliding-window subsequence index over long sequences.
pub struct SubseqIndex {
    tree: RStarTree<{ crate::feature::DIMS }, MemStore<{ crate::feature::DIMS }>>,
    trails: Vec<Trail>,
    seqs: Vec<TimeSeries>,
    window: usize,
}

impl SubseqIndex {
    /// Builds the index: windows of length `window`, `trail_len` consecutive
    /// windows per sub-trail MBR. Sequences shorter than the window
    /// contribute nothing; degenerate (constant) windows are skipped.
    ///
    /// Returns `None` when no window could be indexed.
    ///
    /// # Panics
    ///
    /// Panics for `window < 6` (the feature space needs ≥ 5 samples) or
    /// `trail_len = 0`.
    pub fn build(seqs: Vec<TimeSeries>, window: usize, trail_len: usize) -> Option<Self> {
        assert!(window >= 6, "window must be at least 6");
        assert!(trail_len >= 1, "trail_len must be positive");
        let mut trails: Vec<Trail> = Vec::new();
        let mut items: Vec<(FRect, u64)> = Vec::new();
        for (seq, ts) in seqs.iter().enumerate() {
            if ts.len() < window {
                continue;
            }
            let mut offset = 0;
            while offset + window <= ts.len() {
                // One sub-trail: up to `trail_len` consecutive windows.
                let mut mbr = Rect::empty();
                let mut covered = 0;
                while covered < trail_len && offset + covered + window <= ts.len() {
                    let win: TimeSeries = ts.values()[offset + covered..offset + covered + window]
                        .to_vec()
                        .into();
                    if let Some(f) = SeqFeatures::extract(&win) {
                        mbr.enlarge(&Rect::point(f.point));
                    }
                    covered += 1;
                }
                if !mbr.is_empty() {
                    let trail_id = trails.len() as u64;
                    trails.push(Trail {
                        seq,
                        start: offset,
                        len: covered,
                    });
                    items.push((mbr, trail_id));
                }
                offset += covered;
            }
        }
        if items.is_empty() {
            return None;
        }
        let tree = bulk_load_str(MemStore::new(), Params::with_max(32), items);
        Some(Self {
            tree,
            trails,
            seqs,
            window,
        })
    }

    /// Window length.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Number of sub-trail MBRs in the index.
    pub fn trail_count(&self) -> usize {
        self.trails.len()
    }

    /// The indexed sequences.
    pub fn sequences(&self) -> &[TimeSeries] {
        &self.seqs
    }

    /// Finds every `(sequence, offset, transformation)` whose window becomes
    /// within ε of the pattern — one MT-style index traversal (the
    /// transformation MBR is applied to sub-trail rectangles) plus
    /// window-level verification.
    pub fn query(
        &self,
        pattern: &TimeSeries,
        family: &Family,
        spec: &RangeSpec,
    ) -> Result<(Vec<SubseqMatch>, EngineMetrics), QueryError> {
        let start = Instant::now();
        let q = self.prepare(pattern, family)?;
        let eps = spec.epsilon(self.window);
        let filter = Filter::new(eps, spec.policy);
        let mbr = TransformMbr::of_family(family);
        let region = mt_query_region(&mbr, &q.point, spec.mode);

        let mut candidates = Vec::new();
        let stats = self.tree.search(
            |rect| filter.hit(&mbr.apply_to_rect(rect), &region),
            |_, trail_id| candidates.push(trail_id as usize),
        )?;

        let mut metrics = EngineMetrics {
            node_accesses: stats.nodes_accessed,
            leaf_accesses: stats.leaf_nodes_accessed,
            candidates: candidates.len() as u64,
            ..Default::default()
        };
        let mut matches = Vec::new();
        for trail_id in candidates {
            let trail = &self.trails[trail_id];
            let ts = &self.seqs[trail.seq];
            for k in 0..trail.len {
                let offset = trail.start + k;
                let win: TimeSeries = ts.values()[offset..offset + self.window].to_vec().into();
                let Some(x) = SeqFeatures::extract(&win) else {
                    continue;
                };
                for (ti, t) in family.transforms().iter().enumerate() {
                    let d = pair_distance(t, &x, &q, spec.mode);
                    metrics.comparisons += 1;
                    if d < eps {
                        matches.push(SubseqMatch {
                            seq: trail.seq,
                            offset,
                            transform: ti,
                            dist: d,
                        });
                    }
                }
            }
        }
        metrics.wall = start.elapsed();
        Ok((matches, metrics))
    }

    /// Ground truth: test every window of every sequence.
    pub fn query_scan(
        &self,
        pattern: &TimeSeries,
        family: &Family,
        spec: &RangeSpec,
    ) -> Result<(Vec<SubseqMatch>, EngineMetrics), QueryError> {
        let start = Instant::now();
        let q = self.prepare(pattern, family)?;
        let eps = spec.epsilon(self.window);
        let mut metrics = EngineMetrics::default();
        let mut matches = Vec::new();
        for (seq, ts) in self.seqs.iter().enumerate() {
            if ts.len() < self.window {
                continue;
            }
            for offset in 0..=(ts.len() - self.window) {
                let win: TimeSeries = ts.values()[offset..offset + self.window].to_vec().into();
                let Some(x) = SeqFeatures::extract(&win) else {
                    continue;
                };
                for (ti, t) in family.transforms().iter().enumerate() {
                    let d = pair_distance(t, &x, &q, spec.mode);
                    metrics.comparisons += 1;
                    if d < eps {
                        matches.push(SubseqMatch {
                            seq,
                            offset,
                            transform: ti,
                            dist: d,
                        });
                    }
                }
            }
        }
        metrics.wall = start.elapsed();
        Ok((matches, metrics))
    }

    fn prepare(&self, pattern: &TimeSeries, family: &Family) -> Result<SeqFeatures, QueryError> {
        if pattern.len() != self.window {
            return Err(QueryError::LengthMismatch {
                query: pattern.len(),
                indexed: self.window,
            });
        }
        let fam_len = family.transforms()[0].seq_len();
        if fam_len != self.window {
            return Err(QueryError::FamilyLengthMismatch {
                family: fam_len,
                indexed: self.window,
            });
        }
        SeqFeatures::extract(pattern).ok_or(QueryError::DegenerateQuery)
    }
}

/// Canonical ordering of subsequence matches for result comparisons.
pub fn sorted_subseq(matches: &[SubseqMatch]) -> Vec<(usize, usize, usize)> {
    let mut v: Vec<(usize, usize, usize)> = matches
        .iter()
        .map(|m| (m.seq, m.offset, m.transform))
        .collect();
    v.sort_unstable();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::FilterPolicy;
    use tseries::random_walk;
    use tseries::rng::SeededRng;

    fn long_sequences(count: usize, len: usize, seed: u64) -> Vec<TimeSeries> {
        let mut rng = SeededRng::seed_from_u64(seed);
        (0..count)
            .map(|_| random_walk(&mut rng, len, 10.0))
            .collect()
    }

    #[test]
    fn index_equals_scan_under_safe_policy() {
        let seqs = long_sequences(12, 300, 3);
        let index = SubseqIndex::build(seqs.clone(), 32, 8).unwrap();
        let family = Family::moving_averages(2..=5, 32);
        // NB: ρ must stay below (n−1)/n ≈ 0.969 for window 32, else ε = 0.
        let spec = RangeSpec::correlation(0.9).with_policy(FilterPolicy::Safe);
        // Pattern: an actual window of sequence 4 — must be found at its
        // own offset with mv identity-ish distances near 0.
        let pattern: TimeSeries = seqs[4].values()[100..132].to_vec().into();
        let (got, gm) = index.query(&pattern, &family, &spec).unwrap();
        let (want, _) = index.query_scan(&pattern, &family, &spec).unwrap();
        assert_eq!(sorted_subseq(&got), sorted_subseq(&want));
        assert!(
            got.iter().any(|m| m.seq == 4 && m.offset == 100),
            "finds its own window"
        );
        assert!(gm.comparisons > 0);
    }

    #[test]
    fn adaptive_policy_also_lossless_on_subsequences() {
        let seqs = long_sequences(8, 256, 7);
        let index = SubseqIndex::build(seqs.clone(), 24, 6).unwrap();
        let family = Family::moving_averages(2..=4, 24);
        let safe = RangeSpec::correlation(0.95).with_policy(FilterPolicy::Safe);
        let adaptive = RangeSpec::correlation(0.95).with_policy(FilterPolicy::Adaptive);
        let pattern: TimeSeries = seqs[1].values()[50..74].to_vec().into();
        let (a, am) = index.query(&pattern, &family, &safe).unwrap();
        let (b, bm) = index.query(&pattern, &family, &adaptive).unwrap();
        assert_eq!(sorted_subseq(&a), sorted_subseq(&b));
        assert!(bm.candidates <= am.candidates);
    }

    #[test]
    fn trail_packing_shrinks_the_index() {
        let seqs = long_sequences(6, 400, 9);
        let fine = SubseqIndex::build(seqs.clone(), 32, 1).unwrap();
        let coarse = SubseqIndex::build(seqs, 32, 16).unwrap();
        assert!(
            coarse.trail_count() * 8 < fine.trail_count(),
            "trail MBRs should cut entries ~16×: {} vs {}",
            coarse.trail_count(),
            fine.trail_count()
        );
    }

    #[test]
    fn trail_mbrs_filter_fewer_nodes_than_scan_comparisons() {
        let seqs = long_sequences(20, 400, 11);
        let index = SubseqIndex::build(seqs.clone(), 32, 8).unwrap();
        let family = Family::moving_averages(2..=5, 32);
        let spec = RangeSpec::correlation(0.93);
        let pattern: TimeSeries = seqs[0].values()[10..42].to_vec().into();
        let (_, im) = index.query(&pattern, &family, &spec).unwrap();
        let (_, sm) = index.query_scan(&pattern, &family, &spec).unwrap();
        assert!(
            im.comparisons < sm.comparisons,
            "index should verify fewer windows: {} vs {}",
            im.comparisons,
            sm.comparisons
        );
    }

    #[test]
    fn heterogeneous_and_short_sequences_are_handled() {
        let mut seqs = long_sequences(3, 100, 13);
        seqs.push(TimeSeries::new(vec![1.0; 10])); // shorter than window
        seqs.push(TimeSeries::new(vec![5.0; 200])); // constant: all windows degenerate
        let index = SubseqIndex::build(seqs.clone(), 32, 4).unwrap();
        let family = Family::moving_averages(1..=2, 32);
        let spec = RangeSpec::correlation(0.9).with_policy(FilterPolicy::Safe);
        let pattern: TimeSeries = seqs[0].values()[0..32].to_vec().into();
        let (got, _) = index.query(&pattern, &family, &spec).unwrap();
        assert!(got.iter().all(|m| m.seq < 3), "degenerate rows never match");
    }

    #[test]
    fn rejects_wrong_pattern_length() {
        let index = SubseqIndex::build(long_sequences(2, 100, 1), 32, 4).unwrap();
        let family = Family::moving_averages(1..=2, 32);
        let short = TimeSeries::new(vec![1.0; 16]);
        let err = index
            .query(&short, &family, &RangeSpec::euclidean(1.0))
            .unwrap_err();
        assert!(matches!(
            err,
            QueryError::LengthMismatch {
                query: 16,
                indexed: 32
            }
        ));
    }

    #[test]
    fn empty_when_everything_degenerate() {
        let seqs = vec![TimeSeries::new(vec![1.0; 64])];
        assert!(SubseqIndex::build(seqs, 32, 4).is_none());
    }
}
