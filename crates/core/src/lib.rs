#![warn(missing_docs)]
//! # simquery — similarity-based queries for time series data
//!
//! A faithful implementation of
//! *D. Rafiei, "On Similarity-Based Queries for Time Series Data", ICDE 1999*:
//! range queries, spatial joins and nearest-neighbour queries over time
//! sequences where similarity is defined up to a **set of linear
//! transformations** of the Fourier representation — "find every stock `s`
//! and transformation `t ∈ T` with `D(t(s), t(q)) < ε`" (Query 1).
//!
//! Three query-processing algorithms are provided, exactly as the paper
//! evaluates them:
//!
//! * [`engine::seqscan`] — scan the relation, try every transformation
//!   (`|S|·|T|` comparisons);
//! * [`engine::stindex`] — *Single Transformation at a time*: one R*-tree
//!   traversal per transformation;
//! * [`engine::mtindex`] — *Multiple Transformations at a time* (the
//!   paper's contribution, Algorithm 1): bound the whole transformation set
//!   by a rectangle, apply that rectangle to every index rectangle during a
//!   **single** traversal (Eq. 12), then post-process candidates.
//!
//! Supporting machinery: the 6-dimensional DFT feature space of §5
//! ([`feature`]), linear transformations with exact full-spectrum
//! counterparts ([`transform`]), transformation-MBR algebra with the
//! no-false-dismissal guarantee of Lemma 1 ([`tmbr`]), correlation ↔
//! distance threshold bridging via Eq. 9 ([`query`]), multi-rectangle
//! partitioning with clustering (§4.3, [`partition`], [`cluster`]),
//! transformation orderings and binary search (§4.4, [`ordering`]), and the
//! cost model of Eq. 18–20 ([`cost`]).
//!
//! ```
//! use simquery::prelude::*;
//!
//! // 200 random-walk sequences of length 128, as in §5.
//! let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 200, 128, 42);
//! let index = SeqIndex::build(&corpus, IndexConfig::default()).unwrap();
//!
//! // "similar under some m-day moving average, m = 10..=25"
//! let family = Family::moving_averages(10..=25, 128);
//! let spec = RangeSpec::correlation(0.96).with_policy(FilterPolicy::Safe);
//!
//! let query = corpus.series()[0].clone();
//! let result = engine::mtindex::range_query(&index, &query, &family, &spec).unwrap();
//! assert!(result.matches.iter().any(|m| m.seq == 0), "finds itself");
//! ```

pub mod cluster;
pub mod cost;
pub mod engine;
pub mod expr;
pub mod feature;
pub mod index;
pub mod ordering;
pub mod partition;
pub mod plan;
pub mod query;
pub mod report;
pub mod shared;
pub mod stats;
pub mod subseq;
pub mod tmbr;
pub mod transform;

#[cfg(all(test, feature = "proptests"))]
mod proptests;

/// Everything a typical user needs.
pub mod prelude {
    pub use crate::cost::CostModel;
    pub use crate::engine;
    pub use crate::expr::SimilarityExpr;
    pub use crate::feature::{FeatureVec, SeqFeatures, DIMS};
    pub use crate::index::{IndexConfig, SeqIndex, StoreKind};
    pub use crate::ordering::OrderedFamily;
    pub use crate::partition::PartitionStrategy;
    pub use crate::plan::{
        EngineChoice, EnginePref, LogicalQuery, LogicalVerb, PhysicalPlan, PlanCache, PlanOutput,
        Planner, QueryEpoch, StageTimings,
    };
    pub use crate::query::{FilterPolicy, QueryMode, RangeSpec, Threshold, ThresholdParseError};
    pub use crate::report::{EngineMetrics, Match, QueryResult};
    pub use crate::shared::SharedIndex;
    pub use crate::stats::StatsRegistry;
    pub use crate::subseq::SubseqIndex;
    pub use crate::tmbr::TransformMbr;
    pub use crate::transform::{Family, Transform};
    pub use tseries::{Corpus, CorpusKind, TimeSeries};
}
