//! Clustering of transformation points — the "cluster detection algorithm"
//! §4.3/§5.2 prescribes to avoid packing two clusters into one MBR (the
//! paper cites CURE; deterministic k-means and agglomerative linkage are
//! sufficient for transformation sets, which are tiny and low-dimensional).

/// Deterministic k-means: maximin ("farthest point") seeding, Lloyd
/// iterations until assignments stabilise. Returns one cluster id per
/// point, ids in `0..k'` with `k' ≤ k` (empty clusters are dropped and ids
/// compacted).
///
/// # Panics
///
/// Panics when `points` is empty, `k == 0`, or dimensions are ragged.
pub fn kmeans(points: &[Vec<f64>], k: usize) -> Vec<usize> {
    assert!(!points.is_empty(), "kmeans needs points");
    assert!(k >= 1, "kmeans needs k ≥ 1");
    let dim = points[0].len();
    assert!(points.iter().all(|p| p.len() == dim), "ragged points");
    let k = k.min(points.len());

    // Maximin seeding: start from the point farthest from the centroid,
    // then repeatedly take the point farthest from every chosen seed.
    let centroid: Vec<f64> = (0..dim)
        .map(|d| points.iter().map(|p| p[d]).sum::<f64>() / points.len() as f64)
        .collect();
    let mut seeds: Vec<usize> = Vec::with_capacity(k);
    let first = (0..points.len())
        .max_by(|&a, &b| dist_sq(&points[a], &centroid).total_cmp(&dist_sq(&points[b], &centroid)))
        .expect("non-empty");
    seeds.push(first);
    while seeds.len() < k {
        let next = (0..points.len())
            .max_by(|&a, &b| {
                let da = seeds
                    .iter()
                    .map(|&s| dist_sq(&points[a], &points[s]))
                    .fold(f64::INFINITY, f64::min);
                let db = seeds
                    .iter()
                    .map(|&s| dist_sq(&points[b], &points[s]))
                    .fold(f64::INFINITY, f64::min);
                da.total_cmp(&db)
            })
            .expect("non-empty");
        seeds.push(next);
    }

    let mut centers: Vec<Vec<f64>> = seeds.iter().map(|&s| points[s].clone()).collect();
    let mut assign = vec![0usize; points.len()];
    for _iter in 0..64 {
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = (0..centers.len())
                .min_by(|&a, &b| dist_sq(p, &centers[a]).total_cmp(&dist_sq(p, &centers[b])))
                .expect("k ≥ 1");
            if assign[i] != best {
                assign[i] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        // Recompute centres (keep empty clusters' old centres).
        let mut sums = vec![vec![0.0; dim]; centers.len()];
        let mut counts = vec![0usize; centers.len()];
        for (i, p) in points.iter().enumerate() {
            counts[assign[i]] += 1;
            for d in 0..dim {
                sums[assign[i]][d] += p[d];
            }
        }
        for (c, (sum, count)) in sums.iter().zip(&counts).enumerate() {
            if *count > 0 {
                for d in 0..dim {
                    centers[c][d] = sum[d] / *count as f64;
                }
            }
        }
    }
    compact_ids(assign)
}

/// Agglomerative clustering with complete linkage down to `k` clusters.
/// O(n³) worst case — fine for transformation sets (tens of members).
pub fn agglomerative(points: &[Vec<f64>], k: usize) -> Vec<usize> {
    assert!(!points.is_empty(), "agglomerative needs points");
    assert!(k >= 1, "agglomerative needs k ≥ 1");
    let n = points.len();
    let k = k.min(n);
    // clusters[i] = member indices; dead clusters become empty.
    let mut clusters: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    let mut live = n;
    while live > k {
        // Find the pair of live clusters with the smallest complete-linkage
        // distance.
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..clusters.len() {
            if clusters[i].is_empty() {
                continue;
            }
            for j in (i + 1)..clusters.len() {
                if clusters[j].is_empty() {
                    continue;
                }
                let d = complete_linkage(points, &clusters[i], &clusters[j]);
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((i, j, d));
                }
            }
        }
        let (i, j, _) = best.expect("at least two live clusters");
        let absorbed = std::mem::take(&mut clusters[j]);
        clusters[i].extend(absorbed);
        live -= 1;
    }
    let mut assign = vec![0usize; n];
    for (next, members) in clusters.iter().filter(|m| !m.is_empty()).enumerate() {
        for &m in members {
            assign[m] = next;
        }
    }
    assign
}

fn complete_linkage(points: &[Vec<f64>], a: &[usize], b: &[usize]) -> f64 {
    let mut worst: f64 = 0.0;
    for &i in a {
        for &j in b {
            worst = worst.max(dist_sq(&points[i], &points[j]));
        }
    }
    worst
}

fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Renumbers cluster ids to a dense `0..k'` range, preserving first-seen
/// order.
fn compact_ids(assign: Vec<usize>) -> Vec<usize> {
    let mut map: Vec<Option<usize>> =
        vec![None; assign.len().max(assign.iter().max().map_or(0, |m| m + 1))];
    let mut next = 0;
    assign
        .into_iter()
        .map(|c| {
            *map[c].get_or_insert_with(|| {
                let id = next;
                next += 1;
                id
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..6 {
            pts.push(vec![i as f64 * 0.01, 0.0]);
        }
        for i in 0..6 {
            pts.push(vec![100.0 + i as f64 * 0.01, 1.0]);
        }
        pts
    }

    #[test]
    fn kmeans_separates_two_blobs() {
        let assign = kmeans(&two_blobs(), 2);
        let first = &assign[..6];
        let second = &assign[6..];
        assert!(first.iter().all(|c| *c == first[0]));
        assert!(second.iter().all(|c| *c == second[0]));
        assert_ne!(first[0], second[0]);
    }

    #[test]
    fn agglomerative_separates_two_blobs() {
        let assign = agglomerative(&two_blobs(), 2);
        assert!(assign[..6].iter().all(|c| *c == assign[0]));
        assert!(assign[6..].iter().all(|c| *c == assign[6]));
        assert_ne!(assign[0], assign[6]);
    }

    #[test]
    fn k_clamps_to_point_count() {
        let pts = vec![vec![0.0], vec![1.0]];
        let a = kmeans(&pts, 10);
        assert_eq!(a.len(), 2);
        assert!(a.iter().all(|c| *c < 2));
        let b = agglomerative(&pts, 10);
        assert_eq!(b, vec![0, 1]);
    }

    #[test]
    fn k_one_puts_everything_together() {
        let pts = two_blobs();
        assert!(kmeans(&pts, 1).iter().all(|c| *c == 0));
        assert!(agglomerative(&pts, 1).iter().all(|c| *c == 0));
    }

    #[test]
    fn deterministic_across_calls() {
        let pts = two_blobs();
        assert_eq!(kmeans(&pts, 3), kmeans(&pts, 3));
        assert_eq!(agglomerative(&pts, 3), agglomerative(&pts, 3));
    }

    #[test]
    fn identical_points_are_one_cluster_each_way() {
        let pts = vec![vec![5.0, 5.0]; 8];
        let a = kmeans(&pts, 3);
        // All points coincide: every assignment is to one centre.
        assert!(a.iter().all(|c| *c == a[0]));
    }

    #[test]
    #[should_panic(expected = "needs points")]
    fn empty_input_rejected() {
        kmeans(&[], 2);
    }
}
