//! The sequence index: an R*-tree over feature points plus a heap file of
//! full sequence records, with unified access accounting.
//!
//! Mirrors the paper's storage layout (§5): for every sequence, its normal
//! form's DFT features go into the R*-tree (payload = sequence ordinal) and
//! the full record lives in a paged relation, fetched during Algorithm 1's
//! post-processing step. Both access streams are counted.

use crate::feature::{FRect, SeqFeatures, DIMS};
use crate::report::QueryError;
use pagestore::{BufferPool, Disk, DynHeapFile, PageDevice, PageError};
use rstartree::{
    bulk_load_str, MemStore, Neighbor, NodeStore, PagedStore, Params, RStarTree, SearchStats,
};
use std::sync::Arc;
use tseries::{Corpus, TimeSeries};

/// Where tree nodes live.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum StoreKind {
    /// Nodes serialised to pages of a simulated disk; node reads are disk
    /// accesses (the paper's cold-per-query accounting).
    #[default]
    Paged,
    /// Nodes in memory; accesses still counted identically.
    Mem,
}

/// Index construction options.
#[derive(Clone, Copy, Debug)]
pub struct IndexConfig {
    /// Node storage backend.
    pub store: StoreKind,
    /// Fanout override; defaults to the page capacity (78 at `D = 6`).
    pub fanout: Option<usize>,
    /// Bulk-load with STR (fast, well-packed) instead of one-by-one
    /// R*-tree insertion.
    pub bulk: bool,
    /// Buffer-pool frames for the record heap.
    pub heap_pool_pages: usize,
}

impl Default for IndexConfig {
    fn default() -> Self {
        Self {
            store: StoreKind::Paged,
            fanout: None,
            bulk: true,
            heap_pool_pages: 64,
        }
    }
}

enum TreeImpl {
    Mem(RStarTree<DIMS, MemStore<DIMS>>),
    Paged(RStarTree<DIMS, PagedStore<DIMS>>),
}

/// Combined access counters of the index structures.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccessCounters {
    /// Tree node reads.
    pub node_reads: u64,
    /// Record-heap page reads that missed the pool (physical accesses).
    pub record_page_reads: u64,
    /// Logical record fetches (every [`SeqIndex::fetch`]/`fetch_series`),
    /// regardless of buffering — the paper's Fig. 8–9 count accesses this
    /// way (its per-query numbers far exceed the distinct page count).
    pub record_fetches: u64,
}

/// An indexed corpus of equal-length sequences.
pub struct SeqIndex {
    tree: TreeImpl,
    heap: DynHeapFile,
    heap_pool: Arc<BufferPool>,
    // Concrete disk handles, kept only when the index owns plain in-memory
    // disks (the `build`/`open` paths) — `save` needs `Disk::save_to`.
    // Indexes built over injected devices (`build_on`) cannot be saved.
    tree_disk: Option<Arc<Disk>>,
    heap_disk: Option<Arc<Disk>>,
    rids: Vec<pagestore::RecordId>,
    seq_len: usize,
    len: usize,
    skipped: Vec<usize>,
    deleted: Vec<bool>,
    leaf_capacity: usize,
    fetches: std::sync::atomic::AtomicU64,
    // Checkpoint epoch recorded in the snapshot this index was opened
    // from (1 for fresh builds); `Wal::open` reconciles its log against
    // this value. Advanced by `save_with_epoch` on disk, not in memory —
    // the durability layer owns the live epoch.
    wal_epoch: u64,
    // Advisory lock on the directory the index was opened from, held for
    // the index's lifetime so a second process cannot replay or
    // checkpoint the same files concurrently. `None` for built indexes.
    _dir_lock: Option<simwal::DirLock>,
}

impl SeqIndex {
    /// Builds the index over a corpus. Degenerate sequences (no normal
    /// form) are stored in the relation but not indexed; their ordinals are
    /// reported by [`Self::skipped`].
    ///
    /// Returns `None` for an empty corpus or zero-length sequences.
    pub fn build(corpus: &Corpus, config: IndexConfig) -> Option<Self> {
        let tree_disk = Arc::new(Disk::new());
        let heap_disk = Arc::new(Disk::new());
        let mut index = Self::build_on(
            corpus,
            config,
            Arc::clone(&tree_disk) as Arc<dyn PageDevice>,
            Arc::clone(&heap_disk) as Arc<dyn PageDevice>,
        )
        .expect("building on a healthy in-memory disk cannot fail")?;
        index.tree_disk = Some(tree_disk);
        index.heap_disk = Some(heap_disk);
        Some(index)
    }

    /// Builds the index over a corpus with caller-supplied page devices —
    /// e.g. a [`pagestore::FaultyDisk`] for fault-injection testing. The
    /// caller keeps its device handles to arm fault plans later; an index
    /// built this way cannot be [`Self::save`]d.
    ///
    /// Returns `Ok(None)` for an empty corpus or zero-length sequences, and
    /// `Err` when a device access fails during construction.
    pub fn build_on(
        corpus: &Corpus,
        config: IndexConfig,
        tree_device: Arc<dyn PageDevice>,
        heap_device: Arc<dyn PageDevice>,
    ) -> Result<Option<Self>, PageError> {
        let seq_len = corpus.series_len();
        if corpus.is_empty() || seq_len == 0 {
            return Ok(None);
        }

        // Record heap: one page stream for the full sequences.
        let heap_pool = Arc::new(BufferPool::new_dyn(
            heap_device,
            config.heap_pool_pages.max(1),
        ));
        let heap = DynHeapFile::create(Arc::clone(&heap_pool), seq_len * 8);

        let mut rids = Vec::with_capacity(corpus.len());
        let mut skipped = Vec::new();
        let mut items: Vec<(FRect, u64)> = Vec::with_capacity(corpus.len());
        let mut buf = vec![0u8; seq_len * 8];
        for (ordinal, ts) in corpus.series().iter().enumerate() {
            encode_record(ts, &mut buf);
            rids.push(heap.insert(&buf)?);
            match SeqFeatures::extract(ts) {
                Some(f) => items.push((rstartree::Rect::point(f.point), ordinal as u64)),
                None => skipped.push(ordinal),
            }
        }

        let params = match config.fanout {
            Some(f) => Params::with_max(f),
            None => Params::for_dimension::<DIMS>(),
        };
        let leaf_capacity = params.max_entries;

        let tree = match config.store {
            StoreKind::Mem => {
                let store = MemStore::new();
                TreeImpl::Mem(build_tree(store, params, items, config.bulk)?)
            }
            StoreKind::Paged => {
                let store = PagedStore::new_dyn(tree_device);
                TreeImpl::Paged(build_tree(store, params, items, config.bulk)?)
            }
        };

        Ok(Some(Self {
            tree,
            heap,
            heap_pool,
            tree_disk: None,
            heap_disk: None,
            rids,
            seq_len,
            len: corpus.len(),
            skipped,
            deleted: vec![false; corpus.len()],
            leaf_capacity,
            fetches: std::sync::atomic::AtomicU64::new(0),
            wal_epoch: 1,
            _dir_lock: None,
        }))
    }

    /// Appends a new sequence to the live index, returning its ordinal.
    /// Degenerate sequences are stored but not indexed (reported by
    /// [`Self::skipped`]).
    pub fn insert_series(&mut self, ts: &TimeSeries) -> Result<usize, QueryError> {
        if ts.len() != self.seq_len {
            return Err(QueryError::LengthMismatch {
                query: ts.len(),
                indexed: self.seq_len,
            });
        }
        let ordinal = self.len;
        let mut buf = vec![0u8; self.seq_len * 8];
        encode_record(ts, &mut buf);
        self.rids.push(self.heap.insert(&buf)?);
        self.deleted.push(false);
        match SeqFeatures::extract(ts) {
            Some(f) => {
                let rect = rstartree::Rect::point(f.point);
                match &mut self.tree {
                    TreeImpl::Mem(t) => t.insert(rect, ordinal as u64)?,
                    TreeImpl::Paged(t) => t.insert(rect, ordinal as u64)?,
                }
            }
            None => self.skipped.push(ordinal),
        }
        self.len += 1;
        Ok(ordinal)
    }

    /// Removes a sequence from the live index. The record stays in the heap
    /// (append-only) but the index entry is deleted and scans skip the
    /// tombstone. Returns `Ok(false)` when the ordinal is out of range or
    /// already deleted.
    pub fn delete_series(&mut self, ordinal: usize) -> Result<bool, QueryError> {
        if ordinal >= self.len || self.deleted[ordinal] {
            return Ok(false);
        }
        // Recompute the stored feature point to locate the tree entry.
        if !self.skipped.contains(&ordinal) {
            let ts = self.fetch_series(ordinal)?;
            let f = SeqFeatures::extract(&ts).expect("indexed entries are non-degenerate");
            let rect = rstartree::Rect::point(f.point);
            let removed = match &mut self.tree {
                TreeImpl::Mem(t) => t.delete(&rect, ordinal as u64)?,
                TreeImpl::Paged(t) => t.delete(&rect, ordinal as u64)?,
            };
            debug_assert!(removed, "tree entry for live ordinal {ordinal} must exist");
        }
        self.deleted[ordinal] = true;
        Ok(true)
    }

    /// Ordinals currently tombstoned by [`Self::delete_series`].
    pub fn deleted_count(&self) -> usize {
        self.deleted.iter().filter(|d| **d).count()
    }

    /// The tombstoned ordinals themselves, ascending. Lets a repartitioner
    /// ([`crate::shared`] consumers, `simshard`) replay deletions when
    /// rebuilding a corpus from the heap.
    pub fn deleted_ordinals(&self) -> Vec<usize> {
        self.deleted
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.then_some(i))
            .collect()
    }

    /// Number of sequences in the relation (indexed or not).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the relation is empty (never — `build` rejects that).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Length of every sequence.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// Ordinals of sequences that could not be indexed (degenerate).
    pub fn skipped(&self) -> &[usize] {
        &self.skipped
    }

    /// Average leaf capacity — the `CA_leaf` of the cost model.
    pub fn leaf_capacity(&self) -> usize {
        self.leaf_capacity
    }

    /// Tree height.
    pub fn height(&self) -> u32 {
        match &self.tree {
            TreeImpl::Mem(t) => t.height(),
            TreeImpl::Paged(t) => t.height(),
        }
    }

    /// Per-level node counts and mean MBR extents — the structural inputs
    /// of the analytical cost model (§4.3). One full tree walk.
    pub fn level_summaries(&self) -> Result<Vec<rstartree::LevelSummary<DIMS>>, PageError> {
        match &self.tree {
            TreeImpl::Mem(t) => t.level_summaries(),
            TreeImpl::Paged(t) => t.level_summaries(),
        }
    }

    /// Prepares a query sequence: validates its length and extracts its
    /// features.
    pub fn prepare_query(&self, ts: &TimeSeries) -> Result<SeqFeatures, QueryError> {
        if ts.len() != self.seq_len {
            return Err(QueryError::LengthMismatch {
                query: ts.len(),
                indexed: self.seq_len,
            });
        }
        SeqFeatures::extract(ts).ok_or(QueryError::DegenerateQuery)
    }

    /// Fetches a sequence's full record (a counted page access) and
    /// recomputes its features.
    ///
    /// # Panics
    ///
    /// Panics when the record decodes to a degenerate sequence — only
    /// indexed ordinals should be fetched.
    pub fn fetch(&self, ordinal: usize) -> Result<SeqFeatures, PageError> {
        let ts = self.fetch_series(ordinal)?;
        Ok(SeqFeatures::extract(&ts)
            .unwrap_or_else(|| panic!("fetched degenerate sequence {ordinal}")))
    }

    /// Fetches a sequence's raw samples (a counted page access).
    pub fn fetch_series(&self, ordinal: usize) -> Result<TimeSeries, PageError> {
        self.fetches
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let bytes = self.heap.get(self.rids[ordinal])?;
        Ok(decode_record(&bytes))
    }

    /// Scans the whole relation (the sequential-scan baseline); one page
    /// access per heap page. Stops at the first failed page.
    pub fn scan(&self, f: impl FnMut(usize, TimeSeries)) -> Result<(), PageError> {
        self.scan_range(0, self.len, f)
    }

    /// Scans ordinals `[start, end)`; disjoint ranges can run on separate
    /// threads (the parallel scan baseline). Stops at the first failed page.
    pub fn scan_range(
        &self,
        start: usize,
        end: usize,
        mut f: impl FnMut(usize, TimeSeries),
    ) -> Result<(), PageError> {
        self.heap.scan_range(start, end, |ordinal, _rid, bytes| {
            if !self.deleted[ordinal] {
                f(ordinal, decode_record(bytes));
            }
        })
    }

    /// Predicate-driven index search (see [`RStarTree::search`]).
    pub fn search(
        &self,
        pred: impl FnMut(&FRect) -> bool,
        on_data: impl FnMut(&FRect, u64),
    ) -> Result<SearchStats, PageError> {
        match &self.tree {
            TreeImpl::Mem(t) => t.search(pred, on_data),
            TreeImpl::Paged(t) => t.search(pred, on_data),
        }
    }

    /// Duplicate-free self join (see [`RStarTree::self_join`]).
    pub fn self_join(
        &self,
        pred: impl FnMut(&FRect, &FRect) -> bool,
        on_pair: impl FnMut(&FRect, u64, &FRect, u64),
    ) -> Result<SearchStats, PageError> {
        match &self.tree {
            TreeImpl::Mem(t) => t.self_join(pred, on_pair),
            TreeImpl::Paged(t) => t.self_join(pred, on_pair),
        }
    }

    /// Best-first nearest-neighbour search (see [`RStarTree::nearest_by`]).
    #[allow(clippy::type_complexity)]
    pub fn nearest_by(
        &self,
        k: usize,
        node_bound: impl FnMut(&FRect) -> f64,
        leaf_score: impl FnMut(&FRect, u64) -> Option<f64>,
    ) -> Result<(Vec<Neighbor<DIMS>>, SearchStats), PageError> {
        match &self.tree {
            TreeImpl::Mem(t) => t.nearest_by(k, node_bound, leaf_score),
            TreeImpl::Paged(t) => t.nearest_by(k, node_bound, leaf_score),
        }
    }

    /// Optimal multi-step k-NN (see [`RStarTree::nearest_by_refine`]).
    #[allow(clippy::type_complexity)]
    pub fn nearest_by_refine(
        &self,
        k: usize,
        node_bound: impl FnMut(&FRect) -> f64,
        leaf_bound: impl FnMut(&FRect, u64) -> f64,
        refine: impl FnMut(&FRect, u64) -> Option<f64>,
    ) -> Result<(Vec<Neighbor<DIMS>>, SearchStats), PageError> {
        match &self.tree {
            TreeImpl::Mem(t) => t.nearest_by_refine(k, node_bound, leaf_bound, refine),
            TreeImpl::Paged(t) => t.nearest_by_refine(k, node_bound, leaf_bound, refine),
        }
    }

    /// [`Self::nearest_by_refine`] seeded with an external pruning bound
    /// (see [`RStarTree::nearest_by_refine_bounded`]). Used by the sharded
    /// gather executor to propagate the running global k-th distance into
    /// later per-shard searches.
    #[allow(clippy::type_complexity)]
    pub fn nearest_by_refine_bounded(
        &self,
        k: usize,
        bound: f64,
        node_bound: impl FnMut(&FRect) -> f64,
        leaf_bound: impl FnMut(&FRect, u64) -> f64,
        refine: impl FnMut(&FRect, u64) -> Option<f64>,
    ) -> Result<(Vec<Neighbor<DIMS>>, SearchStats), PageError> {
        match &self.tree {
            TreeImpl::Mem(t) => {
                t.nearest_by_refine_bounded(k, bound, node_bound, leaf_bound, refine)
            }
            TreeImpl::Paged(t) => {
                t.nearest_by_refine_bounded(k, bound, node_bound, leaf_bound, refine)
            }
        }
    }

    /// Zeroes all access counters and empties the record pool, so the next
    /// query is measured cold (the paper's per-query accounting). Fails when
    /// flushing a dirty record page back to a faulted device fails.
    pub fn reset_counters(&self) -> Result<(), PageError> {
        match &self.tree {
            TreeImpl::Mem(t) => t.store().reset_stats(),
            TreeImpl::Paged(t) => t.store().reset_stats(),
        }
        self.heap_pool.clear()?;
        self.heap_pool.reset_stats();
        self.heap_pool.device().reset_stats();
        self.fetches.store(0, std::sync::atomic::Ordering::Relaxed);
        Ok(())
    }

    /// Snapshot of the access counters.
    pub fn counters(&self) -> AccessCounters {
        let node_reads = match &self.tree {
            TreeImpl::Mem(t) => t.store().stats().reads,
            TreeImpl::Paged(t) => t.store().stats().reads,
        };
        AccessCounters {
            node_reads,
            record_page_reads: self.heap_pool.stats().misses,
            record_fetches: self.fetches.load(std::sync::atomic::Ordering::Relaxed),
        }
    }

    /// Structural self-check (test support). `Err` means a device failure
    /// prevented the check, not an invariant violation (those panic).
    pub fn validate(&self) -> Result<usize, PageError> {
        match &self.tree {
            TreeImpl::Mem(t) => t.validate(),
            TreeImpl::Paged(t) => t.validate(),
        }
    }

    /// True when a mutation aborted mid-way on a device error, leaving the
    /// tree structurally suspect (see [`RStarTree::is_poisoned`]).
    pub fn tree_poisoned(&self) -> bool {
        match &self.tree {
            TreeImpl::Mem(t) => t.is_poisoned(),
            TreeImpl::Paged(t) => t.is_poisoned(),
        }
    }
}

fn build_tree<S: rstartree::NodeStore<DIMS>>(
    store: S,
    params: Params,
    items: Vec<(FRect, u64)>,
    bulk: bool,
) -> Result<RStarTree<DIMS, S>, PageError> {
    if bulk {
        Ok(bulk_load_str(store, params, items))
    } else {
        let mut tree = RStarTree::with_params(store, params);
        for (rect, data) in items {
            tree.insert(rect, data)?;
        }
        Ok(tree)
    }
}

fn encode_record(ts: &TimeSeries, buf: &mut [u8]) {
    debug_assert_eq!(buf.len(), ts.len() * 8);
    for (chunk, v) in buf.chunks_exact_mut(8).zip(ts.values()) {
        chunk.copy_from_slice(&v.to_bits().to_le_bytes());
    }
}

fn decode_record(bytes: &[u8]) -> TimeSeries {
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8-byte chunk"))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tseries::CorpusKind;

    fn corpus(n: usize) -> Corpus {
        Corpus::generate(CorpusKind::SyntheticWalks, n, 64, 5)
    }

    #[test]
    fn build_and_fetch_roundtrip() {
        let c = corpus(50);
        let idx = SeqIndex::build(&c, IndexConfig::default()).unwrap();
        assert_eq!(idx.len(), 50);
        assert_eq!(idx.seq_len(), 64);
        assert!(idx.skipped().is_empty());
        idx.validate().unwrap();
        for i in [0usize, 17, 49] {
            let back = idx.fetch_series(i).unwrap();
            for (a, b) in back.values().iter().zip(c.series()[i].values()) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn empty_corpus_rejected() {
        let c = Corpus::default();
        assert!(SeqIndex::build(&c, IndexConfig::default()).is_none());
    }

    #[test]
    fn degenerate_sequences_skipped_but_stored() {
        let mut series = corpus(5).series().to_vec();
        series.push(TimeSeries::new(vec![3.0; 64]));
        let names = (0..6).map(|i| format!("s{i}")).collect();
        let c = Corpus::from_parts(names, series);
        let idx = SeqIndex::build(&c, IndexConfig::default()).unwrap();
        assert_eq!(idx.skipped(), &[5]);
        // The record is still fetchable.
        assert_eq!(idx.fetch_series(5).unwrap().values()[0], 3.0);
        // And the index only holds 5 points.
        let mut count = 0;
        idx.search(|_| true, |_, _| count += 1).unwrap();
        assert_eq!(count, 5);
    }

    #[test]
    fn counters_reset_and_track() {
        let idx = SeqIndex::build(&corpus(200), IndexConfig::default()).unwrap();
        idx.reset_counters().unwrap();
        assert_eq!(idx.counters(), AccessCounters::default());
        let stats = idx.search(|_| true, |_, _| {}).unwrap();
        let counters = idx.counters();
        assert_eq!(counters.node_reads, stats.nodes_accessed);
        let _ = idx.fetch(0).unwrap();
        assert!(idx.counters().record_page_reads >= 1);
        idx.reset_counters().unwrap();
        // Pool was cleared: refetching costs again.
        let _ = idx.fetch(0).unwrap();
        assert_eq!(idx.counters().record_page_reads, 1);
    }

    #[test]
    fn mem_and_paged_stores_agree() {
        let c = corpus(150);
        let a = SeqIndex::build(
            &c,
            IndexConfig {
                store: StoreKind::Mem,
                ..Default::default()
            },
        )
        .unwrap();
        let b = SeqIndex::build(&c, IndexConfig::default()).unwrap();
        let mut got_a = Vec::new();
        let mut got_b = Vec::new();
        a.search(|_| true, |_, d| got_a.push(d)).unwrap();
        b.search(|_| true, |_, d| got_b.push(d)).unwrap();
        got_a.sort_unstable();
        got_b.sort_unstable();
        assert_eq!(got_a, got_b);
    }

    #[test]
    fn insert_built_tree_matches_bulk_tree() {
        let c = corpus(120);
        let bulk = SeqIndex::build(&c, IndexConfig::default()).unwrap();
        let incr = SeqIndex::build(
            &c,
            IndexConfig {
                bulk: false,
                ..Default::default()
            },
        )
        .unwrap();
        incr.validate().unwrap();
        let mut a = Vec::new();
        let mut b = Vec::new();
        bulk.search(|_| true, |_, d| a.push(d)).unwrap();
        incr.search(|_| true, |_, d| b.push(d)).unwrap();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn prepare_query_validates() {
        let idx = SeqIndex::build(&corpus(10), IndexConfig::default()).unwrap();
        let short = TimeSeries::new(vec![1.0; 32]);
        assert!(matches!(
            idx.prepare_query(&short),
            Err(QueryError::LengthMismatch {
                query: 32,
                indexed: 64
            })
        ));
        let flat = TimeSeries::new(vec![2.0; 64]);
        assert!(matches!(
            idx.prepare_query(&flat),
            Err(QueryError::DegenerateQuery)
        ));
        assert!(idx.prepare_query(&corpus(10).series()[3]).is_ok());
    }
}

// ---------------------------------------------------------------------
// Persistence: save a built index to a directory, reopen it later.
// ---------------------------------------------------------------------

/// Device-wrapping hook for [`SeqIndex::open_with`]: receives the plain
/// tree and heap disks loaded from the directory and returns the devices
/// the index should actually run on — e.g. each wrapped in a
/// [`pagestore::FaultyDisk`] so recovery paths can be fault-injected.
pub type DeviceWrap =
    Box<dyn FnOnce(Arc<Disk>, Arc<Disk>) -> (Arc<dyn PageDevice>, Arc<dyn PageDevice>)>;

/// Maps a lock/WAL error onto `std::io::Error` for the `io::Result` open
/// paths. `Locked` keeps its typed payload as the error source (kind
/// `WouldBlock`), so callers can both match on the kind and downcast.
pub fn wal_to_io(e: simwal::WalError) -> std::io::Error {
    match e {
        simwal::WalError::Io(io) => io,
        e @ simwal::WalError::Locked { .. } => {
            std::io::Error::new(std::io::ErrorKind::WouldBlock, e)
        }
        e => std::io::Error::other(e),
    }
}

/// The `gen` counter and snapshot file names recorded in `dir/meta.txt`,
/// for picking the next generation's names and cleaning up the previous
/// one. `(0, [])` when the directory holds no snapshot yet; legacy images
/// without a `files` line used the fixed names.
fn meta_pointer(dir: &std::path::Path) -> (u64, Vec<String>) {
    let Ok(meta) = std::fs::read_to_string(dir.join("meta.txt")) else {
        return (0, Vec::new());
    };
    let mut gen = 0u64;
    let mut files = vec!["tree.pg".to_string(), "records.pg".to_string()];
    for line in meta.lines() {
        if let Some(v) = line.strip_prefix("gen ") {
            gen = v.trim().parse().unwrap_or(0);
        } else if let Some(v) = line.strip_prefix("files ") {
            files = v.split_whitespace().map(str::to_string).collect();
        }
    }
    (gen, files)
}

impl SeqIndex {
    /// Checkpoint epoch recorded in the snapshot this index was opened
    /// from (1 for fresh builds). [`simwal::Wal::open`] reconciles a
    /// paired log against this value.
    pub fn wal_epoch(&self) -> u64 {
        self.wal_epoch
    }

    /// Persists the index to `dir` (created if needed), keeping the
    /// epoch the index was opened with. See [`Self::save_with_epoch`].
    pub fn save(&self, dir: &std::path::Path) -> std::io::Result<()> {
        self.save_with_epoch(dir, self.wal_epoch)
    }

    /// Persists the index to `dir`, stamping the snapshot with
    /// `wal_epoch`: the tree's page image, the record heap's page image,
    /// and a small metadata file. Only paged indexes can be saved.
    ///
    /// The save is crash-atomic. Page images go to *fresh*
    /// generation-numbered file names (`tree-<gen>.pg`), then `meta.txt` —
    /// the only pointer to them — is replaced via temp-file + `rename`.
    /// A crash at any step leaves the previous `meta.txt` naming the
    /// previous, untouched images; the orphaned half-written generation
    /// is deleted by the next successful save over the directory.
    pub fn save_with_epoch(&self, dir: &std::path::Path, wal_epoch: u64) -> std::io::Result<()> {
        let TreeImpl::Paged(tree) = &self.tree else {
            return Err(std::io::Error::other(
                "only StoreKind::Paged indexes can be saved",
            ));
        };
        let (Some(tree_disk), Some(heap_disk)) = (&self.tree_disk, &self.heap_disk) else {
            return Err(std::io::Error::other(
                "indexes built on custom devices cannot be saved",
            ));
        };
        std::fs::create_dir_all(dir)?;
        self.heap_pool.flush_all().map_err(std::io::Error::other)?;
        let (old_gen, old_files) = meta_pointer(dir);
        let gen = old_gen + 1;
        let tree_file = format!("tree-{gen}.pg");
        let records_file = format!("records-{gen}.pg");
        tree_disk.save_to(&dir.join(&tree_file))?;
        heap_disk.save_to(&dir.join(&records_file))?;

        let mut meta = String::new();
        use std::fmt::Write as _;
        let params = tree.params();
        let _ = writeln!(meta, "simseq-index v1");
        let _ = writeln!(meta, "gen {gen}");
        let _ = writeln!(meta, "files {tree_file} {records_file}");
        let _ = writeln!(meta, "wal_epoch {wal_epoch}");
        let _ = writeln!(meta, "seq_len {}", self.seq_len);
        let _ = writeln!(meta, "len {}", self.len);
        let _ = writeln!(meta, "tree_root {}", tree.root_id().0);
        let _ = writeln!(meta, "tree_root_level {}", tree.root_level());
        let _ = writeln!(meta, "tree_len {}", tree.len());
        let _ = writeln!(
            meta,
            "params {} {} {}",
            params.max_entries, params.min_entries, params.reinsert_count
        );
        let _ = writeln!(
            meta,
            "skipped {}",
            self.skipped
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(",")
        );
        let _ = writeln!(
            meta,
            "deleted {}",
            self.deleted
                .iter()
                .enumerate()
                .filter(|(_, d)| **d)
                .map(|(i, _)| i.to_string())
                .collect::<Vec<_>>()
                .join(",")
        );
        let _ = writeln!(
            meta,
            "heap_pages {}",
            self.heap
                .page_ids()
                .iter()
                .map(|p| p.0.to_string())
                .collect::<Vec<_>>()
                .join(",")
        );
        simwal::atomic_write(&dir.join("meta.txt"), meta.as_bytes())?;
        // The old generation is no longer referenced; reclaim it.
        for old in old_files {
            if old != tree_file && old != records_file {
                let _ = std::fs::remove_file(dir.join(old));
            }
        }
        Ok(())
    }

    /// Reopens an index saved by [`Self::save`]. `heap_pool_pages` sizes
    /// the record buffer pool, as in [`IndexConfig`].
    ///
    /// Takes the directory's advisory `LOCK` for the lifetime of the
    /// returned index; a second open while the first is live fails with
    /// kind [`std::io::ErrorKind::WouldBlock`] wrapping a typed
    /// [`simwal::WalError::Locked`].
    pub fn open(dir: &std::path::Path, heap_pool_pages: usize) -> std::io::Result<Self> {
        Self::open_impl(dir, heap_pool_pages, None, true)
    }

    /// [`Self::open`] without taking the directory `LOCK`, for read-only
    /// consumers (verification oracles, live inspection) that must coexist
    /// with a serving process. Safe because snapshots are only ever
    /// replaced whole via temp-file + `rename`: this open keeps reading
    /// the image it mapped even if a checkpoint publishes a newer one.
    /// Nothing stops the caller from mutating — doing so would race the
    /// lock holder, so don't.
    pub fn open_read_only(dir: &std::path::Path, heap_pool_pages: usize) -> std::io::Result<Self> {
        Self::open_impl(dir, heap_pool_pages, None, false)
    }

    /// [`Self::open`] with caller-wrapped page devices — e.g. a
    /// [`pagestore::FaultyDisk`] armed over the loaded disks, so
    /// post-reopen reads and WAL replay can be fault-injected. An index
    /// opened this way cannot be [`Self::save`]d (the concrete disk
    /// handles are surrendered to the wrapper).
    pub fn open_with(
        dir: &std::path::Path,
        heap_pool_pages: usize,
        wrap: DeviceWrap,
    ) -> std::io::Result<Self> {
        Self::open_impl(dir, heap_pool_pages, Some(wrap), true)
    }

    fn open_impl(
        dir: &std::path::Path,
        heap_pool_pages: usize,
        wrap: Option<DeviceWrap>,
        take_lock: bool,
    ) -> std::io::Result<Self> {
        let lock = if take_lock {
            Some(simwal::DirLock::acquire(dir).map_err(wal_to_io)?)
        } else {
            None
        };
        let meta = std::fs::read_to_string(dir.join("meta.txt"))?;
        let mut fields = std::collections::HashMap::new();
        let mut lines = meta.lines();
        if lines.next() != Some("simseq-index v1") {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "not a simseq index directory",
            ));
        }
        for line in lines {
            if let Some((key, value)) = line.split_once(' ') {
                fields.insert(key.to_string(), value.to_string());
            } else {
                fields.insert(line.to_string(), String::new());
            }
        }
        let get = |k: &str| -> std::io::Result<&str> {
            fields.get(k).map(String::as_str).ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, format!("missing {k}"))
            })
        };
        let parse_usize = |k: &str| -> std::io::Result<usize> {
            get(k)?.trim().parse().map_err(|e| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, format!("bad {k}: {e}"))
            })
        };
        let parse_list = |k: &str| -> std::io::Result<Vec<u32>> {
            let raw = get(k)?.trim();
            if raw.is_empty() {
                return Ok(Vec::new());
            }
            raw.split(',')
                .map(|s| {
                    s.parse().map_err(|e| {
                        std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!("bad {k} entry: {e}"),
                        )
                    })
                })
                .collect()
        };

        let seq_len = parse_usize("seq_len")?;
        let len = parse_usize("len")?;
        let tree_root = parse_usize("tree_root")? as u32;
        let tree_root_level = parse_usize("tree_root_level")? as u32;
        let tree_len = parse_usize("tree_len")?;
        let params_raw: Vec<usize> = get("params")?
            .split_whitespace()
            .map(|s| s.parse().unwrap_or(0))
            .collect();
        if params_raw.len() != 3 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "bad params line",
            ));
        }
        let params = Params {
            max_entries: params_raw[0],
            min_entries: params_raw[1],
            reinsert_count: params_raw[2],
        };
        let skipped: Vec<usize> = parse_list("skipped")?
            .into_iter()
            .map(|v| v as usize)
            .collect();
        let mut deleted = vec![false; len];
        // Older images may lack the deleted line; treat absence as empty.
        if fields.contains_key("deleted") {
            for idx in parse_list("deleted")? {
                if (idx as usize) < len {
                    deleted[idx as usize] = true;
                }
            }
        }
        let heap_pages: Vec<pagestore::PageId> = parse_list("heap_pages")?
            .into_iter()
            .map(pagestore::PageId)
            .collect();
        // Generation-stamped snapshot names; legacy images used the
        // fixed pair.
        let file_names: Vec<&str> = fields
            .get("files")
            .map(|v| v.split_whitespace().collect())
            .unwrap_or_else(|| vec!["tree.pg", "records.pg"]);
        let [tree_file, records_file] = file_names[..] else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "bad files line",
            ));
        };
        let wal_epoch = match fields.get("wal_epoch") {
            Some(v) => v.trim().parse().map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad wal_epoch: {e}"),
                )
            })?,
            None => 1,
        };

        let tree_disk = Arc::new(Disk::load_from(&dir.join(tree_file))?);
        let heap_disk = Arc::new(Disk::load_from(&dir.join(records_file))?);
        // Plain opens keep the concrete handles (so `save` works); a
        // device-wrapping open surrenders them to the wrapper.
        let (tree_store, heap_pool, tree_handle, heap_handle) = match wrap {
            None => (
                PagedStore::new(Arc::clone(&tree_disk)),
                Arc::new(BufferPool::new(
                    Arc::clone(&heap_disk),
                    heap_pool_pages.max(1),
                )),
                Some(tree_disk),
                Some(heap_disk),
            ),
            Some(wrap) => {
                let (tree_dev, heap_dev) = wrap(tree_disk, heap_disk);
                (
                    PagedStore::new_dyn(tree_dev),
                    Arc::new(BufferPool::new_dyn(heap_dev, heap_pool_pages.max(1))),
                    None,
                    None,
                )
            }
        };
        let heap = DynHeapFile::reopen(Arc::clone(&heap_pool), seq_len * 8, len, heap_pages);
        let rids = (0..len).map(|i| heap.rid_of(i)).collect();
        let tree = RStarTree::open(
            tree_store,
            rstartree::NodeId(tree_root),
            tree_root_level,
            tree_len,
            params,
        );

        Ok(Self {
            tree: TreeImpl::Paged(tree),
            heap,
            heap_pool,
            tree_disk: tree_handle,
            heap_disk: heap_handle,
            rids,
            seq_len,
            len,
            skipped,
            deleted,
            leaf_capacity: params.max_entries,
            fetches: std::sync::atomic::AtomicU64::new(0),
            wal_epoch,
            _dir_lock: lock,
        })
    }
}

#[cfg(test)]
mod maintenance_tests {
    use super::*;
    use crate::engine::{mtindex, seqscan};
    use crate::query::{FilterPolicy, RangeSpec};
    use crate::transform::Family;
    use tseries::CorpusKind;

    #[test]
    fn incremental_index_matches_fresh_build() {
        let full = Corpus::generate(CorpusKind::SyntheticWalks, 120, 64, 61);
        // Build from the first 80, then insert the remaining 40 live.
        let mut index = SeqIndex::build(&full.truncated(80), IndexConfig::default()).unwrap();
        for ts in &full.series()[80..] {
            index.insert_series(ts).unwrap();
        }
        assert_eq!(index.len(), 120);
        index.validate().unwrap();

        let fresh = SeqIndex::build(&full, IndexConfig::default()).unwrap();
        let family = Family::moving_averages(3..=8, 64);
        let spec = RangeSpec::correlation(0.94).with_policy(FilterPolicy::Safe);
        for qi in [0usize, 79, 119] {
            let q = &full.series()[qi];
            let a = mtindex::range_query(&index, q, &family, &spec).unwrap();
            let b = mtindex::range_query(&fresh, q, &family, &spec).unwrap();
            assert_eq!(a.sorted_pairs(), b.sorted_pairs(), "query {qi}");
        }
    }

    #[test]
    fn deletions_remove_from_all_engines() {
        let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 90, 64, 67);
        let mut index = SeqIndex::build(&corpus, IndexConfig::default()).unwrap();
        for victim in [5usize, 30, 31, 89] {
            assert!(index.delete_series(victim).unwrap());
            assert!(
                !index.delete_series(victim).unwrap(),
                "double delete returns false"
            );
        }
        assert_eq!(index.deleted_count(), 4);
        index.validate().unwrap();

        let family = Family::moving_averages(2..=6, 64);
        let spec = RangeSpec::correlation(0.9).with_policy(FilterPolicy::Safe);
        let q = &corpus.series()[0];
        let mt = mtindex::range_query(&index, q, &family, &spec).unwrap();
        let scan = seqscan::range_query(&index, q, &family, &spec).unwrap();
        assert_eq!(mt.sorted_pairs(), scan.sorted_pairs());
        for victim in [5usize, 30, 31, 89] {
            assert!(
                mt.matches.iter().all(|m| m.seq != victim),
                "deleted {victim} resurfaced"
            );
        }
    }

    #[test]
    fn deleted_set_survives_persistence() {
        let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 40, 64, 71);
        let mut index = SeqIndex::build(&corpus, IndexConfig::default()).unwrap();
        index.delete_series(7).unwrap();
        index.delete_series(12).unwrap();
        let dir = std::env::temp_dir()
            .join("simquery_index_persistence")
            .join("tombstones");
        std::fs::create_dir_all(&dir).unwrap();
        index.save(&dir).unwrap();
        let reopened = SeqIndex::open(&dir, 16).unwrap();
        assert_eq!(reopened.deleted_count(), 2);
        let family = Family::moving_averages(1..=1, 64);
        let spec = RangeSpec::euclidean(1e-6).with_policy(FilterPolicy::Safe);
        // Deleted sequence no longer matches even itself.
        let r = mtindex::range_query(&reopened, &corpus.series()[7], &family, &spec).unwrap();
        assert!(r.matches.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn insert_wrong_length_rejected() {
        let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 10, 64, 73);
        let mut index = SeqIndex::build(&corpus, IndexConfig::default()).unwrap();
        let short = TimeSeries::new(vec![1.0; 32]);
        assert!(matches!(
            index.insert_series(&short),
            Err(QueryError::LengthMismatch {
                query: 32,
                indexed: 64
            })
        ));
        // Degenerate inserts are stored but skipped.
        let flat = TimeSeries::new(vec![2.0; 64]);
        let ord = index.insert_series(&flat).unwrap();
        assert!(index.skipped().contains(&ord));
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;
    use crate::engine::mtindex;
    use crate::query::{FilterPolicy, RangeSpec};
    use crate::transform::Family;
    use tseries::CorpusKind;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join("simquery_index_persistence")
            .join(name);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn save_open_roundtrip_preserves_queries() {
        let corpus = Corpus::generate(CorpusKind::StockCloses, 150, 128, 21);
        let index = SeqIndex::build(&corpus, IndexConfig::default()).unwrap();
        let family = Family::moving_averages(5..=12, 128);
        let spec = RangeSpec::correlation(0.96).with_policy(FilterPolicy::Safe);
        let q = &corpus.series()[33];
        let want = mtindex::range_query(&index, q, &family, &spec).unwrap();

        let dir = tmpdir("roundtrip");
        index.save(&dir).unwrap();
        let reopened = SeqIndex::open(&dir, 64).unwrap();
        reopened.validate().unwrap();
        assert_eq!(reopened.len(), 150);
        assert_eq!(reopened.seq_len(), 128);
        let got = mtindex::range_query(&reopened, q, &family, &spec).unwrap();
        assert_eq!(want.sorted_pairs(), got.sorted_pairs());
        // Records survive bit-exactly.
        for i in [0usize, 77, 149] {
            let a = index.fetch_series(i).unwrap();
            let b = reopened.fetch_series(i).unwrap();
            assert_eq!(a.values(), b.values());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mem_index_refuses_to_save() {
        let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 10, 64, 1);
        let index = SeqIndex::build(
            &corpus,
            IndexConfig {
                store: StoreKind::Mem,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(index.save(&tmpdir("mem")).is_err());
    }

    #[test]
    fn open_rejects_garbage_dir() {
        let dir = tmpdir("garbage");
        std::fs::write(dir.join("meta.txt"), "something else").unwrap();
        assert!(SeqIndex::open(&dir, 8).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn skipped_ordinals_survive() {
        let mut series = Corpus::generate(CorpusKind::SyntheticWalks, 5, 64, 2)
            .series()
            .to_vec();
        series.insert(2, tseries::TimeSeries::new(vec![1.0; 64]));
        let names = (0..6).map(|i| format!("s{i}")).collect();
        let corpus = Corpus::from_parts(names, series);
        let index = SeqIndex::build(&corpus, IndexConfig::default()).unwrap();
        assert_eq!(index.skipped(), &[2]);
        let dir = tmpdir("skipped");
        index.save(&dir).unwrap();
        let reopened = SeqIndex::open(&dir, 8).unwrap();
        assert_eq!(reopened.skipped(), &[2]);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[cfg(all(test, feature = "proptests"))]
mod open_robustness {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Arbitrary bytes in meta.txt must produce an error, never a panic.
        #[test]
        fn garbage_meta_is_an_error(garbage in ".{0,400}") {
            let dir = std::env::temp_dir()
                .join("simquery_meta_fuzz")
                .join(format!("{:x}", garbage.len() * 31 + garbage.bytes().map(u64::from).sum::<u64>() as usize));
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(dir.join("meta.txt"), &garbage).unwrap();
            // tree.pg / records.pg absent or garbage — open must just Err.
            std::fs::write(dir.join("tree.pg"), b"junk").ok();
            std::fs::write(dir.join("records.pg"), b"junk").ok();
            prop_assert!(SeqIndex::open(&dir, 8).is_err());
            std::fs::remove_dir_all(&dir).ok();
        }

        /// A valid header with corrupted numeric fields errors cleanly too.
        #[test]
        fn corrupted_fields_are_errors(
            seq_len in ".{0,8}",
            root in ".{0,8}",
        ) {
            let dir = std::env::temp_dir().join("simquery_meta_fuzz2").join(format!(
                "{:x}",
                seq_len.len() * 131 + root.len()
            ));
            std::fs::create_dir_all(&dir).unwrap();
            let meta = format!(
                "simseq-index v1\nseq_len {seq_len}\nlen 1\ntree_root {root}\n\
                 tree_root_level 0\ntree_len 1\nparams 8 3 2\nskipped \nheap_pages 0\n"
            );
            std::fs::write(dir.join("meta.txt"), meta).unwrap();
            std::fs::write(dir.join("tree.pg"), b"junk").ok();
            std::fs::write(dir.join("records.pg"), b"junk").ok();
            // Either field parsing fails or the page images are rejected —
            // never a panic.
            prop_assert!(SeqIndex::open(&dir, 8).is_err());
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
