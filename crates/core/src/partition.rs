//! Grouping transformations into rectangles (§4.3, §5.2).
//!
//! One big MBR minimises index traversals but can cover a huge region
//! (especially when the set has several clusters — Fig. 9's bumps); many
//! small MBRs filter sharply but traverse repeatedly. The strategies here
//! reproduce the paper's sweep ("we equally partitioned subsequent
//! transformations") plus the cluster-aware fix it recommends.

use crate::cluster::{agglomerative, kmeans};
use crate::feature::DIMS;
use crate::tmbr::TransformMbr;
use crate::transform::Family;

/// How to split a family into transformation rectangles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Everything in one rectangle (the §5.1 configuration).
    Single,
    /// Consecutive runs of `per_mbr` transformations per rectangle — the
    /// §5.2 sweep variable ("# of transformations per MBR").
    EqualWidth {
        /// Transformations per rectangle.
        per_mbr: usize,
    },
    /// Deterministic k-means over the `(a, b)` points.
    KMeans {
        /// Number of clusters.
        k: usize,
    },
    /// Agglomerative complete-linkage clustering over the `(a, b)` points.
    Agglomerative {
        /// Number of clusters.
        k: usize,
    },
}

/// Splits `family` into MBRs per the strategy. Member index lists are
/// always sorted ascending (binary search over ordered families relies on
/// this).
pub fn partition(family: &Family, strategy: &PartitionStrategy) -> Vec<TransformMbr> {
    match strategy {
        PartitionStrategy::Single => vec![TransformMbr::of_family(family)],
        PartitionStrategy::EqualWidth { per_mbr } => {
            assert!(*per_mbr >= 1, "per_mbr must be positive");
            (0..family.len())
                .collect::<Vec<_>>()
                .chunks(*per_mbr)
                .map(|chunk| TransformMbr::of(family, chunk.to_vec()))
                .collect()
        }
        PartitionStrategy::KMeans { k } => {
            groups_to_mbrs(family, kmeans(&transform_points(family), *k))
        }
        PartitionStrategy::Agglomerative { k } => {
            groups_to_mbrs(family, agglomerative(&transform_points(family), *k))
        }
    }
}

/// Each transformation as a point in the 2·DIMS-dimensional `(a, b)` space
/// of §4.1.
fn transform_points(family: &Family) -> Vec<Vec<f64>> {
    family
        .transforms()
        .iter()
        .map(|t| {
            let mut p = Vec::with_capacity(2 * DIMS);
            p.extend_from_slice(t.feat_a());
            p.extend_from_slice(t.feat_b());
            p
        })
        .collect()
}

fn groups_to_mbrs(family: &Family, assign: Vec<usize>) -> Vec<TransformMbr> {
    let k = assign.iter().max().map_or(0, |m| m + 1);
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, c) in assign.iter().enumerate() {
        groups[*c].push(i);
    }
    groups
        .into_iter()
        .filter(|g| !g.is_empty())
        .map(|g| TransformMbr::of(family, g))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_covers_all() {
        let fam = Family::moving_averages(6..=29, 64);
        let mbrs = partition(&fam, &PartitionStrategy::Single);
        assert_eq!(mbrs.len(), 1);
        assert_eq!(mbrs[0].nt(), 24);
    }

    #[test]
    fn equal_width_partitions_exactly() {
        let fam = Family::moving_averages(6..=29, 64); // 24 transforms
        for per in [1usize, 4, 6, 8, 24, 30] {
            let mbrs = partition(&fam, &PartitionStrategy::EqualWidth { per_mbr: per });
            assert_eq!(mbrs.len(), 24usize.div_ceil(per));
            let mut all: Vec<usize> = mbrs.iter().flat_map(|m| m.members.clone()).collect();
            all.sort_unstable();
            assert_eq!(all, (0..24).collect::<Vec<_>>());
            // All but the last group hold exactly `per`.
            for m in &mbrs[..mbrs.len() - 1] {
                assert_eq!(m.nt(), per.min(24));
            }
        }
    }

    #[test]
    fn clustering_splits_inverted_family() {
        // mv6..29 plus their inversions form two clusters in (a, b) space
        // (inversion flips magnitudes' sign structure via the +π angle
        // offsets). Cluster-aware partitioning must never mix them.
        let fam = Family::moving_averages(6..=29, 64).with_inverted();
        for strategy in [
            PartitionStrategy::KMeans { k: 2 },
            PartitionStrategy::Agglomerative { k: 2 },
        ] {
            let mbrs = partition(&fam, &strategy);
            assert_eq!(mbrs.len(), 2, "{strategy:?}");
            for m in &mbrs {
                let inverted: Vec<bool> = m.members.iter().map(|&i| i >= 24).collect();
                assert!(
                    inverted.iter().all(|b| *b) || inverted.iter().all(|b| !*b),
                    "{strategy:?} mixed clusters: {:?}",
                    m.members
                );
            }
        }
    }

    #[test]
    fn members_are_sorted() {
        let fam = Family::moving_averages(1..=16, 64).with_inverted();
        for strategy in [
            PartitionStrategy::EqualWidth { per_mbr: 5 },
            PartitionStrategy::KMeans { k: 3 },
            PartitionStrategy::Agglomerative { k: 3 },
        ] {
            for m in partition(&fam, &strategy) {
                assert!(m.members.windows(2).all(|w| w[0] < w[1]), "{strategy:?}");
            }
        }
    }

    #[test]
    fn smaller_rectangles_have_smaller_extent() {
        let fam = Family::moving_averages(6..=29, 64);
        let one = partition(&fam, &PartitionStrategy::Single);
        let six = partition(&fam, &PartitionStrategy::EqualWidth { per_mbr: 6 });
        let max_small = six.iter().map(TransformMbr::extent).fold(0.0, f64::max);
        assert!(max_small <= one[0].extent());
    }
}

/// A cost-annotated optimizer report: candidate partitioning names with
/// their estimated Eq. 20 costs.
pub type OptimizerReport = Vec<(String, f64)>;

/// §4.3's cost-driven partitioning: "estimate the cost for any possible set
/// of MBRs and choose the set that gives the minimum cost."
///
/// Enumerates a candidate set of partitionings (one rectangle, equal-width
/// runs at several granularities, and cluster-based groupings), probes each
/// with filter-only traversals over the given sample queries, evaluates
/// Eq. 20, and returns the cheapest. The returned report lists every
/// candidate with its estimated cost, for inspection and for the ablation
/// bench.
pub fn optimize(
    index: &crate::index::SeqIndex,
    family: &Family,
    spec: &crate::query::RangeSpec,
    sample_queries: &[tseries::TimeSeries],
    model: &crate::cost::CostModel,
) -> Result<(Vec<TransformMbr>, OptimizerReport), crate::report::QueryError> {
    assert!(
        !sample_queries.is_empty(),
        "optimizer needs at least one sample query"
    );
    let t = family.len();
    let mut candidates: Vec<(String, PartitionStrategy)> =
        vec![("single".into(), PartitionStrategy::Single)];
    for per in [2usize, 3, 4, 6, 8, 12, 16] {
        if per < t {
            candidates.push((
                format!("equal {per}/MBR"),
                PartitionStrategy::EqualWidth { per_mbr: per },
            ));
        }
    }
    for k in 2..=4usize {
        if k < t {
            candidates.push((format!("k-means k={k}"), PartitionStrategy::KMeans { k }));
        }
    }

    let mut report = Vec::with_capacity(candidates.len());
    let mut best: Option<(f64, Vec<TransformMbr>)> = None;
    for (name, strategy) in candidates {
        let mbrs = partition(family, &strategy);
        let mut cost = 0.0;
        for q in sample_queries {
            let traversals = crate::engine::mtindex::probe(index, q, family, spec, &mbrs)?;
            cost += model.cost(&traversals, index.leaf_capacity());
        }
        cost /= sample_queries.len() as f64;
        report.push((name, cost));
        if best.as_ref().is_none_or(|(c, _)| cost < *c) {
            best = Some((cost, mbrs));
        }
    }
    let (_, mbrs) = best.expect("at least one candidate");
    Ok((mbrs, report))
}

#[cfg(test)]
mod optimize_tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::index::{IndexConfig, SeqIndex};
    use crate::query::RangeSpec;
    use tseries::{Corpus, CorpusKind};

    #[test]
    fn optimizer_picks_a_cheap_partitioning() {
        let corpus = Corpus::generate(CorpusKind::StockCloses, 300, 128, 9);
        let index = SeqIndex::build(&corpus, IndexConfig::default()).unwrap();
        let family = Family::moving_averages(6..=29, 128);
        let spec = RangeSpec::correlation(0.96);
        let samples: Vec<_> = (0..3).map(|i| corpus.series()[i * 90].clone()).collect();
        let (mbrs, report) =
            optimize(&index, &family, &spec, &samples, &CostModel::default()).unwrap();
        assert!(!mbrs.is_empty());
        assert!(report.len() >= 5);
        // The chosen plan's cost equals the report's minimum.
        let min = report.iter().map(|(_, c)| *c).fold(f64::INFINITY, f64::min);
        let chosen_cost = report
            .iter()
            .find(|(_, c)| (*c - min).abs() < 1e-9)
            .map(|(_, c)| *c)
            .unwrap();
        assert!((chosen_cost - min).abs() < 1e-9);
        // Every transformation is covered exactly once.
        let mut members: Vec<usize> = mbrs.iter().flat_map(|m| m.members.clone()).collect();
        members.sort_unstable();
        assert_eq!(members, (0..family.len()).collect::<Vec<_>>());
    }

    #[test]
    fn optimizer_avoids_straddling_for_clustered_families() {
        // For a ±family the straddling single rectangle should not win:
        // its leaf term (DA_leaf · NT) dominates Eq. 20.
        let corpus = Corpus::generate(CorpusKind::StockCloses, 300, 128, 10);
        let index = SeqIndex::build(&corpus, IndexConfig::default()).unwrap();
        let family = Family::moving_averages(6..=29, 128).with_inverted();
        let spec = RangeSpec::correlation(0.96);
        let samples = vec![corpus.series()[42].clone()];
        let (_, report) =
            optimize(&index, &family, &spec, &samples, &CostModel::default()).unwrap();
        let single = report.iter().find(|(n, _)| n == "single").unwrap().1;
        let best = report.iter().map(|(_, c)| *c).fold(f64::INFINITY, f64::min);
        assert!(
            best <= single,
            "single-rectangle must not beat the best: {best} vs {single}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn optimizer_rejects_empty_samples() {
        let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 10, 64, 1);
        let index = SeqIndex::build(&corpus, IndexConfig::default()).unwrap();
        let family = Family::moving_averages(1..=4, 64);
        let _ = optimize(
            &index,
            &family,
            &RangeSpec::correlation(0.96),
            &[],
            &CostModel::default(),
        );
    }
}
