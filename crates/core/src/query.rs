//! Query specifications and the index-filter geometry.
//!
//! A range query carries a similarity threshold — either a Euclidean ε or a
//! cross-correlation ρ converted through Eq. 9 — and a [`FilterPolicy`]
//! deciding how search rectangles are built:
//!
//! * **`Paper`** — the paper's setup: a window of half-width `ε/√2` on every
//!   DFT dimension (the √2 comes from the conjugate-symmetry bound, §2.1).
//!   On *angle* dimensions this window is a heuristic: phase differences do
//!   not Euclidean-bound the complex-domain distance when magnitudes are
//!   small. We improve on the original by making the angle comparison
//!   **circular** (wrap-aware), and the experiments verify empirically that
//!   recall stays 100 % on the paper's workloads.
//! * **`Safe`** — provably lossless: magnitude dimensions keep the `ε/√2`
//!   window (a true lower bound via `|r_x − r_q| ≤ |X_f − Q_f|` and the
//!   symmetry factor), angle dimensions are unconstrained. Property tests
//!   assert `MT(Safe) ≡ ST(Safe) ≡ seqscan` exactly.
//!
//! Mean/std dimensions (0, 1) are never constrained by Query 1 — the
//! distance is over *normal forms* — matching §5's setup where those
//! dimensions serve other query types.

use crate::feature::{FRect, FeatureVec, ANGLE_DIMS, DIMS, MAG_DIMS};
use crate::tmbr::TransformMbr;
use crate::transform::Transform;
use tseries::distance_threshold_for_correlation;

/// Which side(s) of the comparison a transformation applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum QueryMode {
    /// Query 1 verbatim: `D(t(x), t(q)) < ε` — both sides transformed.
    #[default]
    Symmetric,
    /// `D(t(x), q) < ε` — the data side only. Required for alignment
    /// semantics (time shifts, Example 1.2) and hedging (inversion), where
    /// symmetric application is an isometry and changes nothing; also the
    /// literal reading of Algorithm 1's step 2 ("a search rectangle of
    /// width ε around q").
    DataOnly,
}

/// How index-filter rectangles treat the heuristic angle dimensions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FilterPolicy {
    /// The paper's ±ε/√2 window on all DFT dimensions (wrap-aware on
    /// angles). Fast; guaranteed only on magnitude dimensions.
    #[default]
    Paper,
    /// Angle dimensions unconstrained — provably no false dismissals.
    Safe,
    /// This library's extension: a *sound* angle filter. Per coefficient,
    /// `|A−B|² = (r_A−r_B)² + 4·r_A·r_B·sin²(Δθ/2)`, so
    /// `|A−B| ≥ 2·√(r_A·r_B)·|sin(Δθ/2)|`; with the magnitude lower bounds
    /// taken from the rectangles themselves, an angular gap δ prunes
    /// whenever `2·√(r_min·r'_min)·sin(δ/2) > ε/√2`. Never dismisses a
    /// qualifying sequence (unlike `Paper`), prunes wherever magnitudes
    /// are large (unlike `Safe`).
    Adaptive,
}

/// The similarity threshold of a range query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Threshold {
    /// Euclidean distance over transformed normal forms.
    Euclidean(f64),
    /// Cross-correlation over transformed normal forms; converted to a
    /// Euclidean ε through Eq. 9 per sequence length.
    Correlation(f64),
}

/// A range-query specification ("… within distance ε", Query 1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RangeSpec {
    /// The similarity threshold.
    pub threshold: Threshold,
    /// The filter policy.
    pub policy: FilterPolicy,
    /// Which side(s) the transformations apply to.
    pub mode: QueryMode,
}

impl RangeSpec {
    /// A Euclidean threshold with the default ([`FilterPolicy::Paper`])
    /// policy.
    pub fn euclidean(eps: f64) -> Self {
        assert!(
            eps >= 0.0 && eps.is_finite(),
            "threshold must be a finite non-negative number"
        );
        Self {
            threshold: Threshold::Euclidean(eps),
            policy: FilterPolicy::default(),
            mode: QueryMode::default(),
        }
    }

    /// A correlation threshold (the experiments fix ρ = 0.96).
    ///
    /// ```
    /// use simquery::query::RangeSpec;
    /// // Eq. 9 at n = 128: ε² = 2(127 − 0.96·128) = 8.24.
    /// let spec = RangeSpec::correlation(0.96);
    /// assert!((spec.epsilon(128).powi(2) - 8.24).abs() < 1e-9);
    /// ```
    pub fn correlation(rho: f64) -> Self {
        assert!(
            (-1.0..=1.0).contains(&rho),
            "correlation must lie in [−1, 1]"
        );
        Self {
            threshold: Threshold::Correlation(rho),
            policy: FilterPolicy::default(),
            mode: QueryMode::default(),
        }
    }

    /// Overrides the filter policy.
    pub fn with_policy(mut self, policy: FilterPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the query mode.
    pub fn with_mode(mut self, mode: QueryMode) -> Self {
        self.mode = mode;
        self
    }

    /// Resolves the Euclidean ε for sequences of length `n`.
    pub fn epsilon(&self, n: usize) -> f64 {
        match self.threshold {
            Threshold::Euclidean(e) => e,
            Threshold::Correlation(rho) => distance_threshold_for_correlation(n, rho),
        }
    }
}

/// Why a `rho`/`eps` argument pair failed to parse — the one validation
/// of the Eq. 9 bridge shared by the CLI (`--rho`/`--eps`) and the wire
/// protocol (`rho=`/`eps=`). Consumers render it with `Display` (possibly
/// prefixed with their own flag spelling).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ThresholdParseError {
    /// Both a correlation and a Euclidean threshold were given.
    Both,
    /// The correlation did not parse as a number.
    BadRho(String),
    /// The correlation lies outside `[-1, 1]` (or is not finite).
    RhoRange,
    /// The distance did not parse as a number.
    BadEps(String),
    /// The distance is negative or not finite.
    EpsRange,
}

impl std::fmt::Display for ThresholdParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Both => write!(f, "give a correlation or a distance threshold, not both"),
            Self::BadRho(raw) => write!(f, "bad correlation threshold `{raw}`"),
            Self::RhoRange => write!(f, "correlation threshold must lie in [-1, 1]"),
            Self::BadEps(raw) => write!(f, "bad distance threshold `{raw}`"),
            Self::EpsRange => write!(f, "distance threshold must be a non-negative number"),
        }
    }
}

impl std::error::Error for ThresholdParseError {}

impl Threshold {
    /// Parses the raw `rho`/`eps` argument pair every front end accepts:
    /// at most one may be given; ρ must lie in `[-1, 1]` (Eq. 9's domain),
    /// ε must be a finite non-negative distance. `Ok(None)` when neither
    /// is present (the caller applies its default).
    pub fn parse_args(
        rho: Option<&str>,
        eps: Option<&str>,
    ) -> Result<Option<Threshold>, ThresholdParseError> {
        match (rho, eps) {
            (Some(_), Some(_)) => Err(ThresholdParseError::Both),
            (Some(raw), None) => {
                let rho: f64 = raw
                    .parse()
                    .map_err(|_| ThresholdParseError::BadRho(raw.to_string()))?;
                if !rho.is_finite() || !(-1.0..=1.0).contains(&rho) {
                    return Err(ThresholdParseError::RhoRange);
                }
                Ok(Some(Threshold::Correlation(rho)))
            }
            (None, Some(raw)) => {
                let eps: f64 = raw
                    .parse()
                    .map_err(|_| ThresholdParseError::BadEps(raw.to_string()))?;
                if !eps.is_finite() || eps < 0.0 {
                    return Err(ThresholdParseError::EpsRange);
                }
                Ok(Some(Threshold::Euclidean(eps)))
            }
            (None, None) => Ok(None),
        }
    }
}

impl RangeSpec {
    /// A spec from an already-validated [`Threshold`] with default policy
    /// and mode (the constructor [`Threshold::parse_args`] feeds).
    pub fn from_threshold(threshold: Threshold) -> Self {
        Self {
            threshold,
            policy: FilterPolicy::default(),
            mode: QueryMode::default(),
        }
    }
}

/// Per-dimension half-widths of the search window for threshold `eps`.
pub fn expansion(eps: f64, policy: FilterPolicy) -> [f64; DIMS] {
    let w = eps / std::f64::consts::SQRT_2; // conjugate-symmetry factor
    let mut e = [f64::INFINITY; DIMS]; // dims 0,1 unconstrained
    for &d in &MAG_DIMS {
        e[d] = w;
    }
    for &d in &ANGLE_DIMS {
        e[d] = match policy {
            FilterPolicy::Paper => w,
            // Adaptive handles angles in `Filter::hit`, not by window.
            FilterPolicy::Safe | FilterPolicy::Adaptive => f64::INFINITY,
        };
    }
    e
}

/// The complete index filter for one query: policy, threshold-derived
/// windows, and the adaptive angle test.
#[derive(Clone, Copy, Debug)]
pub struct Filter {
    expand: [f64; DIMS],
    policy: FilterPolicy,
    /// `ε/√2` — the per-coefficient bound.
    w: f64,
}

impl Filter {
    /// Builds the filter for threshold `eps`.
    pub fn new(eps: f64, policy: FilterPolicy) -> Self {
        Self {
            expand: expansion(eps, policy),
            policy,
            w: eps / std::f64::consts::SQRT_2,
        }
    }

    /// True when a (transformed) data rectangle `a` may contain a point
    /// within ε of some point of the (transformed) query region `b`.
    pub fn hit(&self, a: &FRect, b: &FRect) -> bool {
        if !within(a, b, &self.expand) {
            return false;
        }
        if self.policy != FilterPolicy::Adaptive {
            return true;
        }
        // Adaptive angle test per retained coefficient.
        for (&md, &ad) in MAG_DIMS.iter().zip(&ANGLE_DIMS) {
            let delta = circular_gap(a.lo[ad], a.hi[ad], b.lo[ad], b.hi[ad]);
            if delta <= 0.0 {
                continue;
            }
            let r_a = a.lo[md].max(0.0);
            let r_b = b.lo[md].max(0.0);
            let chord = 2.0 * (r_a * r_b).sqrt() * (delta / 2.0).sin();
            if chord > self.w {
                return false;
            }
        }
        true
    }
}

/// Minimal angular distance between two intervals on the 2π circle
/// (0 when they overlap), clamped to `[0, π]`.
pub fn circular_gap(alo: f64, ahi: f64, blo: f64, bhi: f64) -> f64 {
    const TAU: f64 = 2.0 * std::f64::consts::PI;
    debug_assert!(alo <= ahi && blo <= bhi);
    if !(alo.is_finite() && ahi.is_finite() && blo.is_finite() && bhi.is_finite()) {
        return 0.0;
    }
    if (ahi - alo) + (bhi - blo) >= TAU {
        return 0.0;
    }
    let k_min = ((alo - bhi) / TAU).floor() as i64 - 1;
    let k_max = ((ahi - blo) / TAU).ceil() as i64 + 1;
    let mut best = f64::INFINITY;
    for k in k_min..=k_max {
        let s = k as f64 * TAU;
        // Gap between [alo, ahi] and the shifted [blo+s, bhi+s].
        let gap = if alo > bhi + s {
            alo - (bhi + s)
        } else if blo + s > ahi {
            (blo + s) - ahi
        } else {
            0.0
        };
        best = best.min(gap);
    }
    best.min(std::f64::consts::PI)
}

/// True when rectangle `a` comes within `expand` of rectangle `b` in every
/// dimension — i.e. `a` intersects `b` grown by `expand`. Angle dimensions
/// compare circularly (period 2π).
pub fn within(a: &FRect, b: &FRect, expand: &[f64; DIMS]) -> bool {
    for (i, &e) in expand.iter().enumerate() {
        if e.is_infinite() {
            continue;
        }
        let circular = ANGLE_DIMS.contains(&i);
        if circular {
            if !circular_overlap(a.lo[i], a.hi[i], b.lo[i] - e, b.hi[i] + e) {
                return false;
            }
        } else if !(a.lo[i] <= b.hi[i] + e && b.lo[i] - e <= a.hi[i]) {
            return false;
        }
    }
    true
}

/// Interval overlap on the circle of circumference 2π.
pub fn circular_overlap(alo: f64, ahi: f64, blo: f64, bhi: f64) -> bool {
    const TAU: f64 = 2.0 * std::f64::consts::PI;
    debug_assert!(alo <= ahi && blo <= bhi);
    if !(alo.is_finite() && ahi.is_finite() && blo.is_finite() && bhi.is_finite()) {
        return true;
    }
    if (ahi - alo) + (bhi - blo) >= TAU {
        return true;
    }
    let k_min = ((alo - bhi) / TAU).floor() as i64;
    let k_max = ((ahi - blo) / TAU).ceil() as i64;
    (k_min..=k_max).any(|k| {
        let s = k as f64 * TAU;
        alo <= bhi + s && blo + s <= ahi
    })
}

/// The MT-index query region: the MBR of `{r(q)}` for the transformation
/// rectangle `r` under [`QueryMode::Symmetric`], or `q` itself under
/// [`QueryMode::DataOnly`] (filters then test
/// `within(transformed-data-rect, region, expansion)`).
pub fn mt_query_region(mbr: &TransformMbr, q: &FeatureVec, mode: QueryMode) -> FRect {
    match mode {
        QueryMode::Symmetric => mbr.apply_to_point(q),
        QueryMode::DataOnly => rstartree::Rect::point(*q),
    }
}

/// The ST-index query region for a single transformation: the (degenerate)
/// rectangle at `t(q)` — or at `q` for data-only queries.
pub fn st_query_region(t: &Transform, q: &FeatureVec, mode: QueryMode) -> FRect {
    match mode {
        QueryMode::Symmetric => rstartree::Rect::point(t.apply_point(q)),
        QueryMode::DataOnly => rstartree::Rect::point(*q),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstartree::Rect;

    #[test]
    fn threshold_resolution() {
        let spec = RangeSpec::euclidean(2.5);
        assert_eq!(spec.epsilon(128), 2.5);
        let spec = RangeSpec::correlation(0.96);
        assert!((spec.epsilon(128).powi(2) - 8.24).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "correlation")]
    fn bad_correlation_rejected() {
        RangeSpec::correlation(1.5);
    }

    #[test]
    fn threshold_args_parse_and_validate() {
        use ThresholdParseError as E;
        assert_eq!(Threshold::parse_args(None, None), Ok(None));
        assert_eq!(
            Threshold::parse_args(Some("0.9"), None),
            Ok(Some(Threshold::Correlation(0.9)))
        );
        assert_eq!(
            Threshold::parse_args(None, Some("2.5")),
            Ok(Some(Threshold::Euclidean(2.5)))
        );
        assert_eq!(Threshold::parse_args(Some("0.9"), Some("1")), Err(E::Both));
        assert_eq!(
            Threshold::parse_args(Some("abc"), None),
            Err(E::BadRho("abc".into()))
        );
        assert_eq!(Threshold::parse_args(Some("1.5"), None), Err(E::RhoRange));
        assert_eq!(Threshold::parse_args(Some("-1.5"), None), Err(E::RhoRange));
        assert_eq!(Threshold::parse_args(Some("nan"), None), Err(E::RhoRange));
        assert_eq!(
            Threshold::parse_args(None, Some("x")),
            Err(E::BadEps("x".into()))
        );
        assert_eq!(Threshold::parse_args(None, Some("-3")), Err(E::EpsRange));
        assert_eq!(Threshold::parse_args(None, Some("inf")), Err(E::EpsRange));
        // The validated threshold builds a spec without re-asserting.
        let spec = RangeSpec::from_threshold(Threshold::Correlation(0.9));
        assert_eq!(spec.threshold, Threshold::Correlation(0.9));
        assert_eq!(spec.policy, FilterPolicy::default());
    }

    #[test]
    fn expansion_layout() {
        let e = expansion(2.0, FilterPolicy::Paper);
        assert!(e[0].is_infinite() && e[1].is_infinite());
        let w = 2.0 / std::f64::consts::SQRT_2;
        assert_eq!(e[2], w);
        assert_eq!(e[3], w);
        let e = expansion(2.0, FilterPolicy::Safe);
        assert_eq!(e[2], w);
        assert!(e[3].is_infinite() && e[5].is_infinite());
    }

    #[test]
    fn within_respects_expansion() {
        let mut alo = [0.0; DIMS];
        let mut ahi = [0.0; DIMS];
        alo[2] = 5.0;
        ahi[2] = 6.0;
        let a = Rect { lo: alo, hi: ahi };
        let b = Rect::point([0.0; DIMS]); // magnitude 0 at dim 2
        let mut e = [f64::INFINITY; DIMS];
        e[2] = 4.0;
        assert!(!within(&a, &b, &e), "gap 5 > 4");
        e[2] = 5.0;
        assert!(within(&a, &b, &e), "gap 5 ≤ 5");
    }

    #[test]
    fn circular_overlap_wraps() {
        use std::f64::consts::PI;
        // Intervals near +π and −π overlap through the wrap.
        assert!(circular_overlap(PI - 0.1, PI, -PI, -PI + 0.1 - 0.05));
        // Disjoint quarter-circle intervals do not.
        assert!(!circular_overlap(0.0, 0.5, 2.0, 2.5));
        // Wide intervals always overlap.
        assert!(circular_overlap(-PI, PI, 100.0, 100.1));
        // Offsets of 2π are identical angles.
        assert!(circular_overlap(0.0, 0.1, 2.0 * PI - 0.05, 2.0 * PI + 0.05));
    }

    #[test]
    fn within_is_circular_on_angle_dims() {
        use std::f64::consts::PI;
        let mut alo = [0.0; DIMS];
        let mut ahi = [0.0; DIMS];
        alo[3] = PI - 0.01;
        ahi[3] = PI - 0.005;
        let a = Rect { lo: alo, hi: ahi };
        let mut p = [0.0; DIMS];
        p[3] = -PI + 0.01;
        let b = Rect::point(p);
        let mut e = [f64::INFINITY; DIMS];
        e[3] = 0.05;
        assert!(within(&a, &b, &e), "angular gap ≈ 0.02 through the wrap");
        e[3] = 0.001;
        assert!(!within(&a, &b, &e));
    }

    #[test]
    fn circular_gap_basics() {
        use std::f64::consts::PI;
        // Overlapping intervals: no gap.
        assert_eq!(circular_gap(0.0, 1.0, 0.5, 2.0), 0.0);
        // Plain gap.
        assert!((circular_gap(0.0, 0.5, 1.0, 1.5) - 0.5).abs() < 1e-12);
        // Through the wrap: [π−0.1, π−0.05] to [−π+0.05, −π+0.1] is
        // 0.05 (to π) + 0.05 (past −π) = 0.1, not ~2π.
        assert!((circular_gap(PI - 0.1, PI - 0.05, -PI + 0.05, -PI + 0.1) - 0.1).abs() < 1e-12);
        // Clamped to π.
        assert!(circular_gap(0.0, 0.0, PI, PI) <= PI + 1e-12);
        // Infinite interval: no constraint.
        assert_eq!(
            circular_gap(f64::NEG_INFINITY, f64::INFINITY, 0.0, 0.0),
            0.0
        );
    }

    #[test]
    fn adaptive_filter_prunes_high_magnitude_angle_gaps_only() {
        let filter = Filter::new(1.0, FilterPolicy::Adaptive);
        let _w = 1.0 / std::f64::consts::SQRT_2;
        // Both coefficients at magnitude 10, angles 2 rad apart:
        // chord ≈ 2·10·sin(1) ≈ 16.8 ≫ w → pruned.
        let mut a = [0.0; DIMS];
        a[2] = 10.0;
        a[3] = 0.0;
        a[4] = 10.0;
        a[5] = 0.0;
        let mut b = a;
        b[3] = 2.0;
        assert!(!filter.hit(&Rect::point(a), &Rect::point(b)));
        // Same angles but tiny magnitudes: chord ≈ 2·0.01·sin(1) ≪ w → kept
        // (this is exactly the case where the Paper policy would *wrongly*
        // prune if the gap exceeded its window… here gap 2 > w ≈ 0.71).
        let mut a2 = a;
        a2[2] = 0.01;
        a2[4] = 0.01;
        let mut b2 = a2;
        b2[3] = 2.0;
        assert!(filter.hit(&Rect::point(a2), &Rect::point(b2)));
        let paper = Filter::new(1.0, FilterPolicy::Paper);
        assert!(
            !paper.hit(&Rect::point(a2), &Rect::point(b2)),
            "Paper policy prunes here"
        );
        // And the true distance: |0.01·(1 − e^{2j})| ≈ 0.017 < ε = 1 — the
        // pair genuinely qualifies, so Paper's pruning was a false dismissal.
        let d = (tsfft::Complex64::from_polar(0.01, 0.0) - tsfft::Complex64::from_polar(0.01, 2.0))
            .abs();
        assert!(d < 1.0);
    }

    #[test]
    fn adaptive_never_prunes_what_safe_keeps_wrongly() {
        // hit(Adaptive) ⊆ hit(Safe): anything Adaptive keeps, Safe keeps.
        let safe = Filter::new(2.0, FilterPolicy::Safe);
        let adaptive = Filter::new(2.0, FilterPolicy::Adaptive);
        for i in 0..200 {
            let f = i as f64;
            let mut a = [0.0; DIMS];
            a[2] = (f * 0.37) % 9.0;
            a[3] = (f * 0.91) % 6.0 - 3.0;
            a[4] = (f * 0.53) % 5.0;
            a[5] = (f * 1.7) % 6.0 - 3.0;
            let mut b = [0.0; DIMS];
            b[2] = (f * 0.11) % 9.0;
            b[3] = (f * 0.77) % 6.0 - 3.0;
            b[4] = (f * 0.29) % 5.0;
            b[5] = (f * 2.3) % 6.0 - 3.0;
            let (ra, rb) = (Rect::point(a), Rect::point(b));
            if adaptive.hit(&ra, &rb) {
                assert!(safe.hit(&ra, &rb));
            }
        }
    }

    #[test]
    fn st_region_is_transformed_point() {
        let t = crate::transform::Transform::moving_average(5, 32);
        let q: FeatureVec = [1.0, 2.0, 0.5, -0.3, 0.2, 1.0];
        let r = st_query_region(&t, &q, QueryMode::Symmetric);
        let tp = t.apply_point(&q);
        assert_eq!(r, Rect::point(tp));
        let r = st_query_region(&t, &q, QueryMode::DataOnly);
        assert_eq!(r, Rect::point(q));
    }
}
