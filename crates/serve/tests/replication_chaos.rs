//! Fault injection on the *follower's* devices during replication
//! apply: a shipped frame that cannot be applied must surface as a
//! typed error — never a wrong answer — and because a mid-apply device
//! fault can leave partial tree entries behind, the follower marks its
//! state suspect and re-syncs through a snapshot transfer instead of
//! blindly re-applying the frame. After the device recovers, one poll
//! re-installs the exact primary state.

use pagestore::{Disk, FaultKind, FaultPlan, FaultSpec, FaultyDisk, PageDevice, Trigger};
use simquery::prelude::*;
use simquery::shared::SharedIndex;
use simserve::client::Client;
use simserve::protocol::{EngineKind, ErrCode, QueryParams, Response, WireThreshold};
use simserve::repl::{Follower, FollowerOpts};
use simserve::server::{serve, serve_with, ServerConfig, ServerHandle};
use simwal::FsyncPolicy;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use tseries::random_walk;
use tseries::rng::SeededRng;

const SEQ_LEN: usize = 32;
const POOL: usize = 32;
const BASE: usize = 18;

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_depth: 16,
        max_conns: 16,
        result_cache: 0,
        ..ServerConfig::default()
    }
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("simserve_repl_chaos_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn query_key(client: &mut Client, ord: usize) -> (usize, Vec<(usize, usize)>) {
    let (n, matches) = client
        .query(QueryParams {
            ord,
            ma: (3, 10),
            threshold: WireThreshold::Rho(0.9),
            engine: EngineKind::Mt,
            limit: 0,
        })
        .unwrap()
        .unwrap();
    let mut key: Vec<_> = matches.iter().map(|m| (m.seq, m.transform)).collect();
    key.sort_unstable();
    (n, key)
}

/// Persistent write errors on every page.
fn break_writes() -> FaultPlan {
    FaultPlan::new().with(FaultSpec {
        kind: FaultKind::WriteError,
        trigger: Trigger::OnPageRange {
            lo: 0,
            hi: u32::MAX,
        },
    })
}

/// Persistent read *and* write errors on every page.
fn break_everything() -> FaultPlan {
    break_writes().read_error_on_pages(0, u32::MAX)
}

struct Rig {
    hp: ServerHandle,
    hf: ServerHandle,
    pc: Client,
    fc: Client,
    follower: Follower,
    devices: Vec<Arc<FaultyDisk>>,
    rng: SeededRng,
    root: PathBuf,
}

/// A durable primary over loopback plus an in-memory follower whose
/// index runs on fault-injecting devices. The follower's state equals
/// the primary's base, so its replication position is asserted directly
/// (epoch 1, nothing applied) instead of going through a snapshot — the
/// campaign must hit the *frame apply* path, not the bootstrap.
fn rig(name: &str, seed: u64) -> Rig {
    let root = fresh_dir(name);
    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, BASE, SEQ_LEN, 0xC0C);
    SeqIndex::build(&corpus, IndexConfig::default())
        .unwrap()
        .save(&root.join("idx"))
        .unwrap();
    let (shared_p, _) = SharedIndex::open_durable(
        &root.join("idx"),
        &root.join("wal"),
        POOL,
        FsyncPolicy::Always,
    )
    .unwrap();
    let hp = serve(shared_p, &test_config()).unwrap();
    let pc = Client::connect(hp.addr).unwrap();

    let tree = Arc::new(FaultyDisk::new(Arc::new(Disk::new())));
    let heap = Arc::new(FaultyDisk::new(Arc::new(Disk::new())));
    let index = SeqIndex::build_on(
        &corpus,
        IndexConfig::default(),
        Arc::clone(&tree) as Arc<dyn PageDevice>,
        Arc::clone(&heap) as Arc<dyn PageDevice>,
    )
    .unwrap()
    .unwrap();
    let shared_f = SharedIndex::new(index);
    shared_f.note_replica_position(1, 0);
    let follower = Follower::connect(
        &hp.addr.to_string(),
        shared_f.clone(),
        FollowerOpts {
            batch: 1,
            wait_ms: 0,
            state_dir: None,
            ..Default::default()
        },
    )
    .unwrap();
    let hf = serve_with(shared_f, &test_config(), Some(follower.stats())).unwrap();
    let fc = Client::connect(hf.addr).unwrap();
    Rig {
        hp,
        hf,
        pc,
        fc,
        follower,
        devices: vec![tree, heap],
        rng: SeededRng::seed_from_u64(seed),
        root,
    }
}

impl Rig {
    fn insert_on_primary(&mut self) {
        let ts = random_walk(&mut self.rng, SEQ_LEN, 50.0);
        self.pc.insert(ts.values().to_vec()).unwrap().unwrap();
    }

    fn finish(self) {
        self.fc.quit().unwrap();
        self.pc.quit().unwrap();
        self.hf.shutdown();
        self.hp.shutdown();
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

/// Write faults only: the apply fails typed, reads keep serving the
/// exact pre-frame prefix (failed device writes leave old contents),
/// and the recovery poll re-syncs to the exact primary state.
#[test]
fn write_faulted_apply_keeps_prefix_exact_then_resyncs() {
    let mut r = rig("writes", 0xFA7);

    // Clean baseline: one frame streams and applies.
    r.insert_on_primary();
    assert_eq!(r.follower.poll_once().unwrap(), 1);
    assert_eq!(r.follower.applied(), 1);
    let prefix = query_key(&mut r.fc, 0);
    assert_eq!(prefix, query_key(&mut r.pc, 0), "baseline parity");

    for d in &r.devices {
        d.arm(break_writes());
    }
    r.insert_on_primary();
    let apply_err = r.follower.poll_once().unwrap_err();
    assert!(
        apply_err.to_string().contains("apply"),
        "the typed error names the failing stage: {apply_err}"
    );
    assert_eq!(
        r.follower.applied(),
        1,
        "the failed frame must not advance the prefix"
    );
    // Reads during the campaign: writes are broken, reads are not — the
    // follower still serves the exact pre-frame prefix.
    assert_eq!(query_key(&mut r.fc, 0), prefix, "prefix answers stay exact");

    // Recovery: the state is suspect after a mid-apply fault, so the
    // next poll re-handshakes through a snapshot, not a frame retry.
    for d in &r.devices {
        d.disarm();
    }
    assert_eq!(
        r.follower.poll_once().unwrap(),
        BASE + 2,
        "recovery re-installs the full snapshot"
    );
    assert_eq!(r.follower.applied(), 2);
    assert_eq!(
        r.follower.stats().snapshots.load(Ordering::Relaxed),
        1,
        "exactly one re-sync snapshot"
    );
    for ord in [0usize, 7, BASE, BASE + 1] {
        assert_eq!(
            query_key(&mut r.fc, ord),
            query_key(&mut r.pc, ord),
            "post-recovery parity at ord {ord}"
        );
    }
    assert!(
        r.devices.iter().map(|d| d.injected_total()).sum::<u64>() > 0,
        "the fault campaign never fired"
    );
    r.finish();
}

/// Reads and writes both fail: the apply errors typed, queries degrade
/// to typed `ERR IO` frames on a live connection — a refusal, never a
/// wrong answer — and recovery still converges through the snapshot.
#[test]
fn fully_faulted_apply_degrades_to_typed_errors_then_resyncs() {
    let mut r = rig("everything", 0xFA8);

    r.insert_on_primary();
    assert_eq!(r.follower.poll_once().unwrap(), 1);

    for d in &r.devices {
        d.arm(break_everything());
    }
    r.insert_on_primary();
    assert!(r.follower.poll_once().is_err());
    assert_eq!(r.follower.applied(), 1);
    // Every read verb degrades to a typed frame while the device is
    // down; the connection survives.
    match r.fc.query(QueryParams {
        ord: 0,
        ma: (3, 10),
        threshold: WireThreshold::Rho(0.9),
        engine: EngineKind::Mt,
        limit: 0,
    }) {
        Ok(Err(Response::Err { code, .. })) => assert_eq!(code, ErrCode::Io),
        other => panic!("expected a typed ERR IO frame, got {other:?}"),
    }
    match r.fc.knn(0, 3, (3, 10)) {
        Ok(Err(Response::Err { code, .. })) => assert_eq!(code, ErrCode::Io),
        other => panic!("expected a typed ERR IO frame, got {other:?}"),
    }

    for d in &r.devices {
        d.disarm();
    }
    assert_eq!(r.follower.poll_once().unwrap(), BASE + 2);
    assert_eq!(r.follower.applied(), 2);
    for ord in [0usize, 7, BASE + 1] {
        assert_eq!(
            query_key(&mut r.fc, ord),
            query_key(&mut r.pc, ord),
            "post-recovery parity at ord {ord}"
        );
    }
    assert!(r.devices.iter().map(|d| d.injected_total()).sum::<u64>() > 0);
    r.finish();
}
