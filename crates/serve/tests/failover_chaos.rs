//! Closed-loop failover under injected network faults: a
//! [`FailoverClient`] drives a primary+follower pair through a
//! [`ChaosProxy`] (seeded connection refusals, delays, and mid-stream
//! cuts), the primary is partitioned away mid-run, the follower is
//! promoted, and the client must finish the workload with **zero wrong
//! answers** — every response is either correct or a typed error, and
//! every acked `INSERT` survives on the new primary.
//!
//! Retries give `INSERT` at-least-once semantics (a response lost to a
//! cut is retried after the server applied it), so the assertions are
//! content-based — every acked series is present — never count-based.

use simquery::prelude::*;
use simquery::shared::SharedIndex;
use simserve::chaos::{ChaosPlan, ChaosProxy};
use simserve::client::{Client, ClientConfig};
use simserve::failover::{FailoverClient, FailoverConfig};
use simserve::protocol::{EngineKind, QueryParams, Request, Response, WireThreshold};
use simserve::repl::{Follower, FollowerOpts};
use simserve::server::{serve, serve_with, ServerConfig};
use simwal::FsyncPolicy;
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tseries::random_walk;
use tseries::rng::SeededRng;

const SEQ_LEN: usize = 32;
const POOL: usize = 32;
const MA: (usize, usize) = (3, 9);
const RHO: f64 = 0.9;

/// The fixed seed matrix (mirrored by `scripts/ci.sh failover`): each
/// seed replays one deterministic fault schedule end to end.
const SEEDS: [u64; 3] = [0xC0FFEE1, 0xC0FFEE2, 0xC0FFEE3];

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_depth: 16,
        max_conns: 32,
        result_cache: 0,
        ..ServerConfig::default()
    }
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("simserve_chaos_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The oracle result set, computed locally through the plan layer on
/// the serving node's own state (the shape of `load::local_pairs`).
fn local_pairs(shared: &SharedIndex, ord: usize) -> Vec<(usize, usize)> {
    let (family, q) = {
        let index = shared.read();
        let family = Family::moving_averages(MA.0..=MA.1, index.seq_len());
        let q = index.fetch_series(ord).expect("oracle ordinal is live");
        (family, q)
    };
    let spec = WireThreshold::Rho(RHO).to_spec();
    let lq = LogicalQuery::range(family, spec).with_engine(EnginePref::Force(EngineChoice::Mt));
    match shared.execute(&lq, Some(&q)) {
        Ok((_, PlanOutput::Range(r))) => r.sorted_pairs(),
        _ => Vec::new(),
    }
}

/// One full failover story per seed: faulty client→primary path, clean
/// replication, partition, promotion, and a client that chases the new
/// primary without ever returning a wrong answer.
#[test]
fn failover_client_survives_chaos_and_promotion() {
    for seed in SEEDS {
        let root = fresh_dir(&format!("s{seed:x}"));
        let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 12, SEQ_LEN, seed);
        let seed_idx = SeqIndex::build(&corpus, IndexConfig::default()).unwrap();
        seed_idx.save(&root.join("idx")).unwrap();
        seed_idx.save(&root.join("fidx")).unwrap();
        drop(seed_idx);

        let (shared_p, _) = SharedIndex::open_durable(
            &root.join("idx"),
            &root.join("wal"),
            POOL,
            FsyncPolicy::Always,
        )
        .unwrap();
        let hp = serve(shared_p.clone(), &test_config()).unwrap();

        // The follower replicates over a clean link (chaos is injected
        // on the client path only) and serves behind its own address.
        let (shared_f, _) = SharedIndex::open_durable(
            &root.join("fidx"),
            &root.join("fwal"),
            POOL,
            FsyncPolicy::Always,
        )
        .unwrap();
        let follower = Follower::connect(
            &hp.addr.to_string(),
            shared_f.clone(),
            FollowerOpts {
                wait_ms: 50,
                state_dir: Some(root.join("fwal")),
                ..Default::default()
            },
        )
        .unwrap();
        let stats = follower.stats();
        let stop = Arc::new(AtomicBool::new(false));
        let loop_handle = follower.spawn(Arc::clone(&stop));
        let hf = serve_with(shared_f.clone(), &test_config(), Some(stats)).unwrap();
        hf.repl().register_follower_loop(stop, loop_handle);

        // Chaos sits between the client and the primary: some
        // connections refused outright, some delayed, some cut
        // mid-stream after a seeded byte budget.
        let proxy = ChaosProxy::start(
            hp.addr.to_string(),
            seed,
            ChaosPlan {
                refuse_p: 0.2,
                delay_p: 0.5,
                delay_ms: (1, 3),
                cut_p: 0.2,
                cut_after: (64, 2048),
                ..ChaosPlan::default()
            },
        )
        .unwrap();

        // Endpoint order starts at the *follower*, so the very first
        // write proves the ERR READONLY redirect path.
        let mut fc = FailoverClient::new(
            vec![hf.addr.to_string(), proxy.addr().to_string()],
            FailoverConfig {
                client: ClientConfig::with_timeout_ms(2_000),
                max_attempts: 12,
                seed,
                ..FailoverConfig::default()
            },
        );
        let counters = fc.counters();

        // Phase 1: 8 inserts + 8 queries through the faulty path. Every
        // response must be the matching typed frame; acked insert
        // content is recorded for the survival check.
        let mut rng = SeededRng::seed_from_u64(seed ^ 0xACED);
        let mut acked: Vec<Vec<f64>> = Vec::new();
        let mut do_insert = |fc: &mut FailoverClient, acked: &mut Vec<Vec<f64>>, ctx: &str| {
            let ts = random_walk(&mut rng, SEQ_LEN, 50.0);
            match fc.call(&Request::Insert {
                values: ts.values().to_vec(),
            }) {
                Ok(Response::Inserted { .. }) => acked.push(ts.values().to_vec()),
                Ok(other) => panic!("seed {seed:x} {ctx}: INSERT answered {other:?}"),
                Err(e) => panic!("seed {seed:x} {ctx}: INSERT gave up: {e}"),
            }
        };
        for i in 0..8 {
            do_insert(&mut fc, &mut acked, &format!("phase1 op {i}"));
            let params = QueryParams {
                ord: i % 12,
                ma: MA,
                threshold: WireThreshold::Rho(RHO),
                engine: EngineKind::Mt,
                limit: 0,
            };
            match fc.call(&Request::Query(params)) {
                Ok(Response::Matches { .. }) => {}
                Ok(other) => panic!("seed {seed:x} phase1 op {i}: QUERY answered {other:?}"),
                Err(e) => panic!("seed {seed:x} phase1 op {i}: QUERY gave up: {e}"),
            }
        }
        let (_, redirects, _, giveups) = counters.snapshot();
        assert!(
            redirects >= 1,
            "seed {seed:x}: the follower-first endpoint order forces a READONLY redirect"
        );
        assert_eq!(giveups, 0, "seed {seed:x}: no call may exhaust its budget");

        // Let replication catch up to the full acked prefix, then
        // partition the primary and promote the follower.
        let deadline = Instant::now() + Duration::from_secs(10);
        while shared_f.applied_lsn() < acked.len() as u64 {
            assert!(
                Instant::now() < deadline,
                "seed {seed:x}: follower failed to catch up (applied {} of {})",
                shared_f.applied_lsn(),
                acked.len()
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        proxy.set_partitioned(true);
        let mut admin = Client::connect(hf.addr).unwrap();
        let new_epoch = admin.promote().unwrap().unwrap();
        assert!(new_epoch >= 2, "seed {seed:x}");
        admin.quit().unwrap();

        // Phase 2: the same client finishes the workload; the partition
        // forces it off the dead endpoint onto the new primary.
        for i in 0..8 {
            do_insert(&mut fc, &mut acked, &format!("phase2 op {i}"));
        }
        let (retries, _, reconnects, giveups) = counters.snapshot();
        assert_eq!(
            giveups, 0,
            "seed {seed:x}: zero giveups across the failover"
        );
        assert!(
            retries >= 1 && reconnects >= 1,
            "seed {seed:x}: the partition must force at least one retry + re-dial \
             (retries {retries}, reconnects {reconnects})"
        );

        // Survival: every acked insert's content is present on the new
        // primary (at-least-once ⇒ content, not counts).
        {
            let guard = shared_f.read();
            let live: Vec<Vec<f64>> = (0..guard.len())
                .filter_map(|ord| guard.fetch_series(ord).ok())
                .map(|ts| ts.values().to_vec())
                .collect();
            for (i, want) in acked.iter().enumerate() {
                assert!(
                    live.iter().any(|got| got == want),
                    "seed {seed:x}: acked insert {i} lost in the failover"
                );
            }
        }

        // Correctness: with the state settled, a query through the
        // chaos client must equal the local plan-layer execution on the
        // new primary, pair for pair.
        for ord in [0usize, 5, 11] {
            let params = QueryParams {
                ord,
                ma: MA,
                threshold: WireThreshold::Rho(RHO),
                engine: EngineKind::Mt,
                limit: 0,
            };
            match fc.call(&Request::Query(params)) {
                Ok(Response::Matches { matches, .. }) => {
                    let mut got: Vec<(usize, usize)> =
                        matches.iter().map(|m| (m.seq, m.transform)).collect();
                    got.sort_unstable();
                    assert_eq!(
                        got,
                        local_pairs(&shared_f, ord),
                        "seed {seed:x}: ord {ord} answered wrongly after failover"
                    );
                }
                Ok(other) => panic!("seed {seed:x}: settled QUERY answered {other:?}"),
                Err(e) => panic!("seed {seed:x}: settled QUERY gave up: {e}"),
            }
        }

        proxy.shutdown();
        hf.shutdown();
        hp.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }
}
