//! Crash-point replication tests: kill the follower at every frame
//! boundary mid-stream and the primary mid-stream (same-epoch restart
//! and checkpoint/epoch-change restart), and assert the survivor
//! re-converges to the exact acked prefix — no gaps, no duplicates,
//! idempotent re-apply. All deterministic: the follower is stepped one
//! `poll_once` (one frame) at a time, never on a background thread.

use simquery::prelude::*;
use simquery::shared::SharedIndex;
use simserve::client::Client;
use simserve::protocol::Request;
use simserve::repl::{Follower, FollowerOpts};
use simserve::server::{serve, ServerConfig};
use simwal::FsyncPolicy;
use std::path::PathBuf;
use tseries::random_walk;
use tseries::rng::SeededRng;

const SEQ_LEN: usize = 32;
const POOL: usize = 32;

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_depth: 16,
        max_conns: 16,
        result_cache: 0,
        ..ServerConfig::default()
    }
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("simserve_repl_crash_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Reopens survive the short window where a shut-down server's
/// connection threads still hold the directory `LOCK`.
fn retry_locked<T, E: std::fmt::Display>(mut open: impl FnMut() -> Result<T, E>) -> T {
    let mut last = None;
    for _ in 0..500 {
        match open() {
            Ok(v) => return v,
            Err(e) if e.to_string().contains("locked") => {
                last = Some(e);
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            Err(e) => panic!("open failed: {e}"),
        }
    }
    panic!("open kept failing after 5s: {}", last.unwrap());
}

/// Byte-level state equality: same ordinal space, same tombstone set,
/// same values per ordinal. Stronger than answer parity — a duplicated
/// or skipped frame cannot hide.
fn assert_state_identical(a: &SharedIndex, b: &SharedIndex, ctx: &str) {
    let (ga, gb) = (a.read(), b.read());
    assert_eq!(ga.len(), gb.len(), "{ctx}: ordinal space diverged");
    assert_eq!(ga.seq_len(), gb.seq_len(), "{ctx}");
    let (mut da, mut db) = (ga.deleted_ordinals(), gb.deleted_ordinals());
    da.sort_unstable();
    db.sort_unstable();
    assert_eq!(da, db, "{ctx}: tombstone sets diverged");
    for ord in 0..ga.len() {
        assert_eq!(
            ga.fetch_series(ord).unwrap().values(),
            gb.fetch_series(ord).unwrap().values(),
            "{ctx}: values diverged at ordinal {ord}"
        );
    }
}

fn drain(follower: &mut Follower) {
    for _ in 0..1000 {
        if follower.poll_once().unwrap() == 0 && follower.lag() == 0 {
            return;
        }
    }
    panic!("follower failed to drain");
}

const FRAMES: u64 = 6;

/// Kill the (durable) follower at every frame boundary of a 6-frame
/// stream: after k applied frames, drop it, reopen its directories, and
/// let it catch up. Every run must land on the identical final state
/// with `applied == 6`, and one extra poll must be a no-op (idempotent
/// re-apply; no duplicates).
#[test]
fn follower_killed_at_every_frame_boundary_reconverges() {
    let root = fresh_dir("boundary");
    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 14, SEQ_LEN, 0xB0B);
    let seed = SeqIndex::build(&corpus, IndexConfig::default()).unwrap();
    seed.save(&root.join("idx")).unwrap();

    let (shared_p, _) = SharedIndex::open_durable(
        &root.join("idx"),
        &root.join("wal"),
        POOL,
        FsyncPolicy::Always,
    )
    .unwrap();
    let hp = serve(shared_p.clone(), &test_config()).unwrap();
    let addr = hp.addr.to_string();
    let mut pc = Client::connect(hp.addr).unwrap();

    // Bootstrap one durable follower per crash point at the base state
    // (before any mutation), so the 6 mutations below all arrive as
    // streamed frames, never inside the snapshot cut.
    let opts_for = |k: u64| FollowerOpts {
        batch: 1,
        wait_ms: 0,
        state_dir: Some(root.join(format!("fwal{k}"))),
        ..Default::default()
    };
    let mut gen1: Vec<Follower> = (0..=FRAMES)
        .map(|k| {
            let fidx = root.join(format!("fidx{k}"));
            seed.save(&fidx).unwrap();
            let (shared_f, _) = SharedIndex::open_durable(
                &fidx,
                &root.join(format!("fwal{k}")),
                POOL,
                FsyncPolicy::Always,
            )
            .unwrap();
            let mut f = Follower::connect(&addr, shared_f, opts_for(k)).unwrap();
            let installed = f.poll_once().unwrap();
            assert_eq!(installed, 14, "first poll transfers the base snapshot");
            f
        })
        .collect();

    // 6 mutations = LSNs 1..=6 (4 inserts, 2 deletes).
    let mut rng = SeededRng::seed_from_u64(0xFACE);
    for _ in 0..4 {
        pc.insert(random_walk(&mut rng, SEQ_LEN, 50.0).values().to_vec())
            .unwrap()
            .unwrap();
    }
    assert!(pc.delete(2).unwrap().unwrap());
    assert!(pc.delete(15).unwrap().unwrap());

    for k in 0..=FRAMES {
        let fidx = root.join(format!("fidx{k}"));
        let fwal = root.join(format!("fwal{k}"));

        // Generation 1: apply exactly k of the 6 frames (`batch: 1`
        // polls ship one each), then "crash" — drop the follower and
        // its index with no shutdown path.
        {
            let mut f = gen1.remove(0);
            for step in 0..k {
                assert_eq!(f.poll_once().unwrap(), 1, "k={k} step={step}");
            }
            assert_eq!(f.applied(), k, "k={k}");
        }

        // Generation 2: restart on the same directories and catch up.
        let (shared_f, rep) =
            retry_locked(|| SharedIndex::open_durable(&fidx, &fwal, POOL, FsyncPolicy::Always));
        assert_eq!(
            rep.frames, k as usize,
            "k={k}: exactly the applied frames replay from the local log"
        );
        assert_eq!(shared_f.applied_lsn(), k, "k={k}: position recovered");
        let mut f = Follower::connect(&addr, shared_f.clone(), opts_for(k)).unwrap();
        drain(&mut f);
        assert_eq!(f.applied(), FRAMES, "k={k}");
        assert_eq!(
            f.stats()
                .snapshots
                .load(std::sync::atomic::Ordering::Relaxed),
            0,
            "k={k}: a same-epoch restart resumes by frames, not snapshot"
        );
        // Idempotence: one more poll ships nothing and changes nothing.
        assert_eq!(f.poll_once().unwrap(), 0, "k={k}");
        assert_eq!(f.applied(), FRAMES, "k={k}");
        assert_state_identical(&shared_p, &shared_f, &format!("k={k}"));
    }

    pc.quit().unwrap();
    hp.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// Kill the primary mid-stream. Case 1: it restarts on the same
/// directories (same epoch, WAL replays) — the follower re-dials and
/// resumes by frames from its exact position. Case 2: the restarted
/// primary checkpoints (new epoch, log reset) and keeps mutating — the
/// follower's handshake misses the epoch and it re-syncs via snapshot.
#[test]
fn primary_restart_mid_stream_same_epoch_then_epoch_change() {
    let root = fresh_dir("primary");
    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 12, SEQ_LEN, 0xABE);
    let seed = SeqIndex::build(&corpus, IndexConfig::default()).unwrap();
    seed.save(&root.join("idx")).unwrap();
    seed.save(&root.join("fidx")).unwrap();
    drop(seed);
    let mut rng = SeededRng::seed_from_u64(0xDEAD);
    let fopts = FollowerOpts {
        batch: 1,
        wait_ms: 0,
        state_dir: Some(root.join("fwal")),
        ..Default::default()
    };

    let (shared_f, _) = SharedIndex::open_durable(
        &root.join("fidx"),
        &root.join("fwal"),
        POOL,
        FsyncPolicy::Always,
    )
    .unwrap();

    // Generation 1: 4 mutations; the follower applies only 2 of them
    // before the primary dies.
    let mut f = {
        let (shared_p, _) = SharedIndex::open_durable(
            &root.join("idx"),
            &root.join("wal"),
            POOL,
            FsyncPolicy::Always,
        )
        .unwrap();
        let hp = serve(shared_p, &test_config()).unwrap();
        let mut pc = Client::connect(hp.addr).unwrap();
        for _ in 0..4 {
            pc.insert(random_walk(&mut rng, SEQ_LEN, 50.0).values().to_vec())
                .unwrap()
                .unwrap();
        }
        let mut f =
            Follower::connect(&hp.addr.to_string(), shared_f.clone(), fopts.clone()).unwrap();
        assert_eq!(
            f.poll_once().unwrap(),
            16,
            "snapshot covers the 4 mutations"
        );
        // The snapshot cut already covers the 4 mutations; stream two
        // *new* ones frame-by-frame, then crash the primary.
        pc.insert(random_walk(&mut rng, SEQ_LEN, 50.0).values().to_vec())
            .unwrap()
            .unwrap();
        assert!(pc.delete(4).unwrap().unwrap());
        assert_eq!(f.poll_once().unwrap(), 1);
        assert_eq!(f.applied(), 5);
        pc.quit().unwrap();
        hp.shutdown();
        f
    };
    // The acceptor is gone: severing the old connection and re-dialing
    // the dead address must surface as an error, not a hang. (The old
    // connection's handler thread may briefly outlive the shutdown; the
    // reconnect drops it first, which also releases the primary's
    // directory locks for the reopen below.)
    assert!(
        f.reconnect(None).is_err(),
        "re-dialing a dead primary must fail"
    );
    assert!(
        f.poll_once().is_err(),
        "polling without a connection must fail, not hang"
    );

    // Case 1: same directories, same epoch. The follower re-dials (new
    // ephemeral port) and resumes by frames — no snapshot re-install.
    let shared_p2 = {
        let (shared_p, rep) = retry_locked(|| {
            SharedIndex::open_durable(
                &root.join("idx"),
                &root.join("wal"),
                POOL,
                FsyncPolicy::Always,
            )
        });
        assert_eq!(rep.frames, 6, "all acked mutations replay on the primary");
        shared_p
    };
    let hp2 = serve(shared_p2.clone(), &test_config()).unwrap();
    let snapshots_before = f
        .stats()
        .snapshots
        .load(std::sync::atomic::Ordering::Relaxed);
    f.reconnect(Some(&hp2.addr.to_string())).unwrap();
    drain(&mut f);
    assert_eq!(f.applied(), 6);
    assert_eq!(
        f.stats()
            .snapshots
            .load(std::sync::atomic::Ordering::Relaxed),
        snapshots_before,
        "same-epoch primary restart must resume by frames"
    );
    assert_state_identical(&shared_p2, &shared_f, "same-epoch restart");

    // Case 2: the primary checkpoints (epoch 2 resets the log) and
    // mutates again; the follower's old-epoch handshake forces a
    // snapshot re-sync that lands on the exact post-mutation state.
    let mut pc = Client::connect(hp2.addr).unwrap();
    assert_eq!(pc.checkpoint().unwrap().unwrap(), 2);
    pc.insert(random_walk(&mut rng, SEQ_LEN, 50.0).values().to_vec())
        .unwrap()
        .unwrap();
    assert!(pc.delete(0).unwrap().unwrap());
    drain(&mut f);
    assert_eq!(
        f.stats()
            .snapshots
            .load(std::sync::atomic::Ordering::Relaxed),
        snapshots_before + 1,
        "an epoch change re-handshakes through exactly one snapshot"
    );
    assert_state_identical(&shared_p2, &shared_f, "epoch-change restart");
    assert_eq!(
        f.stats().epoch.load(std::sync::atomic::Ordering::Relaxed),
        2,
        "the follower reports the primary's new epoch"
    );

    // And a durable follower restart after the epoch change still comes
    // back at the exact position (REPLICA floor + local log replay).
    drop(f);
    drop(shared_f);
    let (shared_f, _) = retry_locked(|| {
        SharedIndex::open_durable(
            &root.join("fidx"),
            &root.join("fwal"),
            POOL,
            FsyncPolicy::Always,
        )
    });
    let mut f = Follower::connect(&hp2.addr.to_string(), shared_f.clone(), fopts).unwrap();
    assert_eq!(f.poll_once().unwrap(), 0, "nothing to re-ship");
    assert_state_identical(&shared_p2, &shared_f, "follower restart post-epoch-change");

    pc.quit().unwrap();
    hp2.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// A `--fsync never` primary crash must never diverge a follower: every
/// frame a follower has seen must survive the crash (the feeder fsyncs
/// before serving), so the lost tail is only ever frames nobody
/// received, and the same-epoch handshake after the restart resumes by
/// frames onto an identical timeline. The crash is simulated honestly:
/// the log file is truncated to exactly the fsynced prefix
/// (`wal_durable_bytes`) — what a real crash is guaranteed to keep.
#[test]
fn fsync_never_primary_crash_cannot_diverge_a_follower() {
    let root = fresh_dir("losttail");
    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 8, SEQ_LEN, 0x7A17);
    let seed = SeqIndex::build(&corpus, IndexConfig::default()).unwrap();
    seed.save(&root.join("idx")).unwrap();
    seed.save(&root.join("fidx")).unwrap();
    drop(seed);
    let mut rng = SeededRng::seed_from_u64(0x10557);
    let fopts = FollowerOpts {
        batch: 1,
        wait_ms: 0,
        state_dir: Some(root.join("fwal")),
        ..Default::default()
    };

    let (shared_f, _) = SharedIndex::open_durable(
        &root.join("fidx"),
        &root.join("fwal"),
        POOL,
        FsyncPolicy::Always,
    )
    .unwrap();

    // Generation 1: a never-fsyncing primary ships 9 mutations to the
    // follower, then takes 2 more nobody polls — the crash-vulnerable
    // tail.
    let durable;
    let mut f = {
        let (shared_p, _) = SharedIndex::open_durable(
            &root.join("idx"),
            &root.join("wal"),
            POOL,
            FsyncPolicy::Never,
        )
        .unwrap();
        let hp = serve(shared_p.clone(), &test_config()).unwrap();
        let mut pc = Client::connect(hp.addr).unwrap();
        let mut f = Follower::connect(&hp.addr.to_string(), shared_f.clone(), fopts).unwrap();
        assert_eq!(f.poll_once().unwrap(), 8, "bootstrap snapshot");
        for _ in 0..7 {
            pc.insert(random_walk(&mut rng, SEQ_LEN, 50.0).values().to_vec())
                .unwrap()
                .unwrap();
        }
        assert!(pc.delete(1).unwrap().unwrap());
        assert!(pc.delete(3).unwrap().unwrap());
        drain(&mut f);
        assert_eq!(f.applied(), 9, "the follower holds every shipped frame");
        for _ in 0..2 {
            pc.insert(random_walk(&mut rng, SEQ_LEN, 50.0).values().to_vec())
                .unwrap()
                .unwrap();
        }
        // Shipped implies durable; the unpolled tail is not, so the
        // simulated crash below cuts something real.
        durable = shared_p.wal_durable_bytes().unwrap();
        let written = std::fs::metadata(root.join("wal").join(simwal::LOG_FILE))
            .unwrap()
            .len();
        assert!(
            durable < written,
            "the unpolled tail must be sitting unsynced past the durable prefix"
        );
        pc.quit().unwrap();
        hp.shutdown();
        f
    };
    assert!(f.reconnect(None).is_err(), "the primary is down");

    // The crash: everything past the fsynced prefix is gone.
    std::fs::OpenOptions::new()
        .write(true)
        .open(root.join("wal").join(simwal::LOG_FILE))
        .unwrap()
        .set_len(durable)
        .unwrap();

    // Generation 2: the restarted primary replays exactly the shipped
    // frames — so its timeline still covers everything the follower
    // holds — then moves on, reusing the lost LSNs for new writes.
    let (shared_p2, rep) = retry_locked(|| {
        SharedIndex::open_durable(
            &root.join("idx"),
            &root.join("wal"),
            POOL,
            FsyncPolicy::Never,
        )
    });
    assert_eq!(
        rep.frames, 9,
        "every frame the follower received survives the crash"
    );
    let hp2 = serve(shared_p2.clone(), &test_config()).unwrap();
    let mut pc = Client::connect(hp2.addr).unwrap();
    // Regrow well past the follower's resume position (LSN 10) so a
    // regressed feeder would stream the reused LSNs as a divergent
    // timeline instead of forcing a snapshot.
    for _ in 0..10 {
        pc.insert(random_walk(&mut rng, SEQ_LEN, 50.0).values().to_vec())
            .unwrap()
            .unwrap();
    }
    f.reconnect(Some(&hp2.addr.to_string())).unwrap();
    drain(&mut f);
    assert_eq!(f.applied(), 19, "9 shipped pre-crash + 10 post-restart");
    assert_eq!(
        f.stats()
            .snapshots
            .load(std::sync::atomic::Ordering::Relaxed),
        1,
        "only the bootstrap snapshot: the same-epoch restart resumes by frames"
    );
    assert_state_identical(&shared_p2, &shared_f, "fsync-never lost-tail restart");

    pc.quit().unwrap();
    hp2.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// Pointing a durable directory that used to be a *standalone primary*
/// at `--replicate-from` must not resume streaming from its local LSNs
/// (they are unrelated to the new primary's timeline): without a
/// REPLICA state file the follower is unsynced and bootstraps via
/// snapshot, after which it streams normally.
#[test]
fn ex_standalone_primary_directory_bootstraps_via_snapshot() {
    let root = fresh_dir("expri");
    let mut rng = SeededRng::seed_from_u64(0xE19);

    // The real primary: 10 seed series + 3 inserts (LSNs 1..=3).
    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 10, SEQ_LEN, 0xAAA);
    SeqIndex::build(&corpus, IndexConfig::default())
        .unwrap()
        .save(&root.join("idx"))
        .unwrap();
    let (shared_p, _) = SharedIndex::open_durable(
        &root.join("idx"),
        &root.join("wal"),
        POOL,
        FsyncPolicy::Always,
    )
    .unwrap();
    let hp = serve(shared_p.clone(), &test_config()).unwrap();
    let mut pc = Client::connect(hp.addr).unwrap();
    for _ in 0..3 {
        pc.insert(random_walk(&mut rng, SEQ_LEN, 50.0).values().to_vec())
            .unwrap()
            .unwrap();
    }

    // An unrelated standalone primary on its own directories: different
    // corpus, 2 local mutations (LSNs 1..=2 on *its* timeline), then a
    // clean shutdown. No REPLICA file is ever written here.
    let corpus_b = Corpus::generate(CorpusKind::SyntheticWalks, 6, SEQ_LEN, 0xBBB);
    SeqIndex::build(&corpus_b, IndexConfig::default())
        .unwrap()
        .save(&root.join("fidx"))
        .unwrap();
    {
        let (shared_s, _) = SharedIndex::open_durable(
            &root.join("fidx"),
            &root.join("fwal"),
            POOL,
            FsyncPolicy::Always,
        )
        .unwrap();
        let hs = serve(shared_s, &test_config()).unwrap();
        let mut sc = Client::connect(hs.addr).unwrap();
        for _ in 0..2 {
            sc.insert(random_walk(&mut rng, SEQ_LEN, 50.0).values().to_vec())
                .unwrap()
                .unwrap();
        }
        sc.quit().unwrap();
        hs.shutdown();
    }

    // Repoint the ex-primary's directories at the real primary. Its
    // replayed local log leaves applied_lsn=2, but with no REPLICA file
    // that must not count as synced.
    let (shared_f, rep) = retry_locked(|| {
        SharedIndex::open_durable(
            &root.join("fidx"),
            &root.join("fwal"),
            POOL,
            FsyncPolicy::Always,
        )
    });
    assert_eq!(rep.frames, 2, "the unrelated local log replays");
    assert_eq!(shared_f.applied_lsn(), 2);
    let fopts = FollowerOpts {
        batch: 1,
        wait_ms: 0,
        state_dir: Some(root.join("fwal")),
        ..Default::default()
    };
    let mut f = Follower::connect(&hp.addr.to_string(), shared_f.clone(), fopts).unwrap();
    assert_eq!(
        f.poll_once().unwrap(),
        13,
        "first poll transfers the full snapshot, not frames at unrelated ordinals"
    );
    assert_eq!(
        f.stats()
            .snapshots
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    assert_state_identical(&shared_p, &shared_f, "ex-primary repointed");

    // And it streams normally from there.
    pc.insert(random_walk(&mut rng, SEQ_LEN, 50.0).values().to_vec())
        .unwrap()
        .unwrap();
    drain(&mut f);
    assert_eq!(f.applied(), 4);
    assert_state_identical(&shared_p, &shared_f, "ex-primary streams after re-sync");

    pc.quit().unwrap();
    hp.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// The reserved `from=0` bootstrap sentinel always answers with a
/// snapshot — even when a stale client claims the current epoch.
#[test]
fn from_zero_always_snapshots() {
    let root = fresh_dir("fromzero");
    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 8, SEQ_LEN, 0x0F0);
    SeqIndex::build(&corpus, IndexConfig::default())
        .unwrap()
        .save(&root.join("idx"))
        .unwrap();
    let (shared_p, _) = SharedIndex::open_durable(
        &root.join("idx"),
        &root.join("wal"),
        POOL,
        FsyncPolicy::Always,
    )
    .unwrap();
    let hp = serve(shared_p, &test_config()).unwrap();
    let mut c = Client::connect(hp.addr).unwrap();
    let resp = c
        .call(&Request::Repl {
            epoch: 1,
            from: 0,
            ack: 0,
            max: 0,
            wait_ms: 0,
        })
        .unwrap();
    match resp {
        simserve::protocol::Response::ReplSnapshot {
            epoch,
            next,
            entries,
            ..
        } => {
            assert_eq!(epoch, 1);
            assert_eq!(next, 1);
            assert_eq!(entries.len(), 8);
        }
        other => panic!("expected a snapshot for from=0, got {other:?}"),
    }
    c.quit().unwrap();
    hp.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}
