//! WAL-shipping replication over loopback TCP: a durable primary feeds
//! a follower through the `REPL` verb, and after the lag drains the
//! follower is answer-identical to the primary for range queries, kNN,
//! and joins across every engine. Also covers the follower's typed
//! `ERR READONLY` on writes, the `REPL` stats line on both roles, and
//! the plan-cache regression: a cached result on a lagging follower
//! must not outlive an applied frame.

use simquery::prelude::*;
use simquery::shared::SharedIndex;
use simserve::client::Client;
use simserve::protocol::{EngineKind, ErrCode, QueryParams, Response, WireThreshold};
use simserve::repl::{self, Follower, FollowerOpts};
use simserve::server::{serve, serve_with, ServerConfig};
use simwal::FsyncPolicy;
use std::path::PathBuf;
use tseries::random_walk;
use tseries::rng::SeededRng;

const SEQ_LEN: usize = 32;
const POOL: usize = 32;

fn test_config(result_cache: usize) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_depth: 16,
        max_conns: 16,
        result_cache,
        ..ServerConfig::default()
    }
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("simserve_repl_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Steps the follower until a poll ships nothing and the lag is zero.
fn drain(follower: &mut Follower) {
    for _ in 0..1000 {
        if follower.poll_once().unwrap() == 0 && follower.lag() == 0 {
            return;
        }
    }
    panic!("follower failed to drain within 1000 polls");
}

/// Order-independent result key of a range query under one engine.
fn query_key(client: &mut Client, ord: usize, engine: EngineKind) -> (usize, Vec<(usize, usize)>) {
    let (n, matches) = client
        .query(QueryParams {
            ord,
            ma: (3, 10),
            threshold: WireThreshold::Rho(0.9),
            engine,
            limit: 0,
        })
        .unwrap()
        .unwrap();
    let mut key: Vec<_> = matches.iter().map(|m| (m.seq, m.transform)).collect();
    key.sort_unstable();
    (n, key)
}

fn knn_key(client: &mut Client, ord: usize, k: usize) -> Vec<(usize, usize, String)> {
    client
        .knn(ord, k, (3, 10))
        .unwrap()
        .unwrap()
        .iter()
        .map(|m| (m.seq, m.transform, format!("{:.9}", m.dist)))
        .collect()
}

fn join_key(client: &mut Client, engine: EngineKind) -> (usize, Vec<(usize, usize)>) {
    let req = simserve::protocol::Request::Join {
        ma: (3, 10),
        threshold: WireThreshold::Rho(0.95),
        engine,
        limit: 0,
    };
    match client.call(&req).unwrap() {
        Response::Pairs { n, pairs, .. } => {
            let mut key: Vec<_> = pairs.iter().map(|p| (p.a, p.b)).collect();
            key.sort_unstable();
            (n, key)
        }
        other => panic!("JOIN failed: {other:?}"),
    }
}

/// The acceptance scenario: bootstrap a follower from a snapshot, ship
/// N acked mutations, drain, and the follower answers every read verb
/// exactly like the primary — then keeps refusing writes with a typed
/// error.
#[test]
fn follower_converges_and_serves_identical_reads() {
    let root = fresh_dir("parity");
    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 20, SEQ_LEN, 0x9E9);
    SeqIndex::build(&corpus, IndexConfig::default())
        .unwrap()
        .save(&root.join("idx"))
        .unwrap();
    let (shared_p, _) = SharedIndex::open_durable(
        &root.join("idx"),
        &root.join("wal"),
        POOL,
        FsyncPolicy::Always,
    )
    .unwrap();
    let hp = serve(shared_p, &test_config(0)).unwrap();
    let mut pc = Client::connect(hp.addr).unwrap();

    // A couple of pre-bootstrap mutations, so the snapshot itself is
    // already past the base state (and contains a tombstone).
    let mut rng = SeededRng::seed_from_u64(0xF01);
    pc.insert(random_walk(&mut rng, SEQ_LEN, 50.0).values().to_vec())
        .unwrap()
        .unwrap();
    assert!(pc.delete(3).unwrap().unwrap());

    let (shared_f, mut follower) = repl::bootstrap(
        &hp.addr.to_string(),
        FollowerOpts {
            wait_ms: 0,
            ..Default::default()
        },
    )
    .unwrap();
    let hf = serve_with(shared_f, &test_config(0), Some(follower.stats())).unwrap();
    let mut fc = Client::connect(hf.addr).unwrap();

    // N acked mutations land after the snapshot cut and must stream.
    for _ in 0..6 {
        pc.insert(random_walk(&mut rng, SEQ_LEN, 50.0).values().to_vec())
            .unwrap()
            .unwrap();
    }
    assert!(pc.delete(7).unwrap().unwrap());
    assert!(pc.delete(20).unwrap().unwrap());
    drain(&mut follower);
    assert_eq!(follower.applied(), 10, "2 + 6 + 2 acked mutations shipped");

    // Answer parity for every read verb, across engines.
    for engine in [EngineKind::Mt, EngineKind::St, EngineKind::Scan] {
        for ord in [0usize, 5, 21, 26] {
            assert_eq!(
                query_key(&mut pc, ord, engine),
                query_key(&mut fc, ord, engine),
                "QUERY diverged at ord {ord} ({engine:?})"
            );
        }
        assert_eq!(
            join_key(&mut pc, engine),
            join_key(&mut fc, engine),
            "JOIN diverged ({engine:?})"
        );
    }
    for ord in [0usize, 5, 21] {
        assert_eq!(
            knn_key(&mut pc, ord, 5),
            knn_key(&mut fc, ord, 5),
            "KNN diverged at ord {ord}"
        );
    }

    // Deleted ordinals answer identically too — same success shape or
    // the same typed error on both roles.
    match (
        pc.query(query_params_for(7)).unwrap(),
        fc.query(query_params_for(7)).unwrap(),
    ) {
        (Ok((np, mut kp)), Ok((nf, mut kf))) => {
            kp.sort_by_key(|a| (a.seq, a.transform));
            kf.sort_by_key(|a| (a.seq, a.transform));
            assert_eq!(np, nf);
            assert_eq!(
                kp.iter().map(|m| (m.seq, m.transform)).collect::<Vec<_>>(),
                kf.iter().map(|m| (m.seq, m.transform)).collect::<Vec<_>>()
            );
        }
        (Err(Response::Err { code: cp, .. }), Err(Response::Err { code: cf, .. })) => {
            assert_eq!(cp, cf)
        }
        other => panic!("roles diverged on a deleted ordinal: {other:?}"),
    }

    // The follower refuses every mutating verb with the typed code and
    // stays fully readable afterwards.
    for resp in [
        fc.insert(vec![1.0; SEQ_LEN]).unwrap().unwrap_err(),
        fc.delete(0).unwrap().unwrap_err(),
        fc.checkpoint().unwrap().unwrap_err(),
    ] {
        match resp {
            Response::Err { code, msg } => {
                assert_eq!(code, ErrCode::ReadOnly, "{msg}");
                assert!(msg.contains("follower"), "error names the role: {msg}");
            }
            other => panic!("expected ERR READONLY, got {other:?}"),
        }
    }
    assert_eq!(query_key(&mut fc, 0, EngineKind::Mt).0, {
        let (n, _) = query_key(&mut pc, 0, EngineKind::Mt);
        n
    });

    // STATS: the follower reports its role and applied position; the
    // primary reports the follower's acked position and zero lag.
    let fs = fc.stats(false).unwrap().unwrap();
    let frl = fs.repl.expect("follower must report a REPL line");
    assert_eq!(frl.role, "follower");
    assert_eq!(frl.applied_lsn, 10);
    assert_eq!(frl.acked_lsn, 10);
    assert_eq!(frl.lag, 0);
    assert!(frl.bytes > 0, "shipped frame bytes are accounted");
    assert_eq!(frl.epoch, 1);

    let ps = pc.stats(false).unwrap().unwrap();
    let prl = ps.repl.expect("a primary with followers reports REPL");
    assert_eq!(prl.role, "primary");
    assert_eq!(prl.followers, 1);
    assert_eq!(prl.acked_lsn, 10);
    assert_eq!(prl.lag, 0);
    assert!(prl.bytes > 0);

    fc.quit().unwrap();
    pc.quit().unwrap();
    hf.shutdown();
    hp.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

fn query_params_for(ord: usize) -> QueryParams {
    QueryParams {
        ord,
        ma: (3, 10),
        threshold: WireThreshold::Rho(0.9),
        engine: EngineKind::Mt,
        limit: 0,
    }
}

/// A follower that starts from a local seed copy of the index (the
/// `--index` form) re-handshakes with the reserved `from=0`, installs
/// the snapshot, and converges like a bootstrapped one.
#[test]
fn follower_with_seed_index_catches_up_via_snapshot() {
    let root = fresh_dir("seed");
    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 16, SEQ_LEN, 0x5EE);
    let seed = SeqIndex::build(&corpus, IndexConfig::default()).unwrap();
    seed.save(&root.join("idx")).unwrap();
    seed.save(&root.join("fidx")).unwrap();
    drop(seed);

    let (shared_p, _) = SharedIndex::open_durable(
        &root.join("idx"),
        &root.join("wal"),
        POOL,
        FsyncPolicy::Always,
    )
    .unwrap();
    let hp = serve(shared_p, &test_config(0)).unwrap();
    let mut pc = Client::connect(hp.addr).unwrap();
    let mut rng = SeededRng::seed_from_u64(0x5EED);
    for _ in 0..3 {
        pc.insert(random_walk(&mut rng, SEQ_LEN, 50.0).values().to_vec())
            .unwrap()
            .unwrap();
    }

    let shared_f = SharedIndex::open(&root.join("fidx"), POOL).unwrap();
    let mut follower = Follower::connect(
        &hp.addr.to_string(),
        shared_f.clone(),
        FollowerOpts {
            wait_ms: 0,
            ..Default::default()
        },
    )
    .unwrap();
    drain(&mut follower);
    assert_eq!(follower.applied(), 3);
    assert_eq!(
        follower
            .stats()
            .snapshots
            .load(std::sync::atomic::Ordering::Relaxed),
        1,
        "a fresh seed re-handshakes through exactly one snapshot"
    );
    assert_eq!(shared_f.read().len(), 19);

    pc.quit().unwrap();
    hp.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// Plan-cache regression: with `--result-cache` enabled on a follower,
/// a result cached before a frame lands must not be served after the
/// frame applies. The follower's query epoch incorporates replicated
/// LSNs, so the stale entry becomes unreachable the moment the state
/// changes — reads on a lagging follower are stale-at-worst, never
/// wrong-under-the-current-state.
#[test]
fn plan_cache_on_follower_never_serves_stale_reads() {
    let root = fresh_dir("cache");
    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 12, SEQ_LEN, 0xCAC);
    SeqIndex::build(&corpus, IndexConfig::default())
        .unwrap()
        .save(&root.join("idx"))
        .unwrap();
    let (shared_p, _) = SharedIndex::open_durable(
        &root.join("idx"),
        &root.join("wal"),
        POOL,
        FsyncPolicy::Always,
    )
    .unwrap();
    let hp = serve(shared_p, &test_config(0)).unwrap();
    let mut pc = Client::connect(hp.addr).unwrap();

    let (shared_f, mut follower) = repl::bootstrap(
        &hp.addr.to_string(),
        FollowerOpts {
            wait_ms: 0,
            ..Default::default()
        },
    )
    .unwrap();
    // Result cache ON — the whole point of this regression test.
    let hf = serve_with(shared_f, &test_config(32), Some(follower.stats())).unwrap();
    let mut fc = Client::connect(hf.addr).unwrap();

    // Prime the cache: identical request twice; the second must hit.
    let before = query_key(&mut fc, 0, EngineKind::Mt);
    let again = query_key(&mut fc, 0, EngineKind::Mt);
    assert_eq!(before, again);
    let plan = fc.stats(false).unwrap().unwrap().plan.unwrap();
    assert!(plan.cache_hits >= 1, "second identical query must hit");

    // The primary inserts an exact copy of ordinal 0: any ρ-query on
    // ordinal 0 must now match the twin (correlation 1).
    let twin = corpus.series()[0].values().to_vec();
    let new_ord = pc.insert(twin).unwrap().unwrap();
    drain(&mut follower);

    // Same request on the follower: the cached pre-frame result is
    // keyed on the old epoch, so the answer now includes the twin.
    let (_, after) = query_key(&mut fc, 0, EngineKind::Mt);
    assert!(
        after.iter().any(|(seq, _)| *seq == new_ord),
        "follower served a stale cached result: {after:?} misses ord {new_ord}"
    );
    assert_eq!(
        query_key(&mut pc, 0, EngineKind::Mt),
        query_key(&mut fc, 0, EngineKind::Mt),
        "post-frame answers must be identical on both roles"
    );

    fc.quit().unwrap();
    pc.quit().unwrap();
    hf.shutdown();
    hp.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}
