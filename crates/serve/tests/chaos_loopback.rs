//! Fault injection over a live loopback connection: a `simserved` instance
//! serving an index built on fault-injecting devices. Device errors must
//! surface as `ERR IO` frames — the connection stays open, later
//! fault-free requests succeed — and the per-op STATS counters must
//! account for every request and every error exactly.

use pagestore::{Disk, FaultPlan, FaultyDisk, PageDevice};
use simquery::prelude::*;
use simserve::client::Client;
use simserve::protocol::{EngineKind, ErrCode, QueryParams, Response, WireThreshold};
use simserve::server::{serve, ServerConfig, ServerHandle};
use std::sync::Arc;

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_depth: 16,
        max_conns: 16,
        result_cache: 0,
        ..ServerConfig::default()
    }
}

/// A served index whose devices the test can arm and disarm.
struct FaultedServer {
    tree: Arc<FaultyDisk>,
    heap: Arc<FaultyDisk>,
    handle: ServerHandle,
}

impl FaultedServer {
    fn start(n: usize, seed: u64) -> Self {
        let corpus = Corpus::generate(CorpusKind::SyntheticWalks, n, 64, seed);
        let tree = Arc::new(FaultyDisk::new(Arc::new(Disk::new())));
        let heap = Arc::new(FaultyDisk::new(Arc::new(Disk::new())));
        let index = SeqIndex::build_on(
            &corpus,
            IndexConfig::default(),
            Arc::clone(&tree) as Arc<dyn PageDevice>,
            Arc::clone(&heap) as Arc<dyn PageDevice>,
        )
        .expect("unarmed faulty devices are healthy")
        .expect("corpus is non-empty");
        let handle = serve(SharedIndex::new(index), &test_config()).unwrap();
        Self { tree, heap, handle }
    }

    /// Persistent read errors on every page of both devices. Page-range
    /// triggers (not access counts) keep the behaviour independent of how
    /// many pages the buffer pool happens to have cached.
    fn break_reads(&self) {
        self.tree
            .arm(FaultPlan::new().read_error_on_pages(0, u32::MAX));
        self.heap
            .arm(FaultPlan::new().read_error_on_pages(0, u32::MAX));
    }

    fn repair(&self) {
        self.tree.disarm();
        self.heap.disarm();
    }
}

fn query_params(ord: usize) -> QueryParams {
    QueryParams {
        ord,
        ma: (4, 10),
        threshold: WireThreshold::Rho(0.95),
        engine: EngineKind::Mt,
        limit: 0,
    }
}

fn assert_io_err(response: &Response) {
    assert!(
        matches!(
            response,
            Response::Err {
                code: ErrCode::Io,
                ..
            }
        ),
        "expected ERR IO, got {response:?}"
    );
}

/// The acceptance scenario: device faults yield `ERR IO` frames, the
/// connection survives, and once the device recovers the *same connection*
/// serves the exact pre-fault results again.
#[test]
fn faulted_requests_return_err_io_then_recover_on_same_connection() {
    let fs = FaultedServer::start(40, 31);
    let mut client = Client::connect(fs.handle.addr).unwrap();

    // Fault-free baseline.
    let (n_base, matches_base) = client.query(query_params(5)).unwrap().unwrap();

    // Break the devices: every query verb now degrades to a typed frame.
    fs.break_reads();
    assert_io_err(&client.query(query_params(5)).unwrap().unwrap_err());
    assert_io_err(&client.knn(5, 3, (4, 10)).unwrap().unwrap_err());
    assert_io_err(
        &client
            .join((4, 10), WireThreshold::Rho(0.97))
            .unwrap()
            .unwrap_err(),
    );
    // INFO reads no pages; the connection is demonstrably still healthy
    // even while the device is down.
    assert!(client.info().unwrap().is_ok());

    // Repair and replay: same connection, exact pre-fault answer.
    fs.repair();
    let (n, matches) = client.query(query_params(5)).unwrap().unwrap();
    assert_eq!(n, n_base);
    assert_eq!(
        matches
            .iter()
            .map(|m| (m.seq, m.transform))
            .collect::<Vec<_>>(),
        matches_base
            .iter()
            .map(|m| (m.seq, m.transform))
            .collect::<Vec<_>>(),
        "post-recovery result must equal the pre-fault result"
    );
    assert!(
        fs.tree.injected_total() + fs.heap.injected_total() > 0,
        "the fault campaign never fired"
    );
    client.quit().unwrap();
    fs.handle.shutdown();
}

/// STATS accounting is exact: every request of a scripted workload lands in
/// its op's `count`, every `ERR` (including the `ERR IO` path) in its
/// `errors`, with nothing double-counted and nothing dropped.
#[test]
fn stats_deltas_are_exact_for_scripted_workload_including_io_errors() {
    let fs = FaultedServer::start(30, 37);
    let mut client = Client::connect(fs.handle.addr).unwrap();

    // 5 clean queries, 2 faulted (ERR IO), 2 clean again: query 9/2.
    for ord in 0..5 {
        client.query(query_params(ord)).unwrap().unwrap();
    }
    fs.break_reads();
    for ord in 0..2 {
        assert_io_err(&client.query(query_params(ord)).unwrap().unwrap_err());
    }
    fs.repair();
    for ord in 5..7 {
        client.query(query_params(ord)).unwrap().unwrap();
    }
    // One of each remaining verb, all clean.
    client.knn(3, 4, (4, 10)).unwrap().unwrap();
    client
        .join((4, 10), WireThreshold::Rho(0.97))
        .unwrap()
        .unwrap();
    let values = {
        // Round-trip an existing series back in as a fresh row.
        let (_, m) = client.query(query_params(0)).unwrap().unwrap();
        assert!(!m.is_empty());
        client.info().unwrap().unwrap(); // info #1
        Corpus::generate(CorpusKind::SyntheticWalks, 1, 64, 99).series()[0]
            .values()
            .to_vec()
    };
    let ord = client.insert(values).unwrap().unwrap();
    assert!(client.delete(ord).unwrap().unwrap());
    client.info().unwrap().unwrap(); // info #2

    let stats = client.stats(false).unwrap().unwrap();
    let line = |op: &str| {
        stats
            .ops
            .iter()
            .find(|o| o.op == op)
            .unwrap_or_else(|| panic!("missing {op} line in {stats:?}"))
    };
    // 9 scripted + 1 extra query used to source the insert values.
    assert_eq!((line("query").count, line("query").errors), (10, 2));
    assert_eq!((line("knn").count, line("knn").errors), (1, 0));
    assert_eq!((line("join").count, line("join").errors), (1, 0));
    assert_eq!((line("insert").count, line("insert").errors), (1, 0));
    assert_eq!((line("delete").count, line("delete").errors), (1, 0));
    assert_eq!((line("info").count, line("info").errors), (2, 0));
    // The in-flight STATS itself is recorded only after its report is
    // built, so it must not appear yet.
    assert!(!stats.ops.iter().any(|o| o.op == "stats"), "{stats:?}");
    assert_eq!(stats.busy_rejected, 0);
    assert!(stats.counters_total.0 > 0, "tree reads recorded");
    assert!(stats.counters_delta.0 > 0, "delta since server start");

    // A second STATS now sees the first one, all other counts unchanged.
    let stats2 = client.stats(false).unwrap().unwrap();
    let sline = stats2.ops.iter().find(|o| o.op == "stats").unwrap();
    assert_eq!((sline.count, sline.errors), (1, 0));
    let qline = stats2.ops.iter().find(|o| o.op == "query").unwrap();
    assert_eq!((qline.count, qline.errors), (10, 2));

    client.quit().unwrap();
    fs.handle.shutdown();
}
