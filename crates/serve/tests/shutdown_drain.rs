//! Graceful-shutdown drain: `ServerHandle::shutdown` must stop
//! accepting, let every in-flight (and already-queued) request finish
//! and answer its client, reject late submissions with the typed
//! shutting-down error, and join every worker thread before returning.
//! Admission control stays intact right up to the close: a full queue
//! still answers `ERR code=BUSY`.

use simquery::prelude::*;
use simquery::shared::SharedIndex;
use simserve::client::Client;
use simserve::protocol::{EngineKind, ErrCode, QueryParams, Request, Response, WireThreshold};
use simserve::server::{serve, ServerConfig};
use std::net::TcpStream;
use std::time::Duration;

const SEQ_LEN: usize = 64;

/// One worker, queue depth 1: a slow JOIN occupies the worker, one
/// QUERY sits in the queue, and the rest is deterministic admission.
fn drain_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_depth: 1,
        max_conns: 16,
        result_cache: 0,
        ..ServerConfig::default()
    }
}

fn query_params(ord: usize) -> QueryParams {
    QueryParams {
        ord,
        ma: (3, 9),
        threshold: WireThreshold::Rho(0.9),
        engine: EngineKind::Mt,
        limit: 0,
    }
}

/// A JOIN heavy enough (scan engine, wide window family, permissive
/// threshold, ~20k candidate pairs) to keep the single worker busy for
/// the whole choreography below — hundreds of milliseconds in a debug
/// build.
fn slow_join() -> Request {
    Request::Join {
        ma: (2, 32),
        threshold: WireThreshold::Rho(0.0),
        engine: EngineKind::Scan,
        limit: 0,
    }
}

#[test]
fn shutdown_drains_in_flight_and_queued_requests() {
    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 200, SEQ_LEN, 0xD8A1);
    let shared = SharedIndex::new(SeqIndex::build(&corpus, IndexConfig::default()).unwrap());
    let handle = serve(shared, &drain_config()).unwrap();
    let addr = handle.addr;

    // A: the in-flight request — a slow JOIN the single worker picks up.
    let a = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        let join = c.call(&slow_join()).unwrap();
        // After the drain the connection is still alive, but the queue
        // is closed: a late request gets the typed shutdown error.
        let late = c.call(&Request::Query(query_params(0))).unwrap();
        (join, late)
    });
    std::thread::sleep(Duration::from_millis(150)); // worker now owns the JOIN

    // B: the queued request — admitted (depth 1), waiting for the worker.
    let b = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.call(&Request::Query(query_params(1))).unwrap()
    });
    std::thread::sleep(Duration::from_millis(50)); // B is sitting in the queue

    // C: admission control right before the drain — the queue is full.
    let mut c = Client::connect(addr).unwrap();
    match c.call(&Request::Query(query_params(2))).unwrap() {
        Response::Err {
            code: ErrCode::Busy,
            ..
        } => {}
        other => panic!("a full queue must answer BUSY, got {other:?}"),
    }

    // The drain: returns only after the acceptor AND every worker have
    // been joined — which forces the JOIN and the queued QUERY to have
    // completed and answered their clients.
    handle.shutdown();

    let (join, late) = a.join().unwrap();
    match join {
        Response::Pairs { n, .. } => assert!(n > 0, "the slow JOIN finished with results"),
        other => panic!("the in-flight JOIN must complete, got {other:?}"),
    }
    match late {
        Response::Err {
            code: ErrCode::Server,
            msg,
        } => assert!(
            msg.contains("shutting down"),
            "late requests get the typed shutdown error, got `{msg}`"
        ),
        other => panic!("a post-drain request must be refused, got {other:?}"),
    }
    match b.join().unwrap() {
        Response::Matches { .. } => {}
        other => panic!("the queued QUERY must complete through the drain, got {other:?}"),
    }

    // Stopped accepting: the listener is gone.
    assert!(
        TcpStream::connect(addr).is_err(),
        "a drained server must refuse new connections"
    );
}

/// An idle server shuts down promptly and refuses connections after.
#[test]
fn idle_shutdown_is_clean() {
    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 8, SEQ_LEN, 0x1D7E);
    let shared = SharedIndex::new(SeqIndex::build(&corpus, IndexConfig::default()).unwrap());
    let handle = serve(shared, &drain_config()).unwrap();
    let addr = handle.addr;
    let mut c = Client::connect(addr).unwrap();
    match c.call(&Request::Query(query_params(0))).unwrap() {
        Response::Matches { .. } => {}
        other => panic!("warm-up query failed: {other:?}"),
    }
    c.quit().unwrap();
    handle.shutdown();
    assert!(TcpStream::connect(addr).is_err());
}
