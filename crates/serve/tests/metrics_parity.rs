//! Metrics-exactness suite: the `METRICS` exposition must agree with the
//! `STATS` report op-for-op (same atomics, same numbers), the slow-query
//! log must fire on exactly the configured threshold semantics, and the
//! trace ring must stay bounded and drainable under load.
//!
//! The tracer is process-global (`simobs::trace::global()`), so every
//! test here serialises on one mutex — otherwise a server started by one
//! test would retune the sampling rate under another.

use simquery::prelude::*;
use simserve::client::Client;
use simserve::protocol::{EngineKind, QueryParams, Request, WireThreshold};
use simserve::server::{serve, ServerConfig, ServerHandle};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serialises the tests in this binary (shared global tracer).
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn start(cfg_tweak: impl FnOnce(&mut ServerConfig)) -> (SharedIndex, ServerHandle) {
    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 60, 64, 43);
    let index = SeqIndex::build(&corpus, IndexConfig::default()).unwrap();
    let shared = SharedIndex::new(index);
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_depth: 16,
        max_conns: 16,
        result_cache: 32,
        ..ServerConfig::default()
    };
    cfg_tweak(&mut cfg);
    let handle = serve(shared.clone(), &cfg).unwrap();
    (shared, handle)
}

fn query_params(ord: usize) -> QueryParams {
    QueryParams {
        ord,
        ma: (4, 10),
        threshold: WireThreshold::Rho(0.95),
        engine: EngineKind::Auto,
        limit: 0,
    }
}

/// Value of the exposition line whose full name (labels included) is
/// `name`; panics with context when absent.
fn metric(lines: &[String], name: &str) -> u64 {
    lines
        .iter()
        .find_map(|l| l.strip_prefix(name).and_then(|rest| rest.strip_prefix(' ')))
        .unwrap_or_else(|| panic!("exposition missing {name}: {lines:#?}"))
        .parse()
        .unwrap_or_else(|e| panic!("{name} not an integer: {e}"))
}

#[test]
fn metrics_and_stats_agree_op_for_op() {
    let _guard = serial();
    let (_shared, handle) = start(|_| {});
    let mut client = Client::connect(handle.addr).unwrap();

    // A workload touching several ops, a cache hit, one error, and every
    // physical engine (so the drift report has an mt/st/scan row each).
    for ord in 0..8 {
        client.query(query_params(ord)).unwrap().unwrap();
    }
    for engine in [EngineKind::Mt, EngineKind::St, EngineKind::Scan] {
        client
            .query(QueryParams {
                engine,
                ..query_params(20)
            })
            .unwrap()
            .unwrap();
    }
    client.query(query_params(0)).unwrap().unwrap(); // cache hit
    client.knn(3, 4, (4, 10)).unwrap().unwrap();
    client.info().unwrap().unwrap();
    client.query(query_params(9999)).unwrap().unwrap_err(); // RANGE error

    // STATS first, METRICS immediately after: an op is recorded once its
    // response is built, so the exposition additionally sees the STATS
    // call itself but not the in-flight METRICS call.
    let stats = client.stats(false).unwrap().unwrap();
    let lines = client.metrics().unwrap().unwrap();

    for op in &stats.ops {
        let label = format!("{{op=\"{}\"}}", op.op);
        assert_eq!(
            metric(&lines, &format!("simseq_op_total{label}")),
            op.count,
            "count parity for {}",
            op.op
        );
        assert_eq!(
            metric(&lines, &format!("simseq_op_errors_total{label}")),
            op.errors,
            "error parity for {}",
            op.op
        );
        // Latency summaries read the same histogram buckets.
        for (q, v) in [("0.5", op.p50_us), ("0.95", op.p95_us), ("0.99", op.p99_us)] {
            let name = format!("simseq_op_latency_us{{op=\"{}\",quantile=\"{q}\"}}", op.op);
            assert_eq!(metric(&lines, &name), v, "latency parity for {name}");
        }
        assert_eq!(
            metric(&lines, &format!("simseq_op_latency_us_count{label}")),
            op.count
        );
        assert_eq!(
            metric(&lines, &format!("simseq_op_latency_us_max_us{label}")),
            op.max_us
        );
    }
    let query = stats.ops.iter().find(|o| o.op == "query").unwrap();
    assert_eq!(query.count, 13, "11 misses + 1 hit + 1 error");
    assert_eq!(query.errors, 1);
    assert_eq!(metric(&lines, "simseq_op_total{op=\"stats\"}"), 1);
    assert_eq!(
        metric(&lines, "simseq_op_total{op=\"metrics\"}"),
        0,
        "the in-flight METRICS op is not yet recorded"
    );

    // Gauges and counters outside the op table.
    assert_eq!(
        metric(&lines, "simseq_connections_total"),
        stats.connections
    );
    assert_eq!(
        metric(&lines, "simseq_busy_rejected_total"),
        stats.busy_rejected
    );
    assert_eq!(
        metric(&lines, "simseq_index_node_reads_total"),
        stats.counters_total.0
    );
    assert_eq!(
        metric(&lines, "simseq_index_record_page_reads_total"),
        stats.counters_total.1
    );
    assert_eq!(
        metric(&lines, "simseq_index_record_fetches_total"),
        stats.counters_total.2
    );

    // Planner and result-cache counters mirror the PLAN stat line.
    let plan = stats.plan.expect("PLAN line present");
    assert_eq!(metric(&lines, "simseq_plans_built_total"), plan.built);
    assert_eq!(
        metric(&lines, "simseq_result_cache_hits_total"),
        plan.cache_hits
    );
    assert_eq!(
        metric(&lines, "simseq_result_cache_misses_total"),
        plan.cache_misses
    );
    assert_eq!(
        metric(&lines, "simseq_result_cache_admitted_total"),
        plan.cache_admitted
    );
    assert_eq!(
        metric(&lines, "simseq_result_cache_rejected_total"),
        plan.cache_rejected
    );
    assert_eq!(
        metric(&lines, "simseq_result_cache_entries"),
        plan.cache_entries
    );
    assert_eq!(
        metric(&lines, "simseq_plan_dispatch_total{engine=\"mt\"}"),
        plan.mt
    );
    assert!(plan.cache_hits >= 1 && plan.cache_admitted >= 1, "{plan:?}");

    // Est-vs-actual drift gauges are populated for every engine that ran.
    for engine in ["mt", "st", "scan"] {
        let tag = format!("engine=\"{engine}\"");
        assert!(
            lines
                .iter()
                .any(|l| l.starts_with("simseq_cost_drift_queries_total{") && l.contains(&tag)),
            "drift row for {engine}: {lines:#?}"
        );
        assert!(
            lines
                .iter()
                .any(|l| l.starts_with("simseq_cost_drift_comparisons{") && l.contains(&tag)),
            "comparisons drift gauge for {engine}"
        );
    }
    assert!(
        lines
            .iter()
            .any(|l| l.starts_with("simseq_cost_drift_pages{")),
        "pages drift gauge present"
    );

    client.quit().unwrap();
    handle.shutdown();
}

#[test]
fn slow_query_log_fires_on_threshold_and_skips_cache_hits() {
    let _guard = serial();

    // Threshold left at the default (off): nothing ever fires.
    let (_s, quiet) = start(|_| {});
    let mut client = Client::connect(quiet.addr).unwrap();
    client.query(query_params(0)).unwrap().unwrap();
    let lines = client.metrics().unwrap().unwrap();
    assert_eq!(metric(&lines, "simseq_slow_queries_total"), 0);
    client.quit().unwrap();
    quiet.shutdown();

    // Threshold 0 µs: `total_us >= threshold` holds for every timed
    // query, so the log fires exactly once per cache miss — and never on
    // a cache hit, which skips the execution path entirely.
    let (_s, noisy) = start(|cfg| cfg.slow_query_us = 0);
    let mut client = Client::connect(noisy.addr).unwrap();
    client.query(query_params(0)).unwrap().unwrap(); // miss → fires
    client.query(query_params(0)).unwrap().unwrap(); // hit → silent
    client.query(query_params(1)).unwrap().unwrap(); // miss → fires
    client.knn(2, 3, (4, 10)).unwrap().unwrap(); // miss → fires
    let lines = client.metrics().unwrap().unwrap();
    assert_eq!(metric(&lines, "simseq_slow_queries_total"), 3);

    // The ring keeps the entries themselves, queryable in-process.
    let entries = noisy.metrics.slow().recent(10);
    assert_eq!(entries.len(), 3);
    assert!(entries[0].query.starts_with("QUERY ord=0"), "{entries:?}");
    assert!(entries[2].query.starts_with("KNN ord=2"), "{entries:?}");
    // Stage splits nest inside the total (µs truncation is monotone).
    for e in &entries {
        assert!(e.plan.contains("engine="), "{e:?}");
        assert!(e.total_us >= e.plan_us, "{e:?}");
        assert!(e.total_us >= e.exec_us, "{e:?}");
    }
    client.quit().unwrap();
    noisy.shutdown();
}

#[test]
fn trace_ring_is_bounded_and_drains_oldest_first() {
    let _guard = serial();
    let (_shared, handle) = start(|cfg| cfg.trace_sample = 1);
    let mut client = Client::connect(handle.addr).unwrap();

    // Clear anything left in the process-global ring by earlier tests.
    client.call(&Request::Trace { n: usize::MAX }).unwrap();

    // Every root is sampled: each query records at least its plan/execute
    // spans.
    for ord in 0..10 {
        client.query(query_params(ord)).unwrap().unwrap();
    }
    let head = client.trace(4).unwrap().unwrap();
    assert_eq!(head.len(), 4, "TRACE n caps the drain");
    assert!(
        head.windows(2).all(|w| w[0].seq < w[1].seq),
        "oldest first: {head:?}"
    );
    let known = [
        "plan.build",
        "plan.execute",
        "shard.scatter",
        "shard.fragment",
        "shard.gather",
        "shard.knn",
        "wal.append",
        "wal.fsync",
        "repl.feed",
        "repl.apply",
    ];
    for ev in &head {
        assert!(known.contains(&ev.name.as_str()), "unknown span {ev:?}");
    }

    // Hammer the global tracer well past the ring capacity from several
    // threads: pushes must never block, and the drain stays bounded.
    let threads: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(|| {
                for _ in 0..2_000 {
                    let _span = simobs::trace::span("plan.build");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let drained = client.trace(usize::MAX).unwrap().unwrap();
    assert!(
        drained.len() <= 4096,
        "ring bounded at RING_CAP, got {}",
        drained.len()
    );
    assert!(!drained.is_empty(), "spans were recorded");

    // Draining consumes: a second drain with no traffic in between finds
    // (at most) the spans of the TRACE ops themselves.
    let again = client.trace(usize::MAX).unwrap().unwrap();
    assert!(again.len() < drained.len(), "drain consumed the ring");

    // Dropped-vs-recorded health counters are visible in the exposition.
    let lines = client.metrics().unwrap().unwrap();
    assert!(metric(&lines, "simseq_trace_recorded_total") > 0);
    assert_eq!(metric(&lines, "simseq_trace_sample"), 1);

    client.quit().unwrap();
    handle.shutdown();
}
