//! End-to-end tests over a loopback TCP connection: a real `simserved`
//! server instance, a real [`Client`], every protocol verb, error frames,
//! malformed input, and admission control.

use simquery::engine::mtindex;
use simquery::prelude::*;
use simserve::client::Client;
use simserve::protocol::{EngineKind, ErrCode, QueryParams, Response, WireThreshold};
use simserve::server::{serve, ServerConfig, ServerHandle};
use std::io::BufReader;
use std::net::TcpStream;

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(), // pick a free port
        workers: 2,
        queue_depth: 16,
        max_conns: 16,
        result_cache: 0,
        ..ServerConfig::default()
    }
}

fn start(n: usize, seed: u64) -> (SharedIndex, ServerHandle) {
    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, n, 64, seed);
    let index = SeqIndex::build(&corpus, IndexConfig::default()).unwrap();
    let shared = SharedIndex::new(index);
    let handle = serve(shared.clone(), &test_config()).unwrap();
    (shared, handle)
}

#[test]
fn query_over_wire_matches_direct_engine() {
    let (shared, handle) = start(80, 7);
    let mut client = Client::connect(handle.addr).unwrap();
    for ord in [0usize, 13, 79] {
        let params = QueryParams {
            ord,
            ma: (4, 12),
            threshold: WireThreshold::Rho(0.95),
            engine: EngineKind::Mt,
            limit: 0,
        };
        let (n, matches) = client.query(params).unwrap().unwrap();
        assert_eq!(n, matches.len(), "no truncation with limit=0");
        let mut got: Vec<(usize, usize)> = matches.iter().map(|m| (m.seq, m.transform)).collect();
        got.sort_unstable();

        let index = shared.read();
        let family = Family::moving_averages(4..=12, index.seq_len());
        let spec = WireThreshold::Rho(0.95).to_spec();
        let q = index.fetch_series(ord).unwrap();
        let want = mtindex::range_query(&index, &q, &family, &spec)
            .unwrap()
            .sorted_pairs();
        assert_eq!(got, want, "ord {ord}");
    }
    client.quit().unwrap();
    handle.shutdown();
}

#[test]
fn limit_truncates_but_reports_full_count() {
    let (_shared, handle) = start(80, 7);
    let mut client = Client::connect(handle.addr).unwrap();
    let full = QueryParams {
        ord: 0,
        ma: (4, 12),
        threshold: WireThreshold::Rho(0.9),
        engine: EngineKind::Mt,
        limit: 0,
    };
    let (n_full, matches_full) = client.query(full).unwrap().unwrap();
    assert!(n_full >= 2, "self-match across windows expected");
    let limited = QueryParams { limit: 1, ..full };
    let (n, matches) = client.query(limited).unwrap().unwrap();
    assert_eq!(n, n_full, "total count survives truncation");
    assert_eq!(matches.len(), 1);
    assert_eq!(matches[0].seq, matches_full[0].seq);
    client.quit().unwrap();
    handle.shutdown();
}

#[test]
fn knn_and_join_round_trip() {
    let (_shared, handle) = start(40, 11);
    let mut client = Client::connect(handle.addr).unwrap();

    let neighbors = client.knn(3, 5, (4, 10)).unwrap().unwrap();
    assert_eq!(neighbors.len(), 5);
    // Nearest neighbor of a series in the corpus is itself at distance ~0.
    assert_eq!(neighbors[0].seq, 3);
    assert!(neighbors[0].dist < 1e-9);
    assert!(neighbors.windows(2).all(|w| w[0].dist <= w[1].dist));

    let (n, pairs) = client
        .join((4, 10), WireThreshold::Rho(0.97))
        .unwrap()
        .unwrap();
    assert_eq!(n, pairs.len());
    for p in &pairs {
        assert_ne!(p.a, p.b, "join excludes self-pairs");
    }
    client.quit().unwrap();
    handle.shutdown();
}

#[test]
fn insert_delete_info_lifecycle() {
    let (shared, handle) = start(30, 13);
    let mut client = Client::connect(handle.addr).unwrap();

    let info = client.info().unwrap().unwrap();
    let get = |k: &str| -> String {
        info.iter()
            .find(|(key, _)| key == k)
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| panic!("INFO missing key {k}"))
    };
    assert_eq!(get("sequences"), "30");
    assert_eq!(get("seq_len"), "64");

    // Insert a copy of series 0; it must land at the next ordinal and be
    // visible to both the server and the directly-held handle.
    let values = shared.read().fetch_series(0).unwrap().values().to_vec();
    let ord = client.insert(values).unwrap().unwrap();
    assert_eq!(ord, 30);
    assert_eq!(shared.read().len(), 31);

    // The duplicate is an exact match of the original. (ρ must stay below
    // Eq. 9's ceiling (n−1)/n ≈ 0.984 at n = 64, else ε = 0.)
    let (_, matches) = client
        .query(QueryParams {
            ord,
            ma: (2, 6),
            threshold: WireThreshold::Rho(0.97),
            engine: EngineKind::Mt,
            limit: 0,
        })
        .unwrap()
        .unwrap();
    let seqs: Vec<usize> = matches.iter().map(|m| m.seq).collect();
    assert!(seqs.contains(&0) && seqs.contains(&30), "got {seqs:?}");

    assert!(client.delete(ord).unwrap().unwrap(), "ordinal was live");
    assert!(!client.delete(ord).unwrap().unwrap(), "double delete");
    client.quit().unwrap();
    handle.shutdown();
}

#[test]
fn error_frames_for_bad_input() {
    let (_shared, handle) = start(20, 17);
    let mut client = Client::connect(handle.addr).unwrap();

    // Out-of-range ordinal → RANGE, connection stays usable.
    let response = client
        .query(QueryParams {
            ord: 999,
            ma: (4, 10),
            threshold: WireThreshold::Rho(0.95),
            engine: EngineKind::Mt,
            limit: 0,
        })
        .unwrap()
        .unwrap_err();
    assert!(
        matches!(
            &response,
            Response::Err {
                code: ErrCode::Range,
                ..
            }
        ),
        "{response:?}"
    );

    // MA window wider than the sequences → QUERY error.
    let response = client
        .query(QueryParams {
            ord: 0,
            ma: (4, 1000),
            threshold: WireThreshold::Rho(0.95),
            engine: EngineKind::Mt,
            limit: 0,
        })
        .unwrap()
        .unwrap_err();
    assert!(
        matches!(
            &response,
            Response::Err {
                code: ErrCode::Query,
                ..
            }
        ),
        "{response:?}"
    );

    // Malformed lines → BADREQ, and the connection keeps working.
    for bad in [
        "FROB ord=1",
        "QUERY ord=notanumber",
        "QUERY rho=0.9", // missing ord
        "KNN ord=0 k=zero",
        "INSERT values=1;2;x",
        "QUERY ord=1 engine=warp",
        // Out-of-range thresholds must be rejected at parse time: a
        // worker executing RangeSpec::correlation(2.0) would panic.
        "QUERY ord=1 rho=2",
        "JOIN rho=-1.5",
        "QUERY ord=1 eps=-3",
    ] {
        let response = client.call_raw(bad).unwrap();
        assert!(
            matches!(
                &response,
                Response::Err {
                    code: ErrCode::BadRequest,
                    ..
                }
            ),
            "{bad:?} → {response:?}"
        );
    }
    let info = client.info().unwrap();
    assert!(info.is_ok(), "connection survives malformed input");
    client.quit().unwrap();
    handle.shutdown();
}

#[test]
fn zero_depth_queue_rejects_with_busy() {
    // queue_depth 0 means admission control rejects every request before
    // it reaches a worker: the client must see ERR code=BUSY, not a hang.
    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 10, 64, 19);
    let index = SeqIndex::build(&corpus, IndexConfig::default()).unwrap();
    let cfg = ServerConfig {
        queue_depth: 0,
        ..test_config()
    };
    let handle = serve(SharedIndex::new(index), &cfg).unwrap();
    let mut client = Client::connect(handle.addr).unwrap();
    let response = client.call(&simserve::protocol::Request::Info).unwrap();
    assert!(
        matches!(
            &response,
            Response::Err {
                code: ErrCode::Busy,
                ..
            }
        ),
        "{response:?}"
    );
    assert!(handle.metrics.busy_rejected() >= 1);
    client.quit().unwrap();
    handle.shutdown();
}

#[test]
fn connection_cap_rejects_with_busy() {
    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 10, 64, 23);
    let index = SeqIndex::build(&corpus, IndexConfig::default()).unwrap();
    let cfg = ServerConfig {
        max_conns: 1,
        ..test_config()
    };
    let handle = serve(SharedIndex::new(index), &cfg).unwrap();
    let mut first = Client::connect(handle.addr).unwrap();
    assert!(first.info().unwrap().is_ok(), "first connection serves");

    // The second connection is greeted with an ERR BUSY frame and closed.
    let stream = TcpStream::connect(handle.addr).unwrap();
    let mut reader = BufReader::new(stream);
    let greeting = Response::read_from(&mut reader).unwrap();
    assert!(
        matches!(
            &greeting,
            Response::Err {
                code: ErrCode::Busy,
                ..
            }
        ),
        "{greeting:?}"
    );

    first.quit().unwrap();
    handle.shutdown();
}

#[test]
fn stats_report_counts_and_latencies() {
    let (_shared, handle) = start(60, 29);
    let mut client = Client::connect(handle.addr).unwrap();
    for ord in 0..10 {
        client
            .query(QueryParams {
                ord,
                ma: (4, 10),
                threshold: WireThreshold::Rho(0.96),
                engine: EngineKind::Mt,
                limit: 0,
            })
            .unwrap()
            .unwrap();
    }
    client.info().unwrap().unwrap();

    let stats = client.stats(true).unwrap().unwrap();
    let query_line = stats
        .ops
        .iter()
        .find(|o| o.op == "query")
        .expect("query op present");
    assert_eq!(query_line.count, 10);
    assert_eq!(query_line.errors, 0);
    assert!(query_line.p50_us > 0, "{query_line:?}");
    assert!(query_line.p50_us <= query_line.p95_us);
    assert!(query_line.p95_us <= query_line.p99_us);
    assert!(stats.ops.iter().any(|o| o.op == "info"));
    // Ten MT queries touched the tree: counters moved since server start.
    assert!(stats.counters_total.0 > 0, "node reads recorded");
    assert!(stats.counters_delta.0 > 0, "delta vs baseline");

    // reset=true zeroed the op stats; only the STATS calls themselves and
    // later ops accumulate from here.
    let stats2 = client.stats(false).unwrap().unwrap();
    assert!(
        !stats2.ops.iter().any(|o| o.op == "query"),
        "query stats were reset: {stats2:?}"
    );
    client.quit().unwrap();
    handle.shutdown();
}

#[test]
fn explain_reports_the_chosen_plan() {
    let (_shared, handle) = start(60, 31);
    let mut client = Client::connect(handle.addr).unwrap();

    // Baseline: the real query's total count.
    let (n, _) = client
        .query(QueryParams {
            ord: 0,
            ma: (4, 10),
            threshold: WireThreshold::Rho(0.95),
            engine: EngineKind::Auto,
            limit: 0,
        })
        .unwrap()
        .unwrap();

    let response = client
        .call_raw("EXPLAIN QUERY ord=0 ma=4..10 rho=0.95 engine=auto")
        .unwrap();
    let Response::Plan(pairs) = response else {
        panic!("EXPLAIN did not return a plan: {response:?}");
    };
    let get = |k: &str| -> &str {
        pairs
            .iter()
            .find(|(key, _)| key == k)
            .map(|(_, v)| v.as_str())
            .unwrap_or_else(|| panic!("PLAN missing key {k}: {pairs:?}"))
    };
    assert_eq!(get("verb"), "query");
    assert_eq!(get("chosen_by"), "cost-model");
    assert!(["mt", "st", "scan"].contains(&get("engine")), "{pairs:?}");
    assert_eq!(get("matches"), n.to_string(), "EXPLAIN executed the query");
    // Estimates and measurements are both present and well-formed.
    for k in ["est_nodes", "est_pages", "est_cmps", "est_cost"] {
        get(k)
            .parse::<f64>()
            .unwrap_or_else(|_| panic!("{k} not a float"));
    }
    for k in ["partitions", "nodes", "pages", "cmps", "wall_us"] {
        get(k)
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("{k} not an integer"));
    }

    // A forced engine is reported as forced; kNN has only one strategy.
    let Response::Plan(forced) = client
        .call_raw("EXPLAIN QUERY ord=0 ma=4..10 rho=0.95 engine=scan")
        .unwrap()
    else {
        panic!("forced EXPLAIN failed");
    };
    let find = |pairs: &[(String, String)], k: &str| -> String {
        pairs.iter().find(|(key, _)| key == k).unwrap().1.clone()
    };
    assert_eq!(find(&forced, "engine"), "scan");
    assert_eq!(find(&forced, "chosen_by"), "forced");

    let Response::Plan(knn) = client.call_raw("EXPLAIN KNN ord=0 k=3 ma=4..10").unwrap() else {
        panic!("EXPLAIN KNN failed");
    };
    assert_eq!(find(&knn, "verb"), "knn");
    assert_eq!(find(&knn, "chosen_by"), "only-option");
    assert_eq!(find(&knn, "matches"), "3");

    client.quit().unwrap();
    handle.shutdown();
}

#[test]
fn result_cache_hits_and_mutation_invalidates() {
    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 50, 64, 37);
    let index = SeqIndex::build(&corpus, IndexConfig::default()).unwrap();
    let shared = SharedIndex::new(index);
    let cfg = ServerConfig {
        result_cache: 32,
        ..test_config()
    };
    let handle = serve(shared.clone(), &cfg).unwrap();
    let mut client = Client::connect(handle.addr).unwrap();

    let params = QueryParams {
        ord: 0,
        ma: (2, 6),
        threshold: WireThreshold::Rho(0.95),
        engine: EngineKind::Mt,
        limit: 0,
    };
    let (n1, m1) = client.query(params).unwrap().unwrap();
    let (n2, m2) = client.query(params).unwrap().unwrap();
    assert_eq!(n1, n2, "cache hit must be byte-identical");
    assert_eq!(
        m1.iter().map(|m| (m.seq, m.transform)).collect::<Vec<_>>(),
        m2.iter().map(|m| (m.seq, m.transform)).collect::<Vec<_>>()
    );
    let stats = client.stats(false).unwrap().unwrap();
    let plan = stats.plan.expect("PLAN line present");
    assert!(plan.cache_hits >= 1, "{plan:?}");
    assert!(plan.cache_misses >= 1, "{plan:?}");
    assert!(plan.cache_entries >= 1, "{plan:?}");
    assert!(plan.built >= 1, "{plan:?}");
    assert!(plan.mt >= 1, "dispatch counter moved: {plan:?}");

    // INSERT between two identical queries: the epoch moves, the cache
    // entry dies, and the next response must include the new duplicate —
    // a stale cached answer would omit it.
    let values = shared.read().fetch_series(0).unwrap().values().to_vec();
    let inserted = client.insert(values).unwrap().unwrap();
    let (_, m3) = client.query(params).unwrap().unwrap();
    let seqs: Vec<usize> = m3.iter().map(|m| m.seq).collect();
    assert!(
        seqs.contains(&inserted),
        "post-insert query served a stale cached result: {seqs:?}"
    );

    // DELETE invalidates too: the duplicate disappears again.
    assert!(client.delete(inserted).unwrap().unwrap());
    let (_, m4) = client.query(params).unwrap().unwrap();
    assert!(
        m4.iter().all(|m| m.seq != inserted),
        "post-delete query served a stale cached result"
    );

    // The limit is applied after the cache: a truncated variant of the
    // same query still hits and still reports the full count.
    let before = client.stats(false).unwrap().unwrap().plan.unwrap();
    let (n5, m5) = client
        .query(QueryParams { limit: 1, ..params })
        .unwrap()
        .unwrap();
    assert_eq!(n5, m4.len(), "full count survives truncation");
    assert!(m5.len() <= 1);
    let after = client.stats(false).unwrap().unwrap().plan.unwrap();
    assert!(
        after.cache_hits > before.cache_hits,
        "limit variants share the cache entry: {before:?} -> {after:?}"
    );

    client.quit().unwrap();
    handle.shutdown();
}

#[test]
fn cache_disabled_by_default_never_hits() {
    let (_shared, handle) = start(30, 41);
    let mut client = Client::connect(handle.addr).unwrap();
    let params = QueryParams {
        ord: 1,
        ma: (4, 10),
        threshold: WireThreshold::Rho(0.95),
        engine: EngineKind::Mt,
        limit: 0,
    };
    client.query(params).unwrap().unwrap();
    client.query(params).unwrap().unwrap();
    let plan = client.stats(false).unwrap().unwrap().plan.unwrap();
    assert_eq!(plan.cache_hits, 0, "{plan:?}");
    assert_eq!(plan.cache_entries, 0, "{plan:?}");
    assert_eq!(plan.cache_misses, 2, "{plan:?}");
    client.quit().unwrap();
    handle.shutdown();
}
