//! The acceptance check from the serving milestone: `simload` against a
//! live `simserved` with ≥ 8 concurrent connections must see 100 % result
//! parity with a direct single-threaded engine, and `STATS` must report
//! non-zero latency percentiles and per-op counts.

use simquery::prelude::*;
use simserve::client::Client;
use simserve::load::{run, LoadConfig};
use simserve::protocol::EngineKind;
use simserve::server::{serve, ServerConfig};

#[test]
fn eight_connections_full_parity_and_live_stats() {
    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 120, 64, 31);
    let index = SeqIndex::build(&corpus, IndexConfig::default()).unwrap();
    let shared = SharedIndex::new(index);
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        queue_depth: 64,
        max_conns: 64,
        result_cache: 0,
        ..ServerConfig::default()
    };
    let handle = serve(shared.clone(), &cfg).unwrap();

    let load = LoadConfig {
        addr: handle.addr.to_string(),
        conns: 8,
        ops_per_conn: 25,
        seed: 42,
        ma: (5, 20),
        rho: 0.96,
        engine: EngineKind::Mt,
        // Same handle the server holds: every response is checked against
        // a single-threaded engine run over identical data.
        verify: Some(shared.clone()),
        failover_to: Vec::new(),
        timeout_ms: None,
    };
    let report = run(&load).unwrap();

    assert_eq!(report.conns.len(), 8);
    assert_eq!(report.total_ops(), 8 * 25);
    assert_eq!(report.total_errors(), 0, "{}", report.render());
    let verified: u64 = report.conns.iter().map(|c| c.verified).sum();
    assert_eq!(verified, 8 * 25, "every response was parity-checked");
    assert_eq!(
        report.total_parity_failures(),
        0,
        "100% result parity required:\n{}",
        report.render()
    );
    let rendered = report.render();
    assert!(rendered.contains("parity: 100%"), "{rendered}");
    assert!(report.throughput() > 0.0);

    // STATS over the wire: per-op counts and non-zero percentiles.
    let mut client = Client::connect(handle.addr).unwrap();
    let stats = client.stats(false).unwrap().unwrap();
    let q = stats
        .ops
        .iter()
        .find(|o| o.op == "query")
        .expect("query stats");
    assert!(q.count >= 8 * 25, "{q:?}");
    assert!(q.p50_us > 0 && q.p95_us > 0 && q.p99_us > 0, "{q:?}");
    assert!(q.p50_us <= q.p95_us && q.p95_us <= q.p99_us, "{q:?}");
    // MT queries walked the index: access-counter totals moved.
    assert!(stats.counters_total.0 > 0, "{stats:?}");
    assert!(stats.connections >= 9, "8 load conns + this one: {stats:?}");
    client.quit().unwrap();
    handle.shutdown();
}

#[test]
fn busy_responses_are_counted_not_fatal() {
    // A tiny queue under 8 closed-loop connections sheds load with BUSY
    // instead of erroring or hanging; the load report separates the two.
    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 40, 64, 37);
    let index = SeqIndex::build(&corpus, IndexConfig::default()).unwrap();
    let shared = SharedIndex::new(index);
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_depth: 1,
        max_conns: 64,
        result_cache: 0,
        ..ServerConfig::default()
    };
    let handle = serve(shared.clone(), &cfg).unwrap();

    let load = LoadConfig {
        addr: handle.addr.to_string(),
        conns: 8,
        ops_per_conn: 10,
        seed: 7,
        ma: (5, 12),
        rho: 0.96,
        engine: EngineKind::Mt,
        verify: None,
        failover_to: Vec::new(),
        timeout_ms: None,
    };
    let report = run(&load).unwrap();
    assert_eq!(report.total_ops(), 80, "closed loop completes every op");
    assert_eq!(
        report.total_errors(),
        0,
        "BUSY is not an error:\n{}",
        report.render()
    );
    // The server also counts BUSY responses to the warm-up INFO retries,
    // so its tally can only be ≥ what the op loop observed.
    assert!(
        handle.metrics.busy_rejected() >= report.total_busy(),
        "server saw {} busy, clients counted {}",
        handle.metrics.busy_rejected(),
        report.total_busy()
    );
    handle.shutdown();
}
