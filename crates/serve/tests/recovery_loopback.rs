//! End-to-end durability over loopback TCP: mutate a WAL-backed server,
//! kill it without a checkpoint, restart on the same directories, and the
//! wire-visible state comes back exactly. Also exercises `SYNC` and
//! `CHECKPOINT` as protocol verbs, the WAL keys in `INFO`/`STATS`, and
//! the error on a server that runs without durability.

use simquery::prelude::*;
use simquery::shared::SharedIndex;
use simserve::client::Client;
use simserve::protocol::{EngineKind, ErrCode, QueryParams, Response, WireThreshold};
use simserve::server::{serve, Backend, ServerConfig};
use simshard::{ShardConfig, ShardedIndex};
use simwal::FsyncPolicy;
use std::path::PathBuf;
use tseries::random_walk;
use tseries::rng::SeededRng;

const SEQ_LEN: usize = 32;
const POOL: usize = 32;

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_depth: 16,
        max_conns: 16,
        result_cache: 0,
        ..ServerConfig::default()
    }
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("simserve_recovery_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Connection handlers are detached threads each holding a backend clone;
/// `shutdown()` joins only the acceptor, so the directory `LOCK` can be
/// released a moment after it returns. Restarts therefore retry briefly.
fn retry_locked<T, E: std::fmt::Display>(mut open: impl FnMut() -> Result<T, E>) -> T {
    let mut last = None;
    for _ in 0..500 {
        match open() {
            Ok(v) => return v,
            Err(e) if e.to_string().contains("locked") => {
                last = Some(e);
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            Err(e) => panic!("open failed: {e}"),
        }
    }
    panic!("open kept failing after 5s: {}", last.unwrap());
}

fn info_value(pairs: &[(String, String)], key: &str) -> String {
    pairs
        .iter()
        .find(|(k, _)| k == key)
        .unwrap_or_else(|| panic!("INFO is missing `{key}`"))
        .1
        .clone()
}

/// Query fingerprint used to compare a recovered server with a control
/// that never crashed.
fn fingerprint(client: &mut Client, ord: usize) -> Vec<(usize, usize)> {
    let (_, matches) = client
        .query(QueryParams {
            ord,
            ma: (3, 10),
            threshold: WireThreshold::Rho(0.9),
            engine: EngineKind::Mt,
            limit: 0,
        })
        .unwrap()
        .unwrap();
    let mut key: Vec<_> = matches.iter().map(|m| (m.seq, m.transform)).collect();
    key.sort_unstable();
    key
}

#[test]
fn single_backend_crash_recovery_over_the_wire() {
    let root = fresh_dir("single");
    let idx = root.join("idx");
    let wal = root.join("wal");
    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 20, SEQ_LEN, 0xD1E);
    SeqIndex::build(&corpus, IndexConfig::default())
        .unwrap()
        .save(&idx)
        .unwrap();

    let mut rng = SeededRng::seed_from_u64(0xACED);
    let inserts: Vec<TimeSeries> = (0..3)
        .map(|_| random_walk(&mut rng, SEQ_LEN, 50.0))
        .collect();

    // Generation 1: serve durable, mutate over the wire, sync, and
    // "crash" (shut down without a checkpoint).
    {
        let (shared, rep) =
            SharedIndex::open_durable(&idx, &wal, POOL, FsyncPolicy::EveryN(2)).unwrap();
        assert_eq!(rep.frames, 0);
        let h = serve(shared, &test_config()).unwrap();
        let mut c = Client::connect(h.addr).unwrap();

        for (i, ts) in inserts.iter().enumerate() {
            let ord = c.insert(ts.values().to_vec()).unwrap().unwrap();
            assert_eq!(ord, 20 + i);
        }
        assert!(c.delete(5).unwrap().unwrap());
        c.sync().unwrap().unwrap();

        let info = c.info().unwrap().unwrap();
        assert_eq!(info_value(&info, "durable"), "true");
        assert_eq!(info_value(&info, "wal_epoch"), "1");
        let stats = c.stats(false).unwrap().unwrap();
        let w = stats.wal.expect("durable server reports a WAL stats line");
        assert_eq!(w.appends, 4, "three inserts and one delete were logged");
        assert!(w.fsyncs > 0, "EveryN(2) plus SYNC must have fsynced");
        assert_eq!(w.replayed, 0);
        assert_eq!(w.epoch, 1);
        c.quit().unwrap();
        h.shutdown();
    }

    // Control: the same corpus with the same mutations applied directly.
    let control_ix = {
        let mut all = corpus.series().to_vec();
        all.extend(inserts.iter().cloned());
        let names = (0..all.len()).map(|i| format!("s{i}")).collect();
        let full = Corpus::from_parts(names, all);
        let mut ix = SeqIndex::build(&full, IndexConfig::default()).unwrap();
        assert!(ix.delete_series(5).unwrap());
        ix
    };
    let h_control = serve(SharedIndex::new(control_ix), &test_config()).unwrap();
    let mut control = Client::connect(h_control.addr).unwrap();

    // Generation 2: reopen the same directories — the log replays — and
    // the wire-visible state matches the control exactly.
    {
        let (shared, rep) =
            retry_locked(|| SharedIndex::open_durable(&idx, &wal, POOL, FsyncPolicy::EveryN(2)));
        assert_eq!(rep.frames, 4, "all acknowledged mutations replay");
        let h = serve(shared, &test_config()).unwrap();
        let mut c = Client::connect(h.addr).unwrap();

        let info = c.info().unwrap().unwrap();
        assert_eq!(info_value(&info, "sequences"), "23");
        for ord in [0usize, 8, 21] {
            assert_eq!(
                fingerprint(&mut c, ord),
                fingerprint(&mut control, ord),
                "recovered server diverged from control at ord {ord}"
            );
        }
        let stats = c.stats(false).unwrap().unwrap();
        assert_eq!(stats.wal.unwrap().replayed, 4);

        // CHECKPOINT folds the log into a fresh epoch-2 snapshot.
        assert_eq!(c.checkpoint().unwrap().unwrap(), 2);
        let stats = c.stats(false).unwrap().unwrap();
        assert_eq!(stats.wal.unwrap().epoch, 2);
        c.quit().unwrap();
        h.shutdown();
    }

    // Generation 3: after the checkpoint, nothing replays.
    {
        let (shared, rep) =
            retry_locked(|| SharedIndex::open_durable(&idx, &wal, POOL, FsyncPolicy::Always));
        assert_eq!(rep.frames, 0, "the checkpoint absorbed the log");
        assert_eq!(rep.epoch, 2);
        let h = serve(shared, &test_config()).unwrap();
        let mut c = Client::connect(h.addr).unwrap();
        for ord in [0usize, 8, 21] {
            assert_eq!(fingerprint(&mut c, ord), fingerprint(&mut control, ord));
        }
        c.quit().unwrap();
        h.shutdown();
    }
    control.quit().unwrap();
    h_control.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn sharded_backend_crash_recovery_over_the_wire() {
    let root = fresh_dir("sharded");
    let idx = root.join("idx");
    let wal = root.join("wal");
    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 32, SEQ_LEN, 0x5EA);
    ShardedIndex::build(
        &corpus,
        ShardConfig::new(4).unwrap(),
        IndexConfig::default(),
    )
    .unwrap()
    .save(&idx)
    .unwrap();

    let mut rng = SeededRng::seed_from_u64(0xB0A7);
    let inserts: Vec<TimeSeries> = (0..4)
        .map(|_| random_walk(&mut rng, SEQ_LEN, 50.0))
        .collect();

    {
        let (ix, rec) = ShardedIndex::open_durable(&idx, &wal, POOL, FsyncPolicy::Always).unwrap();
        assert_eq!(rec.replayed, 0);
        let h = serve(Backend::from(ix), &test_config()).unwrap();
        let mut c = Client::connect(h.addr).unwrap();
        for (i, ts) in inserts.iter().enumerate() {
            assert_eq!(c.insert(ts.values().to_vec()).unwrap().unwrap(), 32 + i);
        }
        assert!(c.delete(7).unwrap().unwrap());
        c.sync().unwrap().unwrap();
        let info = c.info().unwrap().unwrap();
        assert_eq!(info_value(&info, "durable"), "true");
        let stats = c.stats(false).unwrap().unwrap();
        assert_eq!(stats.wal.unwrap().appends, 5);
        c.quit().unwrap();
        h.shutdown();
    }

    {
        let (ix, rec) =
            retry_locked(|| ShardedIndex::open_durable(&idx, &wal, POOL, FsyncPolicy::Always));
        assert_eq!(rec.replayed, 5, "all acknowledged mutations replay");
        assert_eq!(rec.dropped, 0);
        let h = serve(Backend::from(ix), &test_config()).unwrap();
        let mut c = Client::connect(h.addr).unwrap();
        let info = c.info().unwrap().unwrap();
        assert_eq!(info_value(&info, "sequences"), "36");
        assert_eq!(info_value(&info, "deleted"), "1");

        let epoch = c.checkpoint().unwrap().unwrap();
        assert_eq!(epoch, 2);
        c.quit().unwrap();
        h.shutdown();
    }

    {
        let (_, rec) =
            retry_locked(|| ShardedIndex::open_durable(&idx, &wal, POOL, FsyncPolicy::Always));
        assert_eq!(rec.replayed, 0, "the checkpoint absorbed the logs");
        assert_eq!(rec.epoch, 2);
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn sync_and_checkpoint_error_without_durability() {
    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 12, SEQ_LEN, 0x404);
    let shared = SharedIndex::new(SeqIndex::build(&corpus, IndexConfig::default()).unwrap());
    let h = serve(shared, &test_config()).unwrap();
    let mut c = Client::connect(h.addr).unwrap();

    let info = c.info().unwrap().unwrap();
    assert_eq!(info_value(&info, "durable"), "false");
    for resp in [
        c.sync().unwrap().unwrap_err(),
        c.checkpoint().unwrap().unwrap_err(),
    ] {
        match resp {
            Response::Err { code, msg } => {
                assert_eq!(code, ErrCode::Query);
                assert!(
                    msg.contains("--wal"),
                    "error should point at the flag: {msg}"
                );
            }
            other => panic!("expected an error frame, got {other:?}"),
        }
    }
    let stats = c.stats(false).unwrap().unwrap();
    assert!(stats.wal.is_none(), "no WAL line on a non-durable server");
    c.quit().unwrap();
    h.shutdown();
}
