//! Deterministic failover tests: kill the primary at every replication
//! frame boundary, `PROMOTE` a follower that holds exactly that acked
//! prefix, and assert (a) no LSN-acked write is lost, (b) the fenced
//! ex-primary rejects writes and re-syncs byte-identically onto the new
//! timeline. The follower is stepped one `poll_once` at a time, never on
//! a background thread, so every run replays the same schedule.

use simquery::prelude::*;
use simquery::shared::SharedIndex;
use simserve::client::Client;
use simserve::protocol::{ErrCode, Request, Response};
use simserve::repl::{Follower, FollowerOpts};
use simserve::server::{serve, serve_with, ServerConfig};
use simwal::FsyncPolicy;
use std::path::PathBuf;
use tseries::random_walk;
use tseries::rng::SeededRng;
use tseries::TimeSeries;

const SEQ_LEN: usize = 32;
const POOL: usize = 32;
const FRAMES: u64 = 6;

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_depth: 16,
        max_conns: 16,
        result_cache: 0,
        ..ServerConfig::default()
    }
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("simserve_failover_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Reopens survive the short window where a shut-down server's
/// connection threads still hold the directory `LOCK`.
fn retry_locked<T, E: std::fmt::Display>(mut open: impl FnMut() -> Result<T, E>) -> T {
    let mut last = None;
    for _ in 0..500 {
        match open() {
            Ok(v) => return v,
            Err(e) if e.to_string().contains("locked") => {
                last = Some(e);
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            Err(e) => panic!("open failed: {e}"),
        }
    }
    panic!("open kept failing after 5s: {}", last.unwrap());
}

/// Byte-level state equality (same shape as the replication suite):
/// identical ordinal space, tombstones, and values per ordinal.
fn assert_state_identical(a: &SharedIndex, b: &SharedIndex, ctx: &str) {
    let (ga, gb) = (a.read(), b.read());
    assert_eq!(ga.len(), gb.len(), "{ctx}: ordinal space diverged");
    assert_eq!(ga.seq_len(), gb.seq_len(), "{ctx}");
    let (mut da, mut db) = (ga.deleted_ordinals(), gb.deleted_ordinals());
    da.sort_unstable();
    db.sort_unstable();
    assert_eq!(da, db, "{ctx}: tombstone sets diverged");
    for ord in 0..ga.len() {
        assert_eq!(
            ga.fetch_series(ord).unwrap().values(),
            gb.fetch_series(ord).unwrap().values(),
            "{ctx}: values diverged at ordinal {ord}"
        );
    }
}

fn drain(follower: &mut Follower) {
    for _ in 0..1000 {
        if follower.poll_once().unwrap() == 0 && follower.lag() == 0 {
            return;
        }
    }
    panic!("follower failed to drain");
}

/// One acked mutation on the primary's timeline.
#[derive(Clone)]
enum Mutation {
    Insert(TimeSeries),
    Delete(usize),
}

/// For every `k` in `0..=FRAMES`: a follower that has acked exactly `k`
/// of the primary's 6 mutations is promoted (the primary is "killed" —
/// partitioned away from clients). The promoted node must (a) hold the
/// exact acked prefix (checked against an in-memory oracle that applied
/// the same first `k` mutations), (b) accept new writes at a strictly
/// higher epoch, and (c) fence + re-sync the ex-primary byte-identically.
#[test]
fn promote_at_every_frame_boundary_loses_no_acked_write() {
    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 10, SEQ_LEN, 0xFA11);
    let seed = SeqIndex::build(&corpus, IndexConfig::default()).unwrap();

    // The mutation schedule, generated once so every k replays it.
    let mut rng = SeededRng::seed_from_u64(0xFA110E5);
    let mutations: Vec<Mutation> = (0..4)
        .map(|_| Mutation::Insert(random_walk(&mut rng, SEQ_LEN, 50.0)))
        .chain([Mutation::Delete(2), Mutation::Delete(7)])
        .collect();
    assert_eq!(mutations.len() as u64, FRAMES);

    for k in 0..=FRAMES {
        let root = fresh_dir(&format!("boundary{k}"));
        seed.save(&root.join("idx")).unwrap();
        seed.save(&root.join("fidx")).unwrap();

        // The primary serves the full 6-mutation timeline at epoch 1.
        let (shared_p, _) = SharedIndex::open_durable(
            &root.join("idx"),
            &root.join("wal"),
            POOL,
            FsyncPolicy::Always,
        )
        .unwrap();
        let hp = serve(shared_p.clone(), &test_config()).unwrap();
        let mut pc = Client::connect(hp.addr).unwrap();

        // The follower bootstraps at the base state so all 6 mutations
        // arrive as streamed frames, then acks exactly k of them.
        let (shared_f, _) = SharedIndex::open_durable(
            &root.join("fidx"),
            &root.join("fwal"),
            POOL,
            FsyncPolicy::Always,
        )
        .unwrap();
        let mut f = Follower::connect(
            &hp.addr.to_string(),
            shared_f.clone(),
            FollowerOpts {
                batch: 1,
                wait_ms: 0,
                state_dir: Some(root.join("fwal")),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(f.poll_once().unwrap(), 10, "base snapshot");

        // The oracle applies the same first k mutations in-memory —
        // the exact state the promotion contract must preserve.
        let oracle = SharedIndex::new(SeqIndex::build(&corpus, IndexConfig::default()).unwrap());
        for m in mutations.iter() {
            match m {
                Mutation::Insert(ts) => {
                    pc.insert(ts.values().to_vec()).unwrap().unwrap();
                }
                Mutation::Delete(ord) => {
                    assert!(pc.delete(*ord).unwrap().unwrap());
                }
            }
        }
        for (step, m) in mutations.iter().take(k as usize).enumerate() {
            assert_eq!(f.poll_once().unwrap(), 1, "k={k} step={step}");
            match m {
                Mutation::Insert(ts) => {
                    oracle.insert_series(ts).unwrap();
                }
                Mutation::Delete(ord) => {
                    assert!(oracle.delete_series(*ord).unwrap());
                }
            }
        }
        assert_eq!(f.applied(), k, "k={k}");
        let stats = f.stats();
        drop(f); // stepped inline; no background loop to halt

        // Serve the follower and PROMOTE it over the wire.
        let hf = serve_with(shared_f.clone(), &test_config(), Some(stats)).unwrap();
        let mut fc = Client::connect(hf.addr).unwrap();
        let insert_on = |c: &mut Client, ts: &TimeSeries| c.insert(ts.values().to_vec()).unwrap();
        assert!(
            matches!(
                insert_on(&mut fc, &random_walk(&mut rng, SEQ_LEN, 50.0)),
                Err(Response::Err {
                    code: ErrCode::ReadOnly,
                    ..
                })
            ),
            "k={k}: a follower must refuse writes before promotion"
        );
        let new_epoch = fc.promote().unwrap().unwrap();
        assert!(
            new_epoch >= 2,
            "k={k}: the promoted epoch ({new_epoch}) must exceed the primary's"
        );

        // (a) No acked write lost: the promoted state is exactly the
        // acked prefix.
        assert_state_identical(&shared_f, &oracle, &format!("k={k}: acked prefix"));
        assert!(!shared_f.is_fenced(), "k={k}: fence==epoch means writable");

        // The promoted node accepts writes on its new timeline.
        let post = random_walk(&mut rng, SEQ_LEN, 50.0);
        let ord = insert_on(&mut fc, &post).unwrap();
        oracle.insert_series(&post).unwrap();
        assert_eq!(
            shared_f.read().fetch_series(ord).unwrap().values(),
            post.values(),
            "k={k}: post-promotion write landed"
        );
        let info = fc.info().unwrap().unwrap();
        let get = |key: &str| {
            info.iter()
                .find(|(kk, _)| kk == key)
                .map(|(_, v)| v.clone())
                .unwrap_or_default()
        };
        assert_eq!(get("role"), "primary", "k={k}");
        assert_eq!(get("fenced"), "false", "k={k}");
        assert_eq!(get("wal_epoch"), new_epoch.to_string(), "k={k}");

        // (b) The ex-primary fences itself the moment a higher-epoch
        // REPL handshake arrives — in-band demotion, never a snapshot.
        let resp = pc
            .call(&Request::Repl {
                epoch: new_epoch,
                from: 1,
                ack: 0,
                max: 0,
                wait_ms: 0,
            })
            .unwrap();
        assert!(
            matches!(
                resp,
                Response::Err {
                    code: ErrCode::ReadOnly,
                    ..
                }
            ),
            "k={k}: higher-epoch poll must demote, got {resp:?}"
        );
        assert!(
            matches!(
                insert_on(&mut pc, &random_walk(&mut rng, SEQ_LEN, 50.0)),
                Err(Response::Err {
                    code: ErrCode::ReadOnly,
                    ..
                })
            ),
            "k={k}: the fenced ex-primary must reject writes"
        );
        let pinfo = pc.info().unwrap().unwrap();
        assert!(
            pinfo.iter().any(|(kk, v)| kk == "fenced" && v == "true"),
            "k={k}: INFO must report the fence"
        );

        // The fence survives a restart: reopen the ex-primary's
        // directories and re-sync it as a follower of the new primary.
        pc.quit().unwrap();
        hp.shutdown();
        drop(shared_p);
        let (shared_p2, _) = retry_locked(|| {
            SharedIndex::open_durable(
                &root.join("idx"),
                &root.join("wal"),
                POOL,
                FsyncPolicy::Always,
            )
        });
        assert!(
            shared_p2.is_fenced(),
            "k={k}: the fence must persist across restart"
        );
        assert_eq!(shared_p2.fence(), new_epoch, "k={k}");
        assert!(
            shared_p2
                .insert_series(&random_walk(&mut rng, SEQ_LEN, 50.0))
                .is_err(),
            "k={k}: still fenced after reopen"
        );
        let mut ex = Follower::connect(
            &hf.addr.to_string(),
            shared_p2.clone(),
            FollowerOpts {
                batch: 1,
                wait_ms: 0,
                state_dir: Some(root.join("wal")),
                ..Default::default()
            },
        )
        .unwrap();
        drain(&mut ex);
        assert_state_identical(&shared_f, &shared_p2, &format!("k={k}: ex-primary re-sync"));
        assert!(
            !shared_p2.is_fenced(),
            "k={k}: installing the new timeline clears the fence"
        );

        fc.quit().unwrap();
        hf.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }
}

/// `PROMOTE` is a follower-only verb: a standalone primary rejects it,
/// and a second PROMOTE on an already-promoted node rejects too. The
/// failover observability counters move exactly once.
#[test]
fn promote_rejects_non_followers_and_counts_once() {
    let root = fresh_dir("reject");
    let corpus = Corpus::generate(CorpusKind::SyntheticWalks, 8, SEQ_LEN, 0x9E9);
    let seed = SeqIndex::build(&corpus, IndexConfig::default()).unwrap();
    seed.save(&root.join("idx")).unwrap();
    seed.save(&root.join("fidx")).unwrap();

    let (shared_p, _) = SharedIndex::open_durable(
        &root.join("idx"),
        &root.join("wal"),
        POOL,
        FsyncPolicy::Always,
    )
    .unwrap();
    let hp = serve(shared_p.clone(), &test_config()).unwrap();
    let mut pc = Client::connect(hp.addr).unwrap();
    assert!(
        matches!(
            pc.promote().unwrap(),
            Err(Response::Err {
                code: ErrCode::Query,
                ..
            })
        ),
        "a standalone primary must reject PROMOTE"
    );
    let plines = pc.metrics().unwrap().unwrap();
    assert!(
        plines.iter().any(|l| l == "simseq_role 1"),
        "a primary exposes simseq_role 1: {plines:?}"
    );

    let (shared_f, _) = SharedIndex::open_durable(
        &root.join("fidx"),
        &root.join("fwal"),
        POOL,
        FsyncPolicy::Always,
    )
    .unwrap();
    let mut f = Follower::connect(
        &hp.addr.to_string(),
        shared_f.clone(),
        FollowerOpts {
            batch: 1,
            wait_ms: 0,
            state_dir: Some(root.join("fwal")),
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(f.poll_once().unwrap(), 8);
    let stats = f.stats();
    drop(f);
    let hf = serve_with(shared_f.clone(), &test_config(), Some(stats)).unwrap();
    let mut fc = Client::connect(hf.addr).unwrap();

    let flines = fc.metrics().unwrap().unwrap();
    assert!(
        flines.iter().any(|l| l == "simseq_role 0"),
        "a follower exposes simseq_role 0: {flines:?}"
    );

    let epoch = fc.promote().unwrap().unwrap();
    assert!(epoch >= 2);
    assert!(
        matches!(
            fc.promote().unwrap(),
            Err(Response::Err {
                code: ErrCode::Query,
                ..
            })
        ),
        "a second PROMOTE must be rejected"
    );

    let lines = fc.metrics().unwrap().unwrap();
    let has = |line: String| lines.contains(&line);
    assert!(
        has("simseq_role 1".into()),
        "promoted role gauge: {lines:?}"
    );
    assert!(
        has("simseq_promotions_total 1".into()),
        "exactly one promotion: {lines:?}"
    );
    assert!(
        has(format!("simseq_fence_epoch {epoch}")),
        "fence epoch gauge: {lines:?}"
    );
    assert!(
        has("simseq_fenced 0".into()),
        "promoted node is writable: {lines:?}"
    );

    pc.quit().unwrap();
    fc.quit().unwrap();
    hp.shutdown();
    hf.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}
