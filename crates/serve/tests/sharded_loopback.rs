//! End-to-end tests of the sharded backend over loopback TCP: wire
//! results identical to the single-index backend, per-shard STATS lines,
//! the JOIN restriction, and the mutation path.

use simquery::prelude::*;
use simserve::client::Client;
use simserve::protocol::{EngineKind, ErrCode, QueryParams, Response, WireThreshold};
use simserve::server::{serve, Backend, ServerConfig, ServerHandle};
use simshard::{ShardConfig, ShardedIndex};

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_depth: 16,
        max_conns: 16,
        result_cache: 0,
        ..ServerConfig::default()
    }
}

fn corpus(n: usize, seed: u64) -> Corpus {
    Corpus::generate(CorpusKind::SyntheticWalks, n, 64, seed)
}

fn start_pair(n: usize, seed: u64, shards: usize) -> (ServerHandle, ServerHandle) {
    let c = corpus(n, seed);
    let single = SharedIndex::new(SeqIndex::build(&c, IndexConfig::default()).unwrap());
    let sharded = ShardedIndex::build(
        &c,
        ShardConfig::new(shards).unwrap(),
        IndexConfig::default(),
    )
    .unwrap();
    let h_single = serve(single, &test_config()).unwrap();
    let h_sharded = serve(Backend::from(sharded), &test_config()).unwrap();
    (h_single, h_sharded)
}

#[test]
fn wire_results_match_single_backend() {
    let (h_single, h_sharded) = start_pair(90, 17, 4);
    let mut a = Client::connect(h_single.addr).unwrap();
    let mut b = Client::connect(h_sharded.addr).unwrap();

    for engine in [EngineKind::Mt, EngineKind::St, EngineKind::Scan] {
        for ord in [0usize, 41, 89] {
            let params = QueryParams {
                ord,
                ma: (4, 12),
                threshold: WireThreshold::Rho(0.93),
                engine,
                limit: 0,
            };
            let (n1, m1) = a.query(params).unwrap().unwrap();
            let (n2, m2) = b.query(params).unwrap().unwrap();
            assert_eq!(n1, n2, "{engine:?} ord {ord}");
            let key = |m: &simserve::protocol::WireMatch| (m.seq, m.transform);
            let mut s1: Vec<_> = m1.iter().map(key).collect();
            let mut s2: Vec<_> = m2.iter().map(key).collect();
            s1.sort_unstable();
            s2.sort_unstable();
            assert_eq!(s1, s2, "{engine:?} ord {ord}");
        }
    }

    // kNN parity over the wire, including the deterministic ordering.
    for ord in [5usize, 60] {
        let n1 = a.knn(ord, 7, (4, 10)).unwrap().unwrap();
        let n2 = b.knn(ord, 7, (4, 10)).unwrap().unwrap();
        let key = |m: &simserve::protocol::WireMatch| (m.seq, m.transform);
        let mut s1: Vec<_> = n1.iter().map(key).collect();
        let mut s2: Vec<_> = n2.iter().map(key).collect();
        s1.sort_unstable();
        s2.sort_unstable();
        assert_eq!(s1, s2, "knn ord {ord}");
        assert_eq!(n2[0].seq, ord, "self is nearest");
    }

    a.quit().unwrap();
    b.quit().unwrap();
    h_single.shutdown();
    h_sharded.shutdown();
}

#[test]
fn stats_carry_per_shard_breakdown() {
    let c = corpus(80, 29);
    let sharded =
        ShardedIndex::build(&c, ShardConfig::new(3).unwrap(), IndexConfig::default()).unwrap();
    let loads = sharded.shard_loads();
    let handle = serve(Backend::from(sharded), &test_config()).unwrap();
    let mut client = Client::connect(handle.addr).unwrap();

    // Drive some traffic so counters move.
    for ord in 0..5usize {
        let params = QueryParams {
            ord,
            ma: (4, 10),
            threshold: WireThreshold::Rho(0.9),
            engine: EngineKind::Mt,
            limit: 0,
        };
        client.query(params).unwrap().unwrap();
    }

    let stats = client.stats(false).unwrap().unwrap();
    assert_eq!(stats.shards.len(), 3, "one SHARD line per shard");
    for (i, line) in stats.shards.iter().enumerate() {
        assert_eq!(line.id, i);
        assert_eq!(line.seqs, loads[i] as u64);
    }
    // The COUNTERS totals are exactly the sum of the SHARD lines.
    let sum_nodes: u64 = stats.shards.iter().map(|s| s.node_reads).sum();
    let sum_fetches: u64 = stats.shards.iter().map(|s| s.record_fetches).sum();
    assert_eq!(stats.counters_total.0, sum_nodes);
    assert_eq!(stats.counters_total.2, sum_fetches);
    assert!(sum_nodes > 0, "MT queries must touch shard trees");

    // INFO reports the sharding shape.
    let info = client.info().unwrap().unwrap();
    let get = |k: &str| -> String {
        info.iter()
            .find(|(key, _)| key == k)
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| panic!("INFO missing key {k}"))
    };
    assert_eq!(get("shards"), "3");
    assert_eq!(get("partitioner"), "hash");
    assert_eq!(get("sequences"), "80");

    client.quit().unwrap();
    handle.shutdown();
}

#[test]
fn join_is_rejected_and_mutations_work() {
    let c = corpus(40, 31);
    let sharded =
        ShardedIndex::build(&c, ShardConfig::new(2).unwrap(), IndexConfig::default()).unwrap();
    let handle = serve(Backend::from(sharded), &test_config()).unwrap();
    let mut client = Client::connect(handle.addr).unwrap();

    match client.join((4, 10), WireThreshold::Rho(0.97)).unwrap() {
        Err(Response::Err { code, msg }) => {
            assert_eq!(code, ErrCode::Query);
            assert!(msg.contains("sharded"), "explains the restriction: {msg}");
        }
        other => panic!("JOIN on a sharded backend must fail: {other:?}"),
    }

    // Insert lands at the next global ordinal; the new series is queryable
    // and deletable by that ordinal.
    let extra = corpus(1, 97);
    let ord = client
        .insert(extra.series()[0].values().to_vec())
        .unwrap()
        .unwrap();
    assert_eq!(ord, 40);
    let neighbors = client.knn(ord, 1, (1, 4)).unwrap().unwrap();
    assert_eq!(neighbors[0].seq, ord, "fresh insert is its own nearest");
    assert!(client.delete(ord).unwrap().unwrap());
    assert!(!client.delete(ord).unwrap().unwrap(), "second delete false");

    client.quit().unwrap();
    handle.shutdown();
}
