//! The `simload` closed-loop load generator.
//!
//! N connections each replay a seeded workload of `QUERY` requests
//! (closed loop: the next request goes out only after the previous
//! response is fully read), measuring client-side latency into the same
//! log₂ histograms the server uses. With `verify`, every server response
//! is compared — as a sorted `(seq, transform)` set — against a
//! single-threaded plan execution on a locally opened copy of the index,
//! so a run doubles as an end-to-end result-parity check.

use crate::client::ClientConfig;
use crate::failover::{FailoverClient, FailoverConfig};
use crate::protocol::{EngineKind, QueryParams, Request, Response, WireThreshold};
use crate::server::engine_pref;
use simobs::Histogram;
use simquery::prelude::*;
use std::io;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tseries::rng::SeededRng;

/// Load-run parameters.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Server address.
    pub addr: String,
    /// Concurrent connections.
    pub conns: usize,
    /// Requests per connection.
    pub ops_per_conn: usize,
    /// Workload seed; connection `i` uses `seed + i`.
    pub seed: u64,
    /// Moving-average window range of every query.
    pub ma: (usize, usize),
    /// Correlation threshold of every query.
    pub rho: f64,
    /// Engine the server should use.
    pub engine: EngineKind,
    /// When set, verify result parity against this index (opened
    /// directly, queried single-threaded with the same engine).
    pub verify: Option<SharedIndex>,
    /// Extra endpoints to fail over to (tried after `addr` when a
    /// request hits `ERR READONLY` or a transport failure).
    pub failover_to: Vec<String>,
    /// Socket timeouts in milliseconds for every connection (`None` =
    /// the [`ClientConfig`] defaults, `Some(0)` = no timeouts).
    pub timeout_ms: Option<u64>,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".into(),
            conns: 8,
            ops_per_conn: 50,
            seed: 1,
            ma: (5, 20),
            rho: 0.96,
            engine: EngineKind::Mt,
            verify: None,
            failover_to: Vec::new(),
            timeout_ms: None,
        }
    }
}

/// Per-connection outcome.
#[derive(Debug)]
pub struct ConnReport {
    /// Completed requests.
    pub ops: u64,
    /// `ERR` responses (any code but BUSY).
    pub errors: u64,
    /// BUSY rejections.
    pub busy: u64,
    /// Matches summed over responses.
    pub matches: u64,
    /// Responses compared against the local engine.
    pub verified: u64,
    /// Responses whose result set differed from the local engine.
    pub parity_failures: u64,
    /// Client-side latency histogram.
    pub hist: Histogram,
    /// Total wall time of this connection's loop.
    pub wall: Duration,
    /// `(retries, redirects, reconnects, giveups)` from this
    /// connection's [`FailoverClient`].
    pub failover: (u64, u64, u64, u64),
}

/// Aggregated outcome of one load run.
#[derive(Debug)]
pub struct LoadReport {
    /// One entry per connection.
    pub conns: Vec<ConnReport>,
    /// Wall time of the whole run (slowest connection).
    pub wall: Duration,
}

impl LoadReport {
    /// Completed requests over all connections.
    pub fn total_ops(&self) -> u64 {
        self.conns.iter().map(|c| c.ops).sum()
    }

    /// Error responses over all connections.
    pub fn total_errors(&self) -> u64 {
        self.conns.iter().map(|c| c.errors).sum()
    }

    /// BUSY rejections over all connections.
    pub fn total_busy(&self) -> u64 {
        self.conns.iter().map(|c| c.busy).sum()
    }

    /// Parity failures over all connections (0 = 100 % parity).
    pub fn total_parity_failures(&self) -> u64 {
        self.conns.iter().map(|c| c.parity_failures).sum()
    }

    /// Failover `(retries, redirects, reconnects, giveups)` summed over
    /// all connections.
    pub fn total_failover(&self) -> (u64, u64, u64, u64) {
        self.conns.iter().fold((0, 0, 0, 0), |acc, c| {
            (
                acc.0 + c.failover.0,
                acc.1 + c.failover.1,
                acc.2 + c.failover.2,
                acc.3 + c.failover.3,
            )
        })
    }

    /// Aggregate throughput, requests per second.
    pub fn throughput(&self) -> f64 {
        self.total_ops() as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Renders the per-connection + total table (the shape of
    /// `crates/bench`'s result tables).
    pub fn render(&self) -> String {
        let header = [
            "conn", "ops", "err", "busy", "matches", "p50_us", "p95_us", "p99_us", "max_us",
            "req/s",
        ];
        let mut rows: Vec<Vec<String>> = Vec::new();
        for (i, c) in self.conns.iter().enumerate() {
            rows.push(vec![
                i.to_string(),
                c.ops.to_string(),
                c.errors.to_string(),
                c.busy.to_string(),
                c.matches.to_string(),
                c.hist.quantile_us(0.50).to_string(),
                c.hist.quantile_us(0.95).to_string(),
                c.hist.quantile_us(0.99).to_string(),
                c.hist.max_us().to_string(),
                format!("{:.1}", c.ops as f64 / c.wall.as_secs_f64().max(1e-9)),
            ]);
        }
        rows.push(vec![
            "TOTAL".into(),
            self.total_ops().to_string(),
            self.total_errors().to_string(),
            self.total_busy().to_string(),
            self.conns
                .iter()
                .map(|c| c.matches)
                .sum::<u64>()
                .to_string(),
            "-".into(),
            "-".into(),
            "-".into(),
            self.conns
                .iter()
                .map(|c| c.hist.max_us())
                .max()
                .unwrap_or(0)
                .to_string(),
            format!("{:.1}", self.throughput()),
        ]);

        let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
        for row in &rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&format!(
            "## simload: {} conns x {} ops, closed loop\n",
            self.conns.len(),
            self.conns.first().map(|c| c.ops).unwrap_or(0)
        ));
        let head: Vec<String> = header.iter().map(|h| h.to_string()).collect();
        out.push_str(&line(&head));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        let (retries, redirects, reconnects, giveups) = self.total_failover();
        if retries + redirects + reconnects + giveups > 0 {
            out.push_str(&format!(
                "failover: {retries} retries, {redirects} readonly redirects, \
                 {reconnects} reconnects, {giveups} giveups\n"
            ));
        }
        let verified: u64 = self.conns.iter().map(|c| c.verified).sum();
        if self.total_parity_failures() > 0 {
            out.push_str(&format!(
                "PARITY FAILURES: {} of {verified} verified responses\n",
                self.total_parity_failures()
            ));
        } else if verified > 0 {
            out.push_str(&format!(
                "parity: 100% ({verified} responses matched the local single-threaded engine)\n"
            ));
        }
        out
    }
}

/// Runs the load; blocks until every connection finishes.
pub fn run(cfg: &LoadConfig) -> io::Result<LoadReport> {
    let verify = cfg.verify.clone().map(Arc::new);
    let start = Instant::now();
    let mut conns = Vec::with_capacity(cfg.conns);
    std::thread::scope(|s| -> io::Result<()> {
        let handles: Vec<_> = (0..cfg.conns)
            .map(|i| {
                let verify = verify.clone();
                s.spawn(move || run_conn(cfg, i, verify))
            })
            .collect();
        for h in handles {
            conns.push(h.join().expect("load connection panicked")?);
        }
        Ok(())
    })?;
    Ok(LoadReport {
        conns,
        wall: start.elapsed(),
    })
}

fn run_conn(
    cfg: &LoadConfig,
    conn_id: usize,
    verify: Option<Arc<SharedIndex>>,
) -> io::Result<ConnReport> {
    let mut endpoints = Vec::with_capacity(1 + cfg.failover_to.len());
    endpoints.push(cfg.addr.clone());
    endpoints.extend(cfg.failover_to.iter().cloned());
    let mut client = FailoverClient::new(
        endpoints,
        FailoverConfig {
            client: cfg
                .timeout_ms
                .map(ClientConfig::with_timeout_ms)
                .unwrap_or_default(),
            seed: cfg.seed + conn_id as u64,
            ..FailoverConfig::default()
        },
    );
    let counters = client.counters();
    let mut rng = SeededRng::seed_from_u64(cfg.seed + conn_id as u64);
    let mut report = ConnReport {
        ops: 0,
        errors: 0,
        busy: 0,
        matches: 0,
        verified: 0,
        parity_failures: 0,
        hist: Histogram::default(),
        wall: Duration::ZERO,
        failover: (0, 0, 0, 0),
    };
    // Ordinals must land inside the served corpus: take its size from the
    // verify copy when present, otherwise ask the server (retrying while
    // admission control sheds the warm-up INFO under a saturated queue).
    let n = match &verify {
        Some(v) => v.read().len(),
        None => corpus_size(&mut client)?,
    };
    if n == 0 {
        return Err(io::Error::other("server reports an empty corpus"));
    }
    let start = Instant::now();
    for _ in 0..cfg.ops_per_conn {
        let ord = rng.random_range(0usize..n);
        let params = QueryParams {
            ord,
            ma: cfg.ma,
            threshold: WireThreshold::Rho(cfg.rho),
            engine: cfg.engine,
            limit: 0,
        };
        let t0 = Instant::now();
        let response = client.call(&Request::Query(params))?;
        report.hist.record(t0.elapsed());
        report.ops += 1;
        match &response {
            Response::Matches { n, matches, .. } => {
                report.matches += *n as u64;
                if let Some(local) = &verify {
                    let mut got: Vec<(usize, usize)> =
                        matches.iter().map(|m| (m.seq, m.transform)).collect();
                    got.sort_unstable();
                    report.verified += 1;
                    let want = local_pairs(local, ord, cfg);
                    if got != want {
                        report.parity_failures += 1;
                        eprintln!(
                            "parity failure: conn {conn_id} ord {ord}: \
                             server returned {} pairs, local engine {}",
                            got.len(),
                            want.len()
                        );
                    }
                }
            }
            Response::Err {
                code: crate::protocol::ErrCode::Busy,
                ..
            } => report.busy += 1,
            other => {
                report.errors += 1;
                eprintln!("error response: conn {conn_id} ord {ord}: {other:?}");
            }
        }
    }
    report.wall = start.elapsed();
    report.failover = counters.snapshot();
    Ok(report)
}

/// Asks the server how many sequences it serves, retrying on BUSY.
fn corpus_size(client: &mut FailoverClient) -> io::Result<usize> {
    for _ in 0..1000 {
        match client.call(&Request::Info)? {
            Response::Info(pairs) => {
                return pairs
                    .iter()
                    .find(|(k, _)| k == "sequences")
                    .and_then(|(_, v)| v.parse().ok())
                    .ok_or_else(|| io::Error::other("INFO did not report the corpus size"));
            }
            Response::Err {
                code: crate::protocol::ErrCode::Busy,
                ..
            } => std::thread::sleep(Duration::from_millis(1)),
            other => {
                return Err(io::Error::other(format!("INFO failed: {other:?}")));
            }
        }
    }
    Err(io::Error::other(
        "INFO kept getting BUSY; server overloaded",
    ))
}

/// The expected result set, computed locally through the plan layer.
fn local_pairs(shared: &SharedIndex, ord: usize, cfg: &LoadConfig) -> Vec<(usize, usize)> {
    let (family, q) = {
        let index = shared.read();
        let family = Family::moving_averages(cfg.ma.0..=cfg.ma.1, index.seq_len());
        let q = index
            .fetch_series(ord)
            .expect("load generator runs on a healthy in-memory index");
        (family, q)
    };
    let spec = WireThreshold::Rho(cfg.rho).to_spec();
    let lq = LogicalQuery::range(family, spec).with_engine(engine_pref(cfg.engine));
    match shared.execute(&lq, Some(&q)) {
        Ok((_, PlanOutput::Range(r))) => r.sorted_pairs(),
        _ => Vec::new(),
    }
}
