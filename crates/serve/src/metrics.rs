//! Server observability: per-operation counters and latency histograms,
//! backed by the workspace-wide [`simobs`] instruments.
//!
//! The histogram/counter code that used to live here moved to
//! `crates/obs` in PR 9; what remains is the server's *view*: an op table
//! of shared handles registered in a per-server [`MetricsRegistry`]. The
//! same atomics feed both the `STATS` report and the `METRICS` text
//! exposition, so the two can never disagree — parity is structural, and
//! the loopback metrics suite pins it op-for-op anyway.

use crate::protocol::{
    OpStatLine, PlanStatLine, ReplStatLine, ShardStatLine, StatsReport, WalStatLine,
};
use simobs::metrics::labeled;
use simobs::{Counter, Exposition, Histogram, MetricsRegistry, SlowLog};
use simquery::index::AccessCounters;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The operations the registry tracks, in reporting order.
pub const OPS: [&str; 14] = [
    "query",
    "knn",
    "join",
    "explain",
    "insert",
    "delete",
    "sync",
    "checkpoint",
    "promote",
    "info",
    "repl",
    "stats",
    "metrics",
    "trace",
];

/// Index of an op name in [`OPS`] (the last entry catches anything
/// unknown).
pub fn op_index(op: &str) -> usize {
    OPS.iter().position(|o| *o == op).unwrap_or(OPS.len() - 1)
}

/// Capacity of the per-server slow-query ring.
const SLOW_RING: usize = 128;

struct OpHandles {
    count: Arc<Counter>,
    errors: Arc<Counter>,
    hist: Arc<Histogram>,
}

/// The server-wide metrics registry shared by all workers.
pub struct Registry {
    metrics: MetricsRegistry,
    ops: [OpHandles; OPS.len()],
    busy_rejected: Arc<Counter>,
    connections: Arc<Counter>,
    slow: SlowLog,
    /// Index counters at the previous STATS call — the delta baseline.
    baseline: Mutex<Option<AccessCounters>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// A registry with every op instrument pre-registered.
    pub fn new() -> Self {
        let metrics = MetricsRegistry::new();
        let ops = std::array::from_fn(|i| {
            let op = [("op", OPS[i])];
            OpHandles {
                count: metrics.counter(&labeled("simseq_op_total", &op)),
                errors: metrics.counter(&labeled("simseq_op_errors_total", &op)),
                hist: metrics.histogram(&labeled("simseq_op_latency_us", &op)),
            }
        });
        let busy_rejected = metrics.counter("simseq_busy_rejected_total");
        let connections = metrics.counter("simseq_connections_total");
        Self {
            metrics,
            ops,
            busy_rejected,
            connections,
            slow: SlowLog::new(SLOW_RING),
            baseline: Mutex::new(None),
        }
    }

    /// Records one completed operation.
    pub fn record(&self, op: usize, latency: Duration, is_err: bool) {
        let s = &self.ops[op];
        s.count.inc();
        if is_err {
            s.errors.inc();
        }
        s.hist.record(latency);
    }

    /// Counts a request rejected by admission control.
    pub fn record_busy(&self) {
        self.busy_rejected.inc();
    }

    /// Counts an accepted connection.
    pub fn record_connection(&self) {
        self.connections.inc();
    }

    /// Requests rejected so far.
    pub fn busy_rejected(&self) -> u64 {
        self.busy_rejected.get()
    }

    /// Recorded count for one op index (the parity test's ground truth).
    pub fn op_count(&self, op: usize) -> u64 {
        self.ops[op].count.get()
    }

    /// The server's slow-query log.
    pub fn slow(&self) -> &SlowLog {
        &self.slow
    }

    /// Renders every registered instrument (op counters, histograms,
    /// connection/busy counters) into `exp` — the registry-owned half of
    /// the `METRICS` exposition.
    pub fn render_into(&self, exp: &mut Exposition) {
        self.metrics.render_into(exp);
        exp.counter("simseq_slow_queries_total", &[], self.slow.fired());
    }

    /// Builds the `STATS` payload; with `reset`, zeroes op counters and
    /// histograms afterwards. `now` is the backend's aggregate access
    /// counters (totals since server start; the delta baseline is kept
    /// here), and `shards` is the per-shard breakdown — empty for a
    /// single-index backend. `plan` carries the planner and result-cache
    /// counters (always present on current servers), and `repl` the
    /// replication view when the server is a primary with followers or a
    /// follower itself.
    pub fn report(
        &self,
        now: AccessCounters,
        shards: Vec<ShardStatLine>,
        wal: Option<WalStatLine>,
        plan: Option<PlanStatLine>,
        repl: Option<ReplStatLine>,
        reset: bool,
    ) -> StatsReport {
        let mut baseline = self.baseline.lock().unwrap_or_else(|e| e.into_inner());
        let prev = baseline.unwrap_or(AccessCounters {
            node_reads: 0,
            record_page_reads: 0,
            record_fetches: 0,
        });
        *baseline = Some(now);
        drop(baseline);

        let ops = OPS
            .iter()
            .zip(&self.ops)
            .filter(|(_, s)| s.count.get() > 0)
            .map(|(name, s)| OpStatLine {
                op: name.to_string(),
                count: s.count.get(),
                errors: s.errors.get(),
                p50_us: s.hist.quantile_us(0.50),
                p95_us: s.hist.quantile_us(0.95),
                p99_us: s.hist.quantile_us(0.99),
                max_us: s.hist.max_us(),
            })
            .collect();
        let report = StatsReport {
            ops,
            busy_rejected: self.busy_rejected.get(),
            connections: self.connections.get(),
            counters_total: (now.node_reads, now.record_page_reads, now.record_fetches),
            counters_delta: (
                now.node_reads - prev.node_reads,
                now.record_page_reads - prev.record_page_reads,
                now.record_fetches - prev.record_fetches,
            ),
            shards,
            wal,
            plan,
            repl,
        };
        if reset {
            for s in &self.ops {
                s.count.reset();
                s.errors.reset();
                s.hist.reset();
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_indices_cover_all_ops() {
        for (i, op) in OPS.iter().enumerate() {
            assert_eq!(op_index(op), i);
        }
        assert_eq!(op_index("nonsense"), OPS.len() - 1);
    }

    #[test]
    fn stats_and_exposition_read_the_same_atomics() {
        let reg = Registry::new();
        let q = op_index("query");
        for _ in 0..5 {
            reg.record(q, Duration::from_micros(100), false);
        }
        reg.record(q, Duration::from_micros(100), true);
        reg.record_connection();
        let report = reg.report(
            AccessCounters {
                node_reads: 0,
                record_page_reads: 0,
                record_fetches: 0,
            },
            Vec::new(),
            None,
            None,
            None,
            false,
        );
        let line = report.ops.iter().find(|o| o.op == "query").unwrap();
        assert_eq!(line.count, 6);
        assert_eq!(line.errors, 1);
        let mut exp = Exposition::new();
        reg.render_into(&mut exp);
        let lines = exp.into_lines();
        assert!(lines.contains(&"simseq_op_total{op=\"query\"} 6".to_string()));
        assert!(lines.contains(&"simseq_op_errors_total{op=\"query\"} 1".to_string()));
        assert!(lines.contains(&"simseq_connections_total 1".to_string()));
        assert!(lines.contains(&"simseq_slow_queries_total 0".to_string()));
    }

    #[test]
    fn reset_zeroes_ops_but_not_connections() {
        let reg = Registry::new();
        reg.record(op_index("insert"), Duration::from_micros(10), false);
        reg.record_connection();
        let zero = AccessCounters {
            node_reads: 0,
            record_page_reads: 0,
            record_fetches: 0,
        };
        reg.report(zero, Vec::new(), None, None, None, true);
        assert_eq!(reg.op_count(op_index("insert")), 0);
        let report = reg.report(zero, Vec::new(), None, None, None, false);
        assert!(report.ops.is_empty());
        assert_eq!(report.connections, 1);
    }
}
