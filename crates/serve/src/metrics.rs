//! Server observability: per-operation counters and latency histograms.
//!
//! Latencies are recorded in microseconds into log₂ buckets (bucket `i`
//! holds `[2^i, 2^{i+1})` µs), so a histogram is 64 atomic counters —
//! cheap enough to update on every request from every worker without a
//! lock, and precise enough for the p50/p95/p99 the `STATS` request
//! reports (percentiles are bucket upper bounds, i.e. ≤ 2× the true
//! value).

use crate::protocol::{
    OpStatLine, PlanStatLine, ReplStatLine, ShardStatLine, StatsReport, WalStatLine,
};
use simquery::index::AccessCounters;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

const BUCKETS: usize = 64;

/// A lock-free log₂-bucketed histogram of microsecond latencies.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    max_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one latency.
    pub fn record(&self, d: Duration) {
        let us = d.as_micros().min(u64::MAX as u128) as u64;
        let bucket = (64 - us.leading_zeros()).saturating_sub(1) as usize; // floor(log2), 0 for 0–1 µs
        self.buckets[bucket.min(BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (0 < q ≤ 1) as the upper bound of the bucket the
    /// quantile sample falls in; 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                // Upper bound of bucket i = 2^{i+1} − 1.
                return (2u64 << i) - 1;
            }
        }
        self.max_us()
    }

    /// Largest recorded value.
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.max_us.store(0, Ordering::Relaxed);
    }
}

/// The operations the registry tracks, in reporting order.
pub const OPS: [&str; 11] = [
    "query",
    "knn",
    "join",
    "explain",
    "insert",
    "delete",
    "sync",
    "checkpoint",
    "info",
    "repl",
    "stats",
];

/// Index of an op name in [`OPS`] (`stats` catches anything unknown).
pub fn op_index(op: &str) -> usize {
    OPS.iter().position(|o| *o == op).unwrap_or(OPS.len() - 1)
}

#[derive(Default)]
struct OpStats {
    count: AtomicU64,
    errors: AtomicU64,
    hist: Histogram,
}

/// The server-wide metrics registry shared by all workers.
#[derive(Default)]
pub struct Registry {
    ops: [OpStats; OPS.len()],
    busy_rejected: AtomicU64,
    connections: AtomicU64,
    /// Index counters at the previous STATS call — the delta baseline.
    baseline: Mutex<Option<AccessCounters>>,
}

impl Registry {
    /// Records one completed operation.
    pub fn record(&self, op: usize, latency: Duration, is_err: bool) {
        let s = &self.ops[op];
        s.count.fetch_add(1, Ordering::Relaxed);
        if is_err {
            s.errors.fetch_add(1, Ordering::Relaxed);
        }
        s.hist.record(latency);
    }

    /// Counts a request rejected by admission control.
    pub fn record_busy(&self) {
        self.busy_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts an accepted connection.
    pub fn record_connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests rejected so far.
    pub fn busy_rejected(&self) -> u64 {
        self.busy_rejected.load(Ordering::Relaxed)
    }

    /// Builds the `STATS` payload; with `reset`, zeroes op counters and
    /// histograms afterwards. `now` is the backend's aggregate access
    /// counters (totals since server start; the delta baseline is kept
    /// here), and `shards` is the per-shard breakdown — empty for a
    /// single-index backend. `plan` carries the planner and result-cache
    /// counters (always present on current servers), and `repl` the
    /// replication view when the server is a primary with followers or a
    /// follower itself.
    pub fn report(
        &self,
        now: AccessCounters,
        shards: Vec<ShardStatLine>,
        wal: Option<WalStatLine>,
        plan: Option<PlanStatLine>,
        repl: Option<ReplStatLine>,
        reset: bool,
    ) -> StatsReport {
        let mut baseline = self.baseline.lock().unwrap_or_else(|e| e.into_inner());
        let prev = baseline.unwrap_or(AccessCounters {
            node_reads: 0,
            record_page_reads: 0,
            record_fetches: 0,
        });
        *baseline = Some(now);
        drop(baseline);

        let ops = OPS
            .iter()
            .zip(&self.ops)
            .filter(|(_, s)| s.count.load(Ordering::Relaxed) > 0)
            .map(|(name, s)| OpStatLine {
                op: name.to_string(),
                count: s.count.load(Ordering::Relaxed),
                errors: s.errors.load(Ordering::Relaxed),
                p50_us: s.hist.quantile_us(0.50),
                p95_us: s.hist.quantile_us(0.95),
                p99_us: s.hist.quantile_us(0.99),
                max_us: s.hist.max_us(),
            })
            .collect();
        let report = StatsReport {
            ops,
            busy_rejected: self.busy_rejected.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            counters_total: (now.node_reads, now.record_page_reads, now.record_fetches),
            counters_delta: (
                now.node_reads - prev.node_reads,
                now.record_page_reads - prev.record_page_reads,
                now.record_fetches - prev.record_fetches,
            ),
            shards,
            wal,
            plan,
            repl,
        };
        if reset {
            for s in &self.ops {
                s.count.store(0, Ordering::Relaxed);
                s.errors.store(0, Ordering::Relaxed);
                s.hist.reset();
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        assert_eq!(h.quantile_us(0.5), 0, "empty histogram");
        for us in [1u64, 2, 3, 100, 100, 100, 100, 5000, 80_000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.max_us(), 80_000);
        let p50 = h.quantile_us(0.50);
        let p95 = h.quantile_us(0.95);
        let p99 = h.quantile_us(0.99);
        // 5th of 9 samples is one of the 100 µs records → bucket [64, 128).
        assert_eq!(p50, 127);
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!(p99 >= 80_000, "p99 covers the max bucket");
    }

    #[test]
    fn quantiles_are_upper_bounds_within_2x() {
        let h = Histogram::default();
        for us in 1..=1000u64 {
            h.record(Duration::from_micros(us));
        }
        let p50 = h.quantile_us(0.5);
        assert!((500..=1024).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn op_indices_cover_all_ops() {
        for (i, op) in OPS.iter().enumerate() {
            assert_eq!(op_index(op), i);
        }
        assert_eq!(op_index("nonsense"), OPS.len() - 1);
    }
}
