//! Assembles the `METRICS` text exposition.
//!
//! The server registry's own instruments (op counters, latency
//! histograms, the slow-query total) render straight from their atomics;
//! the rest of the document — index access counters, WAL activity,
//! planner/result-cache counters, est-vs-actual cost drift, replication
//! position, and trace-ring health — is sampled at render time from the
//! same sources the `STATS` request reads. Agreement between the two
//! views is therefore structural, not a matter of double bookkeeping;
//! the loopback metrics suite pins it op-for-op anyway.

use crate::metrics::Registry;
use crate::protocol::Response;
use crate::repl::ReplState;
use crate::server::Backend;
use simobs::Exposition;
use simquery::prelude::*;

/// Renders the full exposition for one `METRICS` request.
pub(crate) fn render(
    backend: &Backend,
    metrics: &Registry,
    cache: &PlanCache,
    repl: &ReplState,
) -> Response {
    let mut exp = Exposition::new();
    metrics.render_into(&mut exp);

    // Index access counters — totals, plus a per-shard breakdown on a
    // sharded backend (the totals then equal the sum of the shard lines,
    // same invariant as the STATS COUNTERS/SHARD split).
    let totals = match backend {
        Backend::Single(shared) => shared.read().counters(),
        Backend::Sharded(sharded) => {
            let per = sharded.per_shard_counters();
            for (id, c) in per.iter().enumerate() {
                let id = id.to_string();
                let labels = [("shard", id.as_str())];
                exp.counter("simseq_index_node_reads_total", &labels, c.node_reads);
                exp.counter(
                    "simseq_index_record_page_reads_total",
                    &labels,
                    c.record_page_reads,
                );
                exp.counter(
                    "simseq_index_record_fetches_total",
                    &labels,
                    c.record_fetches,
                );
            }
            per.iter()
                .fold(simquery::index::AccessCounters::default(), |acc, c| {
                    simquery::index::AccessCounters {
                        node_reads: acc.node_reads + c.node_reads,
                        record_page_reads: acc.record_page_reads + c.record_page_reads,
                        record_fetches: acc.record_fetches + c.record_fetches,
                    }
                })
        }
    };
    exp.counter("simseq_index_node_reads_total", &[], totals.node_reads);
    exp.counter(
        "simseq_index_record_page_reads_total",
        &[],
        totals.record_page_reads,
    );
    exp.counter(
        "simseq_index_record_fetches_total",
        &[],
        totals.record_fetches,
    );

    // WAL activity (absent without --wal, like the STATS WAL line).
    let wal = match backend {
        Backend::Single(shared) => shared.wal_stats().map(|s| (s, shared.wal_epoch())),
        Backend::Sharded(sharded) => sharded.wal_stats().map(|s| (s, Some(sharded.epoch()))),
    };
    if let Some((s, epoch)) = wal {
        exp.counter("simseq_wal_appends_total", &[], s.appends);
        exp.counter("simseq_wal_fsyncs_total", &[], s.fsyncs);
        exp.counter("simseq_wal_replayed_total", &[], s.replayed);
        exp.gauge("simseq_wal_epoch", &[], epoch.unwrap_or(0) as f64);
    }

    // Planner dispatch and result-cache admission counters.
    let stats = match backend {
        Backend::Single(shared) => shared.stats(),
        Backend::Sharded(sharded) => sharded.stats(),
    };
    let snap = stats.snapshot();
    exp.counter("simseq_plans_built_total", &[], snap.plans_built);
    for (engine, n) in [
        ("mt", snap.dispatch_mt),
        ("st", snap.dispatch_st),
        ("scan", snap.dispatch_scan),
    ] {
        exp.counter("simseq_plan_dispatch_total", &[("engine", engine)], n);
    }
    let cc = cache.counters();
    exp.counter("simseq_result_cache_hits_total", &[], cc.hits);
    exp.counter("simseq_result_cache_misses_total", &[], cc.misses);
    exp.counter("simseq_result_cache_evictions_total", &[], cc.evictions);
    exp.counter("simseq_result_cache_admitted_total", &[], cc.admitted);
    exp.counter("simseq_result_cache_rejected_total", &[], cc.rejected);
    exp.gauge("simseq_result_cache_entries", &[], cc.entries as f64);
    exp.gauge("simseq_result_cache_floor", &[], cache.floor());

    // Est-vs-actual cost drift per (family, engine): measured work over
    // the planner's Eq. 18–20 estimate — 1.0 means the model was exact
    // on average; rows without a recorded estimate are omitted rather
    // than rendered as a fake zero.
    for row in stats.drift_report() {
        let labels = [("family", row.family.as_str()), ("engine", row.engine)];
        exp.counter("simseq_cost_drift_queries_total", &labels, row.queries);
        if let Some(r) = row.pages_ratio() {
            exp.gauge("simseq_cost_drift_pages", &labels, r);
        }
        if let Some(r) = row.comparisons_ratio() {
            exp.gauge("simseq_cost_drift_comparisons", &labels, r);
        }
    }

    // Failover/role view: primary=1 follower=0, the fencing state of the
    // local timeline, and how many promotions this process has served.
    exp.gauge(
        "simseq_role",
        &[],
        if repl.is_follower() { 0.0 } else { 1.0 },
    );
    exp.counter("simseq_promotions_total", &[], repl.promotions());
    if let Backend::Single(shared) = backend {
        exp.gauge("simseq_fence_epoch", &[], shared.fence() as f64);
        exp.gauge(
            "simseq_fenced",
            &[],
            if shared.is_fenced() { 1.0 } else { 0.0 },
        );
    }

    // Replication position (primary fleet view or follower position).
    if let Some(r) = repl.stat_line(backend) {
        let labels = [("role", r.role.as_str())];
        exp.gauge("simseq_repl_followers", &labels, r.followers as f64);
        exp.gauge("simseq_repl_acked_lsn", &labels, r.acked_lsn as f64);
        exp.gauge("simseq_repl_applied_lsn", &labels, r.applied_lsn as f64);
        exp.gauge("simseq_repl_lag", &labels, r.lag as f64);
        exp.counter("simseq_repl_bytes_total", &labels, r.bytes);
        exp.gauge("simseq_repl_epoch", &labels, r.epoch as f64);
    }

    // Trace-ring health: spans kept vs dropped under contention, and the
    // active 1-in-k root sampling rate.
    let tracer = simobs::trace::global();
    exp.counter("simseq_trace_recorded_total", &[], tracer.recorded());
    exp.counter("simseq_trace_dropped_total", &[], tracer.dropped());
    exp.gauge("simseq_trace_sample", &[], tracer.sample() as f64);

    Response::Metrics {
        lines: exp.into_lines(),
    }
}
