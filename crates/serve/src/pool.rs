//! A bounded work queue and the worker thread pool draining it.
//!
//! Admission control happens at the queue: [`BoundedQueue::try_push`]
//! fails immediately with [`PushError::Full`] when `capacity` jobs are
//! already waiting, and the connection handler turns that into an
//! `ERR code=BUSY` frame instead of letting latency grow without bound.
//! Workers are plain `std::thread`s blocking on a `Condvar`.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Why a push was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue holds `capacity` jobs — the caller should shed load.
    Full,
    /// The queue was closed for shutdown.
    Closed,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A Mutex + Condvar bounded MPMC queue.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `capacity` waiting items.
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues without blocking; fails when full or closed.
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.closed {
            return Err(PushError::Closed);
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        state.items.push_back(item);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next item; `None` once closed and drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Number of items currently waiting.
    pub fn depth(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .items
            .len()
    }

    /// Closes the queue: pending items still drain, new pushes fail,
    /// blocked `pop`s wake up.
    pub fn close(&self) {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        self.ready.notify_all();
    }
}

/// A job: boxed work executed on some worker thread.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed pool of worker threads draining one [`BoundedQueue`] of jobs.
pub struct WorkerPool {
    queue: Arc<BoundedQueue<Job>>,
    // Behind a Mutex so `drain` works through a shared reference (the
    // server holds the pool in an `Arc`); joined handles are taken out,
    // making a second drain a no-op.
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerPool {
    /// Spawns `workers` threads over a queue of depth `queue_depth`.
    pub fn new(workers: usize, queue_depth: usize) -> Self {
        assert!(workers >= 1, "need at least one worker");
        let queue: Arc<BoundedQueue<Job>> = Arc::new(BoundedQueue::new(queue_depth));
        let handles = (0..workers)
            .map(|i| {
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("simserve-worker-{i}"))
                    .spawn(move || {
                        while let Some(job) = queue.pop() {
                            // A panicking job must not take the worker
                            // down with it — the pool is a shared, fixed
                            // resource. The submitter observes the panic
                            // as its response channel closing.
                            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                        }
                    })
                    .expect("spawning worker thread")
            })
            .collect();
        Self {
            queue,
            workers: Mutex::new(handles),
        }
    }

    /// Submits a job; [`PushError::Full`] implements admission control.
    pub fn submit(&self, job: Job) -> Result<(), PushError> {
        self.queue.try_push(job)
    }

    /// Jobs currently queued (not yet picked up by a worker).
    pub fn queue_depth(&self) -> usize {
        self.queue.depth()
    }

    /// Number of worker threads still running (0 after a drain).
    pub fn workers(&self) -> usize {
        self.workers.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Closes the queue (new submissions fail with
    /// [`PushError::Closed`]), lets the already-admitted jobs finish,
    /// and joins every worker. Idempotent — a second call is a no-op.
    pub fn drain(&self) {
        self.queue.close();
        let handles = std::mem::take(&mut *self.workers.lock().unwrap_or_else(|e| e.into_inner()));
        for w in handles {
            let _ = w.join();
        }
    }

    /// Drains outstanding jobs and joins every worker.
    pub fn shutdown(self) {
        self.drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    #[test]
    fn workers_execute_submitted_jobs() {
        let pool = WorkerPool::new(4, 64);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let done = Arc::clone(&done);
            // Submission may transiently hit Full; retry — this test is
            // about execution, not admission.
            loop {
                let d = Arc::clone(&done);
                match pool.submit(Box::new(move || {
                    d.fetch_add(1, Ordering::Relaxed);
                })) {
                    Ok(()) => break,
                    Err(PushError::Full) => std::thread::yield_now(),
                    Err(PushError::Closed) => panic!("queue closed early"),
                }
            }
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn full_queue_rejects_immediately() {
        // One worker, blocked; queue depth 2 → third un-popped job rejected.
        let pool = WorkerPool::new(1, 2);
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.submit(Box::new(move || {
            started_tx.send(()).unwrap();
            release_rx.recv().unwrap();
        }))
        .unwrap();
        started_rx.recv().unwrap(); // worker is now occupied
        pool.submit(Box::new(|| {})).unwrap();
        pool.submit(Box::new(|| {})).unwrap();
        assert_eq!(pool.submit(Box::new(|| {})), Err(PushError::Full));
        assert_eq!(pool.queue_depth(), 2);
        release_tx.send(()).unwrap();
        pool.shutdown();
    }

    #[test]
    fn closed_queue_rejects_and_pop_drains() {
        let q: BoundedQueue<u32> = BoundedQueue::new(8);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(PushError::Closed));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn zero_depth_queue_always_busy() {
        let q: BoundedQueue<u32> = BoundedQueue::new(0);
        assert_eq!(q.try_push(1), Err(PushError::Full));
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        // A single worker absorbs a panicking job and keeps serving; if
        // the panic escaped, the second submit would never execute and
        // this test would hang on recv.
        let pool = WorkerPool::new(1, 8);
        pool.submit(Box::new(|| panic!("job blew up"))).unwrap();
        let (tx, rx) = mpsc::channel::<u32>();
        pool.submit(Box::new(move || tx.send(42).unwrap())).unwrap();
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_secs(10)),
            Ok(42),
            "worker survived the panicking job"
        );
        pool.shutdown();
    }
}
