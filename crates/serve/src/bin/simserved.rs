//! `simserved` — serve a persisted similarity index over TCP.
//!
//! ```sh
//! simserved --index idx/ [--addr 127.0.0.1:7878] [--workers N]
//!           [--queue 64] [--max-conns 64] [--pool-pages 256]
//! ```

use simquery::shared::SharedIndex;
use simserve::opts::Opts;
use simserve::server::{serve, ServerConfig};
use std::path::PathBuf;

const USAGE: &str = "\
simserved — serve a persisted similarity index over TCP

USAGE:
  simserved --index DIR/ [--addr HOST:PORT] [--workers N]
            [--queue N] [--max-conns N] [--pool-pages N]

The protocol is documented in crates/serve/PROTOCOL.md. Build an index
with `simseq gen` + `simseq build` first.
";

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        eprint!("{USAGE}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("help") {
        print!("{USAGE}");
        return Ok(());
    }
    let opts = Opts::parse(&argv).map_err(|e| e.to_string())?;
    let dir = PathBuf::from(opts.req("index").map_err(|e| e.to_string())?);
    let pool_pages: usize = opts
        .parse_or("pool-pages", 256)
        .map_err(|e| e.to_string())?;
    let defaults = ServerConfig::default();
    let cfg = ServerConfig {
        addr: opts
            .get("addr")
            .unwrap_or(defaults.addr.as_str())
            .to_string(),
        workers: opts
            .parse_or("workers", defaults.workers)
            .map_err(|e| e.to_string())?,
        queue_depth: opts
            .parse_or("queue", defaults.queue_depth)
            .map_err(|e| e.to_string())?,
        max_conns: opts
            .parse_or("max-conns", defaults.max_conns)
            .map_err(|e| e.to_string())?,
    };
    let shared = SharedIndex::open(&dir, pool_pages)
        .map_err(|e| format!("opening index {}: {e}", dir.display()))?;
    {
        let index = shared.read();
        eprintln!(
            "serving {} sequences of length {} ({} workers, queue {})",
            index.len(),
            index.seq_len(),
            cfg.workers,
            cfg.queue_depth
        );
    }
    let handle = serve(shared, &cfg).map_err(|e| format!("binding {}: {e}", cfg.addr))?;
    println!("listening on {}", handle.addr);
    handle.join();
    Ok(())
}
