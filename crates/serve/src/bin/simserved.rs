//! `simserved` — serve a persisted similarity index over TCP.
//!
//! ```sh
//! simserved --index idx/ [--addr 127.0.0.1:7878] [--workers N]
//!           [--queue 64] [--max-conns 64] [--pool-pages 256]
//!           [--shards N] [--partitioner hash|round-robin|range]
//!           [--wal DIR/] [--fsync always|never|N]
//!           [--result-cache N]
//! ```
//!
//! With `--shards N > 1` the opened index is repartitioned across N
//! independent shards: an insert write-locks one shard while the others
//! keep serving reads, queries scatter-gather, and `STATS` gains a
//! per-shard breakdown. A directory written by `simseq shard build` (it
//! contains `sharding.txt`) is served sharded as-is; passing `--shards`
//! or `--partitioner` against one is an error unless the values match
//! its manifest.
//!
//! With `--wal DIR/` every `INSERT`/`DELETE` is appended to a write-ahead
//! log before it is acknowledged; on startup the log tail is replayed on
//! top of the snapshot, so a crash loses at most the unsynced suffix.
//! `--fsync` trades durability for throughput: `always` syncs every
//! append, `N` every N appends, `never` leaves syncing to the OS.
//!
//! `--result-cache N` keeps the last N query results in an LRU cache
//! keyed on the query fingerprint and the index epoch; any `INSERT`,
//! `DELETE`, or `CHECKPOINT` moves the epoch, so cached results are
//! never stale. `0` (the default) disables the cache.
//!
//! With `--replicate-from HOST:PORT` the server runs as a **follower**:
//! it streams WAL frames from the primary over the `REPL` verb, applies
//! them through the crash-recovery replay path, and serves read-only
//! queries (writes get `ERR code=READONLY`). Without `--index` the
//! follower bootstraps its whole state from a snapshot transfer; with
//! `--index` (optionally plus `--wal` for a durable follower that
//! resumes from its persisted replica position) it starts from local
//! state and catches up.

use simquery::shared::SharedIndex;
use simserve::opts::Opts;
use simserve::repl::{self, Follower, FollowerOpts};
use simserve::server::{serve, serve_with, Backend, ServerConfig};
use simshard::{ShardConfig, ShardedIndex};
use simwal::FsyncPolicy;
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

const USAGE: &str = "\
simserved — serve a persisted similarity index over TCP

USAGE:
  simserved --index DIR/ [--addr HOST:PORT] [--workers N]
            [--queue N] [--max-conns N] [--pool-pages N]
            [--shards N] [--partitioner hash|round-robin|range]
            [--wal DIR/] [--fsync always|never|N]
            [--result-cache N] [--cache-floor COST]
            [--slow-query-ms N] [--trace-sample K]
  simserved --replicate-from HOST:PORT [--index DIR/] [--wal DIR/]
            [--addr HOST:PORT] [...]

The protocol is documented in crates/serve/PROTOCOL.md. Build an index
with `simseq gen` + `simseq build` first (or a sharded one with
`simseq shard build`). `--shards N` repartitions a single-index
directory across N shards at startup; JOIN requires an unsharded
backend. `--wal DIR/` makes INSERT/DELETE durable (write-ahead logged,
replayed on restart; see SYNC and CHECKPOINT in the protocol).
`--result-cache N` answers repeated queries from an epoch-keyed LRU
cache (mutations invalidate; see the EXPLAIN verb and the STATS PLAN
line in the protocol); `--cache-floor COST` admits only results whose
measured execution cost reaches COST work units. `--slow-query-ms N`
logs any query at or over N ms (inspect with `simseq metrics`), and
`--trace-sample K` records every K-th query's span tree into a bounded
ring served by the TRACE verb (0 disables; see METRICS and TRACE in
the protocol). `--replicate-from HOST:PORT` runs a read-only
follower of a durable primary: without --index it bootstraps from a
snapshot transfer, with --index (+ --wal for durability) it resumes
from local state; writes are refused with ERR code=READONLY.
";

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        eprint!("{USAGE}");
        std::process::exit(1);
    }
}

fn announce(sharded: &ShardedIndex, cfg: &ServerConfig) {
    eprintln!(
        "serving {} sequences of length {} across {} shards ({}, {} workers, queue {})",
        sharded.len(),
        sharded.seq_len(),
        sharded.shard_count(),
        sharded.partitioner_kind(),
        cfg.workers,
        cfg.queue_depth
    );
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("help") {
        print!("{USAGE}");
        return Ok(());
    }
    let opts = Opts::parse(&argv).map_err(|e| e.to_string())?;
    let replicate_from = opts.get("replicate-from").map(str::to_string);
    let dir = match (opts.get("index"), &replicate_from) {
        (Some(d), _) => Some(PathBuf::from(d)),
        (None, Some(_)) => None, // a fresh follower bootstraps from a snapshot
        (None, None) => return Err("missing required --index".into()),
    };
    let pool_pages: usize = opts
        .parse_or("pool-pages", 256)
        .map_err(|e| e.to_string())?;
    let defaults = ServerConfig::default();
    let cfg = ServerConfig {
        addr: opts
            .get("addr")
            .unwrap_or(defaults.addr.as_str())
            .to_string(),
        workers: opts
            .parse_or("workers", defaults.workers)
            .map_err(|e| e.to_string())?,
        queue_depth: opts
            .parse_or("queue", defaults.queue_depth)
            .map_err(|e| e.to_string())?,
        max_conns: opts
            .parse_or("max-conns", defaults.max_conns)
            .map_err(|e| e.to_string())?,
        result_cache: opts
            .parse_or("result-cache", defaults.result_cache)
            .map_err(|e| e.to_string())?,
        cache_floor: opts
            .parse_or("cache-floor", defaults.cache_floor)
            .map_err(|e| e.to_string())?,
        // The flag is in milliseconds (human scale); the log gates in µs.
        slow_query_us: match opts.get("slow-query-ms") {
            None => defaults.slow_query_us,
            Some(raw) => raw
                .parse::<u64>()
                .map(|ms| ms.saturating_mul(1000))
                .map_err(|_| format!("--slow-query-ms must be an integer, got `{raw}`"))?,
        },
        trace_sample: opts
            .parse_or("trace-sample", defaults.trace_sample)
            .map_err(|e| e.to_string())?,
    };

    // One shardcfg parse covers both flags (shared with `simseq shard`).
    let shard_cfg = ShardConfig::parse(opts.get("shards").unwrap_or("1"), opts.get("partitioner"))?;

    let wal_dir = opts.get("wal").map(PathBuf::from);
    let policy = match opts.get("fsync") {
        None => FsyncPolicy::Always,
        Some(raw) => FsyncPolicy::parse(raw)
            .ok_or_else(|| format!("--fsync must be always|never|N, got `{raw}`"))?,
    };
    if wal_dir.is_none() && opts.get("fsync").is_some() {
        return Err("--fsync requires --wal".into());
    }

    if let Some(primary) = &replicate_from {
        if opts.get("shards").is_some() || opts.get("partitioner").is_some() {
            return Err(
                "--replicate-from serves a single-index follower; --shards/--partitioner \
                 do not apply (shards ship separately)"
                    .into(),
            );
        }
        // Per-node jitter seed: distinct listen addresses give distinct
        // reconnect schedules, so a follower fleet doesn't thundering-herd
        // a recovering primary.
        let reconnect_seed = {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            cfg.addr.hash(&mut h);
            h.finish()
        };
        let fopts = FollowerOpts {
            state_dir: wal_dir.clone(),
            reconnect_seed,
            ..FollowerOpts::default()
        };
        let (shared, follower) = match &dir {
            None => {
                if wal_dir.is_some() {
                    return Err("--wal on a follower requires --index \
                         (a durable follower opens both directories)"
                        .into());
                }
                repl::bootstrap(primary, fopts)
                    .map_err(|e| format!("bootstrapping from {primary}: {e}"))?
            }
            Some(dir) => {
                if dir.join("sharding.txt").is_file() {
                    return Err(format!(
                        "{} is a sharded directory; replication requires a single index",
                        dir.display()
                    ));
                }
                let shared = match &wal_dir {
                    None => SharedIndex::open(dir, pool_pages)
                        .map_err(|e| format!("opening index {}: {e}", dir.display()))?,
                    Some(wal) => {
                        let (shared, rep) = SharedIndex::open_durable(dir, wal, pool_pages, policy)
                            .map_err(|e| format!("opening index {}: {e}", dir.display()))?;
                        eprintln!(
                            "wal: epoch {}, replayed {} frames ({} stale, {} torn bytes)",
                            rep.epoch, rep.frames, rep.stale_frames, rep.truncated_bytes
                        );
                        shared
                    }
                };
                let follower = Follower::connect(primary, shared.clone(), fopts)
                    .map_err(|e| format!("connecting to primary {primary}: {e}"))?;
                (shared, follower)
            }
        };
        {
            let index = shared.read();
            eprintln!(
                "follower of {primary}: {} sequences of length {}, applied lsn {} \
                 ({} workers, queue {})",
                index.len(),
                index.seq_len(),
                shared.applied_lsn(),
                cfg.workers,
                cfg.queue_depth
            );
        }
        let stats = follower.stats();
        let stop = Arc::new(AtomicBool::new(false));
        let loop_handle = follower.spawn(Arc::clone(&stop));
        let handle = serve_with(Backend::from(shared), &cfg, Some(stats))
            .map_err(|e| format!("binding {}: {e}", cfg.addr))?;
        // Registered so a PROMOTE request can halt the poll loop before
        // flipping this server to primary.
        handle.repl().register_follower_loop(stop, loop_handle);
        println!("listening on {}", handle.addr);
        handle.join();
        return Ok(());
    }
    let dir = dir.expect("--index is required without --replicate-from");

    let backend = if dir.join("sharding.txt").is_file() {
        // A `simseq shard build` directory is already partitioned; explicit
        // flags must agree with its manifest, not be silently ignored.
        let sharded = match &wal_dir {
            None => ShardedIndex::open(&dir, pool_pages)
                .map_err(|e| format!("opening sharded index {}: {e}", dir.display()))?,
            Some(wal) => {
                let (sharded, rec) = ShardedIndex::open_durable(&dir, wal, pool_pages, policy)
                    .map_err(|e| format!("opening sharded index {}: {e}", dir.display()))?;
                eprintln!(
                    "wal: epoch {}, replayed {} frames ({} dropped, {} stale, {} torn bytes)",
                    rec.epoch, rec.replayed, rec.dropped, rec.stale_frames, rec.truncated_bytes
                );
                sharded
            }
        };
        if opts.get("shards").is_some() && shard_cfg.shards != sharded.shard_count() {
            return Err(format!(
                "--shards {} conflicts with {}, which was built with {} shards; \
                 drop the flag or rebuild with `simseq shard build`",
                shard_cfg.shards,
                dir.join("sharding.txt").display(),
                sharded.shard_count()
            ));
        }
        if opts.get("partitioner").is_some() && shard_cfg.partitioner != sharded.partitioner_kind()
        {
            return Err(format!(
                "--partitioner {} conflicts with {}, which was built with '{}'; \
                 drop the flag or rebuild with `simseq shard build`",
                shard_cfg.partitioner,
                dir.join("sharding.txt").display(),
                sharded.partitioner_kind()
            ));
        }
        announce(&sharded, &cfg);
        Backend::from(sharded)
    } else if shard_cfg.shards > 1 {
        if wal_dir.is_some() {
            return Err(
                "--wal cannot be combined with --shards repartitioning; build a sharded \
                 directory first (`simseq shard build`) and serve that with --wal"
                    .into(),
            );
        }
        let shared = SharedIndex::open(&dir, pool_pages)
            .map_err(|e| format!("opening index {}: {e}", dir.display()))?;
        let index_cfg = simquery::index::IndexConfig {
            heap_pool_pages: pool_pages,
            ..Default::default()
        };
        let sharded = ShardedIndex::from_index(&shared.read(), shard_cfg, index_cfg)
            .map_err(|e| format!("sharding {}: {e}", dir.display()))?;
        announce(&sharded, &cfg);
        Backend::from(sharded)
    } else {
        let shared = match &wal_dir {
            None => SharedIndex::open(&dir, pool_pages)
                .map_err(|e| format!("opening index {}: {e}", dir.display()))?,
            Some(wal) => {
                let (shared, rep) = SharedIndex::open_durable(&dir, wal, pool_pages, policy)
                    .map_err(|e| format!("opening index {}: {e}", dir.display()))?;
                eprintln!(
                    "wal: epoch {}, replayed {} frames ({} stale, {} torn bytes)",
                    rep.epoch, rep.frames, rep.stale_frames, rep.truncated_bytes
                );
                shared
            }
        };
        {
            let index = shared.read();
            eprintln!(
                "serving {} sequences of length {} ({} workers, queue {})",
                index.len(),
                index.seq_len(),
                cfg.workers,
                cfg.queue_depth
            );
        }
        Backend::from(shared)
    };

    let handle = serve(backend, &cfg).map_err(|e| format!("binding {}: {e}", cfg.addr))?;
    println!("listening on {}", handle.addr);
    handle.join();
    Ok(())
}
