//! `simload` — closed-loop load generator for `simserved`.
//!
//! ```sh
//! simload --addr 127.0.0.1:7878 --conns 8 --ops 100 [--seed 1]
//!         [--ma 5..20] [--rho 0.96] [--engine mt|st|scan]
//!         [--verify-index idx/] [--timeout-ms MS] [--failover A,B]
//! ```
//!
//! Exits non-zero on any error response or (with `--verify-index`) any
//! result-parity failure.

use simquery::shared::SharedIndex;
use simserve::load::{run, LoadConfig};
use simserve::opts::Opts;
use simserve::protocol::EngineKind;
use std::path::PathBuf;

const USAGE: &str = "\
simload — closed-loop load generator for simserved

USAGE:
  simload --addr HOST:PORT [--conns N] [--ops N] [--seed S]
          [--ma LO..HI] [--rho R] [--engine mt|st|scan]
          [--verify-index DIR/] [--pool-pages N]
          [--timeout-ms MS] [--failover HOST:PORT,HOST:PORT]

Each connection replays a seeded stream of QUERY requests and reports a
per-connection latency/throughput table. --verify-index opens the same
index directly and checks every response for result parity against a
single-threaded engine call. --timeout-ms bounds connect/read/write on
every socket (0 = no timeouts); --failover lists extra endpoints the
client rotates to on ERR READONLY or connection failure.
";

fn main() {
    if let Err(e) = run_cli() {
        eprintln!("error: {e}");
        eprint!("{USAGE}");
        std::process::exit(1);
    }
}

fn run_cli() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("help") {
        print!("{USAGE}");
        return Ok(());
    }
    let opts = Opts::parse(&argv).map_err(|e| e.to_string())?;
    let defaults = LoadConfig::default();
    let engine = match opts.get("engine").unwrap_or("mt") {
        "mt" => EngineKind::Mt,
        "st" => EngineKind::St,
        "scan" => EngineKind::Scan,
        other => return Err(format!("--engine must be mt|st|scan, got `{other}`")),
    };
    let verify = match opts.get("verify-index") {
        None => None,
        Some(dir) => {
            let pool: usize = opts
                .parse_or("pool-pages", 256)
                .map_err(|e| e.to_string())?;
            Some(
                // Read-only: the oracle may be the very directory the
                // server under test is serving (and holding the LOCK on).
                SharedIndex::open_read_only(&PathBuf::from(dir), pool)
                    .map_err(|e| format!("opening verify index {dir}: {e}"))?,
            )
        }
    };
    let cfg = LoadConfig {
        addr: opts.req("addr").map_err(|e| e.to_string())?.to_string(),
        conns: opts
            .parse_or("conns", defaults.conns)
            .map_err(|e| e.to_string())?,
        ops_per_conn: opts
            .parse_or("ops", defaults.ops_per_conn)
            .map_err(|e| e.to_string())?,
        seed: opts
            .parse_or("seed", defaults.seed)
            .map_err(|e| e.to_string())?,
        ma: opts
            .range_or("ma", defaults.ma)
            .map_err(|e| e.to_string())?,
        rho: opts
            .parse_or("rho", defaults.rho)
            .map_err(|e| e.to_string())?,
        engine,
        verify,
        failover_to: opts
            .get("failover")
            .map(|raw| {
                raw.split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default(),
        timeout_ms: match opts.get("timeout-ms") {
            None => None,
            Some(raw) => Some(
                raw.parse()
                    .map_err(|_| format!("--timeout-ms: bad value `{raw}`"))?,
            ),
        },
    };
    let report = run(&cfg).map_err(|e| format!("load run failed: {e}"))?;
    print!("{}", report.render());
    if report.total_errors() > 0 || report.total_parity_failures() > 0 {
        return Err(format!(
            "{} errors, {} parity failures",
            report.total_errors(),
            report.total_parity_failures()
        ));
    }
    Ok(())
}
