//! The `simserved` core: acceptor, connection handlers, request execution.
//!
//! Threading model:
//!
//! * one **acceptor** thread blocks on [`TcpListener::accept`];
//! * each accepted connection gets a lightweight **handler** thread that
//!   reads request lines, parses them, and *submits* execution to the
//!   worker pool (capped at [`ServerConfig::max_conns`] concurrent
//!   connections — beyond that the connection is greeted with
//!   `ERR code=BUSY` and closed);
//! * a fixed pool of **workers** executes requests against the shared
//!   index and sends the response back to the handler over a one-shot
//!   channel. The pool's queue is bounded: a full queue rejects the
//!   request with `ERR code=BUSY` *before* any index work happens.
//!
//! Queries take the index's read lock (concurrent), `INSERT`/`DELETE`
//! take the write lock (exclusive).

use crate::metrics::{op_index, Registry};
use crate::pool::{PushError, WorkerPool};
use crate::protocol::{
    EngineKind, ErrCode, QueryParams, Request, Response, WireMatch, WireMetrics, WirePair,
};
use simquery::engine::{join, knn, mtindex, seqscan, stindex};
use simquery::prelude::*;
use simquery::report::QueryError;
use simquery::shared::DurableError;
use simshard::{gather, ShardError, ShardedIndex};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Instant;

/// Server tunables.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Worker threads executing requests.
    pub workers: usize,
    /// Bounded request-queue depth (admission control threshold).
    pub queue_depth: usize,
    /// Maximum concurrent connections.
    pub max_conns: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".into(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            queue_depth: 64,
            max_conns: 64,
        }
    }
}

/// The index a server executes against: a single [`SharedIndex`] (one
/// lock), or a [`ShardedIndex`] (per-shard locks, scatter-gather
/// execution, per-shard `STATS` breakdown). `JOIN` is only available on a
/// single backend — its cross-shard pairs would defeat the partitioning.
#[derive(Clone)]
pub enum Backend {
    /// One index behind one lock.
    Single(SharedIndex),
    /// N shards queried by scatter-gather.
    Sharded(Arc<ShardedIndex>),
}

impl From<SharedIndex> for Backend {
    fn from(shared: SharedIndex) -> Self {
        Self::Single(shared)
    }
}

impl From<ShardedIndex> for Backend {
    fn from(sharded: ShardedIndex) -> Self {
        Self::Sharded(Arc::new(sharded))
    }
}

impl From<Arc<ShardedIndex>> for Backend {
    fn from(sharded: Arc<ShardedIndex>) -> Self {
        Self::Sharded(sharded)
    }
}

/// A running server; dropping it does NOT stop the threads — call
/// [`ServerHandle::shutdown`] (tests) or [`ServerHandle::join`] (daemon).
pub struct ServerHandle {
    /// The bound address (useful with port 0).
    pub addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: JoinHandle<()>,
    /// Shared metrics, exposed for in-process inspection.
    pub metrics: Arc<Registry>,
}

impl ServerHandle {
    /// Requests shutdown and joins the acceptor (connection handlers and
    /// workers drain and exit as their queues close).
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = self.acceptor.join();
    }

    /// Blocks until the acceptor exits (i.e. forever, for a daemon).
    pub fn join(self) {
        let _ = self.acceptor.join();
    }
}

/// Starts serving `backend` per `cfg` (a bare [`SharedIndex`] converts
/// into a single-index backend). Returns once the listener is bound.
pub fn serve(backend: impl Into<Backend>, cfg: &ServerConfig) -> io::Result<ServerHandle> {
    let backend = backend.into();
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let metrics = Arc::new(Registry::default());
    let stop = Arc::new(AtomicBool::new(false));
    let pool = Arc::new(WorkerPool::new(cfg.workers, cfg.queue_depth));
    let live_conns = Arc::new(AtomicUsize::new(0));
    let max_conns = cfg.max_conns;

    let acceptor = {
        let (metrics, stop) = (Arc::clone(&metrics), Arc::clone(&stop));
        std::thread::Builder::new()
            .name("simserve-acceptor".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    if live_conns.load(Ordering::SeqCst) >= max_conns {
                        metrics.record_busy();
                        let mut w = BufWriter::new(&stream);
                        let _ = Response::Err {
                            code: ErrCode::Busy,
                            msg: format!("connection limit {max_conns} reached"),
                        }
                        .write_to(&mut w);
                        let _ = w.flush();
                        continue;
                    }
                    metrics.record_connection();
                    live_conns.fetch_add(1, Ordering::SeqCst);
                    let backend = backend.clone();
                    let metrics = Arc::clone(&metrics);
                    let pool = Arc::clone(&pool);
                    let live_conns = Arc::clone(&live_conns);
                    let _ = std::thread::Builder::new()
                        .name("simserve-conn".into())
                        .spawn(move || {
                            let _ = handle_connection(stream, &backend, &metrics, &pool);
                            live_conns.fetch_sub(1, Ordering::SeqCst);
                        });
                }
            })?
    };

    Ok(ServerHandle {
        addr,
        stop,
        acceptor,
        metrics,
    })
}

fn handle_connection(
    stream: TcpStream,
    backend: &Backend,
    metrics: &Arc<Registry>,
    pool: &Arc<WorkerPool>,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // client hung up
        }
        if line.trim().is_empty() {
            continue;
        }
        let request = match Request::parse(&line) {
            Ok(r) => r,
            Err(e) => {
                Response::Err {
                    code: ErrCode::BadRequest,
                    msg: e.to_string(),
                }
                .write_to(&mut writer)?;
                writer.flush()?;
                continue;
            }
        };
        if matches!(request, Request::Quit) {
            Response::Ok.write_to(&mut writer)?;
            writer.flush()?;
            return Ok(());
        }

        // Hand execution to the worker pool; a full queue is an immediate
        // BUSY error — the admission-control contract.
        let (tx, rx) = mpsc::channel::<Response>();
        let job = {
            let backend = backend.clone();
            let metrics = Arc::clone(metrics);
            Box::new(move || {
                let op = op_index(request.op_name());
                let start = Instant::now();
                let response = execute(&backend, &metrics, request);
                let is_err = matches!(response, Response::Err { .. });
                metrics.record(op, start.elapsed(), is_err);
                let _ = tx.send(response);
            })
        };
        let response = match pool.submit(job) {
            Ok(()) => rx.recv().unwrap_or(Response::Err {
                code: ErrCode::Server,
                msg: "worker dropped the request".into(),
            }),
            Err(PushError::Full) => {
                metrics.record_busy();
                Response::Err {
                    code: ErrCode::Busy,
                    msg: format!("request queue full (depth {})", pool.queue_depth()),
                }
            }
            Err(PushError::Closed) => Response::Err {
                code: ErrCode::Server,
                msg: "server shutting down".into(),
            },
        };
        response.write_to(&mut writer)?;
        writer.flush()?;
    }
}

impl Request {
    /// Metric label of this request.
    pub fn op_name(&self) -> &'static str {
        match self {
            Self::Query(_) => "query",
            Self::Knn { .. } => "knn",
            Self::Join { .. } => "join",
            Self::Insert { .. } => "insert",
            Self::Delete { .. } => "delete",
            Self::Sync => "sync",
            Self::Checkpoint => "checkpoint",
            Self::Info => "info",
            Self::Stats { .. } => "stats",
            Self::Quit => "info",
        }
    }
}

/// Executes one request against the backend. `Stats` reads the metrics
/// registry; everything else touches only the index (or its shards).
fn execute(backend: &Backend, metrics: &Registry, request: Request) -> Response {
    match request {
        Request::Query(p) => match backend {
            Backend::Single(shared) => run_query(shared, p),
            Backend::Sharded(sharded) => run_query_sharded(sharded, p),
        },
        Request::Knn { ord, k, ma } => match backend {
            Backend::Single(shared) => run_knn(shared, ord, k, ma),
            Backend::Sharded(sharded) => run_knn_sharded(sharded, ord, k, ma),
        },
        Request::Join {
            ma,
            threshold,
            engine,
            limit,
        } => match backend {
            Backend::Single(shared) => run_join(shared, ma, threshold.to_spec(), engine, limit),
            Backend::Sharded(_) => err(
                ErrCode::Query,
                "JOIN is not supported on a sharded backend (pairs cross shards); \
                 serve the index unsharded to join",
            ),
        },
        Request::Insert { values } => {
            let ts = TimeSeries::new(values);
            // The WAL-aware mutation paths: logged-then-acked when the
            // backend is durable, plain apply otherwise.
            let outcome = match backend {
                Backend::Single(shared) => shared.insert_series(&ts),
                Backend::Sharded(sharded) => sharded.insert_series(&ts),
            };
            match outcome {
                Ok(ord) => Response::Inserted { ord },
                Err(e) => durable_err(e),
            }
        }
        Request::Delete { ord } => {
            let outcome = match backend {
                Backend::Single(shared) => shared.delete_series(ord),
                Backend::Sharded(sharded) => sharded.delete_series(ord),
            };
            match outcome {
                Ok(existed) => Response::Deleted { existed },
                Err(e) => durable_err(e),
            }
        }
        Request::Sync => {
            let outcome = match backend {
                Backend::Single(shared) => shared.sync_wal().map_err(durable_err),
                Backend::Sharded(sharded) => sharded.sync_wal().map_err(shard_err),
            };
            match outcome {
                Ok(true) => Response::Ok,
                Ok(false) => not_durable(),
                Err(resp) => resp,
            }
        }
        Request::Checkpoint => {
            let outcome = match backend {
                Backend::Single(shared) => shared.checkpoint().map_err(durable_err),
                Backend::Sharded(sharded) => sharded.checkpoint().map_err(shard_err),
            };
            match outcome {
                Ok(Some(epoch)) => Response::Checkpointed { epoch },
                Ok(None) => not_durable(),
                Err(resp) => resp,
            }
        }
        Request::Info => match backend {
            Backend::Single(shared) => {
                let index = shared.read();
                let mut info = vec![
                    ("sequences".into(), index.len().to_string()),
                    ("seq_len".into(), index.seq_len().to_string()),
                    ("tree_height".into(), index.height().to_string()),
                    ("leaf_capacity".into(), index.leaf_capacity().to_string()),
                    ("skipped".into(), index.skipped().len().to_string()),
                    ("deleted".into(), index.deleted_count().to_string()),
                    ("durable".into(), shared.is_durable().to_string()),
                ];
                if let Some(epoch) = shared.wal_epoch() {
                    info.push(("wal_epoch".into(), epoch.to_string()));
                }
                Response::Info(info)
            }
            Backend::Sharded(sharded) => {
                let loads = sharded.shard_loads();
                let mut info = vec![
                    ("sequences".into(), sharded.len().to_string()),
                    ("seq_len".into(), sharded.seq_len().to_string()),
                    ("shards".into(), sharded.shard_count().to_string()),
                    ("partitioner".into(), sharded.partitioner_kind().to_string()),
                    ("deleted".into(), sharded.deleted_count().to_string()),
                    (
                        "shard_loads".into(),
                        loads
                            .iter()
                            .map(|l| l.to_string())
                            .collect::<Vec<_>>()
                            .join(","),
                    ),
                    ("durable".into(), sharded.is_durable().to_string()),
                ];
                if sharded.is_durable() {
                    info.push(("wal_epoch".into(), sharded.epoch().to_string()));
                }
                Response::Info(info)
            }
        },
        Request::Stats { reset } => {
            let (counters, shards) = match backend {
                Backend::Single(shared) => (shared.read().counters(), Vec::new()),
                Backend::Sharded(sharded) => {
                    let loads = sharded.shard_loads();
                    let per = sharded.per_shard_counters();
                    let lines = per
                        .iter()
                        .enumerate()
                        .map(|(id, c)| crate::protocol::ShardStatLine {
                            id,
                            seqs: loads.get(id).copied().unwrap_or(0) as u64,
                            node_reads: c.node_reads,
                            record_page_reads: c.record_page_reads,
                            record_fetches: c.record_fetches,
                        })
                        .collect();
                    // Totals from the same snapshot, so the COUNTERS line
                    // always equals the sum of the SHARD lines.
                    let total =
                        per.iter()
                            .fold(simquery::index::AccessCounters::default(), |acc, c| {
                                simquery::index::AccessCounters {
                                    node_reads: acc.node_reads + c.node_reads,
                                    record_page_reads: acc.record_page_reads + c.record_page_reads,
                                    record_fetches: acc.record_fetches + c.record_fetches,
                                }
                            });
                    (total, lines)
                }
            };
            let wal = match backend {
                Backend::Single(shared) => shared.wal_stats().map(|s| (s, shared.wal_epoch())),
                Backend::Sharded(sharded) => {
                    sharded.wal_stats().map(|s| (s, Some(sharded.epoch())))
                }
            }
            .map(|(s, epoch)| crate::protocol::WalStatLine {
                appends: s.appends,
                fsyncs: s.fsyncs,
                replayed: s.replayed,
                epoch: epoch.unwrap_or(0),
            });
            Response::Stats(Box::new(metrics.report(counters, shards, wal, reset)))
        }
        Request::Quit => Response::Ok, // handled on the connection thread
    }
}

fn err(code: ErrCode, msg: impl Into<String>) -> Response {
    Response::Err {
        code,
        msg: msg.into(),
    }
}

/// Engine errors carrying a device failure become `ERR IO`; everything
/// else stays `ERR QUERY`.
fn query_err(e: QueryError) -> Response {
    let code = match e {
        QueryError::Io(_) => ErrCode::Io,
        _ => ErrCode::Query,
    };
    err(code, e.to_string())
}

/// A raw page failure (e.g. fetching the query ordinal's record).
fn io_err(e: pagestore::PageError) -> Response {
    err(ErrCode::Io, QueryError::from(e).to_string())
}

/// Durable-mutation errors: engine rejections keep their `QUERY`/`IO`
/// split; WAL and snapshot failures are `IO`.
fn durable_err(e: DurableError) -> Response {
    match e {
        DurableError::Query(q) => query_err(q),
        e @ (DurableError::Wal(_) | DurableError::Io(_) | DurableError::Poisoned) => {
            err(ErrCode::Io, e.to_string())
        }
    }
}

fn shard_err(e: ShardError) -> Response {
    match e {
        ShardError::Page(_) | ShardError::Wal(_) | ShardError::Io(_) | ShardError::Poisoned => {
            err(ErrCode::Io, e.to_string())
        }
        e => err(ErrCode::Query, e.to_string()),
    }
}

/// `SYNC`/`CHECKPOINT` against a server started without `--wal`.
fn not_durable() -> Response {
    err(
        ErrCode::Query,
        "server runs without durability (start simserved with --wal DIR)",
    )
}

fn family_for(ma: (usize, usize), seq_len: usize) -> Result<Family, Response> {
    if ma.1 > seq_len {
        return Err(err(
            ErrCode::Query,
            format!("ma window {} exceeds sequence length {seq_len}", ma.1),
        ));
    }
    Ok(Family::moving_averages(ma.0..=ma.1, seq_len))
}

fn run_query(shared: &SharedIndex, p: QueryParams) -> Response {
    let index = shared.read();
    if p.ord >= index.len() {
        return err(
            ErrCode::Range,
            format!("ordinal {} out of range (0..{})", p.ord, index.len()),
        );
    }
    let family = match family_for(p.ma, index.seq_len()) {
        Ok(f) => f,
        Err(e) => return e,
    };
    let spec = p.threshold.to_spec();
    let q = match index.fetch_series(p.ord) {
        Ok(q) => q,
        Err(e) => return io_err(e),
    };
    let result = match p.engine {
        EngineKind::Mt => mtindex::range_query(&index, &q, &family, &spec),
        EngineKind::St => stindex::range_query(&index, &q, &family, &spec),
        EngineKind::Scan => seqscan::range_query(&index, &q, &family, &spec),
    };
    match result {
        Ok(r) => {
            let n = r.matches.len();
            let take = if p.limit == 0 { n } else { p.limit.min(n) };
            Response::Matches {
                n,
                matches: r.matches[..take]
                    .iter()
                    .map(|m| WireMatch {
                        seq: m.seq,
                        transform: m.transform,
                        dist: m.dist,
                    })
                    .collect(),
                metrics: WireMetrics::from(&r.metrics),
            }
        }
        Err(e) => query_err(e),
    }
}

fn run_knn(shared: &SharedIndex, ord: usize, k: usize, ma: (usize, usize)) -> Response {
    let index = shared.read();
    if ord >= index.len() {
        return err(
            ErrCode::Range,
            format!("ordinal {ord} out of range (0..{})", index.len()),
        );
    }
    let family = match family_for(ma, index.seq_len()) {
        Ok(f) => f,
        Err(e) => return e,
    };
    let q = match index.fetch_series(ord) {
        Ok(q) => q,
        Err(e) => return io_err(e),
    };
    match knn::knn(&index, &q, &family, k) {
        Ok((matches, m)) => Response::Matches {
            n: matches.len(),
            matches: matches
                .iter()
                .map(|m| WireMatch {
                    seq: m.seq,
                    transform: m.transform,
                    dist: m.dist,
                })
                .collect(),
            metrics: WireMetrics::from(&m),
        },
        Err(e) => query_err(e),
    }
}

fn run_query_sharded(sharded: &ShardedIndex, p: QueryParams) -> Response {
    if p.ord >= sharded.len() {
        return err(
            ErrCode::Range,
            format!("ordinal {} out of range (0..{})", p.ord, sharded.len()),
        );
    }
    let family = match family_for(p.ma, sharded.seq_len()) {
        Ok(f) => f,
        Err(e) => return e,
    };
    let spec = p.threshold.to_spec();
    let q = match sharded.fetch_series(p.ord) {
        Ok(q) => q,
        Err(e) => return query_err(e),
    };
    let engine = match p.engine {
        EngineKind::Mt => gather::Engine::Mt,
        EngineKind::St => gather::Engine::St,
        EngineKind::Scan => gather::Engine::Scan,
    };
    match gather::range_query(sharded, engine, &q, &family, &spec) {
        Ok(r) => {
            let n = r.matches.len();
            let take = if p.limit == 0 { n } else { p.limit.min(n) };
            Response::Matches {
                n,
                matches: r.matches[..take]
                    .iter()
                    .map(|m| WireMatch {
                        seq: m.seq,
                        transform: m.transform,
                        dist: m.dist,
                    })
                    .collect(),
                metrics: WireMetrics::from(&r.metrics),
            }
        }
        Err(e) => query_err(e),
    }
}

fn run_knn_sharded(sharded: &ShardedIndex, ord: usize, k: usize, ma: (usize, usize)) -> Response {
    if ord >= sharded.len() {
        return err(
            ErrCode::Range,
            format!("ordinal {ord} out of range (0..{})", sharded.len()),
        );
    }
    let family = match family_for(ma, sharded.seq_len()) {
        Ok(f) => f,
        Err(e) => return e,
    };
    let q = match sharded.fetch_series(ord) {
        Ok(q) => q,
        Err(e) => return query_err(e),
    };
    match gather::knn(sharded, &q, &family, k) {
        Ok((matches, m)) => Response::Matches {
            n: matches.len(),
            matches: matches
                .iter()
                .map(|m| WireMatch {
                    seq: m.seq,
                    transform: m.transform,
                    dist: m.dist,
                })
                .collect(),
            metrics: WireMetrics::from(&m),
        },
        Err(e) => query_err(e),
    }
}

fn run_join(
    shared: &SharedIndex,
    ma: (usize, usize),
    spec: RangeSpec,
    engine: EngineKind,
    limit: usize,
) -> Response {
    let index = shared.read();
    let family = match family_for(ma, index.seq_len()) {
        Ok(f) => f,
        Err(e) => return e,
    };
    let result = match engine {
        EngineKind::Mt => join::mt_join(&index, &family, &spec),
        EngineKind::St => join::st_join(&index, &family, &spec),
        EngineKind::Scan => join::scan_join(&index, &family, &spec),
    };
    match result {
        Ok(r) => {
            let n = r.matches.len();
            let take = if limit == 0 { n } else { limit.min(n) };
            Response::Pairs {
                n,
                pairs: r.matches[..take]
                    .iter()
                    .map(|m| WirePair {
                        a: m.seq_a,
                        b: m.seq_b,
                        transform: m.transform,
                        dist: m.dist,
                    })
                    .collect(),
                metrics: WireMetrics::from(&r.metrics),
            }
        }
        Err(e) => query_err(e),
    }
}
