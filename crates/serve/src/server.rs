//! The `simserved` core: acceptor, connection handlers, request execution.
//!
//! Threading model:
//!
//! * one **acceptor** thread blocks on [`TcpListener::accept`];
//! * each accepted connection gets a lightweight **handler** thread that
//!   reads request lines, parses them, and *submits* execution to the
//!   worker pool (capped at [`ServerConfig::max_conns`] concurrent
//!   connections — beyond that the connection is greeted with
//!   `ERR code=BUSY` and closed);
//! * a fixed pool of **workers** executes requests against the shared
//!   index and sends the response back to the handler over a one-shot
//!   channel. The pool's queue is bounded: a full queue rejects the
//!   request with `ERR code=BUSY` *before* any index work happens.
//!
//! Queries take the index's read lock (concurrent), `INSERT`/`DELETE`
//! take the write lock (exclusive).

use crate::metrics::{op_index, Registry};
use crate::pool::{PushError, WorkerPool};
use crate::protocol::{
    EngineKind, ErrCode, PlanStatLine, QueryParams, Request, Response, WireMatch, WireMetrics,
    WirePair, WireThreshold, WireTraceEvent,
};
use crate::repl::{serve_repl, FollowerStats, ReplPoll, ReplState};
use simobs::{SlowEntry, SlowLog};
use simquery::prelude::*;
use simquery::report::{JoinResult, QueryError};
use simquery::shared::DurableError;
use simshard::{gather, ShardError, ShardedIndex};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Instant;

/// Server tunables.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Worker threads executing requests.
    pub workers: usize,
    /// Bounded request-queue depth (admission control threshold).
    pub queue_depth: usize,
    /// Maximum concurrent connections.
    pub max_conns: usize,
    /// Result-cache capacity in entries (0 disables caching). Cached
    /// results are keyed on the query fingerprint and the index's
    /// [`QueryEpoch`], so mutations can never serve stale reads.
    pub result_cache: usize,
    /// Result-cache admission floor in cost-model work units
    /// ([`simquery::plan::execution_cost`]): results cheaper than this
    /// are not worth a cache slot. 0.0 admits everything.
    pub cache_floor: f64,
    /// Slow-query log threshold, µs (inclusive). `u64::MAX` disables the
    /// log; 0 logs every cache-missing query.
    pub slow_query_us: u64,
    /// Trace sampling: record every k-th root span (0 disables tracing).
    pub trace_sample: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".into(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            queue_depth: 64,
            max_conns: 64,
            result_cache: 0,
            cache_floor: 0.0,
            slow_query_us: u64::MAX,
            trace_sample: simobs::trace::DEFAULT_SAMPLE,
        }
    }
}

/// The index a server executes against: a single [`SharedIndex`] (one
/// lock), or a [`ShardedIndex`] (per-shard locks, scatter-gather
/// execution, per-shard `STATS` breakdown). `JOIN` is only available on a
/// single backend — its cross-shard pairs would defeat the partitioning.
#[derive(Clone)]
pub enum Backend {
    /// One index behind one lock.
    Single(SharedIndex),
    /// N shards queried by scatter-gather.
    Sharded(Arc<ShardedIndex>),
}

impl From<SharedIndex> for Backend {
    fn from(shared: SharedIndex) -> Self {
        Self::Single(shared)
    }
}

impl From<ShardedIndex> for Backend {
    fn from(sharded: ShardedIndex) -> Self {
        Self::Sharded(Arc::new(sharded))
    }
}

impl From<Arc<ShardedIndex>> for Backend {
    fn from(sharded: Arc<ShardedIndex>) -> Self {
        Self::Sharded(sharded)
    }
}

/// A running server; dropping it does NOT stop the threads — call
/// [`ServerHandle::shutdown`] (tests) or [`ServerHandle::join`] (daemon).
pub struct ServerHandle {
    /// The bound address (useful with port 0).
    pub addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: JoinHandle<()>,
    /// Shared metrics, exposed for in-process inspection.
    pub metrics: Arc<Registry>,
    repl: Arc<ReplState>,
    pool: Arc<WorkerPool>,
}

impl ServerHandle {
    /// The server's replication state — register the follower loop here
    /// (see [`ReplState::register_follower_loop`]) so a later `PROMOTE`
    /// can halt it.
    pub fn repl(&self) -> &Arc<ReplState> {
        &self.repl
    }
}

impl ServerHandle {
    /// Graceful shutdown: stops accepting, joins the acceptor, then
    /// drains the worker pool — already-admitted requests finish and
    /// answer their clients, later submissions from still-open
    /// connections get the typed shutting-down error, and every worker
    /// thread is joined before this returns.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = self.acceptor.join();
        self.pool.drain();
    }

    /// Blocks until the acceptor exits (i.e. forever, for a daemon).
    pub fn join(self) {
        let _ = self.acceptor.join();
    }
}

/// Starts serving `backend` per `cfg` (a bare [`SharedIndex`] converts
/// into a single-index backend). Returns once the listener is bound.
/// The server answers `REPL` polls whenever the backend is a durable
/// single index — any such server can feed followers.
pub fn serve(backend: impl Into<Backend>, cfg: &ServerConfig) -> io::Result<ServerHandle> {
    serve_with(backend, cfg, None)
}

/// [`serve`] for a replication follower: `follower` carries the counters
/// the follower loop publishes. The server then refuses writes with
/// `ERR code=READONLY` and reports the follower `REPL` stats line.
pub fn serve_with(
    backend: impl Into<Backend>,
    cfg: &ServerConfig,
    follower: Option<Arc<FollowerStats>>,
) -> io::Result<ServerHandle> {
    let backend = backend.into();
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let metrics = Arc::new(Registry::default());
    metrics.slow().set_threshold_us(cfg.slow_query_us);
    // The tracer is process-global (the instrumented crates have no
    // server handle); the most recently started server wins the rate.
    simobs::trace::global().set_sample(cfg.trace_sample);
    let stop = Arc::new(AtomicBool::new(false));
    let pool = Arc::new(WorkerPool::new(cfg.workers, cfg.queue_depth));
    let cache = Arc::new(PlanCache::with_floor(cfg.result_cache, cfg.cache_floor));
    let repl = Arc::new(match follower {
        Some(stats) => ReplState::follower(stats),
        None => ReplState::primary(),
    });
    let live_conns = Arc::new(AtomicUsize::new(0));
    let max_conns = cfg.max_conns;

    let repl_handle = Arc::clone(&repl);
    let pool_handle = Arc::clone(&pool);
    let acceptor = {
        let (metrics, stop) = (Arc::clone(&metrics), Arc::clone(&stop));
        std::thread::Builder::new()
            .name("simserve-acceptor".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    if live_conns.load(Ordering::SeqCst) >= max_conns {
                        metrics.record_busy();
                        let mut w = BufWriter::new(&stream);
                        let _ = Response::Err {
                            code: ErrCode::Busy,
                            msg: format!("connection limit {max_conns} reached"),
                        }
                        .write_to(&mut w);
                        let _ = w.flush();
                        continue;
                    }
                    metrics.record_connection();
                    live_conns.fetch_add(1, Ordering::SeqCst);
                    let backend = backend.clone();
                    let metrics = Arc::clone(&metrics);
                    let pool = Arc::clone(&pool);
                    let cache = Arc::clone(&cache);
                    let repl = Arc::clone(&repl);
                    let live_conns = Arc::clone(&live_conns);
                    let _ = std::thread::Builder::new()
                        .name("simserve-conn".into())
                        .spawn(move || {
                            let peer = stream
                                .peer_addr()
                                .map(|a| a.to_string())
                                .unwrap_or_else(|_| "unknown".into());
                            let _ = handle_connection(
                                stream, &backend, &metrics, &pool, &cache, &repl, &peer,
                            );
                            repl.drop_peer(&peer);
                            live_conns.fetch_sub(1, Ordering::SeqCst);
                        });
                }
            })?
    };

    Ok(ServerHandle {
        addr,
        stop,
        acceptor,
        metrics,
        repl: repl_handle,
        pool: pool_handle,
    })
}

fn handle_connection(
    stream: TcpStream,
    backend: &Backend,
    metrics: &Arc<Registry>,
    pool: &Arc<WorkerPool>,
    cache: &Arc<PlanCache>,
    repl: &Arc<ReplState>,
    peer: &str,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // client hung up
        }
        if line.trim().is_empty() {
            continue;
        }
        let request = match Request::parse(&line) {
            Ok(r) => r,
            Err(e) => {
                Response::Err {
                    code: ErrCode::BadRequest,
                    msg: e.to_string(),
                }
                .write_to(&mut writer)?;
                writer.flush()?;
                continue;
            }
        };
        if matches!(request, Request::Quit) {
            Response::Ok.write_to(&mut writer)?;
            writer.flush()?;
            return Ok(());
        }
        if let Request::Repl {
            epoch,
            from,
            ack,
            max,
            wait_ms,
        } = request
        {
            // Served inline, like QUIT: a long-poll parked in the
            // bounded worker pool would starve query traffic.
            let start = Instant::now();
            let poll = ReplPoll {
                epoch,
                from,
                ack,
                max,
                wait_ms,
            };
            let response = serve_repl(backend, repl, peer, poll);
            let is_err = matches!(response, Response::Err { .. });
            metrics.record(op_index("repl"), start.elapsed(), is_err);
            response.write_to(&mut writer)?;
            writer.flush()?;
            continue;
        }

        // Hand execution to the worker pool; a full queue is an immediate
        // BUSY error — the admission-control contract.
        let (tx, rx) = mpsc::channel::<Response>();
        let job = {
            let backend = backend.clone();
            let metrics = Arc::clone(metrics);
            let cache = Arc::clone(cache);
            let repl = Arc::clone(repl);
            Box::new(move || {
                let op = op_index(request.op_name());
                let start = Instant::now();
                let response = execute(&backend, &metrics, &cache, &repl, request);
                let is_err = matches!(response, Response::Err { .. });
                metrics.record(op, start.elapsed(), is_err);
                let _ = tx.send(response);
            })
        };
        let response = match pool.submit(job) {
            Ok(()) => rx.recv().unwrap_or(Response::Err {
                code: ErrCode::Server,
                msg: "worker dropped the request".into(),
            }),
            Err(PushError::Full) => {
                metrics.record_busy();
                Response::Err {
                    code: ErrCode::Busy,
                    msg: format!("request queue full (depth {})", pool.queue_depth()),
                }
            }
            Err(PushError::Closed) => Response::Err {
                code: ErrCode::Server,
                msg: "server shutting down".into(),
            },
        };
        response.write_to(&mut writer)?;
        writer.flush()?;
    }
}

impl Request {
    /// Metric label of this request.
    pub fn op_name(&self) -> &'static str {
        match self {
            Self::Query(_) => "query",
            Self::Knn { .. } => "knn",
            Self::Join { .. } => "join",
            Self::Insert { .. } => "insert",
            Self::Delete { .. } => "delete",
            Self::Sync => "sync",
            Self::Checkpoint => "checkpoint",
            Self::Info => "info",
            Self::Stats { .. } => "stats",
            Self::Metrics => "metrics",
            Self::Trace { .. } => "trace",
            Self::Explain { .. } => "explain",
            Self::Repl { .. } => "repl",
            Self::Promote => "promote",
            Self::Quit => "info",
        }
    }
}

/// Executes one request against the backend. `Stats` reads the metrics
/// registry; everything else touches only the index (or its shards).
/// Query verbs build a [`LogicalQuery`], consult the result cache, and
/// route through the plan layer — the server never calls an engine
/// directly.
fn execute(
    backend: &Backend,
    metrics: &Registry,
    cache: &PlanCache,
    repl: &ReplState,
    request: Request,
) -> Response {
    if repl.is_follower()
        && matches!(
            request,
            Request::Insert { .. } | Request::Delete { .. } | Request::Checkpoint
        )
    {
        return err(
            ErrCode::ReadOnly,
            "this server is a replication follower; send writes to the primary",
        );
    }
    match request {
        Request::Query(p) => run_query(backend, cache, metrics.slow(), p),
        Request::Knn { ord, k, ma } => run_knn(backend, cache, metrics.slow(), ord, k, ma),
        Request::Join {
            ma,
            threshold,
            engine,
            limit,
        } => run_join(backend, cache, metrics.slow(), ma, threshold, engine, limit),
        Request::Explain { inner } => run_explain(backend, *inner),
        Request::Insert { values } => {
            let ts = TimeSeries::new(values);
            // The WAL-aware mutation paths: logged-then-acked when the
            // backend is durable, plain apply otherwise.
            let outcome = match backend {
                Backend::Single(shared) => shared.insert_series(&ts),
                Backend::Sharded(sharded) => sharded.insert_series(&ts),
            };
            match outcome {
                Ok(ord) => {
                    repl.notify_append();
                    Response::Inserted { ord }
                }
                Err(e) => durable_err(e),
            }
        }
        Request::Delete { ord } => {
            let outcome = match backend {
                Backend::Single(shared) => shared.delete_series(ord),
                Backend::Sharded(sharded) => sharded.delete_series(ord),
            };
            match outcome {
                Ok(existed) => {
                    if existed {
                        repl.notify_append();
                    }
                    Response::Deleted { existed }
                }
                Err(e) => durable_err(e),
            }
        }
        Request::Sync => {
            let outcome = match backend {
                Backend::Single(shared) => shared.sync_wal().map_err(durable_err),
                Backend::Sharded(sharded) => sharded.sync_wal().map_err(shard_err),
            };
            match outcome {
                Ok(true) => Response::Ok,
                Ok(false) => not_durable(),
                Err(resp) => resp,
            }
        }
        Request::Checkpoint => {
            let outcome = match backend {
                Backend::Single(shared) => shared.checkpoint().map_err(durable_err),
                Backend::Sharded(sharded) => sharded.checkpoint().map_err(shard_err),
            };
            match outcome {
                Ok(Some(epoch)) => Response::Checkpointed { epoch },
                Ok(None) => not_durable(),
                Err(resp) => resp,
            }
        }
        Request::Info => match backend {
            Backend::Single(shared) => {
                let index = shared.read();
                let mut info = vec![
                    ("sequences".into(), index.len().to_string()),
                    ("seq_len".into(), index.seq_len().to_string()),
                    ("tree_height".into(), index.height().to_string()),
                    ("leaf_capacity".into(), index.leaf_capacity().to_string()),
                    ("skipped".into(), index.skipped().len().to_string()),
                    ("deleted".into(), index.deleted_count().to_string()),
                    ("durable".into(), shared.is_durable().to_string()),
                    (
                        "role".into(),
                        if repl.is_follower() {
                            "follower".into()
                        } else {
                            "primary".to_string()
                        },
                    ),
                ];
                if let Some(epoch) = shared.wal_epoch() {
                    info.push(("wal_epoch".into(), epoch.to_string()));
                }
                info.push(("fenced".into(), shared.is_fenced().to_string()));
                let fence = shared.fence();
                if fence > 0 {
                    info.push(("fence_epoch".into(), fence.to_string()));
                }
                if repl.is_follower() {
                    info.push(("applied_lsn".into(), shared.applied_lsn().to_string()));
                }
                Response::Info(info)
            }
            Backend::Sharded(sharded) => {
                let loads = sharded.shard_loads();
                let mut info = vec![
                    ("sequences".into(), sharded.len().to_string()),
                    ("seq_len".into(), sharded.seq_len().to_string()),
                    ("shards".into(), sharded.shard_count().to_string()),
                    ("partitioner".into(), sharded.partitioner_kind().to_string()),
                    ("deleted".into(), sharded.deleted_count().to_string()),
                    (
                        "shard_loads".into(),
                        loads
                            .iter()
                            .map(|l| l.to_string())
                            .collect::<Vec<_>>()
                            .join(","),
                    ),
                    ("durable".into(), sharded.is_durable().to_string()),
                ];
                if sharded.is_durable() {
                    info.push(("wal_epoch".into(), sharded.epoch().to_string()));
                }
                Response::Info(info)
            }
        },
        Request::Stats { reset } => {
            let (counters, shards) = match backend {
                Backend::Single(shared) => (shared.read().counters(), Vec::new()),
                Backend::Sharded(sharded) => {
                    let loads = sharded.shard_loads();
                    let per = sharded.per_shard_counters();
                    let lines = per
                        .iter()
                        .enumerate()
                        .map(|(id, c)| crate::protocol::ShardStatLine {
                            id,
                            seqs: loads.get(id).copied().unwrap_or(0) as u64,
                            node_reads: c.node_reads,
                            record_page_reads: c.record_page_reads,
                            record_fetches: c.record_fetches,
                        })
                        .collect();
                    // Totals from the same snapshot, so the COUNTERS line
                    // always equals the sum of the SHARD lines.
                    let total =
                        per.iter()
                            .fold(simquery::index::AccessCounters::default(), |acc, c| {
                                simquery::index::AccessCounters {
                                    node_reads: acc.node_reads + c.node_reads,
                                    record_page_reads: acc.record_page_reads + c.record_page_reads,
                                    record_fetches: acc.record_fetches + c.record_fetches,
                                }
                            });
                    (total, lines)
                }
            };
            let wal = match backend {
                Backend::Single(shared) => shared.wal_stats().map(|s| (s, shared.wal_epoch())),
                Backend::Sharded(sharded) => {
                    sharded.wal_stats().map(|s| (s, Some(sharded.epoch())))
                }
            }
            .map(|(s, epoch)| crate::protocol::WalStatLine {
                appends: s.appends,
                fsyncs: s.fsyncs,
                replayed: s.replayed,
                epoch: epoch.unwrap_or(0),
            });
            let snap = match backend {
                Backend::Single(shared) => shared.stats().snapshot(),
                Backend::Sharded(sharded) => sharded.stats().snapshot(),
            };
            let cc = cache.counters();
            let plan_line = Some(PlanStatLine {
                built: snap.plans_built,
                cache_hits: cc.hits,
                cache_misses: cc.misses,
                cache_evictions: cc.evictions,
                cache_entries: cc.entries,
                cache_admitted: cc.admitted,
                cache_rejected: cc.rejected,
                mt: snap.dispatch_mt,
                st: snap.dispatch_st,
                scan: snap.dispatch_scan,
            });
            let repl_line = repl.stat_line(backend);
            Response::Stats(Box::new(
                metrics.report(counters, shards, wal, plan_line, repl_line, reset),
            ))
        }
        Request::Metrics => crate::expose::render(backend, metrics, cache, repl),
        Request::Trace { n } => {
            let events = simobs::trace::global()
                .drain(n)
                .into_iter()
                .map(|e| WireTraceEvent {
                    seq: e.seq,
                    trace: e.trace,
                    name: e.name.to_string(),
                    depth: e.depth,
                    start_us: e.start_us,
                    dur_us: e.dur_us,
                })
                .collect();
            Response::Trace { events }
        }
        Request::Promote => match backend {
            Backend::Single(shared) => {
                if !repl.is_follower() {
                    return err(
                        ErrCode::Query,
                        "PROMOTE: this server is already a primary (or standalone)",
                    );
                }
                // Halt the replication loop and wait out any in-flight
                // poll BEFORE touching the index, so no frame or
                // snapshot from the old timeline can land on (or roll
                // back) the promoted state.
                repl.halt_follower_loop();
                match shared.promote() {
                    Ok(epoch) => {
                        repl.promote_to_primary();
                        Response::Promoted { epoch }
                    }
                    Err(e) => durable_err(e),
                }
            }
            Backend::Sharded(_) => err(
                ErrCode::Query,
                "PROMOTE requires a single-index server (shards replicate separately)",
            ),
        },
        // Both handled on the connection thread, never submitted here.
        Request::Repl { .. } | Request::Quit => Response::Ok,
    }
}

fn err(code: ErrCode, msg: impl Into<String>) -> Response {
    Response::Err {
        code,
        msg: msg.into(),
    }
}

/// Engine errors carrying a device failure become `ERR IO`; everything
/// else stays `ERR QUERY`.
fn query_err(e: QueryError) -> Response {
    let code = match e {
        QueryError::Io(_) => ErrCode::Io,
        _ => ErrCode::Query,
    };
    err(code, e.to_string())
}

/// A raw page failure (e.g. fetching the query ordinal's record).
fn io_err(e: pagestore::PageError) -> Response {
    err(ErrCode::Io, QueryError::from(e).to_string())
}

/// Durable-mutation errors: engine rejections keep their `QUERY`/`IO`
/// split; WAL and snapshot failures are `IO`; a replication gap is a
/// protocol-level inconsistency, so `SERVER`.
fn durable_err(e: DurableError) -> Response {
    match e {
        DurableError::Query(q) => query_err(q),
        e @ (DurableError::Wal(_) | DurableError::Io(_) | DurableError::Poisoned) => {
            err(ErrCode::Io, e.to_string())
        }
        gap @ DurableError::Gap { .. } => err(ErrCode::Server, gap.to_string()),
        // A fenced node is read-only by definition: the same signal a
        // follower sends, so FailoverClient chases both identically.
        fenced @ DurableError::Fenced { .. } => err(ErrCode::ReadOnly, fenced.to_string()),
    }
}

fn shard_err(e: ShardError) -> Response {
    match e {
        ShardError::Page(_) | ShardError::Wal(_) | ShardError::Io(_) | ShardError::Poisoned => {
            err(ErrCode::Io, e.to_string())
        }
        e => err(ErrCode::Query, e.to_string()),
    }
}

/// `SYNC`/`CHECKPOINT` against a server started without `--wal`.
fn not_durable() -> Response {
    err(
        ErrCode::Query,
        "server runs without durability (start simserved with --wal DIR)",
    )
}

fn family_for(ma: (usize, usize), seq_len: usize) -> Result<Family, Response> {
    if ma.1 > seq_len {
        return Err(err(
            ErrCode::Query,
            format!("ma window {} exceeds sequence length {seq_len}", ma.1),
        ));
    }
    Ok(Family::moving_averages(ma.0..=ma.1, seq_len))
}

/// Wire engine choice → planner preference.
pub(crate) fn engine_pref(kind: EngineKind) -> EnginePref {
    match kind {
        EngineKind::Mt => EnginePref::Force(EngineChoice::Mt),
        EngineKind::St => EnginePref::Force(EngineChoice::St),
        EngineKind::Scan => EnginePref::Force(EngineChoice::Scan),
        EngineKind::Auto => EnginePref::Auto,
    }
}

/// Renders a range/kNN match list, truncating the body by `limit`.
fn matches_response(matches: &[Match], metrics: &EngineMetrics, limit: usize) -> Response {
    let n = matches.len();
    let take = if limit == 0 { n } else { limit.min(n) };
    Response::Matches {
        n,
        matches: matches[..take]
            .iter()
            .map(|m| WireMatch {
                seq: m.seq,
                transform: m.transform,
                dist: m.dist,
            })
            .collect(),
        metrics: WireMetrics::from(metrics),
    }
}

/// Renders a join pair list, truncating the body by `limit`.
fn pairs_response(r: &JoinResult, limit: usize) -> Response {
    let n = r.matches.len();
    let take = if limit == 0 { n } else { limit.min(n) };
    Response::Pairs {
        n,
        pairs: r.matches[..take]
            .iter()
            .map(|m| WirePair {
                a: m.seq_a,
                b: m.seq_b,
                transform: m.transform,
                dist: m.dist,
            })
            .collect(),
        metrics: WireMetrics::from(&r.metrics),
    }
}

/// Validates the ordinal and family, then fetches the query sequence —
/// the shared front half of every ord-addressed query verb.
fn prepare(
    backend: &Backend,
    ord: usize,
    ma: (usize, usize),
) -> Result<(Family, TimeSeries), Response> {
    match backend {
        Backend::Single(shared) => {
            let index = shared.read();
            if ord >= index.len() {
                return Err(err(
                    ErrCode::Range,
                    format!("ordinal {ord} out of range (0..{})", index.len()),
                ));
            }
            let family = family_for(ma, index.seq_len())?;
            let q = index.fetch_series(ord).map_err(io_err)?;
            Ok((family, q))
        }
        Backend::Sharded(sharded) => {
            if ord >= sharded.len() {
                return Err(err(
                    ErrCode::Range,
                    format!("ordinal {ord} out of range (0..{})", sharded.len()),
                ));
            }
            let family = family_for(ma, sharded.seq_len())?;
            let q = sharded.fetch_series(ord).map_err(query_err)?;
            Ok((family, q))
        }
    }
}

/// The cache epoch of the backend's current state.
fn backend_epoch(backend: &Backend) -> QueryEpoch {
    match backend {
        Backend::Single(shared) => shared.query_epoch(),
        Backend::Sharded(sharded) => sharded.query_epoch(),
    }
}

/// Plans and executes a logical query against either backend shape,
/// returning the plan and its output.
fn dispatch(
    backend: &Backend,
    lq: &LogicalQuery,
    q: Option<&TimeSeries>,
) -> Result<(PhysicalPlan, PlanOutput), QueryError> {
    let (plan, out, _) = dispatch_timed(backend, lq, q)?;
    Ok((plan, out))
}

/// [`dispatch`], but also reporting the plan/execute wall-clock split.
/// The scatter-gather path can't separate planning from execution (each
/// shard plans inside its lane), so there the whole call counts as
/// execution and `plan_us` stays 0.
fn dispatch_timed(
    backend: &Backend,
    lq: &LogicalQuery,
    q: Option<&TimeSeries>,
) -> Result<(PhysicalPlan, PlanOutput, StageTimings), QueryError> {
    match backend {
        Backend::Single(shared) => shared.execute_timed(lq, q),
        Backend::Sharded(sharded) => {
            let start = Instant::now();
            let (plan, out) = match lq.verb {
                LogicalVerb::Range => {
                    let query = q.expect("range queries carry a query sequence");
                    let (plan, r, _per_shard) = gather::execute_range(sharded, lq, query)?;
                    (plan, PlanOutput::Range(r))
                }
                LogicalVerb::Knn { .. } => {
                    let query = q.expect("kNN queries carry a query sequence");
                    let (plan, matches, merged, _per_shard) =
                        gather::execute_knn(sharded, lq, query)?;
                    (plan, PlanOutput::Knn(matches, merged))
                }
                LogicalVerb::Join => unreachable!("JOIN is rejected on sharded backends"),
            };
            let timings = StageTimings {
                plan_us: 0,
                exec_us: start.elapsed().as_micros().min(u64::MAX as u128) as u64,
            };
            Ok((plan, out, timings))
        }
    }
}

/// Matches (or pairs) an output carries, for the slow-query log.
fn output_matches(out: &PlanOutput) -> u64 {
    match out {
        PlanOutput::Range(r) => r.matches.len() as u64,
        PlanOutput::Knn(matches, _) => matches.len() as u64,
        PlanOutput::Join(r) => r.matches.len() as u64,
    }
}

/// Executes a cacheable query verb: epoch-keyed cache lookup, then the
/// plan layer on a miss. The epoch is read *before* execution so a
/// racing mutation can only waste a cache entry, never leave a stale one
/// valid for the current epoch. Cache misses are timed and offered to
/// the slow-query log (`describe` renders the query text only when the
/// log actually fires); the result is then *offered* to the cache, which
/// admits it only when its measured cost clears the admission floor.
fn run_cached(
    backend: &Backend,
    cache: &PlanCache,
    slow: &SlowLog,
    lq: &LogicalQuery,
    q: Option<&TimeSeries>,
    describe: impl FnOnce() -> String,
) -> Result<PlanOutput, Response> {
    let epoch = backend_epoch(backend);
    let fp = lq.fingerprint(q);
    if let Some((_, out)) = cache.get(fp, epoch) {
        return Ok(out);
    }
    let start = Instant::now();
    match dispatch_timed(backend, lq, q) {
        Ok((plan, out, timings)) => {
            let total_us = start.elapsed().as_micros().min(u64::MAX as u128) as u64;
            let m = out.metrics();
            slow.observe(total_us, || SlowEntry {
                query: describe(),
                plan: format!(
                    "engine={} chosen_by={} fanout={} threads={}",
                    plan.engine.as_str(),
                    plan.chosen_by.as_str(),
                    plan.fanout,
                    plan.threads
                ),
                est_pages: plan.est_pages,
                actual_pages: m.record_page_accesses,
                est_comparisons: plan.est_comparisons,
                actual_comparisons: m.comparisons,
                candidates: m.candidates,
                matches: output_matches(&out),
                plan_us: timings.plan_us,
                exec_us: timings.exec_us,
                total_us: 0, // observe() stamps the measured total
            });
            cache.offer(fp, epoch, plan, out.clone());
            Ok(out)
        }
        Err(e) => Err(query_err(e)),
    }
}

fn run_query(backend: &Backend, cache: &PlanCache, slow: &SlowLog, p: QueryParams) -> Response {
    let (family, q) = match prepare(backend, p.ord, p.ma) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let lq = LogicalQuery::range(family, p.threshold.to_spec()).with_engine(engine_pref(p.engine));
    let describe = || Request::Query(p).to_line();
    match run_cached(backend, cache, slow, &lq, Some(&q), describe) {
        Ok(PlanOutput::Range(r)) => matches_response(&r.matches, &r.metrics, p.limit),
        Ok(_) => err(ErrCode::Server, "range plan produced a non-range result"),
        Err(resp) => resp,
    }
}

fn run_knn(
    backend: &Backend,
    cache: &PlanCache,
    slow: &SlowLog,
    ord: usize,
    k: usize,
    ma: (usize, usize),
) -> Response {
    let (family, q) = match prepare(backend, ord, ma) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let lq = LogicalQuery::knn(family, k);
    let describe = || Request::Knn { ord, k, ma }.to_line();
    match run_cached(backend, cache, slow, &lq, Some(&q), describe) {
        Ok(PlanOutput::Knn(matches, metrics)) => matches_response(&matches, &metrics, 0),
        Ok(_) => err(ErrCode::Server, "kNN plan produced a non-kNN result"),
        Err(resp) => resp,
    }
}

fn run_join(
    backend: &Backend,
    cache: &PlanCache,
    slow: &SlowLog,
    ma: (usize, usize),
    threshold: WireThreshold,
    engine: EngineKind,
    limit: usize,
) -> Response {
    let Backend::Single(shared) = backend else {
        return err(
            ErrCode::Query,
            "JOIN is not supported on a sharded backend (pairs cross shards); \
             serve the index unsharded to join",
        );
    };
    let family = match family_for(ma, shared.read().seq_len()) {
        Ok(f) => f,
        Err(resp) => return resp,
    };
    let lq = LogicalQuery::join(family, threshold.to_spec()).with_engine(engine_pref(engine));
    let describe = || {
        Request::Join {
            ma,
            threshold,
            engine,
            limit,
        }
        .to_line()
    };
    match run_cached(backend, cache, slow, &lq, None, describe) {
        Ok(PlanOutput::Join(r)) => pairs_response(&r, limit),
        Ok(_) => err(ErrCode::Server, "join plan produced a non-join result"),
        Err(resp) => resp,
    }
}

/// `EXPLAIN`: plans and executes the wrapped verb, bypassing the result
/// cache (an EXPLAIN that answered from cache would have no actual cost
/// to report), and renders the chosen plan with estimated-vs-actual
/// counters.
fn run_explain(backend: &Backend, inner: Request) -> Response {
    let (verb, lq, q) = match inner {
        Request::Query(p) => {
            let (family, q) = match prepare(backend, p.ord, p.ma) {
                Ok(v) => v,
                Err(resp) => return resp,
            };
            let lq = LogicalQuery::range(family, p.threshold.to_spec())
                .with_engine(engine_pref(p.engine));
            ("query", lq, Some(q))
        }
        Request::Knn { ord, k, ma } => {
            let (family, q) = match prepare(backend, ord, ma) {
                Ok(v) => v,
                Err(resp) => return resp,
            };
            ("knn", LogicalQuery::knn(family, k), Some(q))
        }
        Request::Join {
            ma,
            threshold,
            engine,
            ..
        } => {
            let Backend::Single(shared) = backend else {
                return err(
                    ErrCode::Query,
                    "JOIN is not supported on a sharded backend (pairs cross shards); \
                     serve the index unsharded to join",
                );
            };
            let family = match family_for(ma, shared.read().seq_len()) {
                Ok(f) => f,
                Err(resp) => return resp,
            };
            let lq =
                LogicalQuery::join(family, threshold.to_spec()).with_engine(engine_pref(engine));
            ("join", lq, None)
        }
        // Request::parse only wraps query verbs in EXPLAIN.
        _ => return err(ErrCode::BadRequest, "EXPLAIN wraps QUERY, KNN or JOIN"),
    };
    match dispatch(backend, &lq, q.as_ref()) {
        Ok((plan, out)) => {
            let m = out.metrics();
            let n = match &out {
                PlanOutput::Range(r) => r.matches.len(),
                PlanOutput::Knn(matches, _) => matches.len(),
                PlanOutput::Join(r) => r.matches.len(),
            };
            Response::Plan(vec![
                ("verb".into(), verb.into()),
                ("engine".into(), plan.engine.as_str().into()),
                ("chosen_by".into(), plan.chosen_by.as_str().into()),
                ("partitions".into(), plan.partitions().to_string()),
                ("fanout".into(), plan.fanout.to_string()),
                ("threads".into(), plan.threads.to_string()),
                ("est_nodes".into(), format!("{:.1}", plan.est_nodes)),
                ("est_pages".into(), format!("{:.1}", plan.est_pages)),
                ("est_cmps".into(), format!("{:.1}", plan.est_comparisons)),
                ("est_cost".into(), format!("{:.1}", plan.est_cost)),
                ("nodes".into(), m.node_accesses.to_string()),
                ("pages".into(), m.record_page_accesses.to_string()),
                ("cmps".into(), m.comparisons.to_string()),
                ("matches".into(), n.to_string()),
                ("wall_us".into(), (m.wall.as_micros() as u64).to_string()),
            ])
        }
        Err(e) => query_err(e),
    }
}
