//! The wire protocol: line-oriented, UTF-8, human-readable.
//!
//! A **request** is one line: a verb followed by space-separated
//! `key=value` tokens (`QUERY ord=42 ma=5..34 rho=0.96`). A **response**
//! is one or more lines — a status line (`OK …` or `ERR …`), optional body
//! lines, and a terminating `END` line. The full grammar lives in
//! `crates/serve/PROTOCOL.md`; this module is the single typed
//! parser/serializer used by both `simserved` and the client, so the two
//! sides cannot drift apart.

use simquery::prelude::*;
use simwal::WalOp;
use std::fmt;
use std::io::{self, BufRead, Write};

/// Which query engine executes a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// MT-index (Algorithm 1) — the default.
    #[default]
    Mt,
    /// ST-index: one traversal per transformation.
    St,
    /// Sequential scan.
    Scan,
    /// Let the cost-based planner pick (`simquery::plan::Planner`).
    Auto,
}

impl EngineKind {
    fn as_str(self) -> &'static str {
        match self {
            Self::Mt => "mt",
            Self::St => "st",
            Self::Scan => "scan",
            Self::Auto => "auto",
        }
    }

    fn parse(s: &str) -> Result<Self, ProtoError> {
        match s {
            "mt" => Ok(Self::Mt),
            "st" => Ok(Self::St),
            "scan" => Ok(Self::Scan),
            "auto" => Ok(Self::Auto),
            other => Err(ProtoError::bad(format!("unknown engine `{other}`"))),
        }
    }
}

/// The similarity threshold carried by a request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WireThreshold {
    /// Cross-correlation ρ (Eq. 9).
    Rho(f64),
    /// Euclidean ε over transformed normal forms.
    Eps(f64),
}

impl Default for WireThreshold {
    fn default() -> Self {
        Self::Rho(0.96) // the paper's headline setting
    }
}

impl WireThreshold {
    /// Converts to an engine [`RangeSpec`] (Adaptive policy by default —
    /// lossless and pruning; see `simquery::query`).
    pub fn to_spec(self) -> RangeSpec {
        match self {
            Self::Rho(r) => RangeSpec::correlation(r),
            Self::Eps(e) => RangeSpec::euclidean(e),
        }
        .with_policy(FilterPolicy::Adaptive)
    }
}

/// Parameters of a `QUERY` request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueryParams {
    /// Ordinal of the query sequence in the served corpus.
    pub ord: usize,
    /// Moving-average window range `lo..=hi` defining the family.
    pub ma: (usize, usize),
    /// Similarity threshold.
    pub threshold: WireThreshold,
    /// Engine choice.
    pub engine: EngineKind,
    /// Maximum number of `MATCH` lines returned (0 = unlimited).
    pub limit: usize,
}

impl Default for QueryParams {
    fn default() -> Self {
        Self {
            ord: 0,
            ma: (1, 8),
            threshold: WireThreshold::default(),
            engine: EngineKind::default(),
            limit: 0,
        }
    }
}

/// A parsed request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Query 1 — range query by stored ordinal.
    Query(QueryParams),
    /// k nearest neighbours of a stored ordinal.
    Knn {
        /// Query ordinal.
        ord: usize,
        /// Number of neighbours.
        k: usize,
        /// Moving-average window range.
        ma: (usize, usize),
    },
    /// Query 2 — the self join.
    Join {
        /// Moving-average window range.
        ma: (usize, usize),
        /// Similarity threshold.
        threshold: WireThreshold,
        /// Engine choice.
        engine: EngineKind,
        /// Maximum number of `PAIR` lines returned (0 = unlimited).
        limit: usize,
    },
    /// Appends a sequence to the served relation (and index).
    Insert {
        /// The raw values.
        values: Vec<f64>,
    },
    /// Tombstones a stored sequence.
    Delete {
        /// Ordinal to delete.
        ord: usize,
    },
    /// Forces the write-ahead log(s) to stable storage.
    Sync,
    /// Checkpoints the index: snapshot, epoch bump, log truncation.
    Checkpoint,
    /// Describes the served index.
    Info,
    /// Server metrics; `reset` zeroes the op counters/histograms after
    /// reporting.
    Stats {
        /// Reset after reporting.
        reset: bool,
    },
    /// Text-exposition dump of every registered instrument — the same
    /// atomics `STATS` reads, rendered one `name{labels} value` line per
    /// series for scrapers.
    Metrics,
    /// Drains up to `n` of the most recent completed trace spans from
    /// the server's bounded trace ring.
    Trace {
        /// Maximum spans returned (the newest win).
        n: usize,
    },
    /// `EXPLAIN <QUERY|KNN|JOIN …>` — plans (and executes, bypassing the
    /// result cache) the wrapped request, returning the chosen physical
    /// plan with estimated-vs-actual cost counters instead of the result.
    Explain {
        /// The wrapped query request (`Query`, `Knn`, or `Join`).
        inner: Box<Request>,
    },
    /// Replication poll: a follower asks the primary for WAL frames.
    /// The handshake state rides on every request — `epoch` is the
    /// primary checkpoint epoch the follower's state corresponds to and
    /// `from` the next LSN it expects; the primary streams frames when
    /// they line up and answers with a snapshot transfer otherwise.
    Repl {
        /// Primary checkpoint epoch the follower last synchronised with.
        epoch: u64,
        /// Next LSN the follower expects (exclusive ack position).
        from: u64,
        /// Highest LSN the follower has durably applied — the primary
        /// records it as this follower's acked position.
        ack: u64,
        /// Maximum frames per response (0 = server default).
        max: usize,
        /// Long-poll budget: how long the primary may hold the request
        /// open waiting for new frames before answering empty.
        wait_ms: u64,
    },
    /// Promotes a follower to primary: the node stops polling its old
    /// primary, bumps its WAL epoch past every timeline it has seen,
    /// persists a fencing token, and begins accepting writes from its
    /// acked prefix. Refused on a node that is already a primary.
    Promote,
    /// Ends the connection.
    Quit,
}

impl Request {
    /// Serializes to one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Self::Query(p) => {
                let mut s = format!(
                    "QUERY ord={} ma={}..{} {} engine={}",
                    p.ord,
                    p.ma.0,
                    p.ma.1,
                    threshold_token(&p.threshold),
                    p.engine.as_str()
                );
                if p.limit != 0 {
                    s.push_str(&format!(" limit={}", p.limit));
                }
                s
            }
            Self::Knn { ord, k, ma } => format!("KNN ord={ord} k={k} ma={}..{}", ma.0, ma.1),
            Self::Join {
                ma,
                threshold,
                engine,
                limit,
            } => {
                let mut s = format!(
                    "JOIN ma={}..{} {} engine={}",
                    ma.0,
                    ma.1,
                    threshold_token(threshold),
                    engine.as_str()
                );
                if *limit != 0 {
                    s.push_str(&format!(" limit={limit}"));
                }
                s
            }
            Self::Insert { values } => {
                let data: Vec<String> = values.iter().map(|v| format!("{v}")).collect();
                format!("INSERT data={}", data.join(","))
            }
            Self::Delete { ord } => format!("DELETE ord={ord}"),
            Self::Sync => "SYNC".into(),
            Self::Checkpoint => "CHECKPOINT".into(),
            Self::Info => "INFO".into(),
            Self::Stats { reset } => {
                if *reset {
                    "STATS reset=yes".into()
                } else {
                    "STATS".into()
                }
            }
            Self::Metrics => "METRICS".into(),
            Self::Trace { n } => format!("TRACE n={n}"),
            Self::Explain { inner } => format!("EXPLAIN {}", inner.to_line()),
            Self::Repl {
                epoch,
                from,
                ack,
                max,
                wait_ms,
            } => format!("REPL epoch={epoch} from={from} ack={ack} max={max} wait_ms={wait_ms}"),
            Self::Promote => "PROMOTE".into(),
            Self::Quit => "QUIT".into(),
        }
    }

    /// Parses one request line.
    pub fn parse(line: &str) -> Result<Self, ProtoError> {
        let line = line.trim_end_matches(['\r', '\n']);
        if let Some(rest) = line.strip_prefix("EXPLAIN ") {
            let inner = Self::parse(rest)?;
            if !matches!(inner, Self::Query(_) | Self::Knn { .. } | Self::Join { .. }) {
                return Err(ProtoError::bad("EXPLAIN wraps QUERY, KNN or JOIN"));
            }
            return Ok(Self::Explain {
                inner: Box::new(inner),
            });
        }
        let mut tokens = line.split_whitespace();
        let verb = tokens
            .next()
            .ok_or_else(|| ProtoError::bad("empty request"))?;
        let kv = KvTokens::collect(tokens)?;
        match verb {
            "QUERY" => Ok(Self::Query(QueryParams {
                ord: kv.req_parse("ord")?,
                ma: kv.range_or("ma", (1, 8))?,
                threshold: kv.threshold()?,
                engine: kv.engine()?,
                limit: kv.parse_or("limit", 0)?,
            })),
            "KNN" => Ok(Self::Knn {
                ord: kv.req_parse("ord")?,
                k: kv.req_parse("k")?,
                ma: kv.range_or("ma", (1, 8))?,
            }),
            "JOIN" => Ok(Self::Join {
                ma: kv.range_or("ma", (1, 8))?,
                threshold: kv.threshold()?,
                engine: kv.engine()?,
                limit: kv.parse_or("limit", 0)?,
            }),
            "INSERT" => Ok(Self::Insert {
                values: parse_floats(kv.req("data")?)?,
            }),
            "DELETE" => Ok(Self::Delete {
                ord: kv.req_parse("ord")?,
            }),
            "SYNC" => Ok(Self::Sync),
            "CHECKPOINT" => Ok(Self::Checkpoint),
            "INFO" => Ok(Self::Info),
            "STATS" => Ok(Self::Stats {
                reset: kv.get("reset") == Some("yes"),
            }),
            "METRICS" => Ok(Self::Metrics),
            "TRACE" => Ok(Self::Trace {
                n: kv.parse_or("n", 100)?,
            }),
            "REPL" => Ok(Self::Repl {
                epoch: kv.req_parse("epoch")?,
                from: kv.req_parse("from")?,
                ack: kv.parse_or("ack", 0)?,
                max: kv.parse_or("max", 0)?,
                wait_ms: kv.parse_or("wait_ms", 0)?,
            }),
            "PROMOTE" => Ok(Self::Promote),
            "QUIT" => Ok(Self::Quit),
            "EXPLAIN" => Err(ProtoError::bad("EXPLAIN wraps QUERY, KNN or JOIN")),
            other => Err(ProtoError::bad(format!("unknown verb `{other}`"))),
        }
    }
}

fn threshold_token(t: &WireThreshold) -> String {
    match t {
        WireThreshold::Rho(r) => format!("rho={r}"),
        WireThreshold::Eps(e) => format!("eps={e}"),
    }
}

/// Machine-readable error classes carried on `ERR` lines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrCode {
    /// The bounded request queue is full — retry later (admission control).
    Busy,
    /// The request line failed to parse.
    BadRequest,
    /// An ordinal was out of range.
    Range,
    /// The query engine rejected the request (see message).
    Query,
    /// A page access failed while executing the request (fault injection
    /// or a genuinely bad device). The index itself stays serviceable —
    /// later requests on the same connection may succeed.
    Io,
    /// Internal server failure.
    Server,
    /// The server is a replication follower: writes (`INSERT`, `DELETE`,
    /// `CHECKPOINT`) are refused — send them to the primary.
    ReadOnly,
}

impl ErrCode {
    fn as_str(self) -> &'static str {
        match self {
            Self::Busy => "BUSY",
            Self::BadRequest => "BADREQ",
            Self::Range => "RANGE",
            Self::Query => "QUERY",
            Self::Io => "IO",
            Self::Server => "SERVER",
            Self::ReadOnly => "READONLY",
        }
    }

    fn parse(s: &str) -> Result<Self, ProtoError> {
        match s {
            "BUSY" => Ok(Self::Busy),
            "BADREQ" => Ok(Self::BadRequest),
            "RANGE" => Ok(Self::Range),
            "QUERY" => Ok(Self::Query),
            "IO" => Ok(Self::Io),
            "SERVER" => Ok(Self::Server),
            "READONLY" => Ok(Self::ReadOnly),
            other => Err(ProtoError::bad(format!("unknown error code `{other}`"))),
        }
    }
}

/// One `MATCH` line of a query/KNN response.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WireMatch {
    /// Matching sequence ordinal.
    pub seq: usize,
    /// Qualifying transformation index.
    pub transform: usize,
    /// Exact transformed distance.
    pub dist: f64,
}

/// One `PAIR` line of a join response.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WirePair {
    /// First ordinal (`< b`).
    pub a: usize,
    /// Second ordinal.
    pub b: usize,
    /// Qualifying transformation index.
    pub transform: usize,
    /// Exact transformed distance.
    pub dist: f64,
}

/// The `METRICS` footer of query/join responses.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WireMetrics {
    /// Index node accesses.
    pub nodes: u64,
    /// Logical record fetches.
    pub fetches: u64,
    /// Distance computations.
    pub cmps: u64,
    /// Candidates that reached verification.
    pub cands: u64,
    /// Server-side wall time, microseconds.
    pub wall_us: u64,
}

impl From<&EngineMetrics> for WireMetrics {
    fn from(m: &EngineMetrics) -> Self {
        Self {
            nodes: m.node_accesses,
            fetches: m.record_fetches,
            cmps: m.comparisons,
            cands: m.candidates,
            wall_us: m.wall.as_micros() as u64,
        }
    }
}

/// Per-operation line of a `STATS` response.
#[derive(Clone, Debug, PartialEq)]
pub struct OpStatLine {
    /// Operation name (`query`, `knn`, …).
    pub op: String,
    /// Completed requests.
    pub count: u64,
    /// Requests that returned `ERR`.
    pub errors: u64,
    /// Latency percentiles in microseconds (upper bucket bounds).
    pub p50_us: u64,
    /// 95th percentile.
    pub p95_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Maximum observed.
    pub max_us: u64,
}

/// Per-shard line of a `STATS` response (sharded backends only).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStatLine {
    /// Shard id, `0..shards`.
    pub id: usize,
    /// Sequences currently mapped to the shard.
    pub seqs: u64,
    /// Tree node reads on this shard since server start.
    pub node_reads: u64,
    /// Record-heap page reads (pool misses) on this shard.
    pub record_page_reads: u64,
    /// Logical record fetches on this shard.
    pub record_fetches: u64,
}

/// Write-ahead-log counters of a `STATS` response (durable servers only).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalStatLine {
    /// Frames appended since server start.
    pub appends: u64,
    /// `fsync` calls issued by the log(s).
    pub fsyncs: u64,
    /// Frames replayed when the server opened the index.
    pub replayed: u64,
    /// Current checkpoint epoch.
    pub epoch: u64,
}

/// Planner and result-cache counters of a `STATS` response.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanStatLine {
    /// Physical plans built since server start.
    pub built: u64,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Result-cache misses (including cache-disabled lookups).
    pub cache_misses: u64,
    /// Result-cache LRU evictions.
    pub cache_evictions: u64,
    /// Entries currently resident in the result cache.
    pub cache_entries: u64,
    /// Results admitted by the cache's cost floor.
    pub cache_admitted: u64,
    /// Results refused by the cost floor (too cheap to be worth a slot).
    pub cache_rejected: u64,
    /// Executions dispatched to the MT-index engine.
    pub mt: u64,
    /// Executions dispatched to the ST-index engine.
    pub st: u64,
    /// Executions dispatched to the sequential scan.
    pub scan: u64,
}

/// Replication counters of a `STATS` response. On a primary, the
/// follower-fleet view; on a follower, its own applied position.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReplStatLine {
    /// `primary` or `follower`.
    pub role: String,
    /// Followers that have polled since server start (primary only).
    pub followers: u64,
    /// Minimum acked LSN across the follower fleet (primary), or the
    /// LSN this follower has acked upstream (follower).
    pub acked_lsn: u64,
    /// Highest LSN applied locally (follower; 0 on a primary).
    pub applied_lsn: u64,
    /// Next-LSN-minus-acked lag in frames (both roles).
    pub lag: u64,
    /// Frame bytes shipped to followers (primary) or received (follower).
    pub bytes: u64,
    /// Checkpoint epoch the replication stream is on.
    pub epoch: u64,
}

/// The full `STATS` payload.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StatsReport {
    /// One line per operation with non-zero traffic.
    pub ops: Vec<OpStatLine>,
    /// Requests rejected by admission control since start.
    pub busy_rejected: u64,
    /// Connections accepted since start.
    pub connections: u64,
    /// Index access counters, total since server start:
    /// `(node_reads, record_page_reads, record_fetches)`.
    pub counters_total: (u64, u64, u64),
    /// Same counters, delta since the previous `STATS` call.
    pub counters_delta: (u64, u64, u64),
    /// Per-shard breakdown; empty on a single-index backend.
    pub shards: Vec<ShardStatLine>,
    /// WAL counters; `None` when the server runs without durability.
    pub wal: Option<WalStatLine>,
    /// Planner/result-cache counters; `None` only for reports produced
    /// by servers predating the plan layer.
    pub plan: Option<PlanStatLine>,
    /// Replication counters; `None` when the server neither serves
    /// followers nor follows a primary.
    pub repl: Option<ReplStatLine>,
}

/// One completed span of a `TRACE` response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireTraceEvent {
    /// Global completion order (monotonic per server).
    pub seq: u64,
    /// Trace id shared by every span of one sampled root.
    pub trace: u64,
    /// Span name (e.g. `plan.execute`, `wal.fsync`).
    pub name: String,
    /// Nesting depth below the root (root = 0).
    pub depth: u16,
    /// Span start, µs since the tracer was created.
    pub start_us: u64,
    /// Span duration in µs.
    pub dur_us: u64,
}

/// One `SNAP` line of a snapshot-transfer response: a stored sequence
/// and whether it is live or tombstoned.
#[derive(Clone, Debug, PartialEq)]
pub struct SnapEntry {
    /// Global ordinal.
    pub ord: u64,
    /// Whether the sequence is live (not tombstoned).
    pub live: bool,
    /// The raw values.
    pub values: Vec<f64>,
}

/// A parsed response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Query/KNN result.
    Matches {
        /// Total matches server-side (body may be truncated by `limit`).
        n: usize,
        /// The (possibly truncated) match list.
        matches: Vec<WireMatch>,
        /// Cost counters of the execution.
        metrics: WireMetrics,
    },
    /// Join result.
    Pairs {
        /// Total qualifying pairs server-side.
        n: usize,
        /// The (possibly truncated) pair list.
        pairs: Vec<WirePair>,
        /// Cost counters of the execution.
        metrics: WireMetrics,
    },
    /// `INSERT` acknowledgement.
    Inserted {
        /// Ordinal assigned to the new sequence.
        ord: usize,
    },
    /// `DELETE` acknowledgement.
    Deleted {
        /// Whether the ordinal existed (and was live).
        existed: bool,
    },
    /// `INFO` payload: ordered key/value pairs.
    Info(Vec<(String, String)>),
    /// `EXPLAIN` payload: ordered key/value pairs describing the chosen
    /// physical plan (engine, partitions, estimated vs actual cost).
    Plan(Vec<(String, String)>),
    /// `STATS` payload (boxed: the report dwarfs every other variant).
    Stats(Box<StatsReport>),
    /// `METRICS` payload: raw text-exposition lines, one per series.
    Metrics {
        /// The exposition, already formatted (`name{labels} value`).
        lines: Vec<String>,
    },
    /// `TRACE` payload: drained spans, oldest first.
    Trace {
        /// The spans.
        events: Vec<WireTraceEvent>,
    },
    /// `CHECKPOINT` acknowledgement carrying the new epoch.
    Checkpointed {
        /// Epoch installed by the checkpoint.
        epoch: u64,
    },
    /// `PROMOTE` acknowledgement carrying the new timeline epoch.
    Promoted {
        /// Epoch the promoted node's timeline begins at.
        epoch: u64,
    },
    /// `REPL` payload: a batch of WAL frames from the primary's log.
    ReplFrames {
        /// The primary's current checkpoint epoch.
        epoch: u64,
        /// Exclusive upper bound of the primary's log (its next LSN);
        /// `end - 1` is the newest LSN a fully drained follower holds.
        end: u64,
        /// Frames with `lsn >= from`, in log order (possibly empty).
        frames: Vec<WalOp>,
    },
    /// `REPL` payload: a full snapshot transfer — the epoch-mismatch
    /// fallback of the handshake.
    ReplSnapshot {
        /// The primary's current checkpoint epoch (what the snapshot
        /// corresponds to).
        epoch: u64,
        /// First LSN the follower resumes streaming from.
        next: u64,
        /// Sequence length of the served corpus.
        seq_len: usize,
        /// One entry per ordinal, in ordinal order — tombstoned
        /// ordinals ship too (`live=no`) so the follower reproduces the
        /// exact ordinal assignment.
        entries: Vec<SnapEntry>,
    },
    /// Plain acknowledgement (`QUIT`, `SYNC`).
    Ok,
    /// An error frame.
    Err {
        /// Machine-readable class.
        code: ErrCode,
        /// Human-readable detail.
        msg: String,
    },
}

impl Response {
    /// Writes the full response (status line, body, `END`) to `w`.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        match self {
            Self::Matches {
                n,
                matches,
                metrics,
            } => {
                writeln!(w, "OK n={n}")?;
                for m in matches {
                    writeln!(w, "MATCH seq={} t={} dist={}", m.seq, m.transform, m.dist)?;
                }
                write_metrics(w, metrics)?;
            }
            Self::Pairs { n, pairs, metrics } => {
                writeln!(w, "OK n={n}")?;
                for p in pairs {
                    writeln!(
                        w,
                        "PAIR a={} b={} t={} dist={}",
                        p.a, p.b, p.transform, p.dist
                    )?;
                }
                write_metrics(w, metrics)?;
            }
            Self::Inserted { ord } => writeln!(w, "OK ord={ord}")?,
            Self::Deleted { existed } => writeln!(w, "OK deleted={existed}")?,
            Self::Info(pairs) => {
                writeln!(w, "OK")?;
                for (k, v) in pairs {
                    writeln!(w, "INFO {k}={v}")?;
                }
            }
            Self::Plan(pairs) => {
                writeln!(w, "OK")?;
                for (k, v) in pairs {
                    writeln!(w, "PLAN {k}={v}")?;
                }
            }
            Self::Stats(s) => {
                writeln!(w, "OK")?;
                for o in &s.ops {
                    writeln!(
                        w,
                        "STAT op={} count={} err={} p50_us={} p95_us={} p99_us={} max_us={}",
                        o.op, o.count, o.errors, o.p50_us, o.p95_us, o.p99_us, o.max_us
                    )?;
                }
                writeln!(
                    w,
                    "COUNTERS node_reads={} record_page_reads={} record_fetches={} \
                     d_node_reads={} d_record_page_reads={} d_record_fetches={}",
                    s.counters_total.0,
                    s.counters_total.1,
                    s.counters_total.2,
                    s.counters_delta.0,
                    s.counters_delta.1,
                    s.counters_delta.2
                )?;
                for sh in &s.shards {
                    writeln!(
                        w,
                        "SHARD id={} seqs={} node_reads={} record_page_reads={} \
                         record_fetches={}",
                        sh.id, sh.seqs, sh.node_reads, sh.record_page_reads, sh.record_fetches
                    )?;
                }
                if let Some(wal) = &s.wal {
                    writeln!(
                        w,
                        "WAL appends={} fsyncs={} replayed={} epoch={}",
                        wal.appends, wal.fsyncs, wal.replayed, wal.epoch
                    )?;
                }
                if let Some(p) = &s.plan {
                    writeln!(
                        w,
                        "PLAN built={} cache_hits={} cache_misses={} cache_evictions={} \
                         cache_entries={} cache_admitted={} cache_rejected={} mt={} st={} \
                         scan={}",
                        p.built,
                        p.cache_hits,
                        p.cache_misses,
                        p.cache_evictions,
                        p.cache_entries,
                        p.cache_admitted,
                        p.cache_rejected,
                        p.mt,
                        p.st,
                        p.scan
                    )?;
                }
                if let Some(r) = &s.repl {
                    writeln!(
                        w,
                        "REPL role={} followers={} acked_lsn={} applied_lsn={} lag={} \
                         bytes={} epoch={}",
                        r.role, r.followers, r.acked_lsn, r.applied_lsn, r.lag, r.bytes, r.epoch
                    )?;
                }
                writeln!(
                    w,
                    "SERVER busy_rejected={} connections={}",
                    s.busy_rejected, s.connections
                )?;
            }
            Self::Metrics { lines } => {
                // `metrics=prom` tags the status line so the reader never
                // confuses the exposition body (free-form lines) with a
                // keyed payload.
                writeln!(w, "OK metrics=prom lines={}", lines.len())?;
                for line in lines {
                    writeln!(w, "{line}")?;
                }
            }
            Self::Trace { events } => {
                writeln!(w, "OK trace={}", events.len())?;
                for e in events {
                    writeln!(
                        w,
                        "TRACE seq={} trace={} name={} depth={} start_us={} dur_us={}",
                        e.seq, e.trace, e.name, e.depth, e.start_us, e.dur_us
                    )?;
                }
            }
            Self::Checkpointed { epoch } => writeln!(w, "OK epoch={epoch}")?,
            Self::Promoted { epoch } => writeln!(w, "OK promoted=1 epoch={epoch}")?,
            Self::ReplFrames { epoch, end, frames } => {
                writeln!(w, "OK repl=frames epoch={epoch} end={end}")?;
                for op in frames {
                    match op {
                        WalOp::Insert {
                            lsn,
                            global,
                            local,
                            values,
                        } => writeln!(
                            w,
                            "FRAME lsn={lsn} op=insert global={global} local={local} data={}",
                            join_floats(values)
                        )?,
                        WalOp::Delete { lsn, global, local } => {
                            writeln!(w, "FRAME lsn={lsn} op=delete global={global} local={local}")?
                        }
                    }
                }
            }
            Self::ReplSnapshot {
                epoch,
                next,
                seq_len,
                entries,
            } => {
                writeln!(
                    w,
                    "OK repl=snapshot epoch={epoch} next={next} seq_len={seq_len} count={}",
                    entries.len()
                )?;
                for e in entries {
                    writeln!(
                        w,
                        "SNAP ord={} live={} data={}",
                        e.ord,
                        if e.live { "yes" } else { "no" },
                        join_floats(&e.values)
                    )?;
                }
            }
            Self::Ok => writeln!(w, "OK")?,
            Self::Err { code, msg } => writeln!(w, "ERR code={} msg={}", code.as_str(), msg)?,
        }
        writeln!(w, "END")
    }

    /// Reads one full response (through its `END` line) from `r`.
    pub fn read_from(r: &mut impl BufRead) -> io::Result<Self> {
        let status = read_line(r)?;
        let mut body = Vec::new();
        loop {
            let line = read_line(r)?;
            if line == "END" {
                break;
            }
            body.push(line);
        }
        Self::assemble(&status, &body)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    fn assemble(status: &str, body: &[String]) -> Result<Self, ProtoError> {
        let mut tokens = status.split_whitespace();
        match tokens.next() {
            Some("ERR") => {
                // msg= is the final token and may contain spaces.
                let rest = status.strip_prefix("ERR").unwrap_or("").trim_start();
                let mut parts = rest.splitn(2, " msg=");
                let code_tok = parts.next().unwrap_or("");
                let msg = parts.next().unwrap_or("").to_string();
                let code = code_tok
                    .strip_prefix("code=")
                    .ok_or_else(|| ProtoError::bad("ERR without code="))?;
                Ok(Self::Err {
                    code: ErrCode::parse(code)?,
                    msg,
                })
            }
            Some("OK") => {
                let kv = KvTokens::collect(tokens)?;
                if let Some(kind) = kv.get("repl") {
                    Self::assemble_repl(kind, &kv, body)
                } else if kv.get("metrics").is_some() {
                    // Sniffed before n=: the exposition body is free-form
                    // text and must never reach the keyed-line parsers.
                    let announced: usize = kv.req_parse("lines")?;
                    if body.len() != announced {
                        return Err(ProtoError::bad(format!(
                            "metrics announced lines={announced} but carried {}",
                            body.len()
                        )));
                    }
                    Ok(Self::Metrics {
                        lines: body.to_vec(),
                    })
                } else if kv.get("trace").is_some() {
                    Self::assemble_trace(&kv, body)
                } else if let Some(n) = kv.get("n") {
                    let n: usize = n.parse().map_err(|_| ProtoError::bad("bad n="))?;
                    Self::assemble_result(n, body)
                } else if let Some(ord) = kv.get("ord") {
                    Ok(Self::Inserted {
                        ord: ord.parse().map_err(|_| ProtoError::bad("bad ord="))?,
                    })
                } else if let Some(d) = kv.get("deleted") {
                    Ok(Self::Deleted {
                        existed: d == "true",
                    })
                } else if kv.get("promoted").is_some() {
                    // Sniffed before the bare epoch= (Checkpointed) branch:
                    // both acks carry an epoch, only this one the marker.
                    Ok(Self::Promoted {
                        epoch: kv.req_parse("epoch")?,
                    })
                } else if let Some(e) = kv.get("epoch") {
                    Ok(Self::Checkpointed {
                        epoch: e.parse().map_err(|_| ProtoError::bad("bad epoch="))?,
                    })
                } else if body
                    .iter()
                    .any(|l| l.starts_with("STAT ") || l.starts_with("COUNTERS "))
                {
                    Self::assemble_stats(body)
                } else if body.iter().any(|l| l.starts_with("INFO ")) {
                    Ok(Self::Info(assemble_kv_body(body, "INFO ")?))
                } else if body.iter().any(|l| l.starts_with("PLAN ")) {
                    Ok(Self::Plan(assemble_kv_body(body, "PLAN ")?))
                } else {
                    Ok(Self::Ok)
                }
            }
            _ => Err(ProtoError::bad(format!("bad status line `{status}`"))),
        }
    }

    fn assemble_result(n: usize, body: &[String]) -> Result<Self, ProtoError> {
        let mut matches = Vec::new();
        let mut pairs = Vec::new();
        let mut metrics = WireMetrics::default();
        for line in body {
            let mut tokens = line.split_whitespace();
            match tokens.next() {
                Some("MATCH") => {
                    let kv = KvTokens::collect(tokens)?;
                    matches.push(WireMatch {
                        seq: kv.req_parse("seq")?,
                        transform: kv.req_parse("t")?,
                        dist: kv.req_parse("dist")?,
                    });
                }
                Some("PAIR") => {
                    let kv = KvTokens::collect(tokens)?;
                    pairs.push(WirePair {
                        a: kv.req_parse("a")?,
                        b: kv.req_parse("b")?,
                        transform: kv.req_parse("t")?,
                        dist: kv.req_parse("dist")?,
                    });
                }
                Some("METRICS") => {
                    let kv = KvTokens::collect(tokens)?;
                    metrics = WireMetrics {
                        nodes: kv.req_parse("nodes")?,
                        fetches: kv.req_parse("fetches")?,
                        cmps: kv.req_parse("cmps")?,
                        cands: kv.req_parse("cands")?,
                        wall_us: kv.req_parse("wall_us")?,
                    };
                }
                other => {
                    return Err(ProtoError::bad(format!("unexpected body line {other:?}")));
                }
            }
        }
        if pairs.is_empty() {
            Ok(Self::Matches {
                n,
                matches,
                metrics,
            })
        } else {
            Ok(Self::Pairs { n, pairs, metrics })
        }
    }

    fn assemble_repl(kind: &str, kv: &KvTokens, body: &[String]) -> Result<Self, ProtoError> {
        match kind {
            "frames" => {
                let mut frames = Vec::new();
                for line in body {
                    let mut tokens = line.split_whitespace();
                    if tokens.next() != Some("FRAME") {
                        return Err(ProtoError::bad(format!("unexpected repl line `{line}`")));
                    }
                    let fkv = KvTokens::collect(tokens)?;
                    let lsn = fkv.req_parse("lsn")?;
                    let global = fkv.req_parse("global")?;
                    let local = fkv.req_parse("local")?;
                    frames.push(match fkv.req("op")? {
                        "insert" => WalOp::Insert {
                            lsn,
                            global,
                            local,
                            values: parse_floats_or_empty(fkv.req("data")?)?,
                        },
                        "delete" => WalOp::Delete { lsn, global, local },
                        other => {
                            return Err(ProtoError::bad(format!("unknown frame op `{other}`")));
                        }
                    });
                }
                Ok(Self::ReplFrames {
                    epoch: kv.req_parse("epoch")?,
                    end: kv.req_parse("end")?,
                    frames,
                })
            }
            "snapshot" => {
                let count: usize = kv.req_parse("count")?;
                let mut entries = Vec::new();
                for line in body {
                    let mut tokens = line.split_whitespace();
                    if tokens.next() != Some("SNAP") {
                        return Err(ProtoError::bad(format!("unexpected repl line `{line}`")));
                    }
                    let skv = KvTokens::collect(tokens)?;
                    entries.push(SnapEntry {
                        ord: skv.req_parse("ord")?,
                        live: skv.req("live")? == "yes",
                        values: parse_floats_or_empty(skv.req("data")?)?,
                    });
                }
                if entries.len() != count {
                    return Err(ProtoError::bad(format!(
                        "snapshot announced count={count} but carried {}",
                        entries.len()
                    )));
                }
                Ok(Self::ReplSnapshot {
                    epoch: kv.req_parse("epoch")?,
                    next: kv.req_parse("next")?,
                    seq_len: kv.req_parse("seq_len")?,
                    entries,
                })
            }
            other => Err(ProtoError::bad(format!("unknown repl payload `{other}`"))),
        }
    }

    fn assemble_trace(kv: &KvTokens, body: &[String]) -> Result<Self, ProtoError> {
        let announced: usize = kv.req_parse("trace")?;
        let mut events = Vec::new();
        for line in body {
            let mut tokens = line.split_whitespace();
            if tokens.next() != Some("TRACE") {
                return Err(ProtoError::bad(format!("unexpected trace line `{line}`")));
            }
            let tkv = KvTokens::collect(tokens)?;
            events.push(WireTraceEvent {
                seq: tkv.req_parse("seq")?,
                trace: tkv.req_parse("trace")?,
                name: tkv.req("name")?.to_string(),
                depth: tkv.req_parse("depth")?,
                start_us: tkv.req_parse("start_us")?,
                dur_us: tkv.req_parse("dur_us")?,
            });
        }
        if events.len() != announced {
            return Err(ProtoError::bad(format!(
                "trace announced {announced} spans but carried {}",
                events.len()
            )));
        }
        Ok(Self::Trace { events })
    }

    fn assemble_stats(body: &[String]) -> Result<Self, ProtoError> {
        let mut report = StatsReport::default();
        for line in body {
            let mut tokens = line.split_whitespace();
            match tokens.next() {
                Some("STAT") => {
                    let kv = KvTokens::collect(tokens)?;
                    report.ops.push(OpStatLine {
                        op: kv.req("op")?.to_string(),
                        count: kv.req_parse("count")?,
                        errors: kv.req_parse("err")?,
                        p50_us: kv.req_parse("p50_us")?,
                        p95_us: kv.req_parse("p95_us")?,
                        p99_us: kv.req_parse("p99_us")?,
                        max_us: kv.req_parse("max_us")?,
                    });
                }
                Some("COUNTERS") => {
                    let kv = KvTokens::collect(tokens)?;
                    report.counters_total = (
                        kv.req_parse("node_reads")?,
                        kv.req_parse("record_page_reads")?,
                        kv.req_parse("record_fetches")?,
                    );
                    report.counters_delta = (
                        kv.req_parse("d_node_reads")?,
                        kv.req_parse("d_record_page_reads")?,
                        kv.req_parse("d_record_fetches")?,
                    );
                }
                Some("SHARD") => {
                    let kv = KvTokens::collect(tokens)?;
                    report.shards.push(ShardStatLine {
                        id: kv.req_parse("id")?,
                        seqs: kv.req_parse("seqs")?,
                        node_reads: kv.req_parse("node_reads")?,
                        record_page_reads: kv.req_parse("record_page_reads")?,
                        record_fetches: kv.req_parse("record_fetches")?,
                    });
                }
                Some("WAL") => {
                    let kv = KvTokens::collect(tokens)?;
                    report.wal = Some(WalStatLine {
                        appends: kv.req_parse("appends")?,
                        fsyncs: kv.req_parse("fsyncs")?,
                        replayed: kv.req_parse("replayed")?,
                        epoch: kv.req_parse("epoch")?,
                    });
                }
                Some("PLAN") => {
                    let kv = KvTokens::collect(tokens)?;
                    report.plan = Some(PlanStatLine {
                        built: kv.req_parse("built")?,
                        cache_hits: kv.req_parse("cache_hits")?,
                        cache_misses: kv.req_parse("cache_misses")?,
                        cache_evictions: kv.req_parse("cache_evictions")?,
                        cache_entries: kv.req_parse("cache_entries")?,
                        // Admission counters arrived with the cost floor;
                        // older servers omit them.
                        cache_admitted: kv.parse_or("cache_admitted", 0)?,
                        cache_rejected: kv.parse_or("cache_rejected", 0)?,
                        mt: kv.req_parse("mt")?,
                        st: kv.req_parse("st")?,
                        scan: kv.req_parse("scan")?,
                    });
                }
                Some("REPL") => {
                    let kv = KvTokens::collect(tokens)?;
                    report.repl = Some(ReplStatLine {
                        role: kv.req("role")?.to_string(),
                        followers: kv.req_parse("followers")?,
                        acked_lsn: kv.req_parse("acked_lsn")?,
                        applied_lsn: kv.req_parse("applied_lsn")?,
                        lag: kv.req_parse("lag")?,
                        bytes: kv.req_parse("bytes")?,
                        epoch: kv.req_parse("epoch")?,
                    });
                }
                Some("SERVER") => {
                    let kv = KvTokens::collect(tokens)?;
                    report.busy_rejected = kv.req_parse("busy_rejected")?;
                    report.connections = kv.req_parse("connections")?;
                }
                other => {
                    return Err(ProtoError::bad(format!("unexpected stats line {other:?}")));
                }
            }
        }
        Ok(Self::Stats(Box::new(report)))
    }
}

/// Parses a homogeneous `<PREFIX> k=v` body (INFO/PLAN payloads).
fn assemble_kv_body(body: &[String], prefix: &str) -> Result<Vec<(String, String)>, ProtoError> {
    let tag = prefix.trim_end();
    let mut pairs = Vec::new();
    for line in body {
        let rest = line
            .strip_prefix(prefix)
            .ok_or_else(|| ProtoError::bad(format!("mixed {tag} body")))?;
        let (k, v) = rest
            .split_once('=')
            .ok_or_else(|| ProtoError::bad(format!("{tag} line without =")))?;
        pairs.push((k.to_string(), v.to_string()));
    }
    Ok(pairs)
}

/// Joins values with commas in Rust's shortest round-trip formatting —
/// the same representation `INSERT data=` uses, so a replicated value is
/// bit-identical on both ends.
fn join_floats(values: &[f64]) -> String {
    let out: Vec<String> = values.iter().map(|v| format!("{v}")).collect();
    out.join(",")
}

fn parse_floats(data: &str) -> Result<Vec<f64>, ProtoError> {
    let values = parse_floats_or_empty(data)?;
    if values.is_empty() {
        return Err(ProtoError::bad("data= must be non-empty"));
    }
    Ok(values)
}

/// Like [`parse_floats`] but an empty `data=` token decodes to an empty
/// list. `FRAME`/`SNAP` lines use this: `WalOp::Insert` with no values
/// is legal at the WAL layer (it allocates an ordinal for a degenerate
/// series), and `join_floats(&[])` encodes it as the empty string, so
/// the replication stream must round-trip it rather than wedge on it.
/// Client-facing `INSERT` keeps the strict non-empty rule.
fn parse_floats_or_empty(data: &str) -> Result<Vec<f64>, ProtoError> {
    if data.is_empty() {
        return Ok(Vec::new());
    }
    let values: Result<Vec<f64>, _> = data.split(',').map(str::parse).collect();
    values.map_err(|_| ProtoError::bad("data= must be comma-separated floats"))
}

fn write_metrics(w: &mut impl Write, m: &WireMetrics) -> io::Result<()> {
    writeln!(
        w,
        "METRICS nodes={} fetches={} cmps={} cands={} wall_us={}",
        m.nodes, m.fetches, m.cmps, m.cands, m.wall_us
    )
}

fn read_line(r: &mut impl BufRead) -> io::Result<String> {
    let mut line = String::new();
    let n = r.read_line(&mut line)?;
    if n == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed mid-response",
        ));
    }
    while line.ends_with(['\n', '\r']) {
        line.pop();
    }
    Ok(line)
}

/// A protocol-level failure (bad verb, missing key, malformed value).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtoError(String);

impl ProtoError {
    fn bad(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ProtoError {}

/// Collected `key=value` tokens of one line.
struct KvTokens<'a>(Vec<(&'a str, &'a str)>);

impl<'a> KvTokens<'a> {
    fn collect(tokens: impl Iterator<Item = &'a str>) -> Result<Self, ProtoError> {
        let mut kv = Vec::new();
        for t in tokens {
            let (k, v) = t
                .split_once('=')
                .ok_or_else(|| ProtoError::bad(format!("token `{t}` is not key=value")))?;
            kv.push((k, v));
        }
        Ok(Self(kv))
    }

    fn get(&self, key: &str) -> Option<&'a str> {
        self.0.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    fn req(&self, key: &str) -> Result<&'a str, ProtoError> {
        self.get(key)
            .ok_or_else(|| ProtoError::bad(format!("missing {key}=")))
    }

    fn req_parse<T: std::str::FromStr>(&self, key: &str) -> Result<T, ProtoError> {
        self.req(key)?
            .parse()
            .map_err(|_| ProtoError::bad(format!("bad value for {key}=")))
    }

    fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ProtoError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| ProtoError::bad(format!("bad value for {key}="))),
        }
    }

    /// Parses `key=lo..hi` (inclusive endpoints).
    fn range_or(&self, key: &str, default: (usize, usize)) -> Result<(usize, usize), ProtoError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => {
                let (lo, hi) = raw
                    .split_once("..")
                    .ok_or_else(|| ProtoError::bad(format!("{key}= must be lo..hi")))?;
                let lo: usize = lo
                    .parse()
                    .map_err(|_| ProtoError::bad(format!("bad lower bound in {key}=")))?;
                let hi: usize = hi
                    .parse()
                    .map_err(|_| ProtoError::bad(format!("bad upper bound in {key}=")))?;
                if lo == 0 || hi < lo {
                    return Err(ProtoError::bad(format!("{key}= needs 1 ≤ lo ≤ hi")));
                }
                Ok((lo, hi))
            }
        }
    }

    fn threshold(&self) -> Result<WireThreshold, ProtoError> {
        // Validated here, not in the worker: RangeSpec::correlation asserts
        // its range and a panicking job must never reach the pool. The
        // validation itself lives in `Threshold::parse_args`, shared with
        // the CLI front end.
        match Threshold::parse_args(self.get("rho"), self.get("eps"))
            .map_err(|e| ProtoError::bad(e.to_string()))?
        {
            Some(Threshold::Correlation(rho)) => Ok(WireThreshold::Rho(rho)),
            Some(Threshold::Euclidean(eps)) => Ok(WireThreshold::Eps(eps)),
            None => Ok(WireThreshold::default()),
        }
    }

    fn engine(&self) -> Result<EngineKind, ProtoError> {
        match self.get("engine") {
            None => Ok(EngineKind::default()),
            Some(s) => EngineKind::parse(s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn round_trip_request(req: Request) {
        let line = req.to_line();
        assert_eq!(Request::parse(&line).unwrap(), req, "line: {line}");
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Query(QueryParams {
            ord: 42,
            ma: (5, 34),
            threshold: WireThreshold::Rho(0.96),
            engine: EngineKind::Mt,
            limit: 10,
        }));
        round_trip_request(Request::Query(QueryParams {
            ord: 0,
            ma: (1, 1),
            threshold: WireThreshold::Eps(2.5),
            engine: EngineKind::Scan,
            limit: 0,
        }));
        round_trip_request(Request::Knn {
            ord: 7,
            k: 5,
            ma: (2, 20),
        });
        round_trip_request(Request::Join {
            ma: (5, 14),
            threshold: WireThreshold::Rho(0.99),
            engine: EngineKind::St,
            limit: 3,
        });
        round_trip_request(Request::Insert {
            values: vec![1.0, -2.5, 3.25],
        });
        round_trip_request(Request::Delete { ord: 9 });
        round_trip_request(Request::Sync);
        round_trip_request(Request::Checkpoint);
        round_trip_request(Request::Info);
        round_trip_request(Request::Stats { reset: true });
        round_trip_request(Request::Stats { reset: false });
        round_trip_request(Request::Metrics);
        round_trip_request(Request::Trace { n: 25 });
        round_trip_request(Request::Quit);
        round_trip_request(Request::Query(QueryParams {
            ord: 5,
            engine: EngineKind::Auto,
            ..QueryParams::default()
        }));
        round_trip_request(Request::Explain {
            inner: Box::new(Request::Query(QueryParams {
                ord: 2,
                engine: EngineKind::Auto,
                ..QueryParams::default()
            })),
        });
        round_trip_request(Request::Explain {
            inner: Box::new(Request::Knn {
                ord: 1,
                k: 3,
                ma: (1, 8),
            }),
        });
        round_trip_request(Request::Repl {
            epoch: 3,
            from: 17,
            ack: 16,
            max: 256,
            wait_ms: 500,
        });
        round_trip_request(Request::Promote);
    }

    #[test]
    fn repl_request_defaults_fill_in() {
        assert_eq!(
            Request::parse("REPL epoch=1 from=5").unwrap(),
            Request::Repl {
                epoch: 1,
                from: 5,
                ack: 0,
                max: 0,
                wait_ms: 0,
            }
        );
        assert!(Request::parse("REPL from=5").is_err(), "epoch is required");
        assert!(Request::parse("REPL epoch=1").is_err(), "from is required");
    }

    #[test]
    fn defaults_fill_in() {
        let r = Request::parse("QUERY ord=3").unwrap();
        assert_eq!(
            r,
            Request::Query(QueryParams {
                ord: 3,
                ..QueryParams::default()
            })
        );
    }

    #[test]
    fn malformed_requests_rejected() {
        for bad in [
            "",
            "FROB ord=1",
            "QUERY",                       // missing ord
            "QUERY ord=x",                 // bad number
            "QUERY ord=1 ma=5",            // not a range
            "QUERY ord=1 ma=0..4",         // lo must be ≥ 1
            "QUERY ord=1 ma=9..4",         // hi < lo
            "QUERY ord=1 rho=a",           // bad float
            "QUERY ord=1 rho=0.9 eps=1",   // both thresholds
            "QUERY ord=1 engine=quantum",  // unknown engine
            "QUERY ord=1 junk",            // token without =
            "KNN ord=1",                   // missing k
            "INSERT",                      // missing data
            "INSERT data=1,x,3",           // bad float in data
            "INSERT data=",                // empty data
            "DELETE",                      // missing ord
            "QUERY ord=1 rho=2",           // rho outside [-1, 1]
            "QUERY ord=1 rho=-1.5",        // rho outside [-1, 1]
            "JOIN rho=1.01",               // rho validated on JOIN too
            "QUERY ord=1 eps=-3",          // negative eps
            "QUERY ord=1 eps=nan",         // non-finite eps
            "EXPLAIN",                     // nothing to explain
            "EXPLAIN INFO",                // only query verbs are plannable
            "EXPLAIN EXPLAIN QUERY ord=1", // no nesting
        ] {
            assert!(Request::parse(bad).is_err(), "should reject `{bad}`");
        }
    }

    fn round_trip_response(resp: Response) {
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        let got = Response::read_from(&mut Cursor::new(buf)).unwrap();
        assert_eq!(got, resp);
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::Matches {
            n: 2,
            matches: vec![
                WireMatch {
                    seq: 1,
                    transform: 3,
                    dist: 0.5,
                },
                WireMatch {
                    seq: 9,
                    transform: 0,
                    dist: 1.25,
                },
            ],
            metrics: WireMetrics {
                nodes: 10,
                fetches: 20,
                cmps: 30,
                cands: 5,
                wall_us: 123,
            },
        });
        round_trip_response(Response::Pairs {
            n: 1,
            pairs: vec![WirePair {
                a: 0,
                b: 4,
                transform: 2,
                dist: 2.5,
            }],
            metrics: WireMetrics::default(),
        });
        round_trip_response(Response::Inserted { ord: 100 });
        round_trip_response(Response::Deleted { existed: true });
        round_trip_response(Response::Deleted { existed: false });
        round_trip_response(Response::Info(vec![
            ("sequences".into(), "100".into()),
            ("seq_len".into(), "128".into()),
        ]));
        round_trip_response(Response::Stats(Box::new(StatsReport {
            ops: vec![OpStatLine {
                op: "query".into(),
                count: 50,
                errors: 1,
                p50_us: 128,
                p95_us: 512,
                p99_us: 1024,
                max_us: 4096,
            }],
            busy_rejected: 3,
            connections: 8,
            counters_total: (100, 200, 300),
            counters_delta: (10, 20, 30),
            shards: vec![
                ShardStatLine {
                    id: 0,
                    seqs: 60,
                    node_reads: 70,
                    record_page_reads: 80,
                    record_fetches: 90,
                },
                ShardStatLine {
                    id: 1,
                    seqs: 40,
                    node_reads: 30,
                    record_page_reads: 120,
                    record_fetches: 210,
                },
            ],
            wal: Some(WalStatLine {
                appends: 12,
                fsyncs: 4,
                replayed: 7,
                epoch: 3,
            }),
            plan: Some(PlanStatLine {
                built: 42,
                cache_hits: 9,
                cache_misses: 33,
                cache_evictions: 2,
                cache_entries: 7,
                cache_admitted: 30,
                cache_rejected: 3,
                mt: 25,
                st: 10,
                scan: 7,
            }),
            repl: Some(ReplStatLine {
                role: "primary".into(),
                followers: 2,
                acked_lsn: 17,
                applied_lsn: 0,
                lag: 3,
                bytes: 4096,
                epoch: 3,
            }),
        })));
        round_trip_response(Response::Checkpointed { epoch: 5 });
        // Promoted carries an epoch too; the promoted= marker keeps it
        // from collapsing into Checkpointed on the way back.
        round_trip_response(Response::Promoted { epoch: 6 });
        round_trip_response(Response::ReplFrames {
            epoch: 2,
            end: 10,
            frames: vec![
                WalOp::Insert {
                    lsn: 8,
                    global: 4,
                    local: 4,
                    values: vec![1.5, -0.25, 3.0],
                },
                WalOp::Delete {
                    lsn: 9,
                    global: 2,
                    local: 2,
                },
            ],
        });
        round_trip_response(Response::ReplFrames {
            epoch: 0,
            end: 1,
            frames: vec![],
        });
        round_trip_response(Response::ReplSnapshot {
            epoch: 3,
            next: 42,
            seq_len: 4,
            entries: vec![
                SnapEntry {
                    ord: 0,
                    live: true,
                    values: vec![0.5, 1.0, 1.5, 2.0],
                },
                SnapEntry {
                    ord: 1,
                    live: false,
                    values: vec![-1.0, 0.0, 1.0, 2.0],
                },
            ],
        });
        round_trip_response(Response::Ok);
        round_trip_response(Response::Plan(vec![
            ("verb".into(), "query".into()),
            ("engine".into(), "mt".into()),
            ("partitions".into(), "4".into()),
            ("est_pages".into(), "120".into()),
            ("pages".into(), "97".into()),
        ]));
    }

    #[test]
    fn trace_request_defaults_to_100_spans() {
        assert_eq!(Request::parse("TRACE").unwrap(), Request::Trace { n: 100 });
    }

    #[test]
    fn observability_responses_round_trip() {
        // Exposition lines are free-form text (braces, quotes, spaces) —
        // they must pass through untouched, not be fed to a kv parser.
        round_trip_response(Response::Metrics {
            lines: vec![
                "simseq_op_total{op=\"query\"} 6".into(),
                "simseq_op_latency_us{op=\"query\",quantile=\"0.95\"} 512".into(),
                "simseq_connections_total 2".into(),
            ],
        });
        round_trip_response(Response::Metrics { lines: vec![] });
        round_trip_response(Response::Trace {
            events: vec![
                WireTraceEvent {
                    seq: 1,
                    trace: 7,
                    name: "plan.execute".into(),
                    depth: 1,
                    start_us: 10,
                    dur_us: 250,
                },
                WireTraceEvent {
                    seq: 2,
                    trace: 7,
                    name: "shard.gather".into(),
                    depth: 0,
                    start_us: 5,
                    dur_us: 400,
                },
            ],
        });
        round_trip_response(Response::Trace { events: vec![] });
    }

    #[test]
    fn metrics_body_must_match_announced_line_count() {
        let input = b"OK metrics=prom lines=2\nsimseq_connections_total 1\nEND\n".to_vec();
        assert!(Response::read_from(&mut Cursor::new(input)).is_err());
    }

    #[test]
    fn empty_value_lists_round_trip_on_the_replication_stream() {
        // `WalOp::Insert { values: vec![] }` is legal at the WAL layer
        // (a degenerate series still claims its ordinal), so the
        // FRAME/SNAP encoding must carry it — an empty `data=` token —
        // without wedging the follower's parser.
        round_trip_response(Response::ReplFrames {
            epoch: 1,
            end: 3,
            frames: vec![WalOp::Insert {
                lsn: 2,
                global: 5,
                local: 5,
                values: vec![],
            }],
        });
        round_trip_response(Response::ReplSnapshot {
            epoch: 1,
            next: 3,
            seq_len: 8,
            entries: vec![SnapEntry {
                ord: 0,
                live: true,
                values: vec![],
            }],
        });
        // The client-facing strict rule is untouched: an empty INSERT
        // is still refused at the door.
        assert!(Request::parse("INSERT data=").is_err());
    }

    #[test]
    fn error_frames_round_trip_with_spaces_in_message() {
        for (code, msg) in [
            (ErrCode::Busy, "request queue full (depth 64)"),
            (ErrCode::BadRequest, "token `junk` is not key=value"),
            (ErrCode::Range, "ordinal 9 out of range"),
            (ErrCode::Query, "family built for length 32, index holds 64"),
            (
                ErrCode::Io,
                "page access failed: read of P7 failed: i/o error",
            ),
            (ErrCode::Server, ""),
            (
                ErrCode::ReadOnly,
                "follower is read-only; write to the primary",
            ),
        ] {
            round_trip_response(Response::Err {
                code,
                msg: msg.into(),
            });
        }
    }

    #[test]
    fn truncated_response_is_an_error() {
        let input = b"OK n=1\nMATCH seq=1 t=0 dist=0.5\n".to_vec(); // no END
        let err = Response::read_from(&mut Cursor::new(input)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn empty_matches_response_stays_matches() {
        // No body lines and n=0 must parse as Matches, not Ok.
        let mut buf = Vec::new();
        Response::Matches {
            n: 0,
            matches: vec![],
            metrics: WireMetrics::default(),
        }
        .write_to(&mut buf)
        .unwrap();
        let got = Response::read_from(&mut Cursor::new(buf)).unwrap();
        assert!(matches!(got, Response::Matches { n: 0, .. }));
    }
}
