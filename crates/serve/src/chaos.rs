//! Deterministic network fault injection: a seeded TCP chaos proxy.
//!
//! [`ChaosProxy`] sits between a client (or follower) and a server and
//! forwards bytes both ways, injecting faults per a [`ChaosPlan`]:
//! refused connections, per-chunk delays, mid-stream connection cuts,
//! and half-open stalls (bytes stop flowing but the socket stays open —
//! the failure mode only timeouts can unstick). A runtime partition
//! switch ([`ChaosProxy::set_partitioned`]) refuses new connections and
//! cuts live ones, modelling a network partition between two nodes.
//!
//! Determinism follows `pagestore::fault`'s design: every per-connection
//! decision is drawn from a [`SeededRng`] keyed on the proxy seed and
//! the connection's accept sequence number, and byte-count triggers fire
//! on exact per-direction forwarded totals. With a fixed request
//! schedule on the client side, a failing seed replays bit-for-bit.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use tseries::rng::SeededRng;

/// Poll interval of the pump loops: how fast they notice the stop flag,
/// a partition switch, or the end of a stall.
const PUMP_TICK: Duration = Duration::from_millis(25);

/// Fault probabilities and shapes, drawn once per accepted connection.
/// The default plan injects nothing (a transparent proxy).
#[derive(Clone, Copy, Debug, Default)]
pub struct ChaosPlan {
    /// Probability an incoming connection is refused outright (accepted
    /// then immediately closed — the client sees a reset/EOF).
    pub refuse_p: f64,
    /// Probability a connection gets a per-chunk forwarding delay.
    pub delay_p: f64,
    /// Delay range in milliseconds, inclusive.
    pub delay_ms: (u64, u64),
    /// Probability a connection is cut mid-stream.
    pub cut_p: f64,
    /// Per-direction forwarded-byte count range after which the cut
    /// fires, inclusive.
    pub cut_after: (u64, u64),
    /// Probability a connection half-open stalls: bytes stop flowing
    /// but the socket stays open until the proxy stops or partitions.
    pub stall_p: f64,
    /// Per-direction forwarded-byte count range after which the stall
    /// begins, inclusive.
    pub stall_after: (u64, u64),
}

/// What one connection is fated to suffer (both directions share it;
/// byte triggers count per direction).
#[derive(Clone, Copy, Debug)]
struct Fate {
    refuse: bool,
    delay: Option<Duration>,
    cut_after: Option<u64>,
    stall_after: Option<u64>,
}

fn draw_range(rng: &mut SeededRng, (lo, hi): (u64, u64)) -> u64 {
    rng.random_range(lo..=hi.max(lo))
}

fn decide(plan: &ChaosPlan, rng: &mut SeededRng) -> Fate {
    let refuse = plan.refuse_p > 0.0 && rng.random_bool(plan.refuse_p);
    let delay = (plan.delay_p > 0.0 && rng.random_bool(plan.delay_p))
        .then(|| Duration::from_millis(draw_range(rng, plan.delay_ms)));
    let cut_after =
        (plan.cut_p > 0.0 && rng.random_bool(plan.cut_p)).then(|| draw_range(rng, plan.cut_after));
    let stall_after = (plan.stall_p > 0.0 && rng.random_bool(plan.stall_p))
        .then(|| draw_range(rng, plan.stall_after));
    Fate {
        refuse,
        delay,
        cut_after,
        stall_after,
    }
}

/// Faults actually injected (not merely scheduled), plus traffic totals.
#[derive(Debug, Default)]
pub struct ChaosCounters {
    /// Connections accepted (before any fate applied).
    pub connections: AtomicU64,
    /// Connections refused by fate.
    pub refused: AtomicU64,
    /// Connections refused because the proxy was partitioned.
    pub partition_refused: AtomicU64,
    /// Pump directions cut mid-stream (fate or partition).
    pub cut: AtomicU64,
    /// Pump directions that entered a half-open stall.
    pub stalled: AtomicU64,
    /// Chunks delayed before forwarding.
    pub delayed_chunks: AtomicU64,
    /// Bytes forwarded (both directions).
    pub bytes: AtomicU64,
}

/// A fault-injecting TCP proxy. Listens on an ephemeral local port
/// (see [`Self::addr`]) and forwards to one upstream address.
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    partitioned: Arc<AtomicBool>,
    counters: Arc<ChaosCounters>,
    acceptor: JoinHandle<()>,
}

impl ChaosProxy {
    /// Starts proxying `127.0.0.1:<ephemeral>` → `upstream` under `plan`.
    pub fn start(upstream: impl Into<String>, seed: u64, plan: ChaosPlan) -> io::Result<Self> {
        let upstream = upstream.into();
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let partitioned = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(ChaosCounters::default());
        let acceptor =
            {
                let (stop, partitioned, counters) = (
                    Arc::clone(&stop),
                    Arc::clone(&partitioned),
                    Arc::clone(&counters),
                );
                std::thread::Builder::new()
                    .name("chaos-acceptor".into())
                    .spawn(move || {
                        let mut conn_seq: u64 = 0;
                        for stream in listener.incoming() {
                            if stop.load(Ordering::SeqCst) {
                                break;
                            }
                            let Ok(client) = stream else { continue };
                            conn_seq += 1;
                            counters.connections.fetch_add(1, Ordering::Relaxed);
                            if partitioned.load(Ordering::SeqCst) {
                                counters.partition_refused.fetch_add(1, Ordering::Relaxed);
                                continue; // drop = refuse
                            }
                            // Key the fate on (seed, accept sequence): the
                            // n-th connection suffers the same fate on every
                            // run of the same seed.
                            let mut rng = SeededRng::seed_from_u64(
                                seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                                    .wrapping_add(conn_seq),
                            );
                            let fate = decide(&plan, &mut rng);
                            if fate.refuse {
                                counters.refused.fetch_add(1, Ordering::Relaxed);
                                continue;
                            }
                            let Ok(server) = TcpStream::connect(&upstream) else {
                                continue; // upstream down: client sees EOF
                            };
                            client.set_nodelay(true).ok();
                            server.set_nodelay(true).ok();
                            let (Ok(c2), Ok(s2)) = (client.try_clone(), server.try_clone()) else {
                                continue;
                            };
                            for (name, src, dst) in
                                [("chaos-up", client, server), ("chaos-down", s2, c2)]
                            {
                                let (stop, partitioned, counters) = (
                                    Arc::clone(&stop),
                                    Arc::clone(&partitioned),
                                    Arc::clone(&counters),
                                );
                                let _ = std::thread::Builder::new().name(name.into()).spawn(
                                    move || pump(src, dst, fate, &stop, &partitioned, &counters),
                                );
                            }
                        }
                    })?
            };
        Ok(Self {
            addr,
            stop,
            partitioned,
            counters,
            acceptor,
        })
    }

    /// The proxy's listen address — point clients/followers here.
    pub fn addr(&self) -> String {
        self.addr.to_string()
    }

    /// Flips the partition: while set, new connections are refused and
    /// live ones are cut within one pump tick.
    pub fn set_partitioned(&self, on: bool) {
        self.partitioned.store(on, Ordering::SeqCst);
    }

    /// Whether the partition switch is on.
    pub fn is_partitioned(&self) -> bool {
        self.partitioned.load(Ordering::SeqCst)
    }

    /// Injection and traffic counters.
    pub fn counters(&self) -> &ChaosCounters {
        &self.counters
    }

    /// Stops accepting and joins the acceptor; live pumps notice the
    /// stop flag within one tick and close their sockets.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr); // unblock accept()
        let _ = self.acceptor.join();
    }
}

/// Forwards one direction until EOF, error, a fate trigger, a partition,
/// or proxy stop. Reads use a short timeout so the loop stays responsive
/// to the flags while idle.
fn pump(
    mut src: TcpStream,
    mut dst: TcpStream,
    fate: Fate,
    stop: &AtomicBool,
    partitioned: &AtomicBool,
    counters: &ChaosCounters,
) {
    let _ = src.set_read_timeout(Some(PUMP_TICK));
    let mut buf = [0u8; 4096];
    let mut forwarded: u64 = 0;
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        if partitioned.load(Ordering::SeqCst) {
            counters.cut.fetch_add(1, Ordering::Relaxed);
            break;
        }
        match src.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                // Re-check after the read: bytes that arrived once the
                // partition was up must not cross it.
                if partitioned.load(Ordering::SeqCst) {
                    counters.cut.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                if fate.stall_after.is_some_and(|at| forwarded >= at) {
                    // Half-open: swallow the bytes, keep the socket
                    // open. Only the peer's own read timeout (or a
                    // partition/stop) gets it out.
                    counters.stalled.fetch_add(1, Ordering::Relaxed);
                    while !stop.load(Ordering::SeqCst) && !partitioned.load(Ordering::SeqCst) {
                        std::thread::sleep(PUMP_TICK);
                    }
                    break;
                }
                if fate.cut_after.is_some_and(|at| forwarded + n as u64 > at) {
                    counters.cut.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                if let Some(d) = fate.delay {
                    counters.delayed_chunks.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(d);
                }
                if dst.write_all(&buf[..n]).is_err() {
                    break;
                }
                forwarded += n as u64;
                counters.bytes.fetch_add(n as u64, Ordering::Relaxed);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                continue
            }
            Err(_) => break,
        }
    }
    let _ = src.shutdown(Shutdown::Both);
    let _ = dst.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A one-connection echo upstream.
    fn echo_upstream() -> (String, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            while let Ok((mut s, _)) = listener.accept() {
                let mut buf = [0u8; 256];
                while let Ok(n) = s.read(&mut buf) {
                    if n == 0 || s.write_all(&buf[..n]).is_err() {
                        break;
                    }
                }
            }
        });
        (addr, handle)
    }

    #[test]
    fn transparent_without_faults() {
        let (upstream, _h) = echo_upstream();
        let proxy = ChaosProxy::start(upstream, 1, ChaosPlan::default()).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.write_all(b"ping\n").unwrap();
        let mut buf = [0u8; 5];
        c.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping\n");
        // The pumps count bytes after forwarding; give them a beat.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while proxy.counters().bytes.load(Ordering::Relaxed) < 10
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(proxy.counters().bytes.load(Ordering::Relaxed), 10);
        proxy.shutdown();
    }

    #[test]
    fn partition_refuses_new_connections_and_cuts_live_ones() {
        let (upstream, _h) = echo_upstream();
        let proxy = ChaosProxy::start(upstream, 2, ChaosPlan::default()).unwrap();
        let mut live = TcpStream::connect(proxy.addr()).unwrap();
        live.write_all(b"a\n").unwrap();
        let mut buf = [0u8; 2];
        live.read_exact(&mut buf).unwrap();
        proxy.set_partitioned(true);
        // The live connection is cut within a tick: reads hit EOF/reset.
        live.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        live.write_all(b"b\n").ok();
        let mut byte = [0u8; 1];
        assert!(
            matches!(live.read(&mut byte), Ok(0) | Err(_)),
            "partitioned proxy must not deliver data"
        );
        // New connections die immediately: the first read sees EOF.
        let mut refused = TcpStream::connect(proxy.addr()).unwrap();
        refused
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        refused.write_all(b"c\n").ok();
        assert!(matches!(refused.read(&mut byte), Ok(0) | Err(_)));
        proxy.set_partitioned(false);
        // Healed: traffic flows again on a fresh connection.
        let mut again = TcpStream::connect(proxy.addr()).unwrap();
        again.write_all(b"d\n").unwrap();
        again.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"d\n");
        proxy.shutdown();
    }

    #[test]
    fn fates_are_deterministic_per_seed() {
        let plan = ChaosPlan {
            refuse_p: 0.3,
            delay_p: 0.5,
            delay_ms: (1, 20),
            cut_p: 0.4,
            cut_after: (10, 1000),
            stall_p: 0.2,
            stall_after: (5, 500),
        };
        for conn in 1..=50u64 {
            let key = 42u64.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(conn);
            let a = decide(&plan, &mut SeededRng::seed_from_u64(key));
            let b = decide(&plan, &mut SeededRng::seed_from_u64(key));
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }
}
