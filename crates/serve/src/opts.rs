//! Minimal `--key value` argument parsing shared by the two binaries.

use std::fmt;

/// A failed parse, printable for `main`.
#[derive(Debug)]
pub struct OptError(pub String);

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Parsed `--key value` pairs.
pub struct Opts(Vec<(String, String)>);

impl Opts {
    /// Parses pairs from an argv slice (program name excluded).
    pub fn parse(argv: &[String]) -> Result<Self, OptError> {
        let mut pairs = Vec::new();
        let mut it = argv.iter();
        while let Some(flag) = it.next() {
            let key = flag
                .strip_prefix("--")
                .ok_or_else(|| OptError(format!("expected --flag, got `{flag}`")))?;
            let value = it
                .next()
                .ok_or_else(|| OptError(format!("--{key} needs a value")))?;
            pairs.push((key.to_string(), value.clone()));
        }
        Ok(Self(pairs))
    }

    /// Looks up a flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Required flag.
    pub fn req(&self, key: &str) -> Result<&str, OptError> {
        self.get(key)
            .ok_or_else(|| OptError(format!("missing required --{key}")))
    }

    /// Optional parsed flag with default.
    pub fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, OptError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| OptError(format!("--{key}: bad value `{raw}`"))),
        }
    }

    /// Optional `lo..hi` range flag with default.
    pub fn range_or(&self, key: &str, default: (usize, usize)) -> Result<(usize, usize), OptError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => {
                let (lo, hi) = raw
                    .split_once("..")
                    .ok_or_else(|| OptError(format!("--{key} must be lo..hi")))?;
                let lo = lo
                    .parse()
                    .map_err(|_| OptError(format!("--{key}: bad lower bound")))?;
                let hi = hi
                    .parse()
                    .map_err(|_| OptError(format!("--{key}: bad upper bound")))?;
                Ok((lo, hi))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_flags() {
        let o = Opts::parse(&argv(&["--addr", "127.0.0.1:0", "--conns", "8"])).unwrap();
        assert_eq!(o.req("addr").unwrap(), "127.0.0.1:0");
        assert_eq!(o.parse_or("conns", 1usize).unwrap(), 8);
        assert_eq!(o.parse_or("ops", 5usize).unwrap(), 5);
        assert!(o.req("nope").is_err());
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(Opts::parse(&argv(&["addr"])).is_err());
        assert!(Opts::parse(&argv(&["--addr"])).is_err());
        let o = Opts::parse(&argv(&["--ma", "5..34", "--bad", "x..y"])).unwrap();
        assert_eq!(o.range_or("ma", (1, 8)).unwrap(), (5, 34));
        assert!(o.range_or("bad", (1, 8)).is_err());
        assert_eq!(o.range_or("absent", (1, 8)).unwrap(), (1, 8));
    }
}
