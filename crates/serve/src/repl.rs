//! WAL-shipping replication: the primary-side feeder and the follower
//! loop behind `simserved --replicate-from`.
//!
//! The design extends the WAL's exact-prefix guarantee over the network.
//! A follower's state is always `base(E) + frames[..k]` for some primary
//! checkpoint epoch `E` and some prefix of the frames logged since that
//! checkpoint — never a rearrangement, never a partial frame. The
//! protocol is pull-based: the follower sends `REPL epoch=E from=L
//! ack=A` and the primary answers with one of two payloads, decided by a
//! single handshake rule evaluated under the index read guard (so no
//! mutation or checkpoint can interleave):
//!
//! * **frames** — when `E` equals the primary's current checkpoint epoch
//!   and `L` does not run past its next LSN, the epoch's log covers the
//!   follower's position exactly; the primary serves `lsn >= L` frames
//!   from its live log ([`simquery::shared::SharedIndex::wal_frames_since`]).
//! * **snapshot** — otherwise (a checkpoint reset the log, the follower
//!   is behind a restarted primary's recovered log, or the follower is
//!   brand new, which it signals with the reserved `from=0`): the primary
//!   transfers its full state per ordinal, tombstones included, so the
//!   follower reproduces the exact ordinal assignment, then resumes
//!   streaming at the returned `next` LSN.
//!
//! Nothing leaves the primary before it is durable: the catch-up reader
//! fsyncs the log's written tail before serving it (see
//! [`simwal::Wal::frames_since`]), and a snapshot cut syncs the log under
//! the same guard that pins `(epoch, next)`. A primary crash therefore
//! only ever loses frames *no follower has seen* — with `--fsync
//! never`/`EveryN` the lost unsynced tail was by construction never
//! shipped, so the restarted primary may reuse those LSNs for new writes
//! and the same-epoch handshake still resumes every follower onto an
//! identical timeline, never a divergent one.
//!
//! Frames apply on the follower through
//! [`simquery::shared::SharedIndex::apply_replicated`] — the same
//! idempotent semantics as crash-recovery replay, so re-shipping any
//! prefix after a crash on either side converges without gaps or
//! duplicates. Acked LSNs ride on every poll; the primary keeps a
//! per-peer ack table for the `STATS` `REPL` line and drops a peer's
//! entry when its connection closes.

use crate::client::Client;
use crate::protocol::{ErrCode, ReplStatLine, Request, Response, SnapEntry};
use crate::server::Backend;
use simquery::prelude::*;
use simquery::shared::DurableError;
use simwal::encode_frame;
use std::collections::{BTreeMap, HashSet};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use tseries::rng::SeededRng;

/// Default frames per `REPL` response when the request says `max=0`.
pub const DEFAULT_BATCH: usize = 256;

/// Counters a follower loop publishes for its server's `STATS` line.
#[derive(Debug, Default)]
pub struct FollowerStats {
    /// LSN last acked upstream.
    pub acked: AtomicU64,
    /// Primary's next LSN as of the last poll (exclusive stream end).
    pub end: AtomicU64,
    /// Frame bytes received (WAL frame encoding, not wire overhead).
    pub bytes: AtomicU64,
    /// Primary checkpoint epoch the follower is synced to.
    pub epoch: AtomicU64,
    /// Snapshot transfers installed (1 for a clean bootstrap; each
    /// further one means an epoch change forced a re-handshake).
    pub snapshots: AtomicU64,
}

/// Per-connection replication state a primary keeps about one follower.
#[derive(Clone, Copy, Debug, Default)]
struct PeerAck {
    acked: u64,
    bytes: u64,
    /// Catch-up resume cursor `(epoch, lsn, byte offset)`: where in the
    /// log the frame carrying `lsn` starts, valid only while the log is
    /// still at `epoch`. Purely an optimisation — a stale or missing
    /// cursor just costs a full log scan.
    cursor: Option<(u64, u64, u64)>,
    /// Set when the last response to this peer was a snapshot transfer:
    /// its real applied position may have *dropped* (a resync after an
    /// epoch change or an unrelated history), so the next ack overwrites
    /// the recorded one instead of `max`-ing it — otherwise the
    /// min-acked `REPL` lag line under-reports until the follower
    /// regrows past its stale ack.
    resync: bool,
}

/// Server-wide replication state: the primary-side feeder (append
/// notification + per-follower ack table) and, when this server is
/// itself a follower, the follower loop's published counters. The role
/// is runtime-mutable: `PROMOTE` flips a follower to primary in place
/// (see [`Self::promote_to_primary`]).
pub struct ReplState {
    follower: Mutex<Option<Arc<FollowerStats>>>,
    /// Cached role bit so the per-request write gate never takes the
    /// `follower` mutex. `true` while the server follows a primary.
    follower_role: AtomicBool,
    /// Stop flag + thread handle of the local follower poll loop,
    /// registered at startup so `PROMOTE` can halt the loop (and wait
    /// out any in-flight poll) before flipping the role.
    follower_stop: Mutex<Option<(Arc<AtomicBool>, std::thread::JoinHandle<()>)>>,
    /// Promotions served by this process (0 or 1 in practice; the
    /// counter shape matches the metrics surface).
    promotions: AtomicU64,
    /// Epoch of the peer timeline that fenced this server (0 = never
    /// fenced) — observability for the demotion half of failover.
    fenced_epoch: AtomicU64,
    /// Append generation counter; bumped after every acknowledged
    /// mutation so long-polling `REPL` handlers wake without spinning.
    appended: AtomicU64,
    /// Handlers currently parked in [`Self::wait_append`]. The mutation
    /// path only touches the condvar when this is non-zero, so with no
    /// follower lagging behind, `notify_append` is a single atomic add.
    waiters: AtomicU64,
    park: Mutex<()>,
    notify: Condvar,
    peers: Mutex<BTreeMap<String, PeerAck>>,
    bytes_shipped: AtomicU64,
}

impl ReplState {
    /// State for a standalone or primary server.
    pub fn primary() -> Self {
        Self {
            follower: Mutex::new(None),
            follower_role: AtomicBool::new(false),
            follower_stop: Mutex::new(None),
            promotions: AtomicU64::new(0),
            fenced_epoch: AtomicU64::new(0),
            appended: AtomicU64::new(0),
            waiters: AtomicU64::new(0),
            park: Mutex::new(()),
            notify: Condvar::new(),
            peers: Mutex::new(BTreeMap::new()),
            bytes_shipped: AtomicU64::new(0),
        }
    }

    /// State for a follower server publishing `stats`.
    pub fn follower(stats: Arc<FollowerStats>) -> Self {
        let state = Self::primary();
        *state.follower.lock().unwrap_or_else(|e| e.into_inner()) = Some(stats);
        state.follower_role.store(true, Ordering::Release);
        state
    }

    /// Whether this server replicates from a primary (and must refuse
    /// writes).
    pub fn is_follower(&self) -> bool {
        self.follower_role.load(Ordering::Acquire)
    }

    /// Registers the stop flag and thread handle of the local follower
    /// poll loop so a later `PROMOTE` can halt it.
    pub fn register_follower_loop(
        &self,
        stop: Arc<AtomicBool>,
        handle: std::thread::JoinHandle<()>,
    ) {
        *self.follower_stop.lock().unwrap_or_else(|e| e.into_inner()) = Some((stop, handle));
    }

    /// Stops the registered follower poll loop and joins its thread, so
    /// no in-flight poll can land frames after the caller moves on.
    /// Idempotent; a no-op when no loop was registered (tests that step
    /// `poll_once` by hand manage their own loop). Bounded by one
    /// long-poll budget plus one reconnect backoff (a few seconds).
    pub fn halt_follower_loop(&self) {
        let taken = self
            .follower_stop
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        if let Some((stop, handle)) = taken {
            stop.store(true, Ordering::SeqCst);
            let _ = handle.join();
        }
    }

    /// Flips a follower server to primary: clears the follower role, so
    /// the write gate opens and `STATS`/`METRICS` report the primary
    /// view. Returns `false` (and changes nothing) when the server
    /// already is a primary. The caller halts the poll loop and promotes
    /// the underlying index *before* calling this — the role flips only
    /// after the new timeline is durably installed.
    pub fn promote_to_primary(&self) -> bool {
        let mut follower = self.follower.lock().unwrap_or_else(|e| e.into_inner());
        if follower.is_none() {
            return false;
        }
        *follower = None;
        drop(follower);
        self.halt_follower_loop();
        self.follower_role.store(false, Ordering::Release);
        self.promotions.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Promotions served by this process.
    pub fn promotions(&self) -> u64 {
        self.promotions.load(Ordering::Relaxed)
    }

    /// Records that a higher-epoch peer fenced this server.
    pub fn note_fenced(&self, epoch: u64) {
        self.fenced_epoch.fetch_max(epoch, Ordering::AcqRel);
    }

    /// Epoch of the peer timeline that fenced this server (0 = never).
    pub fn fenced_epoch(&self) -> u64 {
        self.fenced_epoch.load(Ordering::Acquire)
    }

    /// Wakes long-polling `REPL` handlers after an acknowledged
    /// mutation. The generation bump is ordered before the waiter check,
    /// and [`Self::wait_append`] registers before re-reading the
    /// generation (both under `park`), so a wakeup can't be lost: either
    /// the waiter sees the new generation and never sleeps, or this call
    /// sees the waiter and notifies.
    pub fn notify_append(&self) {
        self.appended.fetch_add(1, Ordering::SeqCst);
        if self.waiters.load(Ordering::SeqCst) > 0 {
            let _guard = self.park.lock().unwrap_or_else(|e| e.into_inner());
            self.notify.notify_all();
        }
    }

    /// The current append generation; capture before scanning for
    /// frames, then pass to [`Self::wait_append`].
    fn append_gen(&self) -> u64 {
        self.appended.load(Ordering::SeqCst)
    }

    /// Blocks until the append generation leaves `seen` or `timeout`
    /// passes.
    fn wait_append(&self, seen: u64, timeout: Duration) {
        let guard = self.park.lock().unwrap_or_else(|e| e.into_inner());
        self.waiters.fetch_add(1, Ordering::SeqCst);
        let _ = self
            .notify
            .wait_timeout_while(guard, timeout, |_| {
                self.appended.load(Ordering::SeqCst) == seen
            })
            .map(|(g, _)| drop(g));
        self.waiters.fetch_sub(1, Ordering::SeqCst);
    }

    fn record_ack(&self, peer: &str, acked: u64, bytes: u64) {
        let mut peers = self.peers.lock().unwrap_or_else(|e| e.into_inner());
        let entry = peers.entry(peer.to_string()).or_default();
        if entry.resync {
            // First poll after a snapshot transfer: the ack is the
            // follower's true post-install position, which may be lower
            // than what it claimed before the resync.
            entry.acked = acked;
            entry.resync = false;
        } else {
            entry.acked = entry.acked.max(acked);
        }
        entry.bytes += bytes;
        self.bytes_shipped.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Marks that `peer` was just served a snapshot, so its next ack
    /// resets (rather than raises) the recorded position.
    fn mark_resync(&self, peer: &str) {
        let mut peers = self.peers.lock().unwrap_or_else(|e| e.into_inner());
        peers.entry(peer.to_string()).or_default().resync = true;
    }

    /// The peer's catch-up cursor, when it is still valid for `epoch`
    /// and resumes exactly at `from`.
    fn peer_cursor(&self, peer: &str, epoch: u64, from: u64) -> Option<(u64, u64)> {
        let peers = self.peers.lock().unwrap_or_else(|e| e.into_inner());
        peers
            .get(peer)?
            .cursor
            .filter(|&(e, lsn, _)| e == epoch && lsn == from)
            .map(|(_, lsn, offset)| (lsn, offset))
    }

    fn set_peer_cursor(&self, peer: &str, epoch: u64, lsn: u64, offset: u64) {
        let mut peers = self.peers.lock().unwrap_or_else(|e| e.into_inner());
        peers.entry(peer.to_string()).or_default().cursor = Some((epoch, lsn, offset));
    }

    /// Forgets a follower when its connection closes, so a dead peer
    /// cannot pin the reported lag forever.
    pub fn drop_peer(&self, peer: &str) {
        let mut peers = self.peers.lock().unwrap_or_else(|e| e.into_inner());
        peers.remove(peer);
    }

    /// The `STATS` `REPL` line for this server, or `None` when it
    /// neither follows a primary nor has followers attached.
    pub fn stat_line(&self, backend: &Backend) -> Option<ReplStatLine> {
        let follower = self
            .follower
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        if let Some(f) = follower {
            let applied = match backend {
                Backend::Single(shared) => shared.applied_lsn(),
                Backend::Sharded(_) => 0,
            };
            let end = f.end.load(Ordering::Relaxed);
            return Some(ReplStatLine {
                role: "follower".into(),
                followers: 0,
                acked_lsn: f.acked.load(Ordering::Relaxed),
                applied_lsn: applied,
                lag: end.saturating_sub(1).saturating_sub(applied),
                bytes: f.bytes.load(Ordering::Relaxed),
                epoch: f.epoch.load(Ordering::Relaxed),
            });
        }
        let peers = self.peers.lock().unwrap_or_else(|e| e.into_inner());
        if peers.is_empty() {
            return None;
        }
        let (followers, min_acked) = (
            peers.len() as u64,
            peers.values().map(|p| p.acked).min().unwrap_or(0),
        );
        drop(peers);
        let (next, epoch) = match backend {
            Backend::Single(shared) => (
                shared.wal_next_lsn().unwrap_or(1),
                shared.wal_epoch().unwrap_or(0),
            ),
            Backend::Sharded(_) => (1, 0),
        };
        Some(ReplStatLine {
            role: "primary".into(),
            followers,
            acked_lsn: min_acked,
            applied_lsn: 0,
            lag: next.saturating_sub(1).saturating_sub(min_acked),
            bytes: self.bytes_shipped.load(Ordering::Relaxed),
            epoch,
        })
    }
}

/// One `REPL` request's parameters, as parsed off the wire.
#[derive(Clone, Copy, Debug)]
pub struct ReplPoll {
    /// Checkpoint epoch the follower's state corresponds to.
    pub epoch: u64,
    /// First LSN the follower still needs (`0` = fresh bootstrap).
    pub from: u64,
    /// Highest LSN the follower has durably applied.
    pub ack: u64,
    /// Frame budget for this response (`0` = [`DEFAULT_BATCH`]).
    pub max: usize,
    /// Long-poll budget when the primary is already caught up.
    pub wait_ms: u64,
}

/// Serves one `REPL` request on the primary. Runs inline on the
/// connection thread (like `QUIT`): a long-poll parked in the bounded
/// worker pool would starve query traffic.
pub fn serve_repl(backend: &Backend, repl: &ReplState, peer: &str, poll: ReplPoll) -> Response {
    let _span = simobs::trace::span("repl.feed");
    let ReplPoll {
        epoch,
        from,
        ack,
        max,
        wait_ms,
    } = poll;
    let Backend::Single(shared) = backend else {
        return Response::Err {
            code: ErrCode::Query,
            msg: "replication requires a single-index primary (shards ship separately)".into(),
        };
    };
    if !shared.is_durable() {
        return Response::Err {
            code: ErrCode::Query,
            msg: "replication requires a durable primary (start simserved with --wal DIR)".into(),
        };
    }
    repl.record_ack(peer, ack, 0);
    let max = if max == 0 { DEFAULT_BATCH } else { max };
    let deadline = Instant::now() + Duration::from_millis(wait_ms);
    loop {
        // The read guard pins one consistent (epoch, next) cut; the
        // snapshot path captures the cut's shape under it (length +
        // tombstone set) and syncs the WAL so nothing non-durable can
        // leave the primary, then copies with the guard released.
        let (wal_epoch, next) = {
            let guard = shared.read();
            let wal_epoch = shared.wal_epoch().unwrap_or(0);
            let next = shared.wal_next_lsn().unwrap_or(1);
            // A poll from a NEWER epoch means a peer was promoted onto a
            // timeline this server has never seen: this server is a
            // deposed primary. Serving the generic mismatch path below
            // would hand the caller a STALE snapshot and roll the new
            // timeline back — instead, fence ourselves at the caller's
            // epoch (persisted in the manifest, so a crash cannot
            // unfence us) and answer read-only. This in-band handshake
            // is how an ex-primary learns of its own demotion.
            if epoch > wal_epoch {
                drop(guard);
                if let Err(e) = shared.fence_at(epoch) {
                    return Response::Err {
                        code: ErrCode::Io,
                        msg: format!("failed to persist fence at epoch {epoch}: {e}"),
                    };
                }
                repl.note_fenced(epoch);
                return Response::Err {
                    code: ErrCode::ReadOnly,
                    msg: format!(
                        "fenced: peer {peer} is on newer epoch {epoch} (local {wal_epoch}); \
                         this ex-primary is read-only until it re-syncs from the new primary"
                    ),
                };
            }
            // `from == 0` is the reserved bootstrap position: the
            // follower has no state at all, so no epoch's log can
            // cover it.
            if epoch != wal_epoch || from == 0 || from > next {
                // Still under the guard (no mutation can interleave):
                // make every LSN below `next` durable, so a primary
                // crash after the transfer cannot lose state the
                // follower now holds.
                if let Err(e) = shared.sync_wal() {
                    return Response::Err {
                        code: ErrCode::Io,
                        msg: format!("snapshot cut sync failed: {e}"),
                    };
                }
                let len = guard.len();
                let seq_len = guard.seq_len();
                let dead: HashSet<usize> = guard.deleted_ordinals().into_iter().collect();
                drop(guard);
                let resp = snapshot_response(shared, wal_epoch, next, len, seq_len, &dead);
                // A checkpoint may have landed while the copy ran with
                // the guard released; its epoch bump invalidates the
                // pinned cut, so rebuild at the new one.
                if shared.wal_epoch().unwrap_or(0) != wal_epoch {
                    continue;
                }
                if matches!(resp, Response::ReplSnapshot { .. }) {
                    repl.mark_resync(peer);
                }
                return resp;
            }
            (wal_epoch, next)
        };
        // Capture the append generation BEFORE scanning: a mutation that
        // lands mid-scan changes the generation, so the wait below
        // returns immediately instead of sleeping past it.
        let gen = repl.append_gen();
        // The file scan runs with the guard RELEASED so catch-up reads
        // never stall primary writes: the log bounds the read by its own
        // durable-prefix snapshot (a concurrent append can't tear a
        // frame), and the one mutation that can invalidate the bytes — a
        // checkpoint truncating the log — is detected by re-checking the
        // epoch afterwards and retrying (the next pass snapshots). The
        // peer cursor resumes the scan where the last served frame ended.
        let hint = repl.peer_cursor(peer, wal_epoch, from);
        let frames = shared.wal_frames_since_hinted(from, max, hint);
        if shared.wal_epoch().unwrap_or(0) != wal_epoch {
            continue;
        }
        let (frames, cursor) = match frames {
            Ok(got) => got,
            Err(e) => {
                return Response::Err {
                    code: ErrCode::Io,
                    msg: e.to_string(),
                }
            }
        };
        if !frames.is_empty() || Instant::now() >= deadline {
            let bytes: u64 = frames.iter().map(|op| encode_frame(op).len() as u64).sum();
            repl.record_ack(peer, ack, bytes);
            repl.set_peer_cursor(peer, wal_epoch, cursor.0, cursor.1);
            return Response::ReplFrames {
                epoch: wal_epoch,
                end: next,
                frames,
            };
        }
        repl.wait_append(gen, deadline.saturating_duration_since(Instant::now()));
    }
}

/// Ordinals copied per read-guard acquisition in [`snapshot_response`],
/// so writers and checkpoints interleave with a large transfer instead
/// of stalling for its whole duration.
const SNAPSHOT_COPY_BATCH: usize = 256;

/// Copies the cut pinned by the caller — `len` ordinals, `dead`
/// tombstones, `seq_len` — re-acquiring the read guard per batch. Safe
/// without holding the guard across batches because ordinals below a
/// cut are immutable: inserts only append, deletes only tombstone, and
/// the heap record behind `fetch_series` survives tombstoning. The one
/// operation that can invalidate them — a checkpoint swapping the index
/// — bumps the WAL epoch, which the caller re-checks after this returns.
fn snapshot_response(
    shared: &SharedIndex,
    epoch: u64,
    next: u64,
    len: usize,
    seq_len: usize,
    dead: &HashSet<usize>,
) -> Response {
    let mut entries = Vec::with_capacity(len);
    for batch_start in (0..len).step_by(SNAPSHOT_COPY_BATCH) {
        let guard = shared.read();
        for ord in batch_start..(batch_start + SNAPSHOT_COPY_BATCH).min(len) {
            // fetch_series reads the heap record, which tombstoning
            // keeps: dead ordinals ship too (live=no) so the follower
            // reproduces the exact ordinal assignment.
            let ts = match guard.fetch_series(ord) {
                Ok(ts) => ts,
                Err(e) => {
                    return Response::Err {
                        code: ErrCode::Io,
                        msg: format!("snapshot transfer failed at ordinal {ord}: {e}"),
                    }
                }
            };
            entries.push(SnapEntry {
                ord: ord as u64,
                live: !dead.contains(&ord),
                values: ts.values().to_vec(),
            });
        }
    }
    Response::ReplSnapshot {
        epoch,
        next,
        seq_len,
        entries,
    }
}

/// Persisted follower position: which primary epoch the local state
/// corresponds to and the applied-LSN floor of the last snapshot
/// install (frames applied after it are recovered from the local WAL).
const REPLICA_FILE: &str = "REPLICA";

fn write_replica_state(dir: &std::path::Path, epoch: u64, floor: u64) -> io::Result<()> {
    simwal::atomic_write(
        &dir.join(REPLICA_FILE),
        format!("simrepl v1\nepoch {epoch}\nfloor {floor}\n").as_bytes(),
    )
}

fn read_replica_state(dir: &std::path::Path) -> Option<(u64, u64)> {
    let text = std::fs::read_to_string(dir.join(REPLICA_FILE)).ok()?;
    let mut lines = text.lines();
    if lines.next() != Some("simrepl v1") {
        return None;
    }
    let epoch = lines.next()?.strip_prefix("epoch ")?.parse().ok()?;
    let floor = lines.next()?.strip_prefix("floor ")?.parse().ok()?;
    Some((epoch, floor))
}

/// Tuning knobs of a follower loop.
#[derive(Clone, Debug)]
pub struct FollowerOpts {
    /// Max frames per poll (0 = server default).
    pub batch: usize,
    /// Long-poll budget per request, milliseconds.
    pub wait_ms: u64,
    /// Pause between polls in the [`Follower::run`] loop, milliseconds.
    /// `0` streams continuously (minimum lag); a nonzero pace bounds the
    /// CPU the apply loop takes from whatever shares its cores — a
    /// bounded-staleness follower that trades lag for isolation.
    pub pace_ms: u64,
    /// Directory holding the persisted replica position (the follower's
    /// WAL directory); `None` for an in-memory follower.
    pub state_dir: Option<PathBuf>,
    /// Seed for the reconnect-backoff jitter. Followers in a fleet should
    /// get distinct seeds so a primary restart does not make them all
    /// re-dial in lockstep; equal seeds reproduce the exact schedule.
    pub reconnect_seed: u64,
}

impl Default for FollowerOpts {
    fn default() -> Self {
        Self {
            batch: 0,
            wait_ms: 1000,
            pace_ms: 0,
            state_dir: None,
            reconnect_seed: 0,
        }
    }
}

/// The follower side of replication: polls a primary for WAL frames and
/// applies them to the local [`SharedIndex`] — the same handle the local
/// server serves read-only queries from.
pub struct Follower {
    shared: SharedIndex,
    /// `None` between a connection failure and the next reconnect; the
    /// dead connection is dropped eagerly so a restarting primary's
    /// lingering handler thread sees EOF and releases its locks.
    client: Option<Client>,
    primary: String,
    opts: FollowerOpts,
    stats: Arc<FollowerStats>,
    /// Whether the local state corresponds to a known primary epoch; a
    /// fresh follower starts unsynced and requests a snapshot with the
    /// reserved `from=0`.
    synced: bool,
}

impl Follower {
    /// Connects to `primary` and prepares to replicate into `shared`.
    /// A durable follower (one opened with `open_durable` on its own
    /// directories) resumes from its persisted replica position instead
    /// of re-transferring the snapshot.
    pub fn connect(primary: &str, shared: SharedIndex, opts: FollowerOpts) -> io::Result<Self> {
        let client = Client::connect(primary)?;
        let stats = Arc::new(FollowerStats::default());
        let mut synced = false;
        if let Some(dir) = &opts.state_dir {
            if let Some((epoch, floor)) = read_replica_state(dir) {
                shared.note_replica_position(epoch, floor);
                synced = true;
            }
        }
        // An in-memory handle with a nonzero applied position or replica
        // epoch can only have gotten it from replication (a prior
        // snapshot install or `note_replica_position`), so it may resume
        // streaming. A *durable* handle is different: local WAL replay
        // also raises `applied_lsn`, and a directory that used to be a
        // standalone primary holds LSNs unrelated to the new primary's
        // timeline — so a durable follower claims `synced` only via its
        // REPLICA state file (written on every snapshot install), and
        // without one it re-bootstraps with `from=0`.
        if synced
            || (!shared.is_durable() && (shared.applied_lsn() > 0 || shared.replica_epoch() > 0))
        {
            synced = true;
            stats.epoch.store(replica_epoch(&shared), Ordering::Relaxed);
            stats.acked.store(shared.applied_lsn(), Ordering::Relaxed);
        }
        Ok(Self {
            shared,
            client: Some(client),
            primary: primary.to_string(),
            opts,
            stats,
            synced,
        })
    }

    /// The counters this follower publishes (hand to
    /// [`crate::server::serve_with`]).
    pub fn stats(&self) -> Arc<FollowerStats> {
        Arc::clone(&self.stats)
    }

    /// Re-dials the primary — at `addr` if given (a restarted primary
    /// usually comes back on a new ephemeral port in tests), else at the
    /// address this follower was created with. The old connection is
    /// dropped *before* dialing, even on failure. Replication state is
    /// untouched: the next poll re-handshakes from the current position.
    pub fn reconnect(&mut self, addr: Option<&str>) -> io::Result<()> {
        self.client = None;
        if let Some(addr) = addr {
            self.primary = addr.to_string();
        }
        self.client = Some(Client::connect(&self.primary)?);
        Ok(())
    }

    /// Highest primary LSN applied locally.
    pub fn applied(&self) -> u64 {
        self.shared.applied_lsn()
    }

    /// Frames the primary holds beyond this follower's applied position.
    pub fn lag(&self) -> u64 {
        self.stats
            .end
            .load(Ordering::Relaxed)
            .saturating_sub(1)
            .saturating_sub(self.applied())
    }

    /// One poll/apply round-trip. Returns how many frames (or snapshot
    /// entries) were received; `Ok(0)` means the follower is drained to
    /// the primary's acked tip. Crash-point tests step this directly.
    pub fn poll_once(&mut self) -> io::Result<usize> {
        let _span = simobs::trace::span("repl.apply");
        let epoch = replica_epoch(&self.shared);
        let from = if self.synced { self.applied() + 1 } else { 0 };
        let req = Request::Repl {
            epoch,
            from,
            ack: self.applied(),
            max: self.opts.batch,
            wait_ms: self.opts.wait_ms,
        };
        let client = self.client.as_mut().ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotConnected, "not connected to the primary")
        })?;
        match client.call(&req)? {
            Response::ReplFrames {
                epoch, end, frames, ..
            } => {
                // A promotion can race an in-flight long poll: this node
                // may already be on a newer timeline than the primary
                // that answered. Applying the stale batch would graft
                // old-timeline writes onto the promoted state — drop it.
                if epoch < replica_epoch(&self.shared) {
                    return Ok(0);
                }
                let n = frames.len();
                for op in &frames {
                    self.stats
                        .bytes
                        .fetch_add(encode_frame(op).len() as u64, Ordering::Relaxed);
                    match self.shared.apply_replicated(op) {
                        Ok(_) => {}
                        Err(DurableError::Gap { .. }) => {
                            // The log cannot cover our position after
                            // all; re-handshake for a snapshot.
                            self.synced = false;
                            return Ok(0);
                        }
                        Err(e) => {
                            // A frame that failed mid-apply (e.g. a
                            // device fault inside the tree insert) may
                            // have left partial entries behind; blindly
                            // re-applying it would stack duplicates on
                            // top. Mark the state suspect and re-sync
                            // via snapshot instead.
                            self.synced = false;
                            return Err(io::Error::other(format!(
                                "replicated frame failed to apply: {e}"
                            )));
                        }
                    }
                }
                self.shared.note_replica_epoch(epoch);
                self.stats.epoch.store(epoch, Ordering::Relaxed);
                self.stats.end.store(end, Ordering::Relaxed);
                self.stats.acked.store(self.applied(), Ordering::Relaxed);
                Ok(n)
            }
            Response::ReplSnapshot {
                epoch,
                next,
                seq_len,
                entries,
            } => {
                // Same race as above, but worse: installing a stale
                // snapshot would roll a freshly promoted node back to
                // the deposed primary's state (and clear its fence).
                if epoch < replica_epoch(&self.shared) {
                    return Ok(0);
                }
                let n = entries.len();
                self.install_snapshot(epoch, next, seq_len, entries)?;
                self.synced = true;
                self.stats.snapshots.fetch_add(1, Ordering::Relaxed);
                self.stats.epoch.store(epoch, Ordering::Relaxed);
                self.stats.end.store(next, Ordering::Relaxed);
                self.stats.acked.store(self.applied(), Ordering::Relaxed);
                Ok(n)
            }
            Response::Err { code, msg } => Err(io::Error::other(format!(
                "primary refused REPL: {code:?}: {msg}"
            ))),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected REPL response: {other:?}"),
            )),
        }
    }

    fn install_snapshot(
        &mut self,
        epoch: u64,
        next: u64,
        _seq_len: usize,
        entries: Vec<SnapEntry>,
    ) -> io::Result<usize> {
        if entries.is_empty() {
            // An empty primary: nothing to build, just adopt the
            // position (a fresh follower is empty too).
            self.shared
                .note_replica_position(epoch, next.saturating_sub(1));
            if let Some(dir) = &self.opts.state_dir {
                write_replica_state(dir, epoch, next.saturating_sub(1))?;
            }
            return Ok(0);
        }
        let n = entries.len();
        let index = build_snapshot_index(&entries)?;
        self.shared
            .install_replica_snapshot(index, epoch, next)
            .map_err(|e| io::Error::other(format!("snapshot install: {e}")))?;
        if let Some(dir) = &self.opts.state_dir {
            write_replica_state(dir, epoch, next.saturating_sub(1))?;
        }
        Ok(n)
    }

    /// Runs the poll/apply loop until `stop` is set, reconnecting with
    /// a bounded backoff when the primary goes away (it re-handshakes on
    /// the primary's new epoch after a restart).
    pub fn run(mut self, stop: Arc<AtomicBool>) {
        let mut rng = SeededRng::seed_from_u64(self.opts.reconnect_seed ^ 0x666f_6c6c_6f77_6572);
        let mut backoff = Duration::from_millis(50);
        while !stop.load(Ordering::SeqCst) {
            match self.poll_once() {
                Ok(_) => {
                    backoff = Duration::from_millis(50);
                    if self.opts.pace_ms > 0 {
                        std::thread::sleep(Duration::from_millis(self.opts.pace_ms));
                    }
                }
                Err(_) => {
                    // Sever the dead connection before backing off, so a
                    // restarting primary is not kept waiting on it.
                    self.client = None;
                    // Equal-jitter sleep in [backoff/2, backoff]: the cap
                    // still bounds reconnect latency, but a fleet of
                    // followers spreads its re-dials instead of hammering
                    // a recovering primary in lockstep.
                    let half = (backoff.as_millis() as u64) / 2;
                    let jittered = rng.random_range(half..=half * 2);
                    std::thread::sleep(Duration::from_millis(jittered));
                    backoff = (backoff * 2).min(Duration::from_secs(2));
                    if let Ok(client) = Client::connect(&self.primary) {
                        self.client = Some(client);
                    }
                }
            }
        }
    }

    /// Spawns [`Self::run`] on a named thread.
    pub fn spawn(self, stop: Arc<AtomicBool>) -> std::thread::JoinHandle<()> {
        std::thread::Builder::new()
            .name("simserve-follower".into())
            .spawn(move || self.run(stop))
            .expect("spawning the follower thread cannot fail")
    }
}

/// The primary epoch this replica's state corresponds to: its
/// [`SharedIndex::query_epoch`] coarse half on an in-memory follower is
/// exactly the replicated epoch; a durable follower tracks it in its
/// persisted replica state, re-asserted via `note_replica_position`.
fn replica_epoch(shared: &SharedIndex) -> u64 {
    shared.replica_epoch()
}

/// Rebuilds a [`SeqIndex`] from a snapshot transfer: inserts every
/// ordinal in order, then re-applies the tombstones, so ordinal
/// assignment (including skipped/degenerate sequences) is byte-exact.
fn build_snapshot_index(entries: &[SnapEntry]) -> io::Result<SeqIndex> {
    let names = (0..entries.len()).map(|i| format!("s{i}")).collect();
    let series = entries
        .iter()
        .map(|e| TimeSeries::new(e.values.clone()))
        .collect();
    let corpus = tseries::Corpus::from_parts(names, series);
    let mut index = SeqIndex::build(&corpus, IndexConfig::default())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "unbuildable snapshot"))?;
    for e in entries {
        if !e.live {
            index
                .delete_series(e.ord as usize)
                .map_err(|err| io::Error::other(format!("snapshot tombstone: {err}")))?;
        }
    }
    Ok(index)
}

/// Bootstraps an in-memory follower that starts with no index at all:
/// fetches the primary's snapshot synchronously, builds the replica
/// index, and returns the ready [`SharedIndex`] (serve it with
/// [`crate::server::serve_with`]) plus the connected [`Follower`].
/// Fails on an empty primary — give such a follower an `--index` to
/// start from instead.
pub fn bootstrap(primary: &str, opts: FollowerOpts) -> io::Result<(SharedIndex, Follower)> {
    let mut client = Client::connect(primary)?;
    let resp = client.call(&Request::Repl {
        epoch: 0,
        from: 0,
        ack: 0,
        max: 0,
        wait_ms: 0,
    })?;
    let Response::ReplSnapshot {
        epoch,
        next,
        entries,
        ..
    } = resp
    else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected a snapshot transfer, got {resp:?}"),
        ));
    };
    if entries.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "cannot bootstrap from an empty primary; start the follower with --index",
        ));
    }
    let index = build_snapshot_index(&entries)?;
    let shared = SharedIndex::new(index);
    shared.note_replica_position(epoch, next.saturating_sub(1));
    let stats = Arc::new(FollowerStats::default());
    stats.epoch.store(epoch, Ordering::Relaxed);
    stats.end.store(next, Ordering::Relaxed);
    stats.acked.store(shared.applied_lsn(), Ordering::Relaxed);
    stats.snapshots.store(1, Ordering::Relaxed);
    let follower = Follower {
        shared: shared.clone(),
        client: Some(client),
        primary: primary.to_string(),
        opts,
        stats,
        synced: true,
    };
    Ok((shared, follower))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acked(repl: &ReplState, peer: &str) -> u64 {
        repl.peers.lock().unwrap_or_else(|e| e.into_inner())[peer].acked
    }

    #[test]
    fn resync_overwrites_the_recorded_ack_once() {
        let repl = ReplState::primary();
        repl.record_ack("f", 10, 0);
        // Acks are normally monotonic: a stale lower ack is ignored.
        repl.record_ack("f", 4, 0);
        assert_eq!(acked(&repl, "f"), 10);
        // But the first ack after a snapshot transfer is the follower's
        // true (possibly lower) post-install position, so it overwrites —
        // otherwise the min-acked lag line under-reports until the
        // follower regrows past its stale ack.
        repl.mark_resync("f");
        repl.record_ack("f", 4, 0);
        assert_eq!(acked(&repl, "f"), 4);
        // The overwrite is one-shot: monotonic again afterwards.
        repl.record_ack("f", 2, 0);
        assert_eq!(acked(&repl, "f"), 4);
    }
}
