#![warn(missing_docs)]
//! # simserve — serving similarity queries over TCP
//!
//! Turns a persisted [`simquery::index::SeqIndex`] into a network service.
//! Everything is `std`-only (`std::net`, `std::thread`, `std::sync`):
//!
//! * [`protocol`] — the line-oriented request/response protocol (one typed
//!   parser/serializer shared by server and client; see `PROTOCOL.md`);
//! * [`server`] — the `simserved` core: an acceptor, per-connection I/O
//!   threads, and a worker pool consuming a **bounded** request queue —
//!   when the queue is full the request is rejected with `ERR code=BUSY`
//!   instead of piling up (explicit admission control);
//! * [`metrics`] — per-operation counters and log₂-bucketed latency
//!   histograms (p50/p95/p99), plus index access-counter deltas, reported
//!   by the `STATS` request;
//! * [`client`] — a typed blocking client with connect/read/write
//!   timeouts;
//! * [`failover`] — a multi-endpoint client that chases `ERR READONLY`
//!   and connection failures to the current primary with bounded,
//!   seeded-jitter retries;
//! * [`repl`] — WAL-shipping replication: the primary-side `REPL` feeder
//!   and the follower loop behind `simserved --replicate-from`, plus
//!   `PROMOTE`/fencing failover state;
//! * [`chaos`] — a deterministic fault-injecting TCP proxy for failover
//!   and partition tests;
//! * [`load`] — the `simload` closed-loop load generator: N concurrent
//!   connections replaying seeded workloads, with optional result-parity
//!   verification against a directly-opened copy of the index.
//!
//! The index is shared across workers through
//! [`simquery::shared::SharedIndex`]: queries run under a read guard (the
//! engines' access counters are atomics, so concurrent queries stay
//! consistent), `INSERT`/`DELETE` take the write guard.

pub mod chaos;
pub mod client;
pub mod expose;
pub mod failover;
pub mod load;
pub mod metrics;
pub mod opts;
pub mod pool;
pub mod protocol;
pub mod repl;
pub mod server;
