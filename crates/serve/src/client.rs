//! A typed blocking client for the `simserved` protocol.

use crate::protocol::{
    QueryParams, Request, Response, StatsReport, WireMatch, WirePair, WireTraceEvent,
};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Socket timeouts of one [`Client`] connection. A zero duration
/// disables that timeout (block forever — the pre-failover behaviour).
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// TCP connect budget.
    pub connect_timeout: Duration,
    /// Per-read budget. Must exceed the server's `REPL` long-poll
    /// `wait_ms` on a follower connection, or idle polls time out.
    pub read_timeout: Duration,
    /// Per-write budget.
    pub write_timeout: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
        }
    }
}

impl ClientConfig {
    /// All three timeouts set to `ms` milliseconds (`0` disables them
    /// all) — the shape `--timeout-ms` maps onto.
    pub fn with_timeout_ms(ms: u64) -> Self {
        let d = Duration::from_millis(ms);
        Self {
            connect_timeout: d,
            read_timeout: d,
            write_timeout: d,
        }
    }
}

/// One connection to a `simserved` instance.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects with the default timeouts ([`ClientConfig::default`]):
    /// a hung or partitioned server surfaces as `TimedOut`/`WouldBlock`
    /// instead of stalling the caller forever.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit timeouts.
    pub fn connect_with(addr: impl ToSocketAddrs, cfg: ClientConfig) -> io::Result<Self> {
        let stream = if cfg.connect_timeout.is_zero() {
            TcpStream::connect(&addr)?
        } else {
            // `connect_timeout` wants resolved addresses; try each in
            // resolution order and keep the last failure for the error.
            let mut last: Option<io::Error> = None;
            let mut connected = None;
            for a in addr.to_socket_addrs()? {
                match TcpStream::connect_timeout(&a, cfg.connect_timeout) {
                    Ok(s) => {
                        connected = Some(s);
                        break;
                    }
                    Err(e) => last = Some(e),
                }
            }
            connected.ok_or_else(|| {
                last.unwrap_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
                })
            })?
        };
        stream.set_nodelay(true).ok();
        let opt = |d: Duration| if d.is_zero() { None } else { Some(d) };
        stream.set_read_timeout(opt(cfg.read_timeout))?;
        stream.set_write_timeout(opt(cfg.write_timeout))?;
        Ok(Self {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one request and reads its full response.
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        writeln!(self.writer, "{}", request.to_line())?;
        self.writer.flush()?;
        Response::read_from(&mut self.reader)
    }

    /// Sends a raw line verbatim (testing malformed input) and reads the
    /// response.
    pub fn call_raw(&mut self, line: &str) -> io::Result<Response> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        Response::read_from(&mut self.reader)
    }

    /// `QUERY` — returns `(total, matches)` or the error frame.
    pub fn query(
        &mut self,
        params: QueryParams,
    ) -> io::Result<Result<(usize, Vec<WireMatch>), Response>> {
        match self.call(&Request::Query(params))? {
            Response::Matches { n, matches, .. } => Ok(Ok((n, matches))),
            other => Ok(Err(other)),
        }
    }

    /// `KNN`.
    pub fn knn(
        &mut self,
        ord: usize,
        k: usize,
        ma: (usize, usize),
    ) -> io::Result<Result<Vec<WireMatch>, Response>> {
        match self.call(&Request::Knn { ord, k, ma })? {
            Response::Matches { matches, .. } => Ok(Ok(matches)),
            other => Ok(Err(other)),
        }
    }

    /// `JOIN` — an empty result legitimately parses as `Matches { n: 0 }`.
    pub fn join(
        &mut self,
        ma: (usize, usize),
        threshold: crate::protocol::WireThreshold,
    ) -> io::Result<Result<(usize, Vec<WirePair>), Response>> {
        let req = Request::Join {
            ma,
            threshold,
            engine: Default::default(),
            limit: 0,
        };
        match self.call(&req)? {
            Response::Pairs { n, pairs, .. } => Ok(Ok((n, pairs))),
            Response::Matches { n: 0, .. } => Ok(Ok((0, Vec::new()))),
            other => Ok(Err(other)),
        }
    }

    /// `INSERT` — the assigned ordinal.
    pub fn insert(&mut self, values: Vec<f64>) -> io::Result<Result<usize, Response>> {
        match self.call(&Request::Insert { values })? {
            Response::Inserted { ord } => Ok(Ok(ord)),
            other => Ok(Err(other)),
        }
    }

    /// `DELETE` — whether the ordinal was live.
    pub fn delete(&mut self, ord: usize) -> io::Result<Result<bool, Response>> {
        match self.call(&Request::Delete { ord })? {
            Response::Deleted { existed } => Ok(Ok(existed)),
            other => Ok(Err(other)),
        }
    }

    /// `SYNC` — forces the server's WAL(s) to stable storage.
    pub fn sync(&mut self) -> io::Result<Result<(), Response>> {
        match self.call(&Request::Sync)? {
            Response::Ok => Ok(Ok(())),
            other => Ok(Err(other)),
        }
    }

    /// `CHECKPOINT` — the new epoch.
    pub fn checkpoint(&mut self) -> io::Result<Result<u64, Response>> {
        match self.call(&Request::Checkpoint)? {
            Response::Checkpointed { epoch } => Ok(Ok(epoch)),
            other => Ok(Err(other)),
        }
    }

    /// `PROMOTE` — flips a follower server to primary; returns the new
    /// fencing epoch.
    pub fn promote(&mut self) -> io::Result<Result<u64, Response>> {
        match self.call(&Request::Promote)? {
            Response::Promoted { epoch } => Ok(Ok(epoch)),
            other => Ok(Err(other)),
        }
    }

    /// `INFO` as key/value pairs.
    pub fn info(&mut self) -> io::Result<Result<Vec<(String, String)>, Response>> {
        match self.call(&Request::Info)? {
            Response::Info(pairs) => Ok(Ok(pairs)),
            other => Ok(Err(other)),
        }
    }

    /// `STATS`.
    pub fn stats(&mut self, reset: bool) -> io::Result<Result<StatsReport, Response>> {
        match self.call(&Request::Stats { reset })? {
            Response::Stats(s) => Ok(Ok(*s)),
            other => Ok(Err(other)),
        }
    }

    /// `METRICS` — the raw text exposition, one metric per line.
    pub fn metrics(&mut self) -> io::Result<Result<Vec<String>, Response>> {
        match self.call(&Request::Metrics)? {
            Response::Metrics { lines } => Ok(Ok(lines)),
            other => Ok(Err(other)),
        }
    }

    /// `TRACE` — drains up to `n` recorded spans, oldest first.
    pub fn trace(&mut self, n: usize) -> io::Result<Result<Vec<WireTraceEvent>, Response>> {
        match self.call(&Request::Trace { n })? {
            Response::Trace { events } => Ok(Ok(events)),
            other => Ok(Err(other)),
        }
    }

    /// `QUIT` — consumes the client.
    pub fn quit(mut self) -> io::Result<()> {
        self.call(&Request::Quit)?;
        Ok(())
    }
}
