//! A typed blocking client for the `simserved` protocol.

use crate::protocol::{
    QueryParams, Request, Response, StatsReport, WireMatch, WirePair, WireTraceEvent,
};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One connection to a `simserved` instance.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Self {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one request and reads its full response.
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        writeln!(self.writer, "{}", request.to_line())?;
        self.writer.flush()?;
        Response::read_from(&mut self.reader)
    }

    /// Sends a raw line verbatim (testing malformed input) and reads the
    /// response.
    pub fn call_raw(&mut self, line: &str) -> io::Result<Response> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        Response::read_from(&mut self.reader)
    }

    /// `QUERY` — returns `(total, matches)` or the error frame.
    pub fn query(
        &mut self,
        params: QueryParams,
    ) -> io::Result<Result<(usize, Vec<WireMatch>), Response>> {
        match self.call(&Request::Query(params))? {
            Response::Matches { n, matches, .. } => Ok(Ok((n, matches))),
            other => Ok(Err(other)),
        }
    }

    /// `KNN`.
    pub fn knn(
        &mut self,
        ord: usize,
        k: usize,
        ma: (usize, usize),
    ) -> io::Result<Result<Vec<WireMatch>, Response>> {
        match self.call(&Request::Knn { ord, k, ma })? {
            Response::Matches { matches, .. } => Ok(Ok(matches)),
            other => Ok(Err(other)),
        }
    }

    /// `JOIN` — an empty result legitimately parses as `Matches { n: 0 }`.
    pub fn join(
        &mut self,
        ma: (usize, usize),
        threshold: crate::protocol::WireThreshold,
    ) -> io::Result<Result<(usize, Vec<WirePair>), Response>> {
        let req = Request::Join {
            ma,
            threshold,
            engine: Default::default(),
            limit: 0,
        };
        match self.call(&req)? {
            Response::Pairs { n, pairs, .. } => Ok(Ok((n, pairs))),
            Response::Matches { n: 0, .. } => Ok(Ok((0, Vec::new()))),
            other => Ok(Err(other)),
        }
    }

    /// `INSERT` — the assigned ordinal.
    pub fn insert(&mut self, values: Vec<f64>) -> io::Result<Result<usize, Response>> {
        match self.call(&Request::Insert { values })? {
            Response::Inserted { ord } => Ok(Ok(ord)),
            other => Ok(Err(other)),
        }
    }

    /// `DELETE` — whether the ordinal was live.
    pub fn delete(&mut self, ord: usize) -> io::Result<Result<bool, Response>> {
        match self.call(&Request::Delete { ord })? {
            Response::Deleted { existed } => Ok(Ok(existed)),
            other => Ok(Err(other)),
        }
    }

    /// `SYNC` — forces the server's WAL(s) to stable storage.
    pub fn sync(&mut self) -> io::Result<Result<(), Response>> {
        match self.call(&Request::Sync)? {
            Response::Ok => Ok(Ok(())),
            other => Ok(Err(other)),
        }
    }

    /// `CHECKPOINT` — the new epoch.
    pub fn checkpoint(&mut self) -> io::Result<Result<u64, Response>> {
        match self.call(&Request::Checkpoint)? {
            Response::Checkpointed { epoch } => Ok(Ok(epoch)),
            other => Ok(Err(other)),
        }
    }

    /// `INFO` as key/value pairs.
    pub fn info(&mut self) -> io::Result<Result<Vec<(String, String)>, Response>> {
        match self.call(&Request::Info)? {
            Response::Info(pairs) => Ok(Ok(pairs)),
            other => Ok(Err(other)),
        }
    }

    /// `STATS`.
    pub fn stats(&mut self, reset: bool) -> io::Result<Result<StatsReport, Response>> {
        match self.call(&Request::Stats { reset })? {
            Response::Stats(s) => Ok(Ok(*s)),
            other => Ok(Err(other)),
        }
    }

    /// `METRICS` — the raw text exposition, one metric per line.
    pub fn metrics(&mut self) -> io::Result<Result<Vec<String>, Response>> {
        match self.call(&Request::Metrics)? {
            Response::Metrics { lines } => Ok(Ok(lines)),
            other => Ok(Err(other)),
        }
    }

    /// `TRACE` — drains up to `n` recorded spans, oldest first.
    pub fn trace(&mut self, n: usize) -> io::Result<Result<Vec<WireTraceEvent>, Response>> {
        match self.call(&Request::Trace { n })? {
            Response::Trace { events } => Ok(Ok(events)),
            other => Ok(Err(other)),
        }
    }

    /// `QUIT` — consumes the client.
    pub fn quit(mut self) -> io::Result<()> {
        self.call(&Request::Quit)?;
        Ok(())
    }
}
