//! A multi-endpoint failover client.
//!
//! [`FailoverClient`] wraps [`Client`] with the three behaviours a
//! fleet-facing caller needs during a primary failover:
//!
//! * **Primary chasing** — an `ERR code=READONLY` response (a follower
//!   or a fenced ex-primary refusing a write) rotates to the next
//!   endpoint instead of surfacing the error; after a promotion the
//!   client converges on whichever endpoint accepts writes.
//! * **Bounded, seeded retry** — connection failures and socket
//!   timeouts re-dial with exponential backoff and equal jitter drawn
//!   from a [`SeededRng`], so a client fleet spreads its reconnect storm
//!   and tests replay the exact schedule.
//! * **Per-op deadlines** — every [`FailoverClient::call`] gives up with
//!   a typed `TimedOut` error once its overall budget is spent, whatever
//!   the per-socket timeouts did.
//!
//! Retrying after a *lost response* means a non-idempotent request
//! (`INSERT`) may be applied more than once — at-least-once semantics,
//! exactly like any retrying client of a non-transactional line
//! protocol. Callers that need exactly-once must reconcile (the chaos
//! suite verifies inserted *content*, not counts). Reads are safe to
//! retry unconditionally.

use crate::client::{Client, ClientConfig};
use crate::protocol::{ErrCode, Request, Response};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tseries::rng::SeededRng;

/// Retry/backoff policy of a [`FailoverClient`].
#[derive(Clone, Copy, Debug)]
pub struct FailoverConfig {
    /// Socket timeouts for every connection the client dials.
    pub client: ClientConfig,
    /// Attempts per call (first try included); at least 1.
    pub max_attempts: u32,
    /// First retry's backoff; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Overall wall-clock budget per call (zero = unbounded).
    pub op_deadline: Duration,
    /// Seed of the jitter stream (equal seeds replay equal schedules).
    pub seed: u64,
}

impl Default for FailoverConfig {
    fn default() -> Self {
        Self {
            client: ClientConfig::default(),
            max_attempts: 8,
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(500),
            op_deadline: Duration::from_secs(10),
            seed: 0,
        }
    }
}

/// Retry/backoff counters a [`FailoverClient`] publishes (shared, so a
/// load generator can aggregate them across connections).
#[derive(Debug, Default)]
pub struct FailoverCounters {
    /// Re-attempts after a retryable failure (any kind).
    pub retries: AtomicU64,
    /// Endpoint rotations driven by `ERR code=READONLY`.
    pub redirects: AtomicU64,
    /// Re-dials after a connection/socket failure.
    pub reconnects: AtomicU64,
    /// Calls that exhausted their attempts or deadline.
    pub giveups: AtomicU64,
}

impl FailoverCounters {
    /// `(retries, redirects, reconnects, giveups)` snapshot.
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.retries.load(Ordering::Relaxed),
            self.redirects.load(Ordering::Relaxed),
            self.reconnects.load(Ordering::Relaxed),
            self.giveups.load(Ordering::Relaxed),
        )
    }
}

/// A client over a fixed endpoint list that keeps one live connection
/// and chases the current primary across failovers.
pub struct FailoverClient {
    endpoints: Vec<String>,
    current: usize,
    conn: Option<Client>,
    cfg: FailoverConfig,
    rng: SeededRng,
    counters: Arc<FailoverCounters>,
}

impl FailoverClient {
    /// A client over `endpoints` (tried in order, starting at the
    /// first). Dials lazily — construction cannot fail.
    pub fn new(endpoints: Vec<String>, cfg: FailoverConfig) -> Self {
        assert!(
            !endpoints.is_empty(),
            "failover needs at least one endpoint"
        );
        Self {
            endpoints,
            current: 0,
            conn: None,
            rng: SeededRng::seed_from_u64(cfg.seed ^ 0x6661_696c_6f76_6572),
            cfg,
            counters: Arc::new(FailoverCounters::default()),
        }
    }

    /// The shared counter block (clone it before moving the client into
    /// a worker thread).
    pub fn counters(&self) -> Arc<FailoverCounters> {
        Arc::clone(&self.counters)
    }

    /// The endpoint the next attempt will use.
    pub fn current_endpoint(&self) -> &str {
        &self.endpoints[self.current]
    }

    fn advance(&mut self) {
        self.current = (self.current + 1) % self.endpoints.len();
    }

    /// Equal-jitter exponential backoff for retry number `retry` (1 =
    /// first retry), clamped to the remaining deadline.
    fn backoff(&mut self, retry: u32, deadline: Option<Instant>) {
        let exp = self
            .cfg
            .backoff_base
            .saturating_mul(1u32 << retry.saturating_sub(1).min(16))
            .min(self.cfg.backoff_max);
        let ms = exp.as_millis() as u64;
        let mut sleep = Duration::from_millis(self.rng.random_range(ms / 2..=ms.max(1)));
        if let Some(d) = deadline {
            sleep = sleep.min(d.saturating_duration_since(Instant::now()));
        }
        if !sleep.is_zero() {
            std::thread::sleep(sleep);
        }
    }

    /// Sends `request`, retrying across endpoints per the config. The
    /// returned `Response` may still be a typed error frame (`BUSY`, a
    /// malformed-request rejection, ...) — only *readonly redirects* and
    /// transport failures are chased here.
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        let deadline =
            (!self.cfg.op_deadline.is_zero()).then(|| Instant::now() + self.cfg.op_deadline);
        let mut last_err: Option<io::Error> = None;
        let attempts = self.cfg.max_attempts.max(1);
        for attempt in 0..attempts {
            if attempt > 0 {
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    break;
                }
                self.counters.retries.fetch_add(1, Ordering::Relaxed);
                self.backoff(attempt, deadline);
            }
            if self.conn.is_none() {
                match Client::connect_with(&self.endpoints[self.current], self.cfg.client) {
                    Ok(c) => self.conn = Some(c),
                    Err(e) => {
                        self.counters.reconnects.fetch_add(1, Ordering::Relaxed);
                        last_err = Some(e);
                        self.advance();
                        continue;
                    }
                }
            }
            let conn = self.conn.as_mut().expect("connection ensured above");
            match conn.call(request) {
                Ok(Response::Err {
                    code: ErrCode::ReadOnly,
                    msg,
                }) => {
                    // A follower or fenced ex-primary: rotate toward the
                    // writable primary. The connection itself is fine,
                    // but pinning one per endpoint costs more than
                    // re-dialing after the (rare) failover settles.
                    self.counters.redirects.fetch_add(1, Ordering::Relaxed);
                    last_err = Some(io::Error::other(format!(
                        "endpoint {} is read-only: {msg}",
                        self.endpoints[self.current]
                    )));
                    self.conn = None;
                    self.advance();
                }
                Ok(resp) => return Ok(resp),
                Err(e) => {
                    // Connection refused/reset, or a socket timeout: the
                    // stream may hold a half-written request, so it can
                    // never be reused.
                    self.counters.reconnects.fetch_add(1, Ordering::Relaxed);
                    last_err = Some(e);
                    self.conn = None;
                    self.advance();
                }
            }
        }
        self.counters.giveups.fetch_add(1, Ordering::Relaxed);
        Err(last_err.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::TimedOut, "failover: retry budget exhausted")
        }))
    }
}
